"""T-incore — §4's comparison of the distributed in-core sorts.

The paper: "in-core columnsort … was consistently faster than bitonic
sort on problem sizes representative of those we encounter in the sort
stage. Radix sort was competitive … but we decided to use in-core
columnsort because radix sort has a high dependence on the key format
and because columnsort's communication patterns are independent of the
values in the keys."

We measure each sort's wall time and, more portably, its communication
volume (the quantity the 2003 timings reflect): bitonic's exchange
count grows with lg²P while columnsort's is flat. The §6 future-work
distribution sort is included, with its skew sensitivity quantified.
"""

import numpy as np
import pytest

from repro.cluster.spmd import run_spmd
from repro.oocs.incore.bitonic import distributed_bitonic_sort
from repro.oocs.incore.columnsort_dist import distributed_columnsort
from repro.oocs.incore.radix import distributed_radix_sort
from repro.oocs.incore.sample import distributed_sample_sort
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 64)

SORTS = {
    "columnsort": distributed_columnsort,
    "bitonic": distributed_bitonic_sort,
    "radix": distributed_radix_sort,
    "sample": distributed_sample_sort,
}

P = 8
N_LOCAL = 4096  # representative sort-stage share (M/P scaled down)


def _run(fn, recs, p=P, **kw):
    n_local = len(recs) // p

    def prog(comm):
        local = recs[comm.rank * n_local : (comm.rank + 1) * n_local]
        fn(comm, local, FMT, **kw)
        return comm.stats.snapshot()["network_bytes"]

    return sum(run_spmd(p, prog).returns)


@pytest.mark.parametrize("name", sorted(SORTS))
def test_incore_sort_timing(benchmark, name):
    """Wall time of each distributed sort at a sort-stage-representative
    size (pytest-benchmark groups these for comparison)."""
    recs = generate("uniform", FMT, P * N_LOCAL, seed=1)
    benchmark.group = "incore-sort"
    benchmark(_run, SORTS[name], recs)


def test_bitonic_moves_more_data(benchmark, show):
    """§4's result, in communication volume: bitonic > columnsort."""
    recs = generate("uniform", FMT, P * N_LOCAL, seed=2)

    def measure():
        return {name: _run(fn, recs) for name, fn in SORTS.items()}

    volumes = benchmark(measure)
    assert volumes["bitonic"] > volumes["columnsort"]
    show(
        f"Network bytes, P={P}, {P * N_LOCAL} records",
        "\n".join(f"{k:11s} {v:>12,}" for k, v in sorted(volumes.items())),
    )


def test_columnsort_traffic_independent_of_keys(benchmark, show):
    """The deciding §4 argument: columnsort's communication pattern is
    oblivious to key values; sample sort's is not."""
    uniform = generate("uniform", FMT, P * N_LOCAL, seed=3)
    skewed = generate("zipf", FMT, P * N_LOCAL, seed=3)

    def measure():
        return {
            "columnsort/uniform": _run(distributed_columnsort, uniform),
            "columnsort/zipf": _run(distributed_columnsort, skewed),
            "sample/uniform": _run(distributed_sample_sort, uniform),
            "sample/zipf": _run(distributed_sample_sort, skewed),
        }

    volumes = benchmark(measure)
    assert volumes["columnsort/uniform"] == volumes["columnsort/zipf"]
    assert volumes["sample/uniform"] != volumes["sample/zipf"]
    show(
        "Key-obliviousness (network bytes)",
        "\n".join(f"{k:20s} {v:>12,}" for k, v in volumes.items()),
    )


def test_radix_traffic_scales_with_key_width(benchmark, show):
    """Radix sort's key-format dependence: traffic is proportional to
    the number of nonzero key digits."""
    narrow = FMT.make(
        np.random.default_rng(4).integers(0, 2**16, size=P * N_LOCAL, dtype=np.uint64)
    )
    wide = FMT.make(
        np.random.default_rng(4).integers(0, 2**63, size=P * N_LOCAL, dtype=np.uint64)
    )

    def measure():
        return {
            "radix/16-bit keys": _run(distributed_radix_sort, narrow),
            "radix/63-bit keys": _run(distributed_radix_sort, wide),
            "columnsort/16-bit keys": _run(distributed_columnsort, narrow),
            "columnsort/63-bit keys": _run(distributed_columnsort, wide),
        }

    volumes = benchmark(measure)
    assert volumes["radix/63-bit keys"] > 2 * volumes["radix/16-bit keys"]
    assert (
        volumes["columnsort/16-bit keys"] == volumes["columnsort/63-bit keys"]
    )
    show(
        "Key-width sensitivity (network bytes)",
        "\n".join(f"{k:24s} {v:>12,}" for k, v in volumes.items()),
    )
