"""Governor harness: cancellation, disk-full ladder, admission storms.

For every pass program (the four algorithms plus the I/O-only baseline)
this drives the resource-governance layer through its whole contract:

* **boundary cancellation** — a :class:`~repro.governor.CancelToken`
  armed at every pass boundary stops the run with a structured
  :class:`~repro.errors.Cancellation`, leaks nothing, and leaves the
  last checkpoint valid: resuming produces byte-identical output;
* **mid-pass cancellation** — a token that flips on the nth poll of
  *any* seam (disk attempt, pipeline wait, mailbox slice) unwinds all
  ranks within a bounded interval, again with a byte-identical resume;
* **disk-full ladder** — an injected ``disk_full`` write fault with
  reclaimable dead scratch completes byte-identically via reclaim +
  one metered retry; with nothing to reclaim the run degrades and
  fails with a structured error naming the disk;
* **admission storm** — K simultaneous jobs against a 2-slot /
  2-queue :class:`~repro.governor.JobGovernor`: admitted jobs complete
  and verify, the queue stays within bounds, and the overflow is shed
  with :class:`~repro.errors.AdmissionRejected`;
* **always** — no leaked buffer-pool leases, threads, or quarantines.

The run summary is written to ``BENCH_governor.json`` (the CI artifact
the governor-smoke job archives).

Usage::

    PYTHONPATH=src python benchmarks/bench_governor.py --quick
    PYTHONPATH=src python benchmarks/bench_governor.py  # full sweep
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time

from repro.cluster.config import ClusterConfig
from repro.errors import (
    AdmissionRejected,
    Cancellation,
    DiskFullError,
    SpmdError,
)
from repro.governor import CancelToken, JobGovernor
from repro.membuf import get_pool
from repro.oocs.api import run_baseline_io, sort_out_of_core
from repro.records.format import RecordFormat
from repro.records.generators import generate
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    active_quarantines,
    release_all_quarantines,
)

FMT = RecordFormat("u8", 64)

#: program → (p, buffer_records, s, total passes, striped input?)
CONFIGS = {
    "threaded": (2, 256, 4, 3, False),
    "subblock": (2, 256, 4, 4, False),
    "m": (2, 128, 4, 3, True),
    "hybrid": (2, 128, 4, 4, True),
    "baseline-io": (2, 256, 4, 3, False),
}

#: Generous bound on cancel-fire → structured-unwind latency. The poll
#: interval is 50 ms; the rest is barrier/cleanup work on a busy runner.
UNWIND_BOUND_S = 5.0


class PollCancelToken(CancelToken):
    """A token that cancels itself on its nth ``cancelled()`` poll —
    landing mid-pass inside whatever seam happens to poll, which is
    exactly the kind of arbitrary point a real cancel arrives at."""

    def __init__(self, nth: int | None = None) -> None:
        super().__init__()
        self.nth = nth
        self.polls = 0
        self.fired_at: float | None = None
        self._poll_lock = threading.Lock()

    def cancelled(self) -> bool:
        with self._poll_lock:
            self.polls += 1
            hit = self.nth is not None and self.polls == self.nth
        if hit:
            self.cancel(f"cancelled at poll #{self.nth}")
        return super().cancelled()

    def cancel(self, reason: str = "cancelled") -> None:
        if self.fired_at is None:
            self.fired_at = time.monotonic()
        super().cancel(reason)


def records_for(program: str, seed: int = 7):
    p, buf, s, _, striped = CONFIGS[program]
    n = p * buf * s if striped else buf * s
    return generate("uniform", FMT, n, seed=seed)


def run_program(program: str, records, depth: int, **kwargs):
    p, buf, _, _, _ = CONFIGS[program]
    cluster = ClusterConfig(p=p, mem_per_proc=2**12)
    if program == "baseline-io":
        return run_baseline_io(
            records, cluster, FMT, buffer_records=buf,
            pipeline_depth=depth, **kwargs,
        )
    return sort_out_of_core(
        program, records, cluster, FMT, buffer_records=buf,
        pipeline_depth=depth, **kwargs,
    )


def output_bytes(res) -> bytes:
    """Output of a run, program-agnostic (the baseline's striped
    ``ColumnStore`` reads via ``to_records``, the PDM via ``read_all``)."""
    out = res.output
    if hasattr(out, "read_all"):
        return out.read_all().tobytes()
    return out.to_records().tobytes()


def release(res) -> None:
    """Delete a finished run's output and explicitly clean up its
    temporary workspace — leaving that to gc would trip
    ``PYTHONWARNINGS=error::ResourceWarning`` in the CI gate."""
    res.output.delete()
    tmp = getattr(getattr(res, "workspace", None), "_tmp", None)
    if tmp is not None:
        tmp.cleanup()


def wind_down_threads(before: set, deadline_s: float = 5.0) -> set:
    """Poll until every thread spawned since ``before`` exits; return
    the leftovers (empty on success)."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        extra = set(threading.enumerate()) - before
        if not extra:
            return set()
        time.sleep(0.02)
    return set(threading.enumerate()) - before


def check_leaks(tag: str, before: set, failures: list[str]) -> None:
    if get_pool().outstanding():
        get_pool().forget_leases()
        failures.append(f"{tag}: leaked pool leases")
    if active_quarantines():
        release_all_quarantines()
        failures.append(f"{tag}: leaked quarantine registrations")
    leftover = wind_down_threads(before)
    if leftover:
        failures.append(f"{tag}: leaked threads: {leftover}")


def cancel_case(program: str, depth: int, tmp_root, summary: dict) -> list[str]:
    """Cancel-then-resume at every boundary plus mid-pass, one program."""
    failures: list[str] = []
    total = CONFIGS[program][3]
    records = records_for(program)
    clean = run_program(program, records, depth)
    expected = output_bytes(clean)
    release(clean)

    # Mid-pass trigger: learn the program's total poll count from an
    # uncancelled probe, then fire halfway through the next run.
    probe = PollCancelToken(nth=None)
    release(run_program(program, records, depth, cancel=probe))
    triggers = [("boundary", k) for k in range(1, total + 1)]
    triggers.append(("mid-pass", max(2, probe.polls // 2)))

    for mode, arg in triggers:
        tag = f"{program} depth={depth} [{mode} {arg}]"
        workdir = tmp_root / f"{program}-d{depth}-{mode}-{arg}"
        ckdir = workdir / "ck"
        token = (
            CancelToken(cancel_at_pass=arg)
            if mode == "boundary"
            else PollCancelToken(nth=arg)
        )
        before = set(threading.enumerate())
        try:
            res = run_program(
                program, records, depth,
                cancel=token, workdir=workdir, checkpoint_dir=ckdir,
            )
        except Cancellation:
            caught_at = time.monotonic()
            fired_at = getattr(token, "fired_at", None)
            if fired_at is not None:
                latency = caught_at - fired_at
                summary["unwind_latencies_s"].append(round(latency, 4))
                if latency > UNWIND_BOUND_S:
                    failures.append(
                        f"{tag}: unwind took {latency:.2f}s "
                        f"(bound {UNWIND_BOUND_S}s)"
                    )
        else:
            # A mid-pass poll trigger may land after the last pass; the
            # completed run must still be correct.
            if output_bytes(res) != expected:
                failures.append(f"{tag}: uncancelled output diverged")
            release(res)
            check_leaks(tag, before, failures)
            print(f"  {tag}: completed before the trigger (ok)")
            continue
        check_leaks(tag, before, failures)

        resumed = run_program(
            program, records, depth,
            workdir=workdir, checkpoint_dir=ckdir, resume=True,
        )
        if output_bytes(resumed) != expected:
            failures.append(f"{tag}: resumed output diverged")
        release(resumed)
        print(f"  {tag}: cancelled + resumed byte-identical")
    summary["cancel_cases"] += len(triggers)
    return failures


def disk_full_case(program: str, depth: int, summary: dict) -> list[str]:
    """The reclaim/degrade ladder: injected ENOSPC with and without
    reclaimable dead scratch."""
    failures: list[str] = []
    records = records_for(program)
    clean = run_program(program, records, depth)
    expected = output_bytes(clean)
    writes_per_pass = [io["writes"] for io in clean.io_per_pass]
    release(clean)

    # -- reclaimable: ENOSPC in the last pass, where the first pass's
    # output is dead scratch; reclaim + one retry must finish the run --
    tag = f"{program} depth={depth} [disk-full reclaim]"
    nth = sum(writes_per_pass[:-1]) + max(2, writes_per_pass[-1] // 2)
    plan = FaultPlan(
        [FaultSpec(op="write", kind="disk_full", nth=nth, count=1,
                   transient=False)]
    )
    before = set(threading.enumerate())
    try:
        res = run_program(program, records, depth, fault_plan=plan)
    except (SpmdError, DiskFullError) as exc:
        failures.append(f"{tag}: run failed instead of reclaiming: {exc!r}")
    else:
        gov = res.governor
        if output_bytes(res) != expected:
            failures.append(f"{tag}: output diverged after reclaim")
        if not gov.get("disk_full_events"):
            failures.append(f"{tag}: no disk_full_events metered")
        if not gov.get("scratch_reclaims") or not gov.get("reclaimed_bytes"):
            failures.append(f"{tag}: reclaim not metered: {gov}")
        print(
            f"  {tag}: ok — reclaimed {gov.get('reclaimed_bytes', 0):,} B, "
            f"{gov.get('disk_full_events')} ENOSPC event(s)"
        )
        release(res)
    check_leaks(tag, before, failures)

    # -- nothing to reclaim: the very first write fails; the run must
    # degrade and then fail with a structured error naming the disk --
    tag = f"{program} depth={depth} [disk-full no-reclaim]"
    plan = FaultPlan(
        [FaultSpec(op="write", kind="disk_full", nth=1, count=1,
                   transient=False, disk=0)]
    )
    before = set(threading.enumerate())
    try:
        res = run_program(program, records, depth, fault_plan=plan)
    except SpmdError as exc:
        if not isinstance(exc.cause, DiskFullError):
            failures.append(
                f"{tag}: expected DiskFullError cause, got {exc.cause!r}"
            )
        elif "disk 0" not in str(exc.cause):
            failures.append(
                f"{tag}: error does not name the disk: {exc.cause}"
            )
        else:
            print(f"  {tag}: ok — structured failure: {exc.cause}")
    else:
        failures.append(f"{tag}: no-reclaim disk-full did not fail the run")
        release(res)
    check_leaks(tag, before, failures)
    summary["disk_full_cases"] += 2
    return failures


def admission_storm_case(k: int, summary: dict) -> list[str]:
    """K simultaneous jobs against a 2-slot, 2-queue governor."""
    failures: list[str] = []
    tag = f"admission storm K={k}"
    governor = JobGovernor(max_concurrent=2, max_queue=2, queue_timeout_s=30.0)
    records = records_for("threaded")
    clean = run_program("threaded", records, 0)
    expected = output_bytes(clean)
    release(clean)

    outcomes: list[tuple[str, object]] = [None] * k  # type: ignore
    start = threading.Barrier(k)

    def job(i: int) -> None:
        start.wait()
        try:
            res = run_program(
                "threaded", records, 0, governor=governor,
            )
        except AdmissionRejected as exc:
            outcomes[i] = ("rejected", exc.reason)
        except Exception as exc:  # noqa: BLE001 - recorded, not swallowed
            outcomes[i] = ("error", repr(exc))
        else:
            ok = output_bytes(res) == expected
            outcomes[i] = ("completed" if ok else "diverged", None)
            release(res)

    before = set(threading.enumerate())
    threads = [threading.Thread(target=job, args=(i,)) for i in range(k)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)

    counts: dict[str, int] = {}
    for outcome in outcomes:
        kind = outcome[0] if outcome else "hung"
        counts[kind] = counts.get(kind, 0) + 1
    snap = governor.snapshot()
    summary["admission"] = {"outcomes": counts, "governor": snap}

    if counts.get("hung") or counts.get("error") or counts.get("diverged"):
        failures.append(f"{tag}: bad outcomes {counts}: {outcomes}")
    if counts.get("completed", 0) != snap["admitted"]:
        failures.append(
            f"{tag}: {snap['admitted']} admitted but "
            f"{counts.get('completed', 0)} completed"
        )
    if snap["peak_running"] > 2:
        failures.append(f"{tag}: peak_running {snap['peak_running']} > 2")
    if snap["peak_queued"] > 2:
        failures.append(f"{tag}: peak_queued {snap['peak_queued']} > 2")
    if not snap["rejected_queue_full"]:
        failures.append(f"{tag}: storm of {k} jobs shed nothing")
    if counts.get("completed", 0) + counts.get("rejected", 0) != k:
        failures.append(f"{tag}: outcomes do not add up: {counts}")
    if snap["running"] or snap["queued"]:
        failures.append(f"{tag}: governor not drained: {snap}")
    check_leaks(tag, before, failures)
    print(
        f"  {tag}: ok — {counts.get('completed', 0)} completed, "
        f"{counts.get('rejected', 0)} shed, peaks "
        f"run={snap['peak_running']} queue={snap['peak_queued']}"
    )
    return failures


def main(argv: list[str] | None = None) -> int:
    import tempfile
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="disk-full on threaded only (the CI gate); "
                             "cancellation still covers every program")
    parser.add_argument("--storm-jobs", type=int, default=8,
                        help="jobs in the admission storm")
    parser.add_argument("--json", default="BENCH_governor.json",
                        help="summary artifact path")
    args = parser.parse_args(argv)

    summary: dict = {
        "cancel_cases": 0,
        "disk_full_cases": 0,
        "unwind_latencies_s": [],
    }
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="bench-governor-") as tmp:
        tmp_root = Path(tmp)
        for program in CONFIGS:
            for depth in (0, 2):
                failures.extend(cancel_case(program, depth, tmp_root, summary))
        disk_full_programs = ["threaded"] if args.quick else list(CONFIGS)
        for program in disk_full_programs:
            for depth in (0, 2):
                failures.extend(disk_full_case(program, depth, summary))
        failures.extend(admission_storm_case(args.storm_jobs, summary))

    summary["failures"] = failures
    lat = summary["unwind_latencies_s"]
    if lat:
        summary["unwind_max_s"] = max(lat)
    Path(args.json).write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(f"\nsummary written to {args.json}")
    if failures:
        print(f"{len(failures)} governor failure(s):")
        for line in failures:
            print(f"  FAIL: {line}")
        return 1
    print("all governor cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
