"""Ablation — the adjustable height interpretation (§6 future work).

Sweeps the group size ``g`` of g-columnsort from 1 (threaded) to P
(M-columnsort) on live runs, quantifying the paper's predicted trade:
sort-stage communication grows with ``g`` while the reachable problem
size grows as ``(g·M/P)^(3/2)``. Also exercises the run-time policy of
picking the smallest feasible ``g`` for a given ``N``.
"""

import pytest

from repro.bounds.restrictions import max_pow2_n
from repro.cluster.config import ClusterConfig
from repro.oocs.gcolumnsort import g_bound, smallest_group_size, sort_with_group_size
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 64)
P = 4
BUFFER = 512
N = 8192  # feasible at every g so the sweep compares like with like


@pytest.mark.parametrize("g", [1, 2, 4])
def test_g_sweep_timing(benchmark, g):
    """Wall time of the real implementation at each group size."""
    cluster = ClusterConfig(p=P, mem_per_proc=BUFFER)
    recs = generate("uniform", FMT, N, seed=1)
    benchmark.group = "g-columnsort"
    benchmark.extra_info["bound_records"] = g_bound(BUFFER, g)
    benchmark(
        lambda: sort_with_group_size(
            recs, cluster, FMT, BUFFER, group_size=g, verify=False
        )
    )


def test_g_sweep_tradeoff(benchmark, show):
    """The §6 trade, in one table: communication up, reachable N up."""
    cluster = ClusterConfig(p=P, mem_per_proc=BUFFER)
    recs = generate("uniform", FMT, N, seed=2)

    def measure():
        rows = []
        for g in (1, 2, 4):
            res = sort_with_group_size(
                recs, cluster, FMT, BUFFER, group_size=g, verify=False
            )
            rows.append(
                {
                    "g": g,
                    "net_bytes": res.comm_total["network_bytes"],
                    "bound": max_pow2_n(g_bound(BUFFER, g)),
                }
            )
        return rows

    rows = benchmark(measure)
    net = [row["net_bytes"] for row in rows]
    bounds = [row["bound"] for row in rows]
    assert net == sorted(net) and net[0] < net[-1]
    assert bounds == sorted(bounds) and bounds[0] < bounds[-1]
    show(
        f"g-columnsort trade (P={P}, N={N}, buffer={BUFFER} records)",
        "\n".join(
            f"g={row['g']}: network {row['net_bytes']:>10,} B   "
            f"max N {row['bound']:>8,} records"
            for row in rows
        ),
    )


def test_policy_picks_minimal_g(benchmark):
    """The run-time policy: smallest feasible g per problem size."""

    def policy_sweep():
        return {
            n: smallest_group_size(n, P, BUFFER)
            for n in (4096, 8192, 16384, 32768, 65536)
        }

    picks = benchmark(policy_sweep)
    assert picks == {4096: 1, 8192: 1, 16384: 2, 32768: 4, 65536: 4}


def test_endpoints_match_published_algorithms(benchmark, show):
    """g=1 and g=P reproduce threaded and M-columnsort exactly —
    identical sorted output and identical disk I/O volume."""
    from repro.oocs.api import sort_out_of_core

    cluster = ClusterConfig(p=P, mem_per_proc=BUFFER)
    recs = generate("uniform", FMT, N, seed=3)

    def run_all():
        thr = sort_out_of_core("threaded", recs, cluster, FMT, buffer_records=BUFFER)
        g1 = sort_with_group_size(recs, cluster, FMT, BUFFER, group_size=1)
        gp = sort_with_group_size(recs, cluster, FMT, BUFFER // P * P, group_size=P)
        return thr, g1, gp

    thr, g1, gp = benchmark.pedantic(run_all, rounds=1, iterations=1)
    import numpy as np

    assert np.array_equal(thr.output_records(), g1.output_records())
    assert thr.io["bytes_read"] == g1.io["bytes_read"] == gp.io["bytes_read"]
    show(
        "Endpoints",
        f"threaded == g-columnsort(g=1): identical output; "
        f"g=P I/O matches ({gp.io['bytes_read']:,} B read)",
    )
