"""T-buffer — the §5 buffer-size effect, as an ablation sweep.

The paper reports only 2^24 and 2^25 (larger buffers were faster "with
only one exception", and growth is capped by demand paging). The DES
lets us sweep the whole range and see both regimes: per-round overheads
shrink as buffers grow, until the buffer pool gets too shallow to keep
the pipeline full.
"""

from repro.simulate.hardware import BEOWULF_2003
from repro.simulate.predict import predict_seconds_per_gb

GB = 2**30
REC = 64


def sweep(algorithm: str, n: int, p: int) -> dict[int, float]:
    out = {}
    for exp in range(21, 28):
        try:
            out[exp] = predict_seconds_per_gb(
                algorithm, n, p, 2**exp, REC, BEOWULF_2003
            )
        except Exception:
            continue
    return out


def test_buffer_sweep_threaded(benchmark, show):
    values = benchmark(sweep, "threaded", 4 * GB // REC, 4)
    # Small buffers are ineligible here (the height restriction needs
    # r ≥ 2s², i.e. buffers of at least 2^24 bytes at 4 GB) — itself a
    # faithful reproduction of why the paper's threaded runs were boxed in.
    assert sorted(values) == [24, 25, 26, 27]
    # Bigger buffers help through the paper's reported range…
    assert values[24] > values[25]
    show(
        "Threaded columnsort, 4 GB / P=4",
        "\n".join(f"buffer 2^{e}: {v:7.1f} s/(GB/proc)" for e, v in values.items()),
    )


def test_buffer_sweep_m(benchmark, show):
    values = benchmark(sweep, "m", 32 * GB // REC, 16)
    assert len(values) >= 4
    # M-columnsort is the paper's "one exception" candidate: its deep
    # in-core pipeline benefits from more, smaller buffers.
    smallest, largest = min(values), max(values)
    assert values[smallest] < values[largest] * 1.3  # stays in a sane band
    show(
        "M-columnsort, 32 GB / P=16",
        "\n".join(f"buffer 2^{e}: {v:7.1f} s/(GB/proc)" for e, v in values.items()),
    )


def test_overhead_mechanism(benchmark):
    """The mechanism behind the sweep: halving the buffer doubles the
    round count, so per-stage overheads double while transfer time is
    unchanged. Verified directly on baseline I/O."""

    def measure():
        n, p = 4 * GB // REC, 4
        return {
            e: predict_seconds_per_gb("baseline-io", n, p, 2**e, REC,
                                      BEOWULF_2003, passes=3)
            for e in (22, 23, 24, 25)
        }

    values = benchmark(measure)
    gaps = [values[e] - values[e + 1] for e in (22, 23, 24)]
    # Each halving of rounds roughly halves the overhead gap.
    assert gaps[0] > gaps[1] > gaps[2] > 0
