"""T-msgcount — §3 properties 1-3: the subblock pass's communication.

Checks the analytic table (⌈P/√s⌉ messages per round, optimality) and
meters a live subblock pass to confirm the implementation achieves the
bound exactly.
"""

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.spmd import run_spmd
from repro.disks.matrixfile import ColumnStore
from repro.experiments.tables import msgcount_table, render_table
from repro.matrix.bits import sqrt_pow4
from repro.oocs.base import make_workspace
from repro.oocs.subblock import (
    expected_messages_per_round,
    pass_subblock,
    subblock_round_routing,
)
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 64)


def test_t_msgcount_table(benchmark, show):
    rows = benchmark(msgcount_table)
    for row in rows:
        t = row["sqrt_s"]
        p = row["P"]
        assert row["messages/round (⌈P/√s⌉)"] == -(-p // t)
        assert row["network-free"] == (t >= p)
    show("T-msgcount", render_table(rows))


def test_live_subblock_pass_achieves_bound(benchmark, show):
    """Run the actual subblock pass at P=8, s=16 (√s=4 < P) and meter
    per-rank network messages: exactly (⌈P/√s⌉−1) per round."""
    p, r, s = 8, 256, 16
    cluster = ClusterConfig(p=p, mem_per_proc=2**10)
    recs = generate("uniform", FMT, r * s, seed=1)

    def run_pass():
        ws = make_workspace(cluster, FMT, recs, r, s)
        dst = ColumnStore(cluster, FMT, r, s, ws.disks, name="dst")

        def prog(comm):
            pass_subblock(comm, ws.input, dst, FMT)
            return comm.stats.snapshot()["network_messages"]

        return run_spmd(p, prog).returns

    counts = benchmark(run_pass)
    rounds = s // p
    expected = rounds * (expected_messages_per_round(s, p) - 1)
    assert all(c == expected for c in counts)
    show(
        "Live subblock pass (P=8, s=16)",
        f"per-rank network messages: {counts} (expected {expected} = "
        f"{rounds} rounds × (⌈P/√s⌉−1))",
    )


def test_optimality_lower_bound(benchmark):
    """Property 3: any permutation with the subblock property sends at
    least ⌈P/√s⌉ messages per round. Our routing achieves exactly that
    — verified by enumerating destinations for every source column."""

    def check():
        for s in (16, 64, 256):
            t = sqrt_pow4(s)
            for p in (2, 4, 8, 16, 32):
                if p > s:
                    continue  # more processors than columns: not a shape
                bound = -(-p // t)
                for c in range(s):
                    routing = subblock_round_routing(c, 16 * s, s, p)
                    assert len(routing) == bound
        return True

    assert benchmark(check)


def test_deal_vs_subblock_network_volume(benchmark, show):
    """The subblock pass moves strictly less over the network than a
    deal pass whenever s > 1 — measured on live runs."""
    from repro.oocs.api import sort_out_of_core

    p, r, s = 8, 256, 16
    cluster = ClusterConfig(p=p, mem_per_proc=2**10)
    recs = generate("uniform", FMT, r * s, seed=2)

    def run_sort():
        res = sort_out_of_core("subblock", recs, cluster, FMT, buffer_records=r)
        return [c["network_bytes"] for c in res.comm_per_pass]

    volumes = benchmark(run_sort)
    assert volumes[1] < volumes[0]  # subblock pass < deal pass
    show(
        "Per-pass network bytes (subblock columnsort, P=8, s=16)",
        f"pass1(deal)={volumes[0]:,}  pass2(subblock)={volumes[1]:,}  "
        f"pass3(deal)={volumes[2]:,}  pass4(windows)={volumes[3]:,}",
    )
