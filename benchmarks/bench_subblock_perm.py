"""Figure 1 — the subblock permutation as a bit permutation.

Benchmarks the three equivalent implementations (4-D axis transpose,
arithmetic index map, Figure 1 bit shuffle) against each other and
asserts their exhaustive agreement plus the subblock property — the
executable content of the paper's Figure 1 and §3 proof.
"""

import numpy as np
import pytest

from repro.columnsort.checks import has_subblock_property, runs_after_subblock_ok
from repro.matrix.layout import sort_columns, to_columns
from repro.matrix.permutations import (
    apply_index_map,
    subblock,
    subblock_target,
    subblock_target_bitwise,
)

R, S = 4096, 256  # √s = 16


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(0)
    return sort_columns(to_columns(rng.integers(0, 2**32, size=R * S), R, S))


def test_transpose_implementation(benchmark, matrix):
    benchmark.group = "subblock-permutation"
    out = benchmark(subblock, matrix)
    assert runs_after_subblock_ok(out, R, S)


def test_arithmetic_index_map(benchmark, matrix):
    benchmark.group = "subblock-permutation"
    out = benchmark(apply_index_map, matrix, subblock_target)
    assert np.array_equal(out, subblock(matrix))


def test_figure1_bit_shuffle(benchmark, matrix):
    benchmark.group = "subblock-permutation"
    out = benchmark(apply_index_map, matrix, subblock_target_bitwise)
    assert np.array_equal(out, subblock(matrix))


def test_subblock_property_verification(benchmark):
    """Exhaustive verification of the subblock property at Figure 1
    scale — the checker itself is the timed artifact."""
    assert benchmark(has_subblock_property, subblock_target, 1024, 64)
