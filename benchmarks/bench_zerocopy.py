"""Zero-copy data plane: pooled vs legacy copy traffic and wall time.

Runs the same out-of-core sort twice — once with ``REPRO_LEGACY_COPIES=1``
(every seam copies: bytes → records on read, isolate-copy on send,
records → bytes on write) and once on the pooled/view data plane — and
compares:

* ``bytes_copied`` (the deterministic gate: pooled must copy strictly
  fewer bytes than legacy; CI fails the build otherwise);
* wall-clock time (reported, not gated — too noisy on shared runners);
* output bytes (must be identical between the two planes).

Usage::

    PYTHONPATH=src python benchmarks/bench_zerocopy.py --quick
    PYTHONPATH=src python benchmarks/bench_zerocopy.py  # full matrix
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.cluster.config import ClusterConfig
from repro.membuf import get_pool
from repro.oocs.api import sort_out_of_core
from repro.records.format import RecordFormat
from repro.records.generators import generate

# (algorithm, n, buffer_records) — shapes small enough for CI but large
# enough that the pool sees repeated lease/recycle cycles per pass.
QUICK_CASES = [("threaded", 8192, 512)]
FULL_CASES = [
    ("threaded", 32768, 2048),
    ("subblock", 65536, 4096),
    ("m", 131072, 8192),
    ("hybrid", 131072, 8192),
]


def run_case(algorithm: str, n: int, buffer_records: int, legacy: bool,
             depth: int = 2) -> dict:
    fmt = RecordFormat("u8", 64)
    cluster = ClusterConfig(p=4, mem_per_proc=2**16)
    records = generate("uniform", fmt, n, seed=7)
    os.environ["REPRO_LEGACY_COPIES"] = "1" if legacy else "0"
    try:
        t0 = time.perf_counter()
        result = sort_out_of_core(
            algorithm, records, cluster, fmt,
            buffer_records=buffer_records, pipeline_depth=depth,
        )
        wall = time.perf_counter() - t0
    finally:
        os.environ.pop("REPRO_LEGACY_COPIES", None)
    output = result.output.read_global(0, n).tobytes()
    result.output.delete()
    leaked = get_pool().outstanding()
    return {
        "copy": result.copy,
        "wall": wall,
        "output": output,
        "leaked": leaked,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="single small case (the CI perf-smoke gate)")
    parser.add_argument("--depth", type=int, default=2,
                        help="pipeline depth for both runs")
    args = parser.parse_args(argv)

    cases = QUICK_CASES if args.quick else FULL_CASES
    failures = 0
    for algorithm, n, buf in cases:
        legacy = run_case(algorithm, n, buf, legacy=True, depth=args.depth)
        pooled = run_case(algorithm, n, buf, legacy=False, depth=args.depth)
        lc = legacy["copy"]["bytes_copied"]
        pc = pooled["copy"]["bytes_copied"]
        ratio = lc / pc if pc else float("inf")
        ok = pc < lc and pooled["output"] == legacy["output"]
        print(
            f"{algorithm:>9} n={n:>7} buf={buf:>5}: "
            f"legacy {lc:>12,} B copied ({legacy['wall'] * 1000:7.1f} ms)  "
            f"pooled {pc:>12,} B copied ({pooled['wall'] * 1000:7.1f} ms)  "
            f"{ratio:4.2f}x fewer copies  "
            f"zero-copy {pooled['copy']['bytes_zero_copy']:,} B  "
            f"[{'ok' if ok else 'FAIL'}]"
        )
        if pooled["output"] != legacy["output"]:
            print(f"  FAIL: {algorithm} output differs between data planes")
            failures += 1
        if pc >= lc:
            print(
                f"  FAIL: pooled plane copied {pc:,} B ≥ legacy {lc:,} B "
                f"— zero-copy regression"
            )
            failures += 1
        for tag, res in (("legacy", legacy), ("pooled", pooled)):
            if res["leaked"]:
                print(f"  FAIL: {res['leaked']} pool lease(s) leaked "
                      f"after {tag} run")
                failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
