"""Chaos harness: every algorithm under seeded random fault plans.

For each algorithm and each seeded :class:`~repro.resilience.FaultPlan`
this runs the full out-of-core sort and asserts the resilience layer's
whole contract:

* **transient-only plans** — the run completes, its output is
  byte-identical to a fault-free run, and the recovery is *visible*
  (retry counters > 0 whenever the plan actually fired);
* **permanent plans** — the run fails with a structured
  :class:`~repro.errors.SpmdError` naming a rank, within the watchdog
  deadline — never a hang, never silent corruption;
* **disk-kill plans** (``--parity``) — one disk suffers permanent
  faults mid-pass and never recovers: with parity the run completes
  *byte-identically in degraded mode* with visible reconstruction
  counters; without parity it fails structurally within the deadline;
* **rank-kill plans** (``--rank-kill``) — a rank really dies mid-pass
  (``SIGKILL`` / ``os._exit`` on the process backend, an uncatchable
  injected error on the thread backend): a run armed with a
  :class:`~repro.resilience.RestartPolicy` must complete
  byte-identically *within the same call*, with visible
  ``SupervisorStats`` and zero leaked children or ``/dev/shm``
  segments;
* **always** — no leaked buffer-pool leases, threads, or quarantines.

A machine-readable summary of every case lands in ``--json`` (default
``BENCH_chaos.json``) for the CI artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py --quick
    PYTHONPATH=src python benchmarks/bench_chaos.py --quick --parity
    PYTHONPATH=src python benchmarks/bench_chaos.py --quick --rank-kill
    PYTHONPATH=src python benchmarks/bench_chaos.py --seeds 8  # wider sweep
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.cluster.config import ClusterConfig
from repro.cluster.transport import available_backends
from repro.errors import SpmdError
from repro.membuf import get_pool
from repro.oocs.api import sort_out_of_core
from repro.records.format import RecordFormat
from repro.records.generators import generate
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    RestartPolicy,
    RetryPolicy,
    active_quarantines,
    release_all_quarantines,
    transient_plan,
)

FMT = RecordFormat("u8", 64)

#: algorithm → (p, buffer_records, s, striped input?)
CONFIGS = {
    "threaded": (2, 256, 4, False),
    "subblock": (2, 256, 4, False),
    "m": (2, 128, 4, True),
    "hybrid": (2, 128, 4, True),
}

WATCHDOG_DEADLINE = 10.0


def records_for(algorithm: str, seed: int):
    p, buf, s, striped = CONFIGS[algorithm]
    n = p * buf * s if striped else buf * s
    return generate("uniform", FMT, n, seed=seed)


def run_sort(algorithm: str, records, depth: int, plan=None, policy=None,
             parity=False, **kwargs):
    p, buf, _, _ = CONFIGS[algorithm]
    cluster = ClusterConfig(p=p, mem_per_proc=2**12)
    return sort_out_of_core(
        algorithm, records, cluster, FMT, buffer_records=buf,
        pipeline_depth=depth, fault_plan=plan, retry_policy=policy,
        watchdog_deadline=WATCHDOG_DEADLINE if plan is not None else None,
        parity=parity, **kwargs,
    )


def wind_down_threads(before: set, deadline_s: float = 5.0) -> set:
    """Poll until every thread spawned since ``before`` exits; return
    the leftovers (empty on success)."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        extra = set(threading.enumerate()) - before
        if not extra:
            return set()
        time.sleep(0.02)
    return set(threading.enumerate()) - before


def chaos_case(algorithm: str, depth: int, seed: int) -> list[str]:
    """One algorithm under one seed: a transient plan that must be
    survived and a permanent plan that must fail cleanly. Returns the
    list of failure descriptions (empty = all good)."""
    failures: list[str] = []
    tag = f"{algorithm} depth={depth} seed={seed}"
    records = records_for(algorithm, seed)

    # ground truth, fault-free
    expected = run_sort(algorithm, records, depth).output_records().tobytes()

    # -- transient weather: must complete byte-identically via retries --
    plan = transient_plan(read_p=0.02, write_p=0.02, seed=seed)
    policy = RetryPolicy(max_attempts=6, base_delay_s=0.0005, seed=seed)
    before = set(threading.enumerate())
    t0 = time.perf_counter()
    res = run_sort(algorithm, records, depth, plan=plan, policy=policy)
    wall = time.perf_counter() - t0
    fired = plan.snapshot()["fired_total"]
    retries = (
        res.io["read_retries"] + res.io["write_retries"]
        + res.comm_total["retries"]
    )
    if res.output_records().tobytes() != expected:
        failures.append(f"{tag}: output diverged under transient faults")
    if fired and not retries:
        failures.append(
            f"{tag}: plan fired {fired} faults but no retries were metered"
        )
    res.output.delete()
    if get_pool().outstanding():
        failures.append(f"{tag}: leaked pool leases after transient run")
    leftover = wind_down_threads(before)
    if leftover:
        failures.append(f"{tag}: leaked threads after transient run: {leftover}")
    print(
        f"  {tag}: transient ok — {fired} faults fired, {retries} retries, "
        f"{wall * 1000:.0f} ms"
    )

    # -- permanent fault: must fail structurally, promptly, cleanly --
    plan = FaultPlan(
        [FaultSpec(op="read", probability=1.0, nth=3 + seed, count=None,
                   transient=False)],
        seed=seed,
    )
    before = set(threading.enumerate())
    t0 = time.perf_counter()
    try:
        res = run_sort(algorithm, records, depth, plan=plan, policy=policy)
    except SpmdError as exc:
        wall = time.perf_counter() - t0
        if wall > WATCHDOG_DEADLINE + 5.0:
            failures.append(
                f"{tag}: structured failure took {wall:.1f}s "
                f"(watchdog deadline {WATCHDOG_DEADLINE}s)"
            )
        print(
            f"  {tag}: permanent ok — rank {exc.rank} failed with "
            f"{type(exc.cause).__name__} in {wall * 1000:.0f} ms"
        )
    else:
        failures.append(f"{tag}: permanent fault plan did not fail the run")
        res.output.delete()
    if get_pool().outstanding():
        get_pool().forget_leases()
        failures.append(f"{tag}: leaked pool leases after permanent run")
    leftover = wind_down_threads(before)
    if leftover:
        failures.append(f"{tag}: leaked threads after permanent run: {leftover}")
    return failures


def disk_kill_plan(seed: int) -> FaultPlan:
    """Disk 1 starts failing permanently at its ``3+seed``-th read and
    never answers again — the 'medium died mid-pass' scenario."""
    return FaultPlan(
        [FaultSpec(op="read", probability=1.0, nth=3 + seed, count=None,
                   transient=False, disk=1)],
        seed=seed,
    )


def disk_kill_case(algorithm: str, depth: int, seed: int) -> list[str]:
    """One algorithm losing a disk mid-pass, with and without parity."""
    failures: list[str] = []
    tag = f"{algorithm} depth={depth} seed={seed} [disk-kill]"
    records = records_for(algorithm, seed)
    policy = RetryPolicy(max_attempts=4, base_delay_s=0.0005, seed=seed)
    expected = run_sort(algorithm, records, depth).output_records().tobytes()

    # -- parity on: must complete byte-identically in degraded mode --
    before = set(threading.enumerate())
    t0 = time.perf_counter()
    try:
        res = run_sort(algorithm, records, depth, plan=disk_kill_plan(seed),
                       policy=policy, parity=True)
    except SpmdError as exc:
        failures.append(
            f"{tag}: parity run died instead of degrading: {exc.cause!r}"
        )
    else:
        wall = time.perf_counter() - t0
        dur = res.durability
        if res.output_records().tobytes() != expected:
            failures.append(f"{tag}: degraded output diverged")
        if dur.get("degraded_disks") != [1]:
            failures.append(
                f"{tag}: expected disk 1 degraded, got "
                f"{dur.get('degraded_disks')}"
            )
        if not dur.get("reconstructed_blocks"):
            failures.append(f"{tag}: degraded run reconstructed no blocks")
        print(
            f"  {tag}: parity ok — degraded disks {dur.get('degraded_disks')}, "
            f"{dur.get('reconstructed_blocks')} blocks reconstructed, "
            f"{dur.get('spare_writes')} spare writes, {wall * 1000:.0f} ms"
        )
        res.output.delete()
        res.release_durability()
    if active_quarantines():
        release_all_quarantines()
        failures.append(f"{tag}: leaked quarantines after parity run")
    if get_pool().outstanding():
        get_pool().forget_leases()
        failures.append(f"{tag}: leaked pool leases after parity run")
    leftover = wind_down_threads(before)
    if leftover:
        failures.append(f"{tag}: leaked threads after parity run: {leftover}")

    # -- parity off: must fail structurally within the deadline --
    before = set(threading.enumerate())
    t0 = time.perf_counter()
    try:
        res = run_sort(algorithm, records, depth, plan=disk_kill_plan(seed),
                       policy=policy)
    except SpmdError as exc:
        wall = time.perf_counter() - t0
        if wall > WATCHDOG_DEADLINE + 5.0:
            failures.append(
                f"{tag}: parity-off failure took {wall:.1f}s "
                f"(watchdog deadline {WATCHDOG_DEADLINE}s)"
            )
        print(
            f"  {tag}: parity-off ok — rank {exc.rank} failed with "
            f"{type(exc.cause).__name__} in {wall * 1000:.0f} ms"
        )
    else:
        failures.append(f"{tag}: disk kill without parity did not fail")
        res.output.delete()
    release_all_quarantines()
    if get_pool().outstanding():
        get_pool().forget_leases()
        failures.append(f"{tag}: leaked pool leases after parity-off run")
    leftover = wind_down_threads(before)
    if leftover:
        failures.append(f"{tag}: leaked threads after parity-off run: {leftover}")
    return failures


def stale_segments() -> list[str]:
    """``/dev/shm`` entries left behind by this process's cohorts."""
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return [e for e in entries if e.startswith("repro-shm-")]


def rank_kill_case(algorithm: str, depth: int, seed: int, backend: str,
                   fractions: tuple, rows: list) -> list[str]:
    """One algorithm surviving a rank that really dies, at kill points
    spread across the run's passes, on one backend.

    A calibration run counts the run's disk writes; each fraction of
    that total is one kill point (early pass, mid run, last pass), so
    the matrix exercises both mid-pass deaths and deaths right around
    pass boundaries. Every supervised run must come back byte-identical
    with ``restarts >= 1`` and leak nothing — no children, no shm
    segments, no leases, no quarantines.
    """
    failures: list[str] = []
    p = CONFIGS[algorithm][0]
    records = records_for(algorithm, seed)
    expected = run_sort(algorithm, records, depth).output_records().tobytes()

    counting = FaultPlan()
    run_sort(algorithm, records, depth, plan=counting).output.delete()
    writes = counting.snapshot()["ops"]["write"]

    kinds = ("rank_kill", "rank_exit")
    for i, frac in enumerate(fractions):
        kind = kinds[i % len(kinds)]
        tag = (f"{algorithm} depth={depth} seed={seed} [{backend} {kind} "
               f"@{frac:.0%}]")
        nth = max(1, int(writes * frac))
        if backend == "process":
            nth = max(1, nth // p)  # forked ranks count their own ops
        plan = FaultPlan([FaultSpec(op="write", nth=nth, count=1, kind=kind)],
                         seed=seed)
        policy = RestartPolicy(max_restarts=3, base_backoff_s=0.001,
                               seed=seed)
        before = set(threading.enumerate())
        with tempfile.TemporaryDirectory() as tmp:
            t0 = time.perf_counter()
            try:
                res = run_sort(
                    algorithm, records, depth, plan=plan, backend=backend,
                    restart_policy=policy,
                    workdir=Path(tmp) / "w", checkpoint_dir=Path(tmp) / "ck",
                )
            except SpmdError as exc:
                failures.append(f"{tag}: supervised run died: {exc.cause!r}")
                continue
            wall = time.perf_counter() - t0
            sup = res.supervisor
            kills = plan.snapshot()["rank_kills"]
            if res.output_records().tobytes() != expected:
                failures.append(f"{tag}: recovered output diverged")
            if not sup.get("restarts"):
                failures.append(f"{tag}: no restart recorded ({sup})")
            if not kills:
                failures.append(f"{tag}: kill spec never fired")
            res.output.delete()
            res.release_durability()
        if multiprocessing.active_children():
            failures.append(f"{tag}: leaked child processes")
        if stale_segments():
            failures.append(f"{tag}: leaked shm segments: {stale_segments()}")
        if active_quarantines():
            release_all_quarantines()
            failures.append(f"{tag}: leaked quarantines")
        if get_pool().outstanding():
            get_pool().forget_leases()
            failures.append(f"{tag}: leaked pool leases")
        leftover = wind_down_threads(before)
        if leftover:
            failures.append(f"{tag}: leaked threads: {leftover}")
        resumed = (sup["attempts"][0].get("resumed_from_pass")
                   if sup.get("attempts") else None)
        rows.append({
            "algorithm": algorithm, "depth": depth, "seed": seed,
            "backend": backend, "kind": kind, "kill_write": nth,
            "restarts": sup.get("restarts", 0), "rank_kills": kills,
            "resumed_from_pass": resumed,
            "restart_wall_s": round(sup.get("restart_wall", 0.0), 4),
            "wall_ms": round(wall * 1000, 1),
            "ok": not any(f.startswith(tag) for f in failures),
        })
        print(
            f"  {tag}: ok — killed at write {nth}, "
            f"{sup.get('restarts')} restart(s), resumed from pass {resumed}, "
            f"{wall * 1000:.0f} ms"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="one seed, depths 0+2 (the CI chaos-smoke gate)")
    parser.add_argument("--seeds", type=int, default=3,
                        help="fault-plan seeds per algorithm (full mode)")
    parser.add_argument("--seed-base", type=int, default=1,
                        help="first seed (fixed in CI for reproducibility)")
    parser.add_argument("--parity", action="store_true",
                        help="also run the permanent disk-kill scenarios "
                             "(degraded-mode with parity, structural "
                             "failure without)")
    parser.add_argument("--rank-kill", action="store_true",
                        help="also run the supervised rank-kill matrix "
                             "(a rank really dies; the run must recover "
                             "in-call) on every available backend")
    parser.add_argument("--json", default="BENCH_chaos.json",
                        help="write the machine-readable summary here")
    args = parser.parse_args(argv)

    seeds = [args.seed_base] if args.quick else [
        args.seed_base + i for i in range(args.seeds)
    ]
    # quick mode trims the rank-kill matrix to one threaded-layout and
    # one striped-layout algorithm and two kill points; full mode kills
    # at an early-, mid-, and late-run write on every algorithm
    kill_algorithms = ("threaded", "m") if args.quick else tuple(CONFIGS)
    fractions = (0.35, 0.85) if args.quick else (0.15, 0.5, 0.85)
    failures: list[str] = []
    kill_rows: list[dict] = []
    for algorithm in CONFIGS:
        for depth in (0, 2):
            for seed in seeds:
                failures.extend(chaos_case(algorithm, depth, seed))
                if args.parity:
                    failures.extend(disk_kill_case(algorithm, depth, seed))
                if args.rank_kill and algorithm in kill_algorithms:
                    for backend in available_backends():
                        failures.extend(rank_kill_case(
                            algorithm, depth, seed, backend, fractions,
                            kill_rows,
                        ))
    summary = {
        "quick": args.quick,
        "seeds": seeds,
        "parity": args.parity,
        "rank_kill": args.rank_kill,
        "failures": failures,
        "rank_kill_cases": kill_rows,
    }
    Path(args.json).write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(f"\nsummary written to {args.json}")
    if failures:
        print(f"\n{len(failures)} chaos failure(s):")
        for line in failures:
            print(f"  FAIL: {line}")
        return 1
    print("\nall chaos cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
