"""Ablation — merge-based column sorting (footnote 5).

The paper's C implementation sorted by merging the runs the previous
pass's write pattern left behind. This quantifies the same choice in
NumPy: the vectorized pairwise merge tree versus ``np.sort`` on the
run structures our passes actually produce (s runs of r/s after a deal
pass; √s runs of r/√s after the subblock pass).

The economics invert relative to 2003 C code: ``np.sort`` is a single
optimized O(n lg n) call, while the merge tree pays ⌈lg k⌉ full passes
of vectorized scatter. Merging wins only for k = 2; the library's
``sort_column`` dispatcher encodes that crossover.
"""

import numpy as np
import pytest

from repro.oocs.runs import merge_sorted_runs, verify_run_structure
from repro.records.format import RecordFormat

FMT = RecordFormat("u8", 32)
N = 1 << 17


def run_structured(k: int, rng) -> np.ndarray:
    run = N // k
    keys = np.concatenate(
        [np.sort(rng.integers(0, 2**60, size=run)) for _ in range(k)]
    ).astype(np.uint64)
    recs = FMT.make(keys)
    assert verify_run_structure(recs, run)
    return recs


@pytest.mark.parametrize("k", [2, 4, 16, 64])
def test_merge_tree(benchmark, k):
    recs = run_structured(k, np.random.default_rng(k))
    benchmark.group = f"column-sort-k{k}"
    out = benchmark(merge_sorted_runs, recs, N // k)
    assert FMT.is_sorted(out)


@pytest.mark.parametrize("k", [2, 4, 16, 64])
def test_full_sort(benchmark, k):
    recs = run_structured(k, np.random.default_rng(k))
    benchmark.group = f"column-sort-k{k}"
    out = benchmark(lambda: recs[np.argsort(recs["key"], kind="stable")])
    assert FMT.is_sorted(out)


def test_merge_and_sort_agree(show):
    rng = np.random.default_rng(0)
    for k in (2, 16):
        recs = run_structured(k, rng)
        merged = merge_sorted_runs(recs, N // k)
        sorted_ = recs[np.argsort(recs["key"], kind="stable")]
        assert np.array_equal(merged, sorted_)
    show("Merge vs sort", "identical outputs (stability included) for k ∈ {2, 16}")
