"""T-bounds and T-crossover — the problem-size bound tables.

Regenerates the §1/§5 quantitative claims: the four bounds across
memory sizes, the >2× improvement at M/P ≥ 2^12, the terabyte worked
example, and the M < 32·P^10 crossover.
"""

from repro.bounds.analysis import (
    crossover_memory,
    improvement_factor,
    m_beats_subblock,
    terabyte_config,
)
from repro.experiments.tables import (
    bounds_table,
    coverage_table,
    crossover_table,
    render_table,
)


def test_t_bounds(benchmark, show):
    rows = benchmark(bounds_table)
    assert rows[0]["subblock/threaded"] > 2  # §1 at M/P = 2^12
    for row in rows:
        assert row["threaded (1)"] < row["subblock (2)"]
        assert row["M-columnsort (3)"] < row["hybrid (§6)"]
    show("T-bounds (P=16)", render_table(rows))


def test_t_crossover(benchmark, show):
    rows = benchmark(crossover_table)
    by_p = {row["P"]: row for row in rows}
    assert by_p[8]["crossover M (32·P^10)"] == 2**35  # §5 worked example
    for row in rows:
        assert row["M below ⇒ m wins"] and row["M above ⇒ subblock wins"]
    show("T-crossover", render_table(rows))


def test_terabyte_example(benchmark, show):
    cfg = benchmark(terabyte_config)
    assert cfg.max_bytes == 2**40  # §1: one terabyte
    show(
        "Terabyte example (§1)",
        f"P={cfg.p}, M/P=2^19 records, {cfg.record_size}-byte records → "
        f"max {cfg.max_records:,} records = {cfg.max_bytes / 2**40:.0f} TB",
    )


def test_coverage(benchmark, show):
    rows = benchmark(coverage_table)
    by_key = {(r["buffer"], r["algorithm"]): r["eligible sizes (GB)"] for r in rows}
    # Figure 2's disjoint subblock lines and full M coverage.
    assert by_key[("2^24", "subblock")] == "1, 4, 16"
    assert by_key[("2^25", "subblock")] == "2, 8, 32"
    assert "32" in by_key[("2^24", "m")]
    show("Eligible problem sizes", render_table(rows))


def test_improvement_factor_sweep(benchmark, show):
    def sweep():
        return {a: improvement_factor(1 << a) for a in range(10, 31, 4)}

    factors = benchmark(sweep)
    values = list(factors.values())
    assert values == sorted(values)  # grows monotonically (∝ (M/P)^(1/6))
    show(
        "Subblock/threaded improvement",
        "\n".join(f"M/P=2^{a}: ×{f:.2f}" for a, f in factors.items()),
    )


def test_crossover_brute_force_agreement(benchmark):
    """The closed form 32·P^10 against direct bound comparison across a
    wide sweep (the integer bounds may flip within ±1 bit of the exact
    threshold)."""

    def check():
        mismatches = 0
        for p in (2, 4, 8, 16):
            threshold = crossover_memory(p)
            for shift in (-8, -4, -2, 2, 4, 8):
                m = threshold << shift if shift > 0 else threshold >> -shift
                if m % p:
                    continue
                expect = m < threshold
                if m_beats_subblock(m, p) != expect:
                    mismatches += 1
        return mismatches

    assert benchmark(check) == 0
