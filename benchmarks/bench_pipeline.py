"""Pipelined-pass benchmarks: synchronous vs overlapped I/O.

Times the same multi-pass workload with the pass pipeline disabled
(depth 0) and enabled (the harness's ``--pipeline-depth``, default 2),
prints the per-pass measured stage breakdown for both, and asserts the
overlapped run is no slower than the synchronous one beyond noise.
On hardware with real disk latency the read-wait/write-wait columns
are where the depth shows up; on a page-cached laptop the two are
expected to be close.
"""

import time

import pytest

from repro.cluster.config import ClusterConfig
from repro.experiments.breakdown import measured_breakdown_table
from repro.oocs.api import sort_out_of_core
from repro.records.format import RecordFormat
from repro.records.generators import generate
from repro.simulate.predict import measured_overlap

FMT = RecordFormat("u8", 64)

# (P, buffer_records, N): threaded = 3 passes, subblock = 4 passes.
WORKLOADS = {
    "threaded": (4, 2048, 2048 * 32),
    "subblock": (4, 2048, 2048 * 64),
}

#: Allowed slowdown of the pipelined run relative to synchronous —
#: covers thread start/stop overhead plus timer noise at laptop scale.
NOISE_FACTOR = 1.25


def _timed_run(algorithm, recs, cluster, buf, depth, workdir):
    t0 = time.perf_counter()
    result = sort_out_of_core(
        algorithm, recs, cluster, FMT, buffer_records=buf,
        workdir=workdir, verify=False, pipeline_depth=depth,
    )
    return time.perf_counter() - t0, result


def _breakdown_lines(result):
    lines = []
    for row in measured_breakdown_table(result):
        stages = "  ".join(
            f"{cat}={row[f'{cat} (s)'] * 1000:6.1f}ms"
            for cat in ("read_wait", "compute", "comm", "incore", "write_wait")
        )
        lines.append(f"{row['pass']:<28} depth={row['depth']}  {stages}")
    return lines


@pytest.mark.parametrize("algorithm", sorted(WORKLOADS))
def test_pipeline_depth_not_slower(
    benchmark, algorithm, pipeline_depth, tmp_path_factory, show
):
    """Acceptance: at depth ≥ 2 a multi-pass workload is no slower than
    the synchronous pass loop, and the per-stage breakdown is recorded
    for both runs."""
    if pipeline_depth < 1:
        pytest.skip("--pipeline-depth 0 benchmarks nothing against itself")
    p, buf, n = WORKLOADS[algorithm]
    cluster = ClusterConfig(p=p, mem_per_proc=buf)
    recs = generate("uniform", FMT, n, seed=3)
    counter = iter(range(10**6))

    def compare():
        best = {0: float("inf"), pipeline_depth: float("inf")}
        results = {}
        for _ in range(3):  # best-of-3 per depth to tame scheduler noise
            for depth in (0, pipeline_depth):
                workdir = tmp_path_factory.mktemp(
                    f"pipe-{algorithm}-{next(counter)}"
                )
                elapsed, result = _timed_run(
                    algorithm, recs, cluster, buf, depth, workdir
                )
                if elapsed < best[depth]:
                    best[depth] = elapsed
                    results[depth] = result
        return best, results

    best, results = benchmark.pedantic(compare, rounds=1, iterations=1)
    sync_t, pipe_t = best[0], best[pipeline_depth]

    body = [f"synchronous: {sync_t * 1000:7.1f} ms"]
    body.extend(_breakdown_lines(results[0]))
    body.append(f"depth {pipeline_depth}: {pipe_t * 1000:7.1f} ms")
    body.extend(_breakdown_lines(results[pipeline_depth]))
    for depth, result in sorted(results.items()):
        overlap = measured_overlap(result.trace)
        body.append(
            f"depth {depth}: io_wait_fraction = "
            f"{overlap['io_wait_fraction']:.2%}"
        )
    show(f"Pipelined vs synchronous passes — {algorithm}", "\n".join(body))

    assert results[0].output is not None
    assert results[pipeline_depth].stage_wall(), "pipelined run lost its trace"
    assert pipe_t <= sync_t * NOISE_FACTOR, (
        f"pipeline depth {pipeline_depth} slower than synchronous: "
        f"{pipe_t:.3f}s vs {sync_t:.3f}s"
    )
