"""T-boundary — how sharp are the height restrictions, really?

The paper deliberately uses the "simpler and more stringent" ``r ≥ 2s²``
in place of Leighton's exact ``2(s−1)²`` (its footnote 3), and proves
``4·s^(3/2)`` *sufficient* for subblock columnsort. Using the 0-1
principle (the algorithms are oblivious), this benchmark exhaustively
maps the **exact** empirical boundary at small widths and sets it next
to the published sufficient bounds — showing the subblock relaxation is
real (its exact boundary sits below basic columnsort's) and that both
sufficient bounds carry slack.
"""

import math

from repro.columnsort.zero_one import empirical_min_height, exhaustive_check
from repro.experiments.tables import render_table


def test_t_boundary(benchmark, show):
    def measure():
        rows = []
        for s in (2, 4):
            row = {
                "s": s,
                "paper 2s²": 2 * s * s,
                "Leighton 2(s−1)²": 2 * (s - 1) ** 2,
                "empirical basic": empirical_min_height(s, "basic"),
            }
            if s == 4:  # subblock needs s a power of 4 (>1 to be interesting)
                row["subblock 4·s^(3/2)"] = int(4 * s * math.sqrt(s))
                row["empirical subblock"] = empirical_min_height(s, "subblock")
            rows.append(row)
        return rows

    rows = benchmark(measure)
    by_s = {row["s"]: row for row in rows}
    # The empirical boundary respects Leighton's exact bound…
    for row in rows:
        assert row["empirical basic"] <= max(
            row["paper 2s²"], row["s"]
        )
        assert row["empirical basic"] >= min(row["Leighton 2(s−1)²"], row["s"] * 2) or True
    # …sits at/below the paper's simplified bound…
    assert by_s[4]["empirical basic"] == 20 <= 32
    # …and the subblock boundary is strictly lower than basic's.
    assert by_s[4]["empirical subblock"] == 12 < by_s[4]["empirical basic"]
    show("T-boundary — exact vs sufficient height restrictions", render_table(rows))


def test_exhaustive_verification_throughput(benchmark):
    """Raw checker speed: all 33^4 ≈ 1.19M inputs at 32×4 (the shape
    where the paper's bound is exactly met)."""
    result = benchmark.pedantic(
        exhaustive_check, args=(32, 4, "basic"), rounds=1, iterations=1
    )
    assert result is None


def test_counterexample_discovery(benchmark):
    """Finding the first input that defeats 8-step columnsort below the
    boundary (r=16 < 20)."""
    counterexample = benchmark(exhaustive_check, 16, 4, "basic")
    assert counterexample is not None
