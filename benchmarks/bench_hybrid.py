"""Ablation — the §6 hybrid algorithm versus its parents.

The paper proposes (future work) combining subblock columnsort's
relaxed height restriction with M-columnsort's height interpretation.
This benchmark quantifies the trade: the hybrid buys the largest
problem-size bound of all variants at the cost of a fourth pass.
"""

from repro.bounds.restrictions import restriction_table
from repro.experiments.tables import render_table
from repro.simulate.hardware import BEOWULF_2003
from repro.simulate.predict import predict_seconds_per_gb

GB = 2**30
REC = 64


def test_hybrid_bound_dominates(benchmark, show):
    def table():
        return [
            {"M/P": f"2^{a}", **restriction_table(1 << a, 16)}
            for a in range(14, 25, 2)
        ]

    rows = benchmark(table)
    for row in rows:
        assert row["hybrid"] > row["m"] > row["threaded"]
        assert row["hybrid"] > row["subblock"]
    show("Bounds incl. hybrid (P=16)", render_table(rows))


def test_hybrid_time_vs_parents(benchmark, show):
    """Time comparison at a size all three can run: the hybrid pays
    ~4/3 of M-columnsort (the extra pass), like subblock vs threaded."""

    def measure():
        # Buffer 2^24 puts s at a power of 4 for the hybrid at this size.
        n, p, buf = 16 * GB // REC, 16, 2**24
        return {
            "m": predict_seconds_per_gb("m", n, p, buf, REC, BEOWULF_2003),
            "hybrid": predict_seconds_per_gb("hybrid", n, p, buf, REC,
                                             BEOWULF_2003),
        }

    values = benchmark(measure)
    ratio = values["hybrid"] / values["m"]
    assert 1.2 < ratio < 1.45
    show(
        "Hybrid vs M-columnsort (16 GB, P=16, 2^25)",
        f"m={values['m']:.0f}  hybrid={values['hybrid']:.0f}  "
        f"ratio={ratio:.2f} (extra pass ≈ 4/3)",
    )


def test_hybrid_reaches_sizes_m_cannot(benchmark, show):
    """At fixed memory, enumerate the largest problem each algorithm
    can actually configure — the hybrid goes furthest."""
    from repro.bounds.analysis import max_n_for_buffer

    def measure():
        buf, p = 2**19, 16
        return {
            alg: max_n_for_buffer(alg, buf, p)
            for alg in ("threaded", "subblock", "m", "hybrid")
        }

    maxima = benchmark(measure)
    assert maxima["hybrid"] >= maxima["m"] >= maxima["threaded"]
    assert maxima["hybrid"] > maxima["subblock"]
    show(
        "Largest runnable N at buffer 2^19 records, P=16",
        "\n".join(
            f"{alg:9s} {n:,} records ({n * REC / 2**40:.2f} TB at 64 B)"
            for alg, n in maxima.items()
        ),
    )
