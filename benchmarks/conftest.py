"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's results (Figure 2 or an
in-text table — see DESIGN.md's experiment index), times the
regeneration with pytest-benchmark, asserts the paper's qualitative
claims about it, and prints the regenerated rows so a run of
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section end to end.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--pipeline-depth",
        type=int,
        default=2,
        help="read-ahead/write-behind depth used by the pipelined "
        "benchmarks (0 = synchronous)",
    )


@pytest.fixture(scope="session")
def pipeline_depth(request):
    """The --pipeline-depth harness knob (default 2)."""
    return request.config.getoption("--pipeline-depth")


@pytest.fixture(scope="session")
def show():
    """Print helper that survives captured output (-s not required for
    the data to be validated; printing is best-effort)."""

    def _show(title: str, body: str) -> None:
        print(f"\n=== {title} ===\n{body}")

    return _show
