"""Figure 2 — execution times of the three columnsort programs.

Regenerates the paper's only results figure from the calibrated
discrete-event model at full experimental scale (4-32 GB total, P ∈
{4, 8, 16}, buffers 2^24 and 2^25 bytes), checks every §5 claim, and
prints the series.
"""

from repro.experiments.figure2 import (
    figure2_claims,
    figure2_series,
    render_figure2,
)
from repro.simulate.hardware import BEOWULF_2003
from repro.simulate.predict import predict_seconds_per_gb

GB = 2**30
REC = 64


def test_figure2_regeneration(benchmark, show):
    series = benchmark(figure2_series)
    claims = figure2_claims(series)
    assert all(claims.values()), {k: v for k, v in claims.items() if not v}
    show("Figure 2", render_figure2(series))


def test_figure2_single_point(benchmark):
    """One Figure 2 point (32 GB on 16 processors, M-columnsort at
    2^25) — the per-point cost of the DES."""
    value = benchmark(
        predict_seconds_per_gb,
        "m", 32 * GB // REC, 16, 2**25, REC, BEOWULF_2003,
    )
    assert 300 < value < 450


def test_t_passes_ratios(benchmark, show):
    """T-passes — the §5 pass-count arithmetic: subblock ≈ 4/3 ×
    threaded; threaded(2^25) ≈ 3-pass baseline; M-columnsort between
    the baselines."""

    def compute():
        # Per-buffer sizes where every algorithm is eligible (subblock's
        # power-of-4 column counts make the sets differ — Figure 2's
        # disjoint coverage). All values are per (GB/proc), so ratios
        # compare across sizes.
        p = 4
        sizes = {2**24: 4 * GB // REC, 2**25: 8 * GB // REC}
        rows = {}
        for buf, n in sizes.items():
            b3 = predict_seconds_per_gb("baseline-io", n, p, buf, REC,
                                        BEOWULF_2003, passes=3)
            b4 = predict_seconds_per_gb("baseline-io", n, p, buf, REC,
                                        BEOWULF_2003, passes=4)
            t = predict_seconds_per_gb("threaded", n, p, buf, REC, BEOWULF_2003)
            s = predict_seconds_per_gb("subblock", n, p, buf, REC, BEOWULF_2003)
            m = predict_seconds_per_gb("m", n, p, buf, REC, BEOWULF_2003)
            rows[buf] = (b3, b4, t, s, m)
        return rows

    rows = benchmark(compute)
    lines = []
    for buf, (b3, b4, t, s, m) in rows.items():
        assert abs(s / t - 4 / 3) < 0.05
        assert t <= 1.05 * b3
        assert s <= 1.05 * b4
        # M-columnsort sits strictly above the 3-pass baseline; the gap
        # widens with P (the (P−1)/P communication factor) — at P=4 it
        # is small, at the paper's P=16 it is the dominant visual gap.
        assert 1.01 * b3 < m <= 1.01 * b4
        lines.append(
            f"buffer 2^{buf.bit_length() - 1}: baseline3={b3:.0f} "
            f"threaded={t:.0f} m={m:.0f} subblock={s:.0f} baseline4={b4:.0f}"
        )
    show("T-passes (4 GB, P=4)", "\n".join(lines))
