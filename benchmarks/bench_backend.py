"""Transport backends head-to-head: thread vs process wall clock.

Runs the same workloads at 4 ranks on both transport backends and
writes the measured walls to ``BENCH_backend.json`` (the CI artifact):

* **GIL-bound SPMD rounds** (the gate): each rank alternates
  pure-Python compute — which holds the GIL, so the thread backend
  serializes it — with a packed ``alltoallv``. This is the regime the
  process backend exists for: on a multi-core host the rank processes
  compute concurrently and the process backend must be no slower than
  the thread backend beyond noise (``NOISE_FACTOR``, shared with
  ``bench_pipeline``).
* **End-to-end sort** (reported, not gated): the full out-of-core sort
  is NumPy-bound, and NumPy's sort/copy kernels release the GIL — the
  thread backend already runs them in parallel, while the process
  backend pays fork + shared-memory copy-out on top. The bench records
  both walls and the byte-identical-output check instead of pretending
  a process-backend win on a workload that cannot provide one.
* **Arena steady state** (gated): a dedicated process-backend run of
  many identical collectives meters the shared-memory arena. After a
  warm-up allowance (a few slabs per rank) every ``alloc_packed`` must
  be a freelist pop: zero steady-state segment creates, hit rate
  ≥ ``ARENA_MIN_HIT_RATE``. A failure here means the recycling
  protocol regressed and every collective is back to paying
  ``shm_open``/``mmap``/``unlink``.

On a single-CPU host no backend can win by parallelism, so the strict
gate is meaningless there; the bench then only enforces a sanity cap
on the process backend's IPC overhead (``SINGLE_CPU_OVERHEAD_CAP``) so
a serialization regression still fails CI. ``cpu_count`` lands in the
artifact so a reader can tell which gate applied.

Usage::

    PYTHONPATH=src python benchmarks/bench_backend.py --quick
    PYTHONPATH=src python benchmarks/bench_backend.py  # heavier shapes
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.spmd import run_spmd
from repro.membuf import copy_delta, copy_stats, get_pool
from repro.oocs.api import sort_out_of_core
from repro.records.format import RecordFormat
from repro.records.generators import generate

RANKS = 4

#: Allowed slowdown beyond noise — same budget as ``bench_pipeline``.
NOISE_FACTOR = 1.25

#: Single-CPU fallback: the process backend's IPC overhead on a host
#: where parallelism cannot pay for it. Measured ≈1.1–1.5x; 2x means
#: something structural broke (e.g. ranks no longer overlap at all).
SINGLE_CPU_OVERHEAD_CAP = 2.0

#: Slabs per rank the arena may create before steady state: one per
#: size class the workload touches, plus slack for acks still in
#: flight when a class comes around again (acks are drained at the
#: *next* alloc, so early rounds outrun them — measured ≈3–3.5 per
#: rank on a single-CPU host; the count plateaus, it does not grow).
ARENA_WARMUP_SLABS_PER_RANK = 4

#: Steady-state floor for slab reuse on the arena metering run.
ARENA_MIN_HIT_RATE = 0.90


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _gil_bound_rank(comm, rounds: int, work: int):
    """Pure-Python compute (GIL-holding) alternating with alltoallv."""
    payload = np.arange(1024, dtype=np.uint64)
    total = 0
    for _ in range(rounds):
        acc = 0
        for i in range(work):
            acc = (acc * 1103515245 + 12345 + i) & 0xFFFFFFFF
        total ^= acc
        got = comm.alltoallv([payload.copy() for _ in range(comm.size)])
        total ^= int(got[comm.rank][0])
    return total


def time_gil_bound(backend: str, rounds: int, work: int,
                   repeats: int) -> tuple[float, list]:
    walls = []
    returns = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = run_spmd(RANKS, _gil_bound_rank, rounds, work, backend=backend)
        walls.append(time.perf_counter() - t0)
        returns = res.returns
    return min(walls), returns


def time_sort(backend: str, n: int, buf: int, repeats: int) -> tuple[float, bytes]:
    fmt = RecordFormat("u8", 64)
    cluster = ClusterConfig(p=RANKS, mem_per_proc=2**17)
    records = generate("uniform", fmt, n, seed=7)
    walls = []
    output = b""
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = sort_out_of_core(
            "threaded", records, cluster, fmt,
            buffer_records=buf, pipeline_depth=2, backend=backend,
        )
        walls.append(time.perf_counter() - t0)
        output = result.output.read_global(0, n).tobytes()
        result.output.delete()
    return min(walls), output


def _arena_rank(comm, rounds: int):
    """Many identical packed collectives — the steady-state regime the
    arena's free lists exist for."""
    payload = np.arange(1024, dtype=np.uint64)
    for _ in range(rounds):
        comm.alltoallv([payload for _ in range(comm.size)])
    return True


def measure_arena(rounds: int) -> dict:
    """A dedicated process-backend run, metered through the global
    CopyStats delta (rank deltas are merged home by the transport)."""
    before = copy_stats().snapshot()
    run_spmd(RANKS, _arena_rank, rounds, backend="process")
    delta = copy_delta(before, copy_stats().snapshot())
    leases = delta["arena_hits"] + delta["arena_misses"]
    warmup = ARENA_WARMUP_SLABS_PER_RANK * RANKS
    return {
        "rounds": rounds,
        "arena_hits": delta["arena_hits"],
        "arena_misses": delta["arena_misses"],
        "attach_count": delta["attach_count"],
        "bytes_landed_zero_extra_copy": delta["bytes_landed_zero_extra_copy"],
        "hit_rate": delta["arena_hits"] / leases if leases else 0.0,
        "warmup_allowance": warmup,
        "steady_state_creates": max(0, delta["arena_misses"] - warmup),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller shapes (the CI gate)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per backend; best-of-N tames noise")
    parser.add_argument("--json", default="BENCH_backend.json",
                        help="summary artifact path")
    args = parser.parse_args(argv)

    rounds, work = (4, 300_000) if args.quick else (6, 1_000_000)
    n, buf = (65536, 4096) if args.quick else (262144, 8192)
    cpus = _cpus()
    multi_core = cpus >= 2
    failures: list[str] = []

    walls = {}
    rank_returns = {}
    for backend in ("thread", "process"):
        walls[backend], rank_returns[backend] = time_gil_bound(
            backend, rounds, work, args.repeats
        )
    if rank_returns["thread"] != rank_returns["process"]:
        failures.append("GIL-bound rank returns differ between backends")
    ratio = walls["process"] / walls["thread"]
    bound = NOISE_FACTOR if multi_core else SINGLE_CPU_OVERHEAD_CAP
    gate = "noise" if multi_core else "single-cpu overhead cap"
    print(
        f"gil-bound  ranks={RANKS} rounds={rounds} work={work}: "
        f"thread {walls['thread'] * 1000:7.1f} ms  "
        f"process {walls['process'] * 1000:7.1f} ms  "
        f"ratio {ratio:4.2f}x (gate ≤ {bound:.2f}, {gate}, {cpus} cpu)"
    )
    if ratio > bound:
        failures.append(
            f"process backend {ratio:.2f}x slower than thread on the "
            f"GIL-bound workload (allowed {bound:.2f}x with {cpus} cpu)"
        )

    sort_walls = {}
    outputs = {}
    for backend in ("thread", "process"):
        sort_walls[backend], outputs[backend] = time_sort(
            backend, n, buf, args.repeats
        )
    sort_ratio = sort_walls["process"] / sort_walls["thread"]
    print(
        f"sort       ranks={RANKS} n={n} buf={buf}: "
        f"thread {sort_walls['thread'] * 1000:7.1f} ms  "
        f"process {sort_walls['process'] * 1000:7.1f} ms  "
        f"ratio {sort_ratio:4.2f}x (reported; NumPy releases the GIL)"
    )
    if outputs["thread"] != outputs["process"]:
        failures.append("sorted output differs between backends")

    arena = measure_arena(rounds=80 if args.quick else 160)
    print(
        f"arena      ranks={RANKS} rounds={arena['rounds']}: "
        f"{arena['arena_hits']} hits / {arena['arena_misses']} creates  "
        f"hit rate {100 * arena['hit_rate']:5.1f}% "
        f"(gate ≥ {100 * ARENA_MIN_HIT_RATE:.0f}%)  "
        f"steady-state creates {arena['steady_state_creates']} (gate = 0)"
    )
    if arena["steady_state_creates"] > 0:
        failures.append(
            f"{arena['steady_state_creates']} segment create(s) past the "
            f"warm-up allowance ({arena['warmup_allowance']}) — arena slabs "
            f"are not recycling"
        )
    if arena["hit_rate"] < ARENA_MIN_HIT_RATE:
        failures.append(
            f"arena hit rate {arena['hit_rate']:.2f} below the "
            f"{ARENA_MIN_HIT_RATE:.2f} floor"
        )

    leaked = get_pool().outstanding()
    if leaked:
        failures.append(f"{leaked} pool lease(s) leaked")

    summary = {
        "ranks": RANKS,
        "cpu_count": cpus,
        "gate": gate,
        "gate_bound": bound,
        "gil_bound": {
            "rounds": rounds,
            "work": work,
            "thread_s": walls["thread"],
            "process_s": walls["process"],
            "process_over_thread": ratio,
        },
        "sort": {
            "n": n,
            "buffer_records": buf,
            "thread_s": sort_walls["thread"],
            "process_s": sort_walls["process"],
            "process_over_thread": sort_ratio,
            "outputs_byte_identical": outputs["thread"] == outputs["process"],
        },
        "arena": arena,
        "failures": failures,
    }
    Path(args.json).write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(f"summary written to {args.json}")
    if failures:
        for line in failures:
            print(f"  FAIL: {line}")
        return 1
    print("backend comparison passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
