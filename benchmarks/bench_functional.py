"""Functional end-to-end benchmarks: the real algorithms on the
simulated cluster, at laptop scale.

These time the actual implementations (real disk files, real record
movement, real thread-parallel rank programs), complementing the DES
benchmarks that reproduce 2003-scale wall times. Useful for tracking
performance regressions of this library itself.
"""

import pytest

from repro.cluster.config import ClusterConfig
from repro.oocs.api import sort_out_of_core
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 64)

CONFIGS = {
    # algorithm: (P, buffer_records, N) — each at its height restriction
    "threaded": (4, 2048, 2048 * 32),  # r ≥ 2s²: 2048 ≥ 2·32²
    "subblock": (4, 2048, 2048 * 64),  # r ≥ 4·s^(3/2): 2048 = 4·64^1.5
    "m": (4, 1024, 4 * 1024 * 32),     # M=4096 ≥ 2·32²
    "hybrid": (4, 1024, 4 * 1024 * 16),
}


@pytest.mark.parametrize("algorithm", sorted(CONFIGS))
def test_functional_sort(benchmark, algorithm, tmp_path_factory):
    p, buf, n = CONFIGS[algorithm]
    cluster = ClusterConfig(p=p, mem_per_proc=buf)
    recs = generate("uniform", FMT, n, seed=1)
    benchmark.group = "functional-oocs"
    benchmark.extra_info["records"] = n
    benchmark.extra_info["megabytes"] = n * FMT.record_size / 2**20

    counter = iter(range(10**6))

    def run():
        workdir = tmp_path_factory.mktemp(f"{algorithm}-{next(counter)}")
        return sort_out_of_core(
            algorithm, recs, cluster, FMT, buffer_records=buf,
            workdir=workdir, verify=False, collect_trace=False,
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    # Verify once outside the timed region.
    from repro.oocs.verify import verify_output

    verify_output(result.output, recs)


def test_functional_throughput_scales_with_p(benchmark, show):
    """More (simulated) processors means more real threads sorting in
    parallel: P=4 should not be slower than P=1 by more than the
    coordination overhead."""
    import time

    n, buf = 2048 * 16, 2048

    def measure():
        times = {}
        for p in (1, 2, 4):
            cluster = ClusterConfig(p=p, mem_per_proc=buf)
            recs = generate("uniform", FMT, n, seed=2)
            t0 = time.perf_counter()
            sort_out_of_core(
                "threaded", recs, cluster, FMT, buffer_records=buf,
                verify=False, collect_trace=False,
            )
            times[p] = time.perf_counter() - t0
        return times

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    show(
        "Functional wall time vs P (threaded, 2 MiB of records)",
        "\n".join(f"P={p}: {t * 1000:7.1f} ms" for p, t in times.items()),
    )
