"""Crash-consistency sweep: simulated power loss against every
durability plane, with the real recovery code judging each state.

For each scenario the harness traces a real workload (journal appends,
boot-time compaction, checkpoint save/prune, sidecar and parity writes,
a daemon restart, a full checkpointed sort) through the crashsim
interposer, enumerates every legal post-crash disk state the POSIX
model admits — dropped unfsynced writes, reordered namespace ops
between fsync barriers, torn sector-prefix writes — materializes each
one to a scratch root, and runs the *actual* recovery paths over it.

The gate: **zero acknowledged events lost or duplicated, zero torn or
stale manifests accepted, recovered sort output byte-identical** —
across at least 200 enumerated states (the full sweep runs thousands).

The run summary is written to ``BENCH_crashsim.json`` (the CI artifact
the crashsim-smoke job archives).

Usage::

    PYTHONPATH=src python benchmarks/bench_crashsim.py --quick
    PYTHONPATH=src python benchmarks/bench_crashsim.py  # full sweep
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.crashsim import run_sweep
from repro.crashsim.harness import SCENARIOS

#: The acceptance floor — the sweep must cover at least this many
#: enumerated crash states even in --quick mode.
MIN_STATES = 200


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="sampled crash points (the CI gate)")
    parser.add_argument("--scenario", action="append", default=None,
                        choices=sorted(SCENARIOS),
                        help="run only this scenario (repeatable)")
    parser.add_argument("--json", default="BENCH_crashsim.json",
                        help="summary artifact path")
    args = parser.parse_args(argv)

    started = time.monotonic()
    with tempfile.TemporaryDirectory(prefix="crashsim-", dir="/tmp") as tmp:
        summary = run_sweep(
            Path(tmp), scenarios=args.scenario, quick=args.quick
        )
    summary["wall_s"] = round(time.monotonic() - started, 3)

    failures: list[str] = []
    for name, scenario in summary["scenarios"].items():
        mark = "ok" if not scenario["violations"] else "FAILED"
        print(f"  {name}: {scenario['states']} states {mark}")
        for violation in scenario["violations"]:
            failures.append(
                f"{name}: {violation['state']}: {violation['message']}"
            )
    if args.scenario is None and summary["states_total"] < MIN_STATES:
        failures.append(
            f"sweep covered only {summary['states_total']} states "
            f"(floor {MIN_STATES})"
        )

    summary["failures"] = failures
    Path(args.json).write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(f"\n{summary['states_total']} crash states in "
          f"{summary['wall_s']}s; summary written to {args.json}")
    if failures:
        print(f"{len(failures)} crash-consistency violation(s):")
        for line in failures:
            print(f"  FAIL: {line}")
        return 1
    print("all crash states recovered cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
