"""Service chaos harness: a K-tenant storm against the daemon with a
kill-the-daemon matrix.

The daemon runs as a real subprocess (``repro.cli serve``). Each
scenario submits K jobs across prioritized tenants, then ``kill -9``-s
the daemon at a sampled lifecycle point:

* **after-submit** — every submit acknowledged, nothing necessarily run;
* **mid-run** — at least one job is running (checkpoints in flight);
* **after-first-done** — at least one job finished;
* **during-drain** — the kill lands while a drain is in progress.

After each kill the daemon restarts over the same root and the client
resubmits all K specs with their original idempotency keys. The
contract checked every time: **zero lost jobs, zero duplicated jobs**
(every resubmit dedupes onto its journaled job; the job table holds
exactly K jobs), every job reaches ``done``, and every output digest is
**byte-identical** to an uninterrupted in-process run of the same spec.
A final clean scenario (no kill) drains gracefully via SIGTERM and the
daemon must exit 0.

The run summary is written to ``BENCH_service.json`` (the CI artifact
the service-smoke job archives).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --quick
    PYTHONPATH=src python benchmarks/bench_service.py  # full matrix
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.cluster.config import ClusterConfig
from repro.oocs.api import sort_out_of_core
from repro.oocs.report import output_digest
from repro.records.format import RecordFormat
from repro.records.generators import generate
from repro.service import ServiceClient
from repro.service.journal import JobJournal
from repro.service.jobs import replay_jobs

#: Base job shape (fast, known-good for threaded: s=8, r=512 ≥ 2s²).
BASE_SPEC = {"records": 4096, "buffer": 512, "processors": 4}

#: Tenants the storm spreads jobs across (name, priority).
TENANTS = [("vip", 10), ("default", 0), ("batch", -5)]

SCENARIOS = ("after-submit", "mid-run", "after-first-done", "during-drain")


def expected_digests(seeds) -> dict[int, str]:
    """Digest of an uninterrupted run per seed — the identity every
    post-crash job output is compared against."""
    fmt = RecordFormat("u8", 64)
    cluster = ClusterConfig(p=BASE_SPEC["processors"],
                            mem_per_proc=BASE_SPEC["buffer"] * 2)
    out = {}
    for seed in seeds:
        records = generate("uniform", fmt, BASE_SPEC["records"], seed=seed)
        res = sort_out_of_core(
            "threaded", records, cluster, fmt,
            buffer_records=BASE_SPEC["buffer"], pipeline_depth=2,
        )
        out[seed] = output_digest(res)
        res.output.delete()
        tmp = getattr(getattr(res, "workspace", None), "_tmp", None)
        if tmp is not None:
            tmp.cleanup()
    return out


class Daemon:
    """One ``repro.cli serve`` subprocess over a service root."""

    def __init__(self, root: Path, workers: int = 2) -> None:
        self.root = root
        self.workers = workers
        self.socket_path = root / "service.sock"
        self.proc: subprocess.Popen | None = None

    def start(self, timeout_s: float = 30.0) -> "Daemon":
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        cmd = [sys.executable, "-m", "repro.cli", "serve",
               "--root", str(self.root), "--workers", str(self.workers)]
        for name, priority in TENANTS:
            cmd += ["--tenant", f"{name}={priority}"]
        self.proc = subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"daemon died on startup (exit {self.proc.returncode})"
                )
            try:
                probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                probe.connect(str(self.socket_path))
                probe.close()
                return self
            except OSError:
                time.sleep(0.05)
        raise RuntimeError("daemon did not come up in time")

    def kill9(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def sigterm(self, timeout_s: float = 120.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        self.proc.wait(timeout=timeout_s)
        return self.proc.returncode


def submit_storm(client: ServiceClient, k: int) -> dict[str, dict]:
    """Submit K jobs across the tenants; returns key → job info."""
    jobs: dict[str, dict] = {}
    for i in range(k):
        tenant = TENANTS[i % len(TENANTS)][0]
        key = f"storm-{i}"
        spec = {**BASE_SPEC, "seed": i}
        ack = client.submit(spec, tenant=tenant, key=key)
        jobs[key] = {"job": ack["job"], "seed": i, "tenant": tenant}
    return jobs


def wait_for(client: ServiceClient, jobs: dict, predicate,
             timeout_s: float = 120.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        states = [client.status(info["job"])["state"] for info in jobs.values()]
        if predicate(states):
            return
        time.sleep(0.05)
    raise RuntimeError(f"condition not reached; last states: {states}")


def run_scenario(scenario: str, k: int, digests: dict[int, str],
                 summary: dict) -> list[str]:
    failures: list[str] = []
    tag = f"scenario[{scenario}] K={k}"
    with tempfile.TemporaryDirectory(prefix="bench-svc-", dir="/tmp") as tmp:
        root = Path(tmp)
        daemon = Daemon(root).start()
        client = ServiceClient(daemon.socket_path, retries=10, backoff_s=0.1)
        try:
            jobs = submit_storm(client, k)

            if scenario == "mid-run":
                wait_for(client, jobs, lambda s: any(
                    state in ("running", "checkpointed") for state in s))
            elif scenario == "after-first-done":
                wait_for(client, jobs, lambda s: "done" in s)
            elif scenario == "during-drain":
                wait_for(client, jobs, lambda s: any(
                    state in ("running", "checkpointed") for state in s))
                # Fire the drain and kill the daemon in the middle of it:
                # write the request, never read the response.
                raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                raw.connect(str(daemon.socket_path))
                raw.sendall(b'{"op": "drain", "deadline_s": 60}\n')
                time.sleep(0.2)
                raw.close()

            daemon.kill9()
            summary["kills"] += 1

            daemon = Daemon(root).start()
            # Resubmit everything with the original keys: every ack was
            # journaled before it was sent, so every resubmit must land
            # on its existing job — zero lost, zero duplicated.
            for key, info in jobs.items():
                again = client.submit(
                    {**BASE_SPEC, "seed": info["seed"]},
                    tenant=info["tenant"], key=key,
                )
                if not again.get("duplicate"):
                    failures.append(
                        f"{tag}: {key} was lost across the kill "
                        f"(resubmit created {again['job']})"
                    )
                elif again["job"] != info["job"]:
                    failures.append(
                        f"{tag}: {key} resubmit hit {again['job']}, "
                        f"expected {info['job']}"
                    )

            for key, info in jobs.items():
                final = client.wait(info["job"], timeout_s=300)
                if final["state"] != "done":
                    failures.append(
                        f"{tag}: {info['job']} ended {final['state']}: "
                        f"{final.get('error')}"
                    )
                    continue
                got = final["result"]["output_digest"]
                if got != digests[info["seed"]]:
                    failures.append(
                        f"{tag}: {info['job']} digest diverged after crash "
                        f"recovery ({got[:12]}… != "
                        f"{digests[info['seed']][:12]}…)"
                    )
                summary["resumed_attempts"] += final["attempts"] - 1

            health = client.health()
            if health["jobs"] != {"done": k}:
                failures.append(
                    f"{tag}: job table is not exactly K done jobs: "
                    f"{health['jobs']}"
                )
            summary["torn_bytes_repaired"] += (
                health["recovered"]["torn_bytes_repaired"])

            code = daemon.sigterm()
            if code != 0:
                failures.append(f"{tag}: daemon exit code {code} after SIGTERM")

            # Independent audit: replay the journal offline and confirm
            # the crash left a legal, K-job, all-done history.
            journal = JobJournal(root / "journal.log")
            events, torn = journal.replay()
            journal.close()
            if torn:
                failures.append(f"{tag}: {torn} torn bytes after clean stop")
            replayed, _ = replay_jobs(events)
            if len(replayed) != k or any(
                    record.state != "done" for record in replayed.values()):
                failures.append(
                    f"{tag}: offline replay disagrees: "
                    f"{ {j: r.state for j, r in replayed.items()} }"
                )
        finally:
            client.close()
            if daemon.proc is not None and daemon.proc.poll() is None:
                daemon.proc.kill()
                daemon.proc.wait(timeout=30)
    status = "ok" if not failures else "FAILED"
    print(f"  {tag}: {status}")
    return failures


def clean_scenario(k: int, digests: dict[int, str], summary: dict) -> list[str]:
    """No chaos: the storm completes, SIGTERM drains gracefully, exit 0."""
    failures: list[str] = []
    tag = f"scenario[clean-drain] K={k}"
    with tempfile.TemporaryDirectory(prefix="bench-svc-", dir="/tmp") as tmp:
        daemon = Daemon(Path(tmp)).start()
        client = ServiceClient(daemon.socket_path, retries=10)
        try:
            jobs = submit_storm(client, k)
            for key, info in jobs.items():
                final = client.wait(info["job"], timeout_s=300)
                if final["state"] != "done":
                    failures.append(f"{tag}: {info['job']} {final['state']}")
                elif final["result"]["output_digest"] != digests[info["seed"]]:
                    failures.append(f"{tag}: {info['job']} digest diverged")
            health = client.health()
            summary["governor"] = health["governor"]
            code = daemon.sigterm()
            if code != 0:
                failures.append(f"{tag}: exit code {code} after SIGTERM")
        finally:
            client.close()
            if daemon.proc is not None and daemon.proc.poll() is None:
                daemon.proc.kill()
                daemon.proc.wait(timeout=30)
    print(f"  {tag}: {'ok' if not failures else 'FAILED'}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="K=4 and two kill points (the CI gate)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="jobs per scenario (default 4 quick / 6 full)")
    parser.add_argument("--json", default="BENCH_service.json",
                        help="summary artifact path")
    args = parser.parse_args(argv)

    k = args.jobs or (4 if args.quick else 6)
    scenarios = (
        ("mid-run", "after-first-done") if args.quick else SCENARIOS
    )
    summary: dict = {
        "jobs_per_scenario": k,
        "scenarios": list(scenarios) + ["clean-drain"],
        "kills": 0,
        "resumed_attempts": 0,
        "torn_bytes_repaired": 0,
    }
    print(f"computing {k} reference digests in-process...")
    digests = expected_digests(range(k))
    failures: list[str] = []
    for scenario in scenarios:
        failures.extend(run_scenario(scenario, k, digests, summary))
    failures.extend(clean_scenario(k, digests, summary))

    summary["failures"] = failures
    Path(args.json).write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(f"\nsummary written to {args.json}")
    if failures:
        print(f"{len(failures)} service failure(s):")
        for line in failures:
            print(f"  FAIL: {line}")
        return 1
    print("all service chaos cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
