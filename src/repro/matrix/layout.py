"""Conversions between flat record arrays and ``r × s`` matrices, and
per-column sorting that works uniformly for plain key arrays and
structured record arrays.

Columnsort's contract is stated over the column-major order of the
matrix: the input is the flat sequence ``column 0, column 1, …`` and the
output is sorted in that same order. The out-of-core programs never
materialize the full matrix, but the in-core algorithms and the test
oracles do, via these helpers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError


def to_columns(flat: np.ndarray, r: int, s: int) -> np.ndarray:
    """View a flat column-major array of ``r·s`` elements as an ``(r, s)``
    matrix (copies, since NumPy arrays here are C-ordered)."""
    if flat.ndim != 1 or len(flat) != r * s:
        raise DimensionError(
            f"expected a flat array of r*s={r * s} elements, got shape {flat.shape}"
        )
    return flat.reshape(s, r).T.copy()


def from_columns(matrix: np.ndarray) -> np.ndarray:
    """Flatten an ``(r, s)`` matrix to column-major order — the inverse of
    :func:`to_columns`."""
    if matrix.ndim != 2:
        raise DimensionError(f"expected a 2-D matrix, got shape {matrix.shape}")
    return matrix.flatten(order="F")


def _is_record_array(a: np.ndarray) -> bool:
    return a.dtype.names is not None and "key" in a.dtype.names


def sort_values(a: np.ndarray) -> np.ndarray:
    """Stably sort a 1-D array — by ``key`` field for record arrays, by
    value otherwise."""
    if _is_record_array(a):
        return a[np.argsort(a["key"], kind="stable")]
    return np.sort(a, kind="stable")


def sort_columns(matrix: np.ndarray) -> np.ndarray:
    """Stably sort every column of an ``(r, s)`` matrix (columnsort steps
    1, 3, 3.2, 5, and 7).

    For structured record arrays sorting is by the ``key`` field only:
    stability among equal keys is what keeps the ±∞ padding of steps 6-8
    outside the retained output (see :mod:`repro.records.keys`).
    """
    if matrix.ndim != 2:
        raise DimensionError(f"expected a 2-D matrix, got shape {matrix.shape}")
    if _is_record_array(matrix):
        order = np.argsort(matrix["key"], axis=0, kind="stable")
        return np.take_along_axis(matrix, order, axis=0)
    return np.sort(matrix, axis=0, kind="stable")


def is_sorted_columnwise(matrix: np.ndarray) -> bool:
    """Whether every column of the matrix is in nondecreasing order."""
    keys = matrix["key"] if _is_record_array(matrix) else matrix
    if keys.shape[0] < 2:
        return True
    return bool(np.all(keys[:-1, :] <= keys[1:, :]))


def is_sorted_column_major(matrix: np.ndarray) -> bool:
    """Whether the matrix is fully sorted in column-major order — the
    postcondition of columnsort."""
    keys = matrix["key"] if _is_record_array(matrix) else matrix
    flat = keys.flatten(order="F")
    if len(flat) < 2:
        return True
    return bool(np.all(flat[:-1] <= flat[1:]))
