"""The even-step permutations of columnsort and the subblock permutation.

Conventions
-----------
Matrices are NumPy arrays of shape ``(r, s)``; element ``(i, j)`` is row
``i`` of column ``j``; the column-major flat position of ``(i, j)`` is
``j·r + i`` (columnsort's final output is sorted in this order).

Every permutation is provided in two forms:

* a whole-matrix operation (``step2``, ``step4``, ``subblock``, …) that
  returns a new array — implemented as reshape/transpose compositions so
  NumPy moves the data in single vectorized passes;
* an index map (``step2_target``, …) taking vectorized ``(i, j)`` and
  returning ``(i', j')`` — used by the out-of-core communicate stages to
  route records and by the tests to cross-check the matrix operations.

All shape parameters are validated by the callers (see
:mod:`repro.columnsort.validation`); these functions assume ``s | r``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError
from repro.matrix.bits import extract_bits, ilog2, sqrt_pow4


def _check_divides(r: int, s: int) -> None:
    if s <= 0 or r <= 0 or r % s:
        raise DimensionError(f"require s | r with positive dimensions, got r={r}, s={s}")


# ---------------------------------------------------------------------------
# Step 2: transpose and reshape ("deal" each column across all columns)
# ---------------------------------------------------------------------------

def step2(matrix: np.ndarray) -> np.ndarray:
    """Columnsort step 2: transpose the ``r × s`` matrix to ``s × r`` and
    reshape back to ``r × s``.

    Column ``j`` lands in the band of rows ``[j·r/s, (j+1)·r/s)`` spread
    across all ``s`` columns.
    """
    r, s = matrix.shape
    _check_divides(r, s)
    return np.ascontiguousarray(matrix.T).reshape(r, s)


def step2_target(
    i: np.ndarray | int, j: np.ndarray | int, r: int, s: int
) -> tuple[np.ndarray | int, np.ndarray | int]:
    """Index map of step 2: ``(i, j) → ((j·r + i) div s, (j·r + i) mod s)``.

    Since ``s | r`` the target column reduces to ``i mod s`` — which is why
    each processor sends exactly ``r/P`` records to every processor during
    the pass-1 communicate stage (paper §2).
    """
    _check_divides(r, s)
    k = j * r + i
    return k // s, k % s


# ---------------------------------------------------------------------------
# Step 4: reshape and transpose (inverse of step 2)
# ---------------------------------------------------------------------------

def step4(matrix: np.ndarray) -> np.ndarray:
    """Columnsort step 4: reshape the ``r × s`` matrix to ``s × r`` and
    transpose back — exactly the inverse permutation of step 2."""
    r, s = matrix.shape
    _check_divides(r, s)
    return np.ascontiguousarray(matrix.reshape(s, r).T)


def step4_target(
    i: np.ndarray | int, j: np.ndarray | int, r: int, s: int
) -> tuple[np.ndarray | int, np.ndarray | int]:
    """Index map of step 4: ``(i, j) → ((i·s + j) mod r, (i·s + j) div r)``."""
    _check_divides(r, s)
    k = i * s + j
    return k % r, k // r


# ---------------------------------------------------------------------------
# Steps 6 and 8: shift down / up by r/2
# ---------------------------------------------------------------------------

def shift_down(matrix: np.ndarray, pad_low, pad_high) -> np.ndarray:
    """Columnsort step 6: shift every column down by ``r/2`` positions,
    wrapping each column's bottom half into the top half of the next
    column. The result has ``s + 1`` columns: the first's top half is
    ``pad_low`` (−∞ keys) and the last's bottom half is ``pad_high``
    (+∞ keys).

    ``pad_low``/``pad_high`` must each hold ``r/2`` elements of the
    matrix's dtype.
    """
    r, s = matrix.shape
    if r % 2:
        raise DimensionError(f"r must be even to shift by r/2, got r={r}")
    half = r // 2
    if len(pad_low) != half or len(pad_high) != half:
        raise DimensionError(
            f"padding must hold r/2={half} elements, got {len(pad_low)}/{len(pad_high)}"
        )
    flat = np.concatenate(
        [np.asarray(pad_low), matrix.flatten(order="F"), np.asarray(pad_high)]
    )
    return flat.reshape(s + 1, r).T.copy()


def shift_down_target(
    i: np.ndarray | int, j: np.ndarray | int, r: int, s: int
) -> tuple[np.ndarray | int, np.ndarray | int]:
    """Index map of step 6 into the ``r × (s+1)`` shifted matrix:
    the column-major position advances by ``r/2``."""
    if r % 2:
        raise DimensionError(f"r must be even to shift by r/2, got r={r}")
    k = j * r + i + r // 2
    return k % r, k // r


def shift_up(matrix: np.ndarray) -> np.ndarray:
    """Columnsort step 8: the inverse of step 6 — drop the first and last
    ``r/2`` elements (the padding) of the ``r × (s+1)`` matrix in
    column-major order and reform the ``r × s`` matrix."""
    r, s1 = matrix.shape
    if r % 2:
        raise DimensionError(f"r must be even to shift by r/2, got r={r}")
    half = r // 2
    flat = matrix.flatten(order="F")[half:-half]
    return flat.reshape(s1 - 1, r).T.copy()


# ---------------------------------------------------------------------------
# Step 3.1: the subblock permutation (paper §3, Figure 1)
# ---------------------------------------------------------------------------

def subblock(matrix: np.ndarray) -> np.ndarray:
    """The subblock permutation: spread every aligned ``√s × √s`` subblock
    across all ``s`` columns (the *subblock property*), while turning each
    source column into sorted runs of length ``r/√s`` in its targets.

    Writing ``t = √s``, ``i = w·t + x`` and ``j = y·t + z``, the map is
    ``(w, x, y, z) → (i', j')`` with ``i' = y·(r/t) + w`` and
    ``j' = x·t + z``. As a whole-matrix operation this is a single 4-D
    axis transpose.
    """
    r, s = matrix.shape
    _check_divides(r, s)
    t = sqrt_pow4(s)
    if r % t:
        raise DimensionError(f"require √s | r, got r={r}, √s={t}")
    blocks = matrix.reshape(r // t, t, t, t)  # axes (w, x, y, z)
    return np.ascontiguousarray(blocks.transpose(2, 0, 1, 3)).reshape(r, s)


def subblock_target(
    i: np.ndarray | int, j: np.ndarray | int, r: int, s: int
) -> tuple[np.ndarray | int, np.ndarray | int]:
    """Index map of the subblock permutation, in the paper's arithmetic
    form: ``i' = ⌊j/√s⌋·r/√s + ⌊i/√s⌋`` and
    ``j' = (j mod √s) + (i mod √s)·√s``."""
    _check_divides(r, s)
    t = sqrt_pow4(s)
    i_new = (j // t) * (r // t) + i // t
    j_new = (j % t) + (i % t) * t
    return i_new, j_new


def subblock_target_bitwise(
    i: np.ndarray | int, j: np.ndarray | int, r: int, s: int
) -> tuple[np.ndarray | int, np.ndarray | int]:
    """Index map of the subblock permutation computed exactly as the bit
    permutation of the paper's Figure 1 — an independent formulation used
    to cross-validate :func:`subblock_target`.

    With ``h = lg √s``: field ``x`` (``i`` bits ``0..h-1``) becomes ``j'``
    bits ``h..2h-1``; ``w`` (``i`` bits ``h..lg r - 1``) becomes ``i'``
    bits ``0..lg(r/√s)-1``; ``y`` (``j`` bits ``h..2h-1``) becomes ``i'``
    bits ``lg(r/√s)..lg r - 1``; ``z`` (``j`` bits ``0..h-1``) stays as
    ``j'`` bits ``0..h-1``.
    """
    _check_divides(r, s)
    t = sqrt_pow4(s)
    if r % t:
        raise DimensionError(f"require √s | r, got r={r}, √s={t}")
    h = ilog2(t)
    lg_r = ilog2(r)
    x = extract_bits(i, 0, h)
    w = extract_bits(i, h, lg_r - h)
    z = extract_bits(j, 0, h)
    y = extract_bits(j, h, h)
    i_new = (y << (lg_r - h)) | w
    j_new = (x << h) | z
    return i_new, j_new


# ---------------------------------------------------------------------------
# Generic helpers
# ---------------------------------------------------------------------------

def apply_index_map(matrix: np.ndarray, target_fn) -> np.ndarray:
    """Apply an index map ``(i, j, r, s) → (i', j')`` to a whole matrix by
    explicit scatter — the reference implementation the reshape-based fast
    paths are tested against."""
    r, s = matrix.shape
    ii, jj = np.meshgrid(np.arange(r), np.arange(s), indexing="ij")
    ti, tj = target_fn(ii, jj, r, s)
    out = np.empty_like(matrix)
    out[ti, tj] = matrix
    return out


def column_major_rank(
    i: np.ndarray | int, j: np.ndarray | int, r: int
) -> np.ndarray | int:
    """The column-major flat position of element ``(i, j)``: ``j·r + i``."""
    return j * r + i
