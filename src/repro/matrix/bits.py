"""Power-of-two arithmetic and bit-field helpers.

The out-of-core columnsort implementations assume every configuration
parameter is a power of 2 (paper §2), and subblock columnsort further
requires ``s`` to be a power of 4 so that ``√s`` is an integer power of 2.
The subblock permutation itself is a *bit permutation* of the (row,
column) index pair (paper Figure 1); the helpers here extract and deposit
the bit fields it shuffles.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError


def is_power_of_two(n: int) -> bool:
    """Whether ``n`` is a positive power of two (1 counts).

    >>> [is_power_of_two(n) for n in (0, 1, 2, 3, 4)]
    [False, True, True, False, True]
    """
    return n > 0 and (n & (n - 1)) == 0


def is_power_of_four(n: int) -> bool:
    """Whether ``n`` is a positive power of four (1 counts).

    >>> [is_power_of_four(n) for n in (1, 2, 4, 8, 16, 64)]
    [True, False, True, False, True, True]
    """
    return is_power_of_two(n) and (n.bit_length() - 1) % 2 == 0


def ilog2(n: int) -> int:
    """``lg n`` for a power of two ``n``.

    >>> ilog2(1), ilog2(8)
    (0, 3)
    """
    if not is_power_of_two(n):
        raise DimensionError(f"{n} is not a power of two")
    return n.bit_length() - 1


def sqrt_pow4(n: int) -> int:
    """``√n`` for a power of four ``n`` (always an integral power of 2).

    >>> sqrt_pow4(16), sqrt_pow4(64)
    (4, 8)
    """
    if not is_power_of_four(n):
        raise DimensionError(f"{n} is not a power of four")
    return 1 << (ilog2(n) // 2)


def extract_bits(value: np.ndarray | int, lo: int, width: int) -> np.ndarray | int:
    """Bits ``lo .. lo+width-1`` of ``value`` (bit 0 = least significant).

    Works elementwise on arrays. ``width == 0`` yields 0.

    >>> extract_bits(0b101100, 2, 3)
    3
    """
    if width == 0:
        return value & 0 if isinstance(value, np.ndarray) else 0
    mask = (1 << width) - 1
    return (value >> lo) & mask


def deposit_bits(
    field: np.ndarray | int, lo: int
) -> np.ndarray | int:
    """Place a bit field at position ``lo`` (the inverse of extraction).

    >>> deposit_bits(0b11, 2)
    12
    """
    return field << lo


def interleave_fields(*fields_and_widths: tuple[np.ndarray | int, int]):
    """Concatenate bit fields, most significant first.

    Each argument is ``(field, width)``; the result packs them so the
    first field occupies the most significant bits.

    >>> interleave_fields((0b10, 2), (0b1, 1))
    5
    """
    out: np.ndarray | int = 0
    for field, width in fields_and_widths:
        out = (out << width) | field
    return out
