"""Matrix machinery underlying columnsort.

Columnsort views its ``N`` records as an ``r × s`` matrix sorted into
column-major order. This subpackage provides:

* :mod:`~repro.matrix.bits` — power-of-two arithmetic and the bit-field
  helpers behind the paper's Figure 1;
* :mod:`~repro.matrix.permutations` — the even-step permutations of
  columnsort (steps 2, 4, 6, 8) and the subblock permutation (step 3.1),
  each available both as a vectorized whole-matrix operation and as an
  index map ``(i, j) → (i', j')`` (the index maps drive communication
  metering and the property-based tests);
* :mod:`~repro.matrix.layout` — conversions between flat column-major
  record arrays and 2-D matrices, and per-column sorting helpers that
  work for both plain key arrays and structured record arrays.
"""

from repro.matrix.bits import (
    ilog2,
    is_power_of_four,
    is_power_of_two,
    sqrt_pow4,
)
from repro.matrix.permutations import (
    shift_down,
    shift_down_target,
    shift_up,
    step2,
    step2_target,
    step4,
    step4_target,
    subblock,
    subblock_target,
    subblock_target_bitwise,
)
from repro.matrix.layout import (
    from_columns,
    sort_columns,
    to_columns,
)

__all__ = [
    "ilog2",
    "is_power_of_two",
    "is_power_of_four",
    "sqrt_pow4",
    "step2",
    "step2_target",
    "step4",
    "step4_target",
    "shift_down",
    "shift_down_target",
    "shift_up",
    "subblock",
    "subblock_target",
    "subblock_target_bitwise",
    "to_columns",
    "from_columns",
    "sort_columns",
]
