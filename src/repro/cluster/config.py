"""Cluster configuration.

Describes the machine shape of the paper's out-of-core setting (§2):
``P`` processors ``P0..P(P-1)`` and ``D`` disks ``D0..D(D-1)``. When
``D ≥ P``, processor ``p`` owns the ``D/P`` disks it accesses; when
``D < P``, processors share a node's disk through distinct "virtual
disk" regions, which lets the algorithms assume ``D ≥ P`` throughout.
All parameters are powers of 2 (so ``P | D`` after virtualization).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.matrix.bits import is_power_of_two


@dataclass(frozen=True)
class ClusterConfig:
    """Machine shape for the out-of-core algorithms.

    Parameters
    ----------
    p:
        Number of processors (power of 2).
    d:
        Number of physical disks (power of 2). Defaults to ``p`` — the
        paper's testbed had one disk per node. When ``d < p``, each disk
        is split into ``p/d`` virtual disks.
    mem_per_proc:
        Records of in-core memory available per processor (power of 2).
        This is the ``M/P`` of the problem-size restrictions — already
        net of the auxiliary communication/pipeline buffers (paper
        footnote 2).

    >>> cfg = ClusterConfig(p=4, d=4, mem_per_proc=2**16)
    >>> cfg.m
    262144
    >>> cfg.disks_per_proc
    1
    """

    p: int
    d: int | None = None
    mem_per_proc: int = 2**20

    def __post_init__(self) -> None:
        if self.d is None:
            object.__setattr__(self, "d", self.p)
        if not is_power_of_two(self.p):
            raise ConfigError(f"P must be a power of 2, got {self.p}")
        if not is_power_of_two(self.d):
            raise ConfigError(f"D must be a power of 2, got {self.d}")
        if not is_power_of_two(self.mem_per_proc):
            raise ConfigError(
                f"mem_per_proc must be a power of 2 records, got {self.mem_per_proc}"
            )

    @property
    def m(self) -> int:
        """Total memory of the system, in records (``M = P · M/P``)."""
        return self.p * self.mem_per_proc

    @property
    def virtual_disks(self) -> int:
        """Number of disks after virtualization — always ``max(d, p)``,
        so that every processor owns at least one (virtual) disk."""
        return max(self.d, self.p)

    @property
    def disks_per_proc(self) -> int:
        """Virtual disks owned by each processor (``D/P`` after
        virtualization)."""
        return self.virtual_disks // self.p

    def disks_of(self, rank: int) -> range:
        """The virtual-disk indices owned by processor ``rank``.

        Disk ``k`` belongs to processor ``k mod P`` so that consecutive
        stripe blocks round-robin across processors — the layout PDM
        ordering assumes.
        """
        self.check_rank(rank)
        return range(rank, self.virtual_disks, self.p)

    def owner_of_disk(self, disk: int) -> int:
        """The processor owning virtual disk ``disk``."""
        if not 0 <= disk < self.virtual_disks:
            raise ConfigError(
                f"disk {disk} out of range for {self.virtual_disks} virtual disks"
            )
        return disk % self.p

    def owner_of_column(self, j: int) -> int:
        """The processor owning matrix column ``j`` (``j mod P``, §2)."""
        return j % self.p

    def check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.p:
            raise ConfigError(f"rank {rank} out of range for P={self.p}")
