"""Multiprocessing SPMD transport: one forked OS process per rank.

The thread transport's ranks overlap only where NumPy releases the GIL;
everything at the Python level — record packing, pipeline bookkeeping,
structured-dtype gathers — serializes. This transport forks one process
per rank so rank-local compute escapes the GIL entirely, while keeping
every contract of :class:`~repro.cluster.transport.Transport`:

* **Fabric** — one ``multiprocessing.Queue`` inbox per rank; each rank
  demultiplexes its inbox into local per-``(source, tag)`` FIFOs, so
  MPI's non-overtaking order per (source, dest, tag) holds exactly as
  on the thread fabric. Small payloads pickle through the queue.
* **Packed alltoallv** — ``alloc_packed`` hands
  :class:`~repro.cluster.comm.Comm` a ``multiprocessing.shared_memory``
  segment, so the single-buffer pack writes its bytes *once* into
  memory every rank can map; receivers get a slice descriptor (segment
  name, dtype, offset, count) instead of a pickle of the data. The
  receive side materializes its slice with one raw copy and
  acknowledges, and the creator retires the segment once every slice is
  acknowledged. The materialization copy is transport-internal — the
  analogue of a NIC landing bytes in a receive buffer — and therefore
  unmetered, which keeps ``CommStats``/``CopyStats`` byte-identical to
  the thread backend (where receivers hold views).
* **Ownership rule** — a segment belongs to the rank that allocated it.
  Creators unlink after all acknowledgements (or at rank teardown, or
  — last resort — the parent unlinks whatever a dying rank reported).
  Receivers never unlink and never keep a mapping past materialization.
* **Activity stamps** — a shared ``Array('d', P)`` updated with
  monotonic-max semantics; the parent-side
  :class:`~repro.resilience.watchdog.RankWatchdog` polls it through a
  router facade exactly as it polls the thread router.
* **Accounting** — every rank snapshots its (fork-copied) disk
  ``IoStats``, the data-plane ``CopyStats``, and its ``CommStats``
  around the program and ships the deltas home over a result pipe; the
  parent merges them into the caller's stats objects, so
  ``run_spmd_metered`` and the pass programs stay backend-agnostic.
* **Failures** — a rank's exception is pickled home when it round-trips
  (so ``SpmdError.cause`` keeps its type across the boundary) and
  replaced by a :class:`RemoteRankError` surrogate carrying the type
  name and traceback when it does not. Severity ranking is shared with
  the thread transport.

Fork (not spawn) start method: rank programs are closures over live
stores, monkeypatched classes, and armed fault plans — semantics the
thread backend provides by sharing the address space, and which fork
preserves by copying it.
"""

from __future__ import annotations

import os
import pickle
import queue as _queue
import time
import traceback
from collections import defaultdict, deque
from multiprocessing import connection, get_context, resource_tracker, shared_memory

import numpy as np

from repro.cluster.comm import Comm
from repro.cluster.mailbox import DEFAULT_TIMEOUT, POLL_SLICE, SendAdmission
from repro.cluster.stats import CommStats, stats_from_snapshot
from repro.cluster.transport import Transport, raise_primary_failure
from repro.errors import CommError
from repro.membuf import copy_delta, copy_stats, get_pool

_CTX = get_context("fork")

#: Prefix of every shared-memory segment this transport creates; the
#: test-suite leak guard scans ``/dev/shm`` for it.
SHM_PREFIX = "repro-shm"


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Opt a segment out of the resource tracker's cleanup.

    The transport manages segment lifetime explicitly (ack-counted
    unlink, rank teardown, parent sweep). CPython < 3.13 registers a
    segment with the tracker on *attach* as well as create (bpo-39959),
    so every mapping — creator or receiver — must be unregistered, or
    the first rank to exit would unlink segments its siblings still
    map and the tracker would print spurious leak warnings."""
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _unlink_quiet(shm: shared_memory.SharedMemory) -> None:
    """Unlink a segment without notifying the resource tracker.

    ``SharedMemory.unlink`` always sends the tracker an UNREGISTER, but
    every mapping here is already untracked (see :func:`_untrack`), so
    that message would make the tracker log a spurious ``KeyError``.
    Missing segments (already unlinked by another path) are ignored."""
    try:
        shared_memory._posixshmem.shm_unlink(shm._name)
    except FileNotFoundError:
        pass
    except AttributeError:  # non-POSIX fallback
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


class RemoteRankError(RuntimeError):
    """Surrogate for a rank failure that cannot cross the process
    boundary (exceptions whose constructors do not round-trip through
    pickle). Carries the original type name, message, and traceback
    text in one string."""


def _portable_exception(exc: BaseException) -> BaseException:
    """The exception itself if it pickle-round-trips, else a surrogate."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        tb = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
        return RemoteRankError(
            f"rank failed with {type(exc).__name__}: {exc}\n{tb}"
        )


class _ShmSlice:
    """Wire descriptor of one packed-alltoallv part: where in which
    segment, owned by which rank."""

    __slots__ = ("segment", "creator", "dtype", "offset", "count")

    def __init__(self, segment, creator, dtype, offset, count):
        self.segment = segment
        self.creator = creator
        self.dtype = dtype
        self.offset = offset
        self.count = count

    def __getstate__(self):
        return (self.segment, self.creator, self.dtype, self.offset, self.count)

    def __setstate__(self, state):
        self.segment, self.creator, self.dtype, self.offset, self.count = state


class _Segment:
    """Creator-side record of one shared segment: the mapping, its
    address range (for view detection), and how many remote slices are
    still unacknowledged."""

    __slots__ = ("shm", "base", "nbytes", "pending")

    def __init__(self, shm, base, nbytes):
        self.shm = shm
        self.base = base
        self.nbytes = nbytes
        self.pending = 0


class _Fabric:
    """The shared primitives of one process-backed SPMD world, created
    before the fork so every rank inherits them."""

    def __init__(self, size: int, timeout: float) -> None:
        self.size = size
        self.timeout = timeout
        self.inboxes = [_CTX.Queue() for _ in range(size)]
        self.acks = [_CTX.Queue() for _ in range(size)]
        self.closed = _CTX.Event()
        self.activity = _CTX.Array("d", size)
        self.retries = _CTX.Value("i", 0)


class _ParentRouter:
    """The parent's facade over the fabric — exactly the two methods
    the :class:`~repro.resilience.watchdog.RankWatchdog` uses."""

    def __init__(self, fabric: _Fabric) -> None:
        self._fabric = fabric

    def activity(self) -> dict[int, float]:
        act = self._fabric.activity
        with act.get_lock():
            return {p: act[p] for p in range(self._fabric.size)}

    def close(self) -> None:
        self._fabric.closed.set()


class ProcessRouter(SendAdmission):
    """One rank's endpoint of the process fabric (lives in the child).

    Implements the same surface :class:`~repro.cluster.comm.Comm` uses
    on the thread router — ``put``/``get``/``touch``/``activity``/
    ``close``/``alloc_packed``/``comm_retries`` — over cross-process
    primitives.
    """

    shared_fabric = False

    def __init__(self, fabric: _Fabric, rank: int) -> None:
        self._fabric = fabric
        self._rank = rank
        self._timeout = fabric.timeout
        # Inbox demux: (source, tag) -> FIFO of materialized payloads.
        self._local: dict[tuple, deque] = defaultdict(deque)
        self._segments: dict[str, _Segment] = {}
        self._seq = 0

    # -- SendAdmission hooks -------------------------------------------

    def _is_closed(self) -> bool:
        return self._fabric.closed.is_set()

    def _count_retry(self) -> None:
        with self._fabric.retries.get_lock():
            self._fabric.retries.value += 1

    @property
    def comm_retries(self) -> int:
        return self._fabric.retries.value

    # -- watchdog support ----------------------------------------------

    def touch(self, rank: int, stamp: float | None = None) -> None:
        """Monotonic-max activity stamp in the shared array. Stamps may
        arrive stale relative to another process's (cross-process store
        latency), so the max semantics are load-bearing here, not just
        defensive — see ``MailboxRouter.touch``."""
        now = time.monotonic() if stamp is None else stamp
        act = self._fabric.activity
        with act.get_lock():
            if now > act[rank]:
                act[rank] = now

    def activity(self) -> dict[int, float]:
        act = self._fabric.activity
        with act.get_lock():
            return {p: act[p] for p in range(self._fabric.size)}

    def close(self) -> None:
        self._fabric.closed.set()

    # -- shared-memory packed buffers ----------------------------------

    def alloc_packed(self, dtype: np.dtype, total: int) -> np.ndarray:
        """A shared-memory-backed buffer for the packed alltoallv.

        By the time the *next* collective allocates, every slice of the
        previous buffers has been sent, so fully-acknowledged segments
        are reaped here (close + unlink); the rest retire at teardown.
        """
        self._reap()
        dtype = np.dtype(dtype)
        if total == 0:
            return np.empty(0, dtype=dtype)
        name = f"{SHM_PREFIX}-{os.getpid()}-{self._seq}"
        self._seq += 1
        nbytes = total * dtype.itemsize
        shm = shared_memory.SharedMemory(create=True, size=nbytes, name=name)
        _untrack(shm)
        arr = np.ndarray((total,), dtype=dtype, buffer=shm.buf)
        self._segments[name] = _Segment(
            shm, arr.__array_interface__["data"][0], nbytes
        )
        return arr

    def _slice_of(self, arr: np.ndarray) -> _ShmSlice | None:
        """The descriptor of ``arr`` if its memory lives inside a
        segment this rank created (i.e. it is a packed-alltoallv view)."""
        if not isinstance(arr, np.ndarray) or not arr.flags["C_CONTIGUOUS"]:
            return None
        addr = arr.__array_interface__["data"][0]
        for name, seg in self._segments.items():
            if seg.base <= addr and addr + arr.nbytes <= seg.base + seg.nbytes:
                return _ShmSlice(
                    name, self._rank, arr.dtype, addr - seg.base, len(arr)
                )
        return None

    def _outbound(self, payload: object) -> object:
        """Swap packed-buffer views for slice descriptors on the way out."""
        if isinstance(payload, tuple) and len(payload) == 2:
            op, body = payload
            if isinstance(body, np.ndarray):
                desc = self._slice_of(body)
                if desc is not None:
                    self._segments[desc.segment].pending += 1
                    return (op, desc)
        return payload

    def _materialize(self, desc: _ShmSlice) -> np.ndarray:
        """Land one slice: raw copy out of the segment, then ack so the
        creator can retire it. Unmetered by design (see module doc)."""
        own = self._segments.get(desc.segment)
        if own is not None:
            src = np.ndarray(
                (desc.count,), dtype=desc.dtype, buffer=own.shm.buf,
                offset=desc.offset,
            )
            out = src.copy()
            del src
            own.pending -= 1
            return out
        shm = shared_memory.SharedMemory(name=desc.segment)
        _untrack(shm)
        try:
            src = np.ndarray(
                (desc.count,), dtype=desc.dtype, buffer=shm.buf,
                offset=desc.offset,
            )
            out = src.copy()
            del src
        finally:
            shm.close()
        self._fabric.acks[desc.creator].put(desc.segment)
        return out

    def _inbound(self, payload: object) -> object:
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and isinstance(payload[1], _ShmSlice)
        ):
            return (payload[0], self._materialize(payload[1]))
        return payload

    def _reap(self, force: bool = False) -> None:
        """Retire fully-acknowledged segments this rank created."""
        acks = self._fabric.acks[self._rank]
        while True:
            try:
                name = acks.get_nowait()
            except _queue.Empty:
                break
            seg = self._segments.get(name)
            if seg is not None:
                seg.pending -= 1
        for name in list(self._segments):
            seg = self._segments[name]
            if seg.pending <= 0 or force:
                try:
                    seg.shm.close()
                except BufferError:
                    if not force:
                        continue  # a view is still alive; try again later
                _unlink_quiet(seg.shm)
                del self._segments[name]

    def teardown(self, grace_s: float = 2.0) -> list[str]:
        """End-of-rank cleanup: wait briefly for outstanding acks, then
        force-retire everything. Returns the names of segments that
        could not be unlinked (the parent sweeps them as a last resort)."""
        deadline = time.monotonic() + grace_s
        while self._segments and time.monotonic() < deadline:
            self._reap()
            if not self._segments:
                break
            if all(seg.pending <= 0 for seg in self._segments.values()):
                continue  # only BufferError holdouts left; retry below
            time.sleep(0.01)
        self._reap(force=True)
        return list(self._segments)

    # -- the fabric proper ---------------------------------------------

    def put(self, source: int, dest: int, tag: object, payload: object) -> None:
        self._admit_send(source, dest, tag)
        self._fabric.inboxes[dest].put((source, tag, self._outbound(payload)))
        self.touch(source)

    def get(self, source: int, dest: int, tag: object) -> object:
        key = (source, tag)
        inbox = self._fabric.inboxes[dest]
        waited = 0.0
        while True:
            self._check_closed()
            self._check_cancel()
            ready = self._local.get(key)
            if ready:
                self.touch(dest)
                return ready.popleft()
            try:
                src, got_tag, payload = inbox.get(timeout=POLL_SLICE)
            except _queue.Empty:
                waited += POLL_SLICE
                if waited >= self._timeout:
                    raise CommError(
                        f"receive timed out after {self._timeout}s: "
                        f"rank {dest} waiting for (source={source}, "
                        f"tag={tag!r}) — likely mismatched sends/receives "
                        f"or a collective mismatch"
                    ) from None
            else:
                self._local[(src, got_tag)].append(self._inbound(payload))

    def pending(self) -> dict[tuple, int]:
        """Locally buffered (demuxed but unconsumed) message counts."""
        return {
            key: len(fifo) for key, fifo in self._local.items() if fifo
        }


def _child_main(fabric, rank, program, args, extra, kwargs, hooks, conns, disks):
    """Rank body in the forked child: run the program, ship results and
    accounting deltas home, always tear the shared segments down."""
    fault_plan, retry_policy, cancel = hooks
    # Only this rank's pipe write end stays open: EOF detection in the
    # parent needs every other inherited copy closed.
    own = conns[rank][1]
    for p, (parent_end, child_end) in enumerate(conns):
        parent_end.close()
        if p != rank:
            child_end.close()

    router = ProcessRouter(fabric, rank)
    router.fault_plan = fault_plan
    router.retry_policy = retry_policy
    router.cancel_token = cancel
    comm = Comm(rank, fabric.size, router, CommStats(rank=rank))

    pool = get_pool()
    cstats = copy_stats()
    cstats.rebase_peak(pool.outstanding())
    copy_before = cstats.snapshot()
    io_before = [d.stats.snapshot() for d in (disks or [])]

    message: dict = {"rank": rank}
    try:
        value = program(comm, *args, *extra, **kwargs)
        message["outcome"] = "ok"
        message["value"] = value
    except BaseException as exc:  # noqa: BLE001 — must cross processes
        router.close()  # unblock sibling ranks waiting in receives
        message["outcome"] = "err"
        message["error"] = _portable_exception(exc)
    finally:
        message["segments"] = router.teardown()

    message["copy"] = copy_delta(copy_before, cstats.snapshot())
    message["comm"] = comm.stats.snapshot()
    io_after = [d.stats.snapshot() for d in (disks or [])]
    message["io"] = [
        {k: after[k] - before[k] for k in before}
        for before, after in zip(io_before, io_after)
    ]
    try:
        own.send(message)
    except Exception as exc:
        # Usually an unpicklable rank return value; resend without it.
        message["outcome"] = "err"
        message["value"] = None
        message["error"] = RemoteRankError(
            f"rank {rank} result could not cross the process boundary: {exc}"
        )
        try:
            own.send(message)
        except Exception:
            pass
    own.close()
    # Deliberately no ``cancel_join_thread`` here: exit must wait for the
    # queue feeder threads to flush, or a message a sibling is blocked on
    # could be dropped. On the failure path (undelivered messages filling
    # a queue pipe) the parent drains the fabric and then escalates to
    # terminate, so a wedged feeder cannot hang the run.


class ProcessTransport(Transport):
    """One forked OS process per rank; see the module docstring."""

    name = "process"

    def run(
        self,
        size,
        program,
        *args,
        rank_args=None,
        timeout=DEFAULT_TIMEOUT,
        watchdog_deadline=None,
        fault_plan=None,
        retry_policy=None,
        quarantine=None,
        cancel=None,
        disks=None,
        **kwargs,
    ):
        from repro.cluster.spmd import SpmdResult
        from repro.cluster.transport import ThreadTransport

        if size == 1:
            # Degenerate world: nothing to parallelize across processes,
            # and inline execution keeps single-rank debugging trivial —
            # the same choice the thread transport makes.
            return ThreadTransport().run(
                size, program, *args, rank_args=rank_args, timeout=timeout,
                watchdog_deadline=watchdog_deadline, fault_plan=fault_plan,
                retry_policy=retry_policy, quarantine=quarantine,
                cancel=cancel, disks=disks, **kwargs,
            )

        fabric = _Fabric(size, timeout)
        now = time.monotonic()
        for p in range(size):
            fabric.activity[p] = now  # baseline stamp per rank
        if cancel is not None:
            cancel.bind_shared_event(_CTX.Event())

        disks = list(disks) if disks else []
        conns = [_CTX.Pipe(duplex=False) for _ in range(size)]
        hooks = (fault_plan, retry_policy, cancel)
        procs = [
            _CTX.Process(
                target=_child_main,
                args=(
                    fabric, p, program, args,
                    rank_args[p] if rank_args is not None else (),
                    kwargs, hooks, conns, disks,
                ),
                name=f"spmd-rank-{p}",
                daemon=True,
            )
            for p in range(size)
        ]
        watchdog = None
        if watchdog_deadline is not None:
            from repro.resilience.watchdog import RankWatchdog

            watchdog = RankWatchdog(_ParentRouter(fabric), watchdog_deadline)

        messages: list[dict | None] = [None] * size
        try:
            for proc in procs:
                proc.start()
            for _, child_end in conns:
                child_end.close()
            if watchdog is not None:
                # Start polling only after the forks: forking a process
                # that already runs threads is the classic deadlock trap.
                watchdog.start()
            self._collect(fabric, procs, conns, messages, watchdog)
        finally:
            if watchdog is not None:
                watchdog.stop()
            # Drain before joining: a child exiting with undelivered
            # messages waits for its queue feeder to flush, which needs
            # room in the queue pipe.
            self._drain_fabric(fabric, close=False)
            self._join_all(procs)
            self._sweep_segments(messages)
            self._drain_fabric(fabric, close=True)

        failures: list[tuple[int, BaseException]] = []
        stats: list[CommStats] = []
        returns: list = [None] * size
        meter = copy_stats()
        for p, msg in enumerate(messages):
            if msg is None:
                msg = {
                    "outcome": "err",
                    "error": RemoteRankError(
                        f"rank {p} process died without reporting "
                        f"(exitcode {procs[p].exitcode})"
                    ),
                }
            if msg["outcome"] == "ok":
                returns[p] = msg.get("value")
            else:
                failures.append((p, msg["error"]))
            stats.append(stats_from_snapshot(msg.get("comm"), rank=p))
            if msg.get("copy"):
                meter.merge_delta(msg["copy"])
            for disk, delta in zip(disks, msg.get("io", ())):
                disk.stats.merge_delta(delta)

        if watchdog is not None and watchdog.error is not None:
            failures.append((watchdog.error.rank, watchdog.error))
        if failures:
            raise_primary_failure(failures)
        result = SpmdResult(
            returns=returns, stats=stats, comm_retries=fabric.retries.value
        )
        if quarantine is not None:
            snap = quarantine.snapshot()
            result.degraded_disks = snap["degraded_disks"]
            result.reconstructed_blocks = snap["reconstructed_blocks"]
            result.checksum_failures = snap["checksum_failures"]
        return result

    # -- internals -------------------------------------------------------

    @staticmethod
    def _collect(fabric, procs, conns, messages, watchdog) -> None:
        """Receive every rank's result message while the ranks run.

        Results are read *concurrently* with the run (not after join):
        a rank blocks in ``Pipe.send`` if its message outgrows the pipe
        buffer, so joining first would deadlock. A watchdog firing (or a
        rank dying without a message) closes the fabric and the loop
        gives the survivors a short grace period to fail out.
        """
        remaining = {p: conns[p][0] for p in range(len(procs))}
        grace_until = None
        while remaining:
            if grace_until is None and (
                watchdog is not None and watchdog.fired.is_set()
            ):
                grace_until = time.monotonic() + 2.0
            if grace_until is not None and time.monotonic() > grace_until:
                break
            for conn in connection.wait(list(remaining.values()), timeout=0.1):
                p = next(q for q, c in remaining.items() if c is conn)
                try:
                    messages[p] = conn.recv()
                except (EOFError, OSError):
                    messages[p] = None  # died without reporting
                    fabric.closed.set()
                    if grace_until is None:
                        grace_until = time.monotonic() + 2.0
                del remaining[p]
                if watchdog is not None:
                    watchdog.rank_done(p)

    @staticmethod
    def _join_all(procs) -> None:
        for proc in procs:
            proc.join(timeout=2.0)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            if proc.is_alive():
                proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)

    @staticmethod
    def _sweep_segments(messages) -> None:
        """Last-resort unlink of segments a rank reported but could not
        retire itself (e.g. it was terminated mid-teardown)."""
        for msg in messages:
            for name in (msg or {}).get("segments", ()):
                try:
                    shm = shared_memory.SharedMemory(name=name)
                except FileNotFoundError:
                    continue
                _untrack(shm)
                try:
                    shm.close()
                except BufferError:
                    pass
                _unlink_quiet(shm)

    @staticmethod
    def _drain_fabric(fabric, close: bool) -> None:
        """Drop undelivered messages (and finally close the queues) so
        no feeder thread or pipe buffer outlives the run."""
        for q in fabric.inboxes + fabric.acks:
            try:
                while True:
                    q.get_nowait()
            except (_queue.Empty, OSError, EOFError):
                pass
            if close:
                q.close()
                q.cancel_join_thread()
