"""Multiprocessing SPMD transport: one forked OS process per rank.

The thread transport's ranks overlap only where NumPy releases the GIL;
everything at the Python level — record packing, pipeline bookkeeping,
structured-dtype gathers — serializes. This transport forks one process
per rank so rank-local compute escapes the GIL entirely, while keeping
every contract of :class:`~repro.cluster.transport.Transport`:

* **Fabric** — one ``multiprocessing.Queue`` inbox per rank; each rank
  demultiplexes its inbox into local per-``(source, tag)`` FIFOs, so
  MPI's non-overtaking order per (source, dest, tag) holds exactly as
  on the thread fabric. Small payloads pickle through the queue.
* **Packed alltoallv** — ``alloc_packed`` hands
  :class:`~repro.cluster.comm.Comm` a ``multiprocessing.shared_memory``
  slab leased from a persistent per-rank
  :class:`~repro.cluster.arena.ShmArena`, so the single-buffer pack
  writes its bytes *once* into memory every rank can map; receivers get
  a slice descriptor (segment name, dtype, offset, count) instead of a
  pickle of the data. The receive side lands its slice with one raw
  copy — into a pool-served buffer when it can
  (``bytes_landed_zero_extra_copy``) — and acknowledges; the creator
  *recycles* the slab into the arena's free list once every slice is
  acknowledged, so steady-state collectives create and unlink zero
  segments. Receivers attach to each segment once and cache the mapping
  for the run (:class:`~repro.cluster.arena.AttachCache`). The landing
  copy is transport-internal — the analogue of a NIC landing bytes in a
  receive buffer — and therefore unmetered, which keeps
  ``CommStats``/``CopyStats`` byte meters identical to the thread
  backend (where receivers hold views). ``REPRO_SHM_ARENA=0`` restores
  the one-segment-per-collective lifecycle for A/B runs.
* **Ownership rule** — a slab belongs to the rank that allocated it.
  Creators recycle on full acknowledgement and unlink at rank teardown
  (or — last resort — the parent unlinks whatever a dying rank
  reported, falling back to a pid-keyed ``/dev/shm`` scan for ranks
  that died without reporting). Receivers never unlink; cached
  receiver mappings are closed at rank teardown.
* **Isolating fabric** — queue payloads are pickled *eagerly* in
  ``put`` (not in the queue's feeder thread), so by the time a send
  returns, the sender may freely mutate its buffer: the fabric itself
  provides MPI's isolation guarantee. ``Comm`` sees this via
  ``isolating_fabric`` and skips ``_isolate``'s physical copy while
  still metering it, keeping ``CopyStats`` byte meters equal to the
  thread backend's.
* **Activity stamps** — a shared ``Array('d', P)`` updated with
  monotonic-max semantics; the parent-side
  :class:`~repro.resilience.watchdog.RankWatchdog` polls it through a
  router facade exactly as it polls the thread router.
* **Accounting** — every rank snapshots its (fork-copied) disk
  ``IoStats``, the data-plane ``CopyStats``, and its ``CommStats``
  around the program and ships the deltas home over a result pipe; the
  parent merges them into the caller's stats objects, so
  ``run_spmd_metered`` and the pass programs stay backend-agnostic.
* **Failures** — a rank's exception is pickled home when it round-trips
  (so ``SpmdError.cause`` keeps its type across the boundary) and
  replaced by a :class:`RemoteRankError` surrogate carrying the type
  name and traceback when it does not. Severity ranking is shared with
  the thread transport.

Fork (not spawn) start method: rank programs are closures over live
stores, monkeypatched classes, and armed fault plans — semantics the
thread backend provides by sharing the address space, and which fork
preserves by copying it.
"""

from __future__ import annotations

import os
import pickle
import queue as _queue
import signal
import time
import traceback
from collections import defaultdict, deque
from multiprocessing import connection, get_context, shared_memory

import numpy as np

from repro.cluster.arena import (
    SHM_PREFIX,
    AttachCache,
    ShmArena,
    arena_enabled,
    unlink_by_name,
    untrack,
)
from repro.cluster.comm import Comm
from repro.cluster.mailbox import DEFAULT_TIMEOUT, POLL_SLICE, SendAdmission
from repro.cluster.stats import CommStats, stats_from_snapshot
from repro.cluster.transport import Transport, raise_primary_failure
from repro.errors import CommError
from repro.membuf import copy_delta, copy_stats, get_pool, legacy_copies

__all__ = [
    "ProcessTransport",
    "ProcessRouter",
    "RemoteRankError",
    "SHM_PREFIX",
    "sweep_stale_segments",
]

_CTX = get_context("fork")


def describe_exit(exitcode: int | None) -> str:
    """Human-readable cause for a rank's exit status: the delivering
    signal's name for signal deaths (``exitcode < 0`` under
    multiprocessing), the injected ``rank_exit`` marker when the chaos
    layer's exit code is recognized, the bare code otherwise."""
    from repro.resilience.faults import RANK_EXIT_CODE

    if exitcode is None:
        return "no exit status"
    if exitcode < 0:
        try:
            name = signal.Signals(-exitcode).name
        except ValueError:
            name = f"signal {-exitcode}"
        return f"killed by {name}"
    if exitcode == RANK_EXIT_CODE:
        return f"exitcode {exitcode} (injected rank_exit)"
    return f"exitcode {exitcode}"


def sweep_stale_segments() -> list[str]:
    """Unlink transport shared-memory segments whose creating process
    is gone; returns the names removed.

    Defensive sweep for the supervised-restart path: every segment name
    embeds its creator's pid (``repro-shm-<pid>-<seq>``), and a rank
    SIGKILLed mid-collective can die between creating a slab and
    reporting it, after the parent's pid-keyed teardown scan already
    ran. Called between supervised attempts so a relaunched cohort
    never inherits (or leaks) a dead cohort's kernel memory. Segments
    created by *live* processes — including this one — are left alone.
    """
    removed: list[str] = []
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return removed  # non-POSIX shm layout: nothing to sweep
    own = str(os.getpid())
    for entry in entries:
        parts = entry.split("-")
        # repro-shm-<pid>-<seq>
        if not (entry.startswith(SHM_PREFIX + "-") and len(parts) == 4):
            continue
        pid_part = parts[2]
        if pid_part == own or not pid_part.isdigit():
            continue
        try:
            os.kill(int(pid_part), 0)
        except ProcessLookupError:
            unlink_by_name(entry)
            removed.append(entry)
        except OSError:
            continue  # alive but not ours (EPERM): leave it
    return removed

#: Seconds between writes of a rank's *live* activity stamp into the
#: lock-guarded shared array. Every put/get calls ``touch``; stamping
#: each one would take the cross-process lock on every message, so live
#: stamps are batched to at most one write per interval. Half the
#: receive poll slice keeps the visible stamp at most 25 ms stale —
#: far inside any watchdog deadline's detection granularity.
STAMP_BATCH_S = POLL_SLICE / 2


class RemoteRankError(RuntimeError):
    """Surrogate for a rank failure that cannot cross the process
    boundary (exceptions whose constructors do not round-trip through
    pickle). Carries the original type name, message, and traceback
    text in one string."""


def _portable_exception(exc: BaseException) -> BaseException:
    """The exception itself if it pickle-round-trips, else a surrogate."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        tb = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
        return RemoteRankError(
            f"rank failed with {type(exc).__name__}: {exc}\n{tb}"
        )


class _ShmSlice:
    """Wire descriptor of one packed-alltoallv part: where in which
    segment, owned by which rank."""

    __slots__ = ("segment", "creator", "dtype", "offset", "count")

    def __init__(self, segment, creator, dtype, offset, count):
        self.segment = segment
        self.creator = creator
        self.dtype = dtype
        self.offset = offset
        self.count = count

    def __getstate__(self):
        return (self.segment, self.creator, self.dtype, self.offset, self.count)

    def __setstate__(self, state):
        self.segment, self.creator, self.dtype, self.offset, self.count = state


class _Fabric:
    """The shared primitives of one process-backed SPMD world, created
    before the fork so every rank inherits them."""

    def __init__(self, size: int, timeout: float) -> None:
        self.size = size
        self.timeout = timeout
        self.inboxes = [_CTX.Queue() for _ in range(size)]
        self.acks = [_CTX.Queue() for _ in range(size)]
        self.closed = _CTX.Event()
        self.activity = _CTX.Array("d", size)
        self.retries = _CTX.Value("i", 0)


class _ParentRouter:
    """The parent's facade over the fabric — exactly the two methods
    the :class:`~repro.resilience.watchdog.RankWatchdog` uses."""

    def __init__(self, fabric: _Fabric) -> None:
        self._fabric = fabric

    def activity(self) -> dict[int, float]:
        act = self._fabric.activity
        with act.get_lock():
            return {p: act[p] for p in range(self._fabric.size)}

    def close(self) -> None:
        self._fabric.closed.set()


class ProcessRouter(SendAdmission):
    """One rank's endpoint of the process fabric (lives in the child).

    Implements the same surface :class:`~repro.cluster.comm.Comm` uses
    on the thread router — ``put``/``get``/``touch``/``activity``/
    ``close``/``alloc_packed``/``comm_retries`` — over cross-process
    primitives.
    """

    shared_fabric = False

    #: Payloads are pickled eagerly in :meth:`put` (not by the queue's
    #: feeder thread), so the fabric itself isolates senders from their
    #: buffers — ``Comm._isolate`` meters but skips its physical copy.
    isolating_fabric = True

    def __init__(self, fabric: _Fabric, rank: int) -> None:
        self._fabric = fabric
        self._rank = rank
        self._timeout = fabric.timeout
        # Inbox demux: (source, tag) -> FIFO of materialized payloads.
        self._local: dict[tuple, deque] = defaultdict(deque)
        self._arena = ShmArena()
        self._attached = AttachCache()
        # Live-stamp batching state (see STAMP_BATCH_S / touch).
        self._stamp_written: dict[int, float] = {}
        self.stamp_writes = 0

    # -- SendAdmission hooks -------------------------------------------

    def _is_closed(self) -> bool:
        return self._fabric.closed.is_set()

    def _count_retry(self) -> None:
        with self._fabric.retries.get_lock():
            self._fabric.retries.value += 1

    @property
    def comm_retries(self) -> int:
        return self._fabric.retries.value

    # -- watchdog support ----------------------------------------------

    def touch(self, rank: int, stamp: float | None = None) -> None:
        """Monotonic-max activity stamp in the shared array. Stamps may
        arrive stale relative to another process's (cross-process store
        latency), so the max semantics are load-bearing here, not just
        defensive — see ``MailboxRouter.touch``.

        *Live* stamps (``stamp is None`` — the per-op put/get path) are
        batched: at most one shared-array write per
        :data:`STAMP_BATCH_S`, because taking the cross-process lock on
        every message measurably serializes the fabric. The visible
        stamp is then at most ``STAMP_BATCH_S`` older than the rank's
        true last activity, which only *advances* the moment the
        watchdog would see silence begin — detection latency is
        unchanged. Explicit stamps (tests, replayed clocks) always
        write."""
        if stamp is None:
            now = time.monotonic()
            if now - self._stamp_written.get(rank, 0.0) < STAMP_BATCH_S:
                return
            self._stamp_written[rank] = now
        else:
            now = stamp
        act = self._fabric.activity
        with act.get_lock():
            self.stamp_writes += 1
            if now > act[rank]:
                act[rank] = now

    def activity(self) -> dict[int, float]:
        act = self._fabric.activity
        with act.get_lock():
            return {p: act[p] for p in range(self._fabric.size)}

    def close(self) -> None:
        self._fabric.closed.set()

    # -- shared-memory packed buffers ----------------------------------

    def alloc_packed(self, dtype: np.dtype, total: int) -> np.ndarray:
        """A shared-memory-backed buffer for the packed alltoallv,
        leased from the persistent arena.

        Pending acknowledgements are drained first, so slabs whose
        slices have all landed return to the free list before the lease
        — at steady state (every shape seen once, acks keeping up) this
        is a freelist pop: no segment create, no unlink. With
        ``REPRO_SHM_ARENA=0`` every lease creates a one-shot segment
        that unlinks on full ack — the PR 6 lifecycle, kept as the A/B
        escape hatch."""
        self._reap()
        dtype = np.dtype(dtype)
        if total == 0:
            return np.empty(0, dtype=dtype)
        slab = self._arena.lease(
            total * dtype.itemsize, recycle=arena_enabled()
        )
        return np.ndarray((total,), dtype=dtype, buffer=slab.shm.buf)

    def _slice_of(self, arr: np.ndarray) -> _ShmSlice | None:
        """The descriptor of ``arr`` if its memory lives inside a slab
        this rank created (i.e. it is a packed-alltoallv view) —
        O(log #slabs) via the arena's base-address index."""
        if not isinstance(arr, np.ndarray) or not arr.flags["C_CONTIGUOUS"]:
            return None
        addr = arr.__array_interface__["data"][0]
        slab = self._arena.locate(addr, arr.nbytes)
        if slab is None:
            return None
        return _ShmSlice(
            slab.name, self._rank, arr.dtype, addr - slab.base, len(arr)
        )

    def _outbound(self, payload: object) -> object:
        """Swap packed-buffer views for slice descriptors on the way out."""
        if isinstance(payload, tuple) and len(payload) == 2:
            op, body = payload
            if isinstance(body, np.ndarray):
                desc = self._slice_of(body)
                if desc is not None:
                    self._arena.pin(desc.segment)
                    return (op, desc)
        return payload

    def _land(self, src: np.ndarray) -> np.ndarray:
        """Copy one inbound slice out of shared memory — into a
        pool-served landing buffer when possible, so the receiver's
        private copy is also the buffer the pass body can recycle
        (``bytes_landed_zero_extra_copy``). Unmetered as a data-plane
        copy by design (see module doc)."""
        if src.size and not legacy_copies():
            out = get_pool().land(src.dtype, src.shape[0])
            np.copyto(out, src)
            copy_stats().record_landed(src.nbytes)
            return out
        return src.copy()

    def _copy_out(self, src: np.ndarray, out: np.ndarray | None) -> np.ndarray:
        """One landing copy out of shared memory: into the caller's
        ``out=`` array when given (zero extra copies downstream), else
        into a pool-served landing buffer (:meth:`_land`)."""
        if out is not None:
            np.copyto(out, src)
            copy_stats().record_landed(src.nbytes)
            return out
        return self._land(src)

    def _materialize(
        self, desc: _ShmSlice, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Land one slice, then ack so the creator can recycle the slab.

        With ``out=`` (a writable array of exactly ``desc.count``
        records) the bytes land directly in it; otherwise a pool-served
        landing buffer is used. Receiver mappings come from the attach
        cache in arena mode — one attach per ``(creator, segment)`` per
        run — and are attach/copy/close in one-shot mode, where the
        segment is about to be unlinked and must not stay pinned."""
        own = self._arena.owned(desc.segment)
        if own is not None:
            src = np.ndarray(
                (desc.count,), dtype=desc.dtype, buffer=own.shm.buf,
                offset=desc.offset,
            )
            out = self._copy_out(src, out)
            del src
            self._arena.ack(desc.segment)
            return out
        if arena_enabled():
            shm = self._attached.get(desc.segment)
            src = np.ndarray(
                (desc.count,), dtype=desc.dtype, buffer=shm.buf,
                offset=desc.offset,
            )
            out = self._copy_out(src, out)
            del src
        else:
            shm = shared_memory.SharedMemory(name=desc.segment)
            untrack(shm)
            copy_stats().record_attach()
            try:
                src = np.ndarray(
                    (desc.count,), dtype=desc.dtype, buffer=shm.buf,
                    offset=desc.offset,
                )
                out = self._copy_out(src, out)
                del src
            finally:
                shm.close()
        self._fabric.acks[desc.creator].put(desc.segment)
        return out

    def _inbound(self, payload: object) -> object:
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and isinstance(payload[1], _ShmSlice)
        ):
            return (payload[0], self._materialize(payload[1]))
        return payload

    def _reap(self, force: bool = False) -> None:
        """Apply queued acknowledgements: fully-acked slabs recycle to
        the arena free list (or unlink, in one-shot mode)."""
        acks = self._fabric.acks[self._rank]
        while True:
            try:
                name = acks.get_nowait()
            except _queue.Empty:
                break
            self._arena.ack(name)
        if force:
            self._arena.unlink_all()

    def teardown(self, grace_s: float = 2.0) -> list[str]:
        """End-of-rank cleanup: wait briefly for outstanding acks, then
        unlink every arena slab and close cached receiver mappings.
        Returns the names of segments that could not be unlinked (the
        parent sweeps them as a last resort)."""
        deadline = time.monotonic() + grace_s
        while not self._arena.all_acked() and time.monotonic() < deadline:
            self._reap()
            time.sleep(0.01)
        self._reap()
        failures = self._arena.unlink_all()
        self._attached.close_all()
        return failures

    # -- the fabric proper ---------------------------------------------

    def put(self, source: int, dest: int, tag: object, payload: object) -> None:
        self._admit_send(source, dest, tag)
        # Eager pickle: serializing here (instead of in the queue's
        # feeder thread) is what licenses ``isolating_fabric`` — once
        # put returns, the payload bytes are captured and the sender
        # may reuse its buffer. The feeder then only memcpys bytes.
        wire = pickle.dumps(
            (source, tag, self._outbound(payload)),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._fabric.inboxes[dest].put(wire)
        self.touch(source)

    def get(self, source: int, dest: int, tag: object) -> object:
        key = (source, tag)
        inbox = self._fabric.inboxes[dest]
        waited = 0.0
        while True:
            self._check_closed()
            self._check_cancel()
            ready = self._local.get(key)
            if ready:
                self.touch(dest)
                return ready.popleft()
            try:
                wire = inbox.get(timeout=POLL_SLICE)
            except _queue.Empty:
                waited += POLL_SLICE
                if waited >= self._timeout:
                    raise CommError(
                        f"receive timed out after {self._timeout}s: "
                        f"rank {dest} waiting for (source={source}, "
                        f"tag={tag!r}) — likely mismatched sends/receives "
                        f"or a collective mismatch"
                    ) from None
            else:
                src, got_tag, payload = pickle.loads(wire)
                self._local[(src, got_tag)].append(self._inbound(payload))

    def pending(self) -> dict[tuple, int]:
        """Locally buffered (demuxed but unconsumed) message counts."""
        return {
            key: len(fifo) for key, fifo in self._local.items() if fifo
        }


def _child_main(fabric, rank, program, args, extra, kwargs, hooks, conns, disks):
    """Rank body in the forked child: run the program, ship results and
    accounting deltas home, always tear the shared segments down."""
    fault_plan, retry_policy, cancel = hooks
    # Only this rank's pipe write end stays open: EOF detection in the
    # parent needs every other inherited copy closed.
    own = conns[rank][1]
    for p, (parent_end, child_end) in enumerate(conns):
        parent_end.close()
        if p != rank:
            child_end.close()

    router = ProcessRouter(fabric, rank)
    router.fault_plan = fault_plan
    router.retry_policy = retry_policy
    router.cancel_token = cancel
    comm = Comm(rank, fabric.size, router, CommStats(rank=rank))

    pool = get_pool()
    cstats = copy_stats()
    cstats.rebase_peak(pool.outstanding())
    copy_before = cstats.snapshot()
    io_before = [d.stats.snapshot() for d in (disks or [])]

    message: dict = {"rank": rank}
    try:
        value = program(comm, *args, *extra, **kwargs)
        message["outcome"] = "ok"
        message["value"] = value
    except BaseException as exc:  # noqa: BLE001 — must cross processes
        router.close()  # unblock sibling ranks waiting in receives
        message["outcome"] = "err"
        message["error"] = _portable_exception(exc)
    finally:
        message["segments"] = router.teardown()

    message["copy"] = copy_delta(copy_before, cstats.snapshot())
    message["comm"] = comm.stats.snapshot()
    io_after = [d.stats.snapshot() for d in (disks or [])]
    message["io"] = [
        {k: after[k] - before[k] for k in before}
        for before, after in zip(io_before, io_after)
    ]
    try:
        own.send(message)
    except Exception as exc:
        # Usually an unpicklable rank return value; resend without it.
        message["outcome"] = "err"
        message["value"] = None
        message["error"] = RemoteRankError(
            f"rank {rank} result could not cross the process boundary: {exc}"
        )
        try:
            own.send(message)
        except Exception:
            pass
    own.close()
    # Deliberately no ``cancel_join_thread`` here: exit must wait for the
    # queue feeder threads to flush, or a message a sibling is blocked on
    # could be dropped. On the failure path (undelivered messages filling
    # a queue pipe) the parent drains the fabric and then escalates to
    # terminate, so a wedged feeder cannot hang the run.


class ProcessTransport(Transport):
    """One forked OS process per rank; see the module docstring."""

    name = "process"

    def run(
        self,
        size,
        program,
        *args,
        rank_args=None,
        timeout=DEFAULT_TIMEOUT,
        watchdog_deadline=None,
        fault_plan=None,
        retry_policy=None,
        quarantine=None,
        cancel=None,
        disks=None,
        **kwargs,
    ):
        from repro.cluster.spmd import SpmdResult
        from repro.cluster.transport import ThreadTransport

        if size == 1:
            # Degenerate world: nothing to parallelize across processes,
            # and inline execution keeps single-rank debugging trivial —
            # the same choice the thread transport makes.
            return ThreadTransport().run(
                size, program, *args, rank_args=rank_args, timeout=timeout,
                watchdog_deadline=watchdog_deadline, fault_plan=fault_plan,
                retry_policy=retry_policy, quarantine=quarantine,
                cancel=cancel, disks=disks, **kwargs,
            )

        fabric = _Fabric(size, timeout)
        now = time.monotonic()
        for p in range(size):
            fabric.activity[p] = now  # baseline stamp per rank
        if cancel is not None:
            cancel.bind_shared_event(_CTX.Event())

        disks = list(disks) if disks else []
        conns = [_CTX.Pipe(duplex=False) for _ in range(size)]
        hooks = (fault_plan, retry_policy, cancel)
        procs = [
            _CTX.Process(
                target=_child_main,
                args=(
                    fabric, p, program, args,
                    rank_args[p] if rank_args is not None else (),
                    kwargs, hooks, conns, disks,
                ),
                name=f"spmd-rank-{p}",
                daemon=True,
            )
            for p in range(size)
        ]
        watchdog = None
        if watchdog_deadline is not None:
            from repro.resilience.watchdog import RankWatchdog

            watchdog = RankWatchdog(_ParentRouter(fabric), watchdog_deadline)

        messages: list[dict | None] = [None] * size
        try:
            for proc in procs:
                proc.start()
            for _, child_end in conns:
                child_end.close()
            if watchdog is not None:
                # Start polling only after the forks: forking a process
                # that already runs threads is the classic deadlock trap.
                watchdog.start()
            self._collect(fabric, procs, conns, messages, watchdog)
        finally:
            if watchdog is not None:
                watchdog.stop()
            # Drain before joining: a child exiting with undelivered
            # messages waits for its queue feeder to flush, which needs
            # room in the queue pipe.
            self._drain_fabric(fabric, close=False)
            self._join_all(procs)
            self._sweep_segments(messages, procs)
            self._drain_fabric(fabric, close=True)

        failures: list[tuple[int, BaseException]] = []
        stats: list[CommStats] = []
        returns: list = [None] * size
        meter = copy_stats()
        for p, msg in enumerate(messages):
            if msg is None:
                msg = {
                    "outcome": "err",
                    "error": RemoteRankError(
                        f"rank {p} process died without reporting "
                        f"({describe_exit(procs[p].exitcode)})"
                    ),
                }
            if msg["outcome"] == "ok":
                returns[p] = msg.get("value")
            else:
                failures.append((p, msg["error"]))
            stats.append(stats_from_snapshot(msg.get("comm"), rank=p))
            if msg.get("copy"):
                meter.merge_delta(msg["copy"])
            for disk, delta in zip(disks, msg.get("io", ())):
                disk.stats.merge_delta(delta)

        if watchdog is not None and watchdog.error is not None:
            failures.append((watchdog.error.rank, watchdog.error))
        if failures:
            raise_primary_failure(failures)
        result = SpmdResult(
            returns=returns, stats=stats, comm_retries=fabric.retries.value
        )
        if quarantine is not None:
            snap = quarantine.snapshot()
            result.degraded_disks = snap["degraded_disks"]
            result.reconstructed_blocks = snap["reconstructed_blocks"]
            result.checksum_failures = snap["checksum_failures"]
        return result

    # -- internals -------------------------------------------------------

    @staticmethod
    def _collect(fabric, procs, conns, messages, watchdog) -> None:
        """Receive every rank's result message while the ranks run.

        Results are read *concurrently* with the run (not after join):
        a rank blocks in ``Pipe.send`` if its message outgrows the pipe
        buffer, so joining first would deadlock. A watchdog firing (or a
        rank dying without a message) closes the fabric and the loop
        gives the survivors a short grace period to fail out.
        """
        remaining = {p: conns[p][0] for p in range(len(procs))}
        grace_until = None
        while remaining:
            if grace_until is None and (
                watchdog is not None and watchdog.fired.is_set()
            ):
                grace_until = time.monotonic() + 2.0
            if grace_until is not None and time.monotonic() > grace_until:
                break
            for conn in connection.wait(list(remaining.values()), timeout=0.1):
                p = next(q for q, c in remaining.items() if c is conn)
                try:
                    messages[p] = conn.recv()
                except (EOFError, OSError):
                    messages[p] = None  # died without reporting
                    fabric.closed.set()
                    if grace_until is None:
                        grace_until = time.monotonic() + 2.0
                del remaining[p]
                if watchdog is not None:
                    watchdog.rank_done(p)

    @staticmethod
    def _join_all(procs) -> None:
        for proc in procs:
            proc.join(timeout=2.0)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            if proc.is_alive():
                proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)

    @staticmethod
    def _sweep_segments(messages, procs=()) -> None:
        """Last-resort unlink of arena slabs a dead rank left behind.

        Two sources: names a rank *reported* but could not retire itself
        (terminated mid-teardown), and — for ranks that died without
        reporting at all (``os._exit``, SIGKILL) — a ``/dev/shm`` scan
        keyed by the dead child's pid, since every slab name is
        ``repro-shm-<creator pid>-<seq>``. Unlinks go by bare name
        (:func:`~repro.cluster.arena.unlink_by_name`): mapping a segment
        just to unlink it would fault its pages back in."""
        for msg in messages:
            for name in (msg or {}).get("segments", ()):
                unlink_by_name(name)
        silent_pids = {
            str(proc.pid)
            for proc, msg in zip(procs, messages)
            if msg is None and proc.pid is not None
        }
        if not silent_pids:
            return
        try:
            entries = os.listdir("/dev/shm")
        except OSError:
            return  # non-POSIX shm layout; reported names were handled
        for entry in entries:
            parts = entry.split("-")
            # repro-shm-<pid>-<seq>
            if (
                entry.startswith(SHM_PREFIX + "-")
                and len(parts) == 4
                and parts[2] in silent_pids
            ):
                unlink_by_name(entry)

    @staticmethod
    def _drain_fabric(fabric, close: bool) -> None:
        """Drop undelivered messages (and finally close the queues) so
        no feeder thread or pipe buffer outlives the run."""
        for q in fabric.inboxes + fabric.acks:
            try:
                while True:
                    q.get_nowait()
            except (_queue.Empty, OSError, EOFError):
                pass
            if close:
                q.close()
                q.cancel_join_thread()
