"""SPMD launcher: run ``P`` ranks of a program on threads.

Rank programs have the signature ``program(comm, *args, **kwargs)`` and
are written exactly like MPI programs (the paper's are C + MPI). Threads
are the right substrate here: the heavy per-rank work is NumPy sorting
and copying, which releases the GIL, so ranks genuinely overlap — the
same overlap structure the paper gets from pthreads.

If any rank raises, the world is shut down (unblocking ranks stuck in
receives) and an :class:`~repro.errors.SpmdError` carrying the first
failing rank propagates to the caller.

With ``watchdog_deadline=`` set, a
:class:`~repro.resilience.watchdog.RankWatchdog` additionally converts
a *hung* world (every rank silent past the deadline) into the same
structured ``SpmdError``, whose cause is a
:class:`~repro.errors.WatchdogTimeout` naming the stuck rank. Rank
threads are daemons, so a thread wedged in a sleep or hung syscall is
abandoned after a short grace period instead of pinning the process.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cluster.comm import Comm
from repro.cluster.mailbox import DEFAULT_TIMEOUT, MailboxRouter
from repro.cluster.stats import CommStats
from repro.errors import (
    Cancellation,
    CommError,
    ConfigError,
    SpmdError,
    WatchdogTimeout,
)


@dataclass
class SpmdResult:
    """Results of one SPMD run: per-rank return values and comm stats.

    When the run was given a
    :class:`~repro.resilience.quarantine.DiskQuarantine` the durability
    counters are filled in: ``degraded_disks`` (disk ids declared dead
    during or before the run), ``reconstructed_blocks`` (parity
    reconstructions served), and ``checksum_failures`` (block CRC
    mismatches detected).
    """

    returns: list
    stats: list[CommStats]
    comm_retries: int = field(default=0)
    degraded_disks: list[int] = field(default_factory=list)
    reconstructed_blocks: int = field(default=0)
    checksum_failures: int = field(default=0)

    def total_network_bytes(self) -> int:
        return sum(s.snapshot()["network_bytes"] for s in self.stats)

    def total_network_messages(self) -> int:
        return sum(s.snapshot()["network_messages"] for s in self.stats)


def _is_collateral(exc: BaseException) -> bool:
    """True for the CommError a rank gets because the world was already
    shutting down around it — noise, not the root cause."""
    return isinstance(exc, CommError) and "shut down" in str(exc)


def run_spmd(
    size: int,
    program: Callable,
    *args,
    rank_args: Sequence[tuple] | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    watchdog_deadline: float | None = None,
    fault_plan=None,
    retry_policy=None,
    quarantine=None,
    cancel=None,
    **kwargs,
) -> SpmdResult:
    """Run ``program(comm, *args, **kwargs)`` on ``size`` ranks.

    Parameters
    ----------
    size:
        Number of ranks (the cluster's ``P``).
    program:
        The rank program; its first argument is the rank's
        :class:`~repro.cluster.comm.Comm`.
    rank_args:
        Optional per-rank extra positional arguments: rank ``p`` runs
        ``program(comm, *args, *rank_args[p], **kwargs)``.
    timeout:
        Deadlock timeout for blocked receives, in seconds.
    watchdog_deadline:
        If set, seconds of universal rank silence after which a
        :class:`~repro.resilience.watchdog.RankWatchdog` aborts the run
        with a :class:`~repro.errors.WatchdogTimeout` cause.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan` injecting
        comm faults at the mailbox layer.
    retry_policy:
        Optional :class:`~repro.resilience.retry.RetryPolicy` retrying
        transient comm faults; retry counts surface as
        ``SpmdResult.comm_retries``.
    quarantine:
        Optional :class:`~repro.resilience.quarantine.DiskQuarantine`
        shared with the run's disks; its counters are snapshotted into
        the result's durability fields.
    cancel:
        Optional :class:`~repro.governor.CancelToken` attached to the
        mailbox fabric, so every blocked send/receive is a cancellation
        point. A run whose primary failure is a
        :class:`~repro.errors.Cancellation` re-raises it *unwrapped*
        (not inside :class:`~repro.errors.SpmdError`): the caller asked
        for the stop and should catch the structured cause directly.

    Returns
    -------
    SpmdResult
        ``returns[p]`` is rank ``p``'s return value; ``stats[p]`` its
        communication counters.
    """
    if size < 1:
        raise ConfigError(f"SPMD world needs at least 1 rank, got {size}")
    if rank_args is not None and len(rank_args) != size:
        raise ConfigError(
            f"rank_args must have one entry per rank ({size}), got {len(rank_args)}"
        )

    router = MailboxRouter(timeout=timeout)
    router.fault_plan = fault_plan
    router.retry_policy = retry_policy
    router.cancel_token = cancel
    stats = [CommStats(rank=p) for p in range(size)]
    comms = [Comm(p, size, router, stats[p]) for p in range(size)]
    returns: list = [None] * size
    failures: list[tuple[int, BaseException]] = []
    failure_lock = threading.Lock()

    watchdog = None
    if watchdog_deadline is not None:
        from repro.resilience.watchdog import RankWatchdog

        watchdog = RankWatchdog(router, watchdog_deadline)
    for p in range(size):
        router.touch(p)  # baseline stamp: a rank that never speaks is stuck

    def runner(p: int) -> None:
        extra = rank_args[p] if rank_args is not None else ()
        try:
            returns[p] = program(comms[p], *args, *extra, **kwargs)
        except BaseException as exc:  # noqa: BLE001 — must cross threads
            with failure_lock:
                failures.append((p, exc))
            router.close()  # unblock ranks waiting in receives
        finally:
            if watchdog is not None:
                watchdog.rank_done(p)

    if watchdog is not None:
        watchdog.start()
    if size == 1:
        # Degenerate world: run inline for easier debugging. (The
        # watchdog still works — closing the router unblocks a stuck
        # receive on the calling thread.)
        runner(0)
    else:
        threads = [
            threading.Thread(
                target=runner, args=(p,), name=f"spmd-rank-{p}", daemon=True
            )
            for p in range(size)
        ]
        for t in threads:
            t.start()
        if watchdog is None:
            for t in threads:
                t.join()
        else:
            for t in threads:
                while t.is_alive() and not watchdog.fired.is_set():
                    t.join(timeout=0.25)
                if watchdog.fired.is_set():
                    break
            if watchdog.fired.is_set():
                # The router is closed; give ranks a moment to fail out
                # of their receives, then abandon any thread still wedged
                # (daemons — they cannot pin the process).
                grace_until = time.monotonic() + 2.0
                for t in threads:
                    t.join(timeout=max(0.0, grace_until - time.monotonic()))
    if watchdog is not None:
        watchdog.stop()
        if watchdog.error is not None:
            with failure_lock:
                failures.append((watchdog.error.rank, watchdog.error))

    if failures:
        # A CommError("shut down") on another rank is collateral damage of
        # the primary failure; prefer reporting a non-collateral cause,
        # a genuine rank failure over a requested cancellation (the bug
        # outranks the stop that raced it), and either over the
        # watchdog's verdict. Within a class, report the lowest rank.
        def severity(exc: BaseException) -> int:
            if isinstance(exc, Cancellation):
                return 1
            if isinstance(exc, WatchdogTimeout):
                return 2
            if _is_collateral(exc):
                return 3
            return 0

        ranked = sorted(failures, key=lambda f: (severity(f[1]), f[0]))
        rank, cause = ranked[0]
        if isinstance(cause, Cancellation):
            # The caller asked for this stop; hand back the structured
            # cancellation itself, not a rank-failure wrapper.
            raise cause
        raise SpmdError(rank, cause) from cause
    result = SpmdResult(
        returns=returns, stats=stats, comm_retries=router.comm_retries
    )
    if quarantine is not None:
        snap = quarantine.snapshot()
        result.degraded_disks = snap["degraded_disks"]
        result.reconstructed_blocks = snap["reconstructed_blocks"]
        result.checksum_failures = snap["checksum_failures"]
    return result
