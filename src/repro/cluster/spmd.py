"""SPMD launcher: run ``P`` ranks of a program on a pluggable transport.

Rank programs have the signature ``program(comm, *args, **kwargs)`` and
are written exactly like MPI programs (the paper's are C + MPI). The
``backend`` argument selects the substrate through the
:class:`~repro.cluster.transport.Transport` registry:

* ``"thread"`` (default) — one daemon thread per rank. The heavy
  per-rank work is NumPy sorting and copying, which releases the GIL,
  so ranks genuinely overlap — the same overlap structure the paper
  gets from pthreads.
* ``"process"`` — one forked OS process per rank with shared-memory
  collectives, so rank-local Python-level compute escapes the GIL too.

If any rank raises, the world is shut down (unblocking ranks stuck in
receives) and an :class:`~repro.errors.SpmdError` carrying the first
failing rank propagates to the caller — ranked by the same severity
order on every backend (see
:func:`~repro.cluster.transport.failure_severity`).

With ``watchdog_deadline=`` set, a
:class:`~repro.resilience.watchdog.RankWatchdog` additionally converts
a *hung* world (every rank silent past the deadline) into the same
structured ``SpmdError``, whose cause is a
:class:`~repro.errors.WatchdogTimeout` naming the stuck rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cluster.mailbox import DEFAULT_TIMEOUT
from repro.cluster.stats import CommStats
from repro.cluster.transport import is_collateral as _is_collateral  # noqa: F401
from repro.errors import ConfigError


@dataclass
class SpmdResult:
    """Results of one SPMD run: per-rank return values and comm stats.

    When the run was given a
    :class:`~repro.resilience.quarantine.DiskQuarantine` the durability
    counters are filled in: ``degraded_disks`` (disk ids declared dead
    during or before the run), ``reconstructed_blocks`` (parity
    reconstructions served), and ``checksum_failures`` (block CRC
    mismatches detected).
    """

    returns: list
    stats: list[CommStats]
    comm_retries: int = field(default=0)
    degraded_disks: list[int] = field(default_factory=list)
    reconstructed_blocks: int = field(default=0)
    checksum_failures: int = field(default=0)
    #: Supervision record (see
    #: :class:`~repro.resilience.supervisor.SupervisorStats.as_dict`)
    #: when the run was launched with a ``restart_policy``; empty dict
    #: otherwise.
    supervisor: dict = field(default_factory=dict)

    def total_network_bytes(self) -> int:
        return sum(s.snapshot()["network_bytes"] for s in self.stats)

    def total_network_messages(self) -> int:
        return sum(s.snapshot()["network_messages"] for s in self.stats)


def run_spmd(
    size: int,
    program: Callable,
    *args,
    rank_args: Sequence[tuple] | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    watchdog_deadline: float | None = None,
    fault_plan=None,
    retry_policy=None,
    quarantine=None,
    cancel=None,
    backend: str = "thread",
    disks=None,
    restart_policy=None,
    **kwargs,
) -> SpmdResult:
    """Run ``program(comm, *args, **kwargs)`` on ``size`` ranks.

    Parameters
    ----------
    size:
        Number of ranks (the cluster's ``P``).
    program:
        The rank program; its first argument is the rank's
        :class:`~repro.cluster.comm.Comm`.
    rank_args:
        Optional per-rank extra positional arguments: rank ``p`` runs
        ``program(comm, *args, *rank_args[p], **kwargs)``.
    timeout:
        Deadlock timeout for blocked receives, in seconds.
    watchdog_deadline:
        If set, seconds of universal rank silence after which a
        :class:`~repro.resilience.watchdog.RankWatchdog` aborts the run
        with a :class:`~repro.errors.WatchdogTimeout` cause.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan` injecting
        comm faults at the fabric's send side.
    retry_policy:
        Optional :class:`~repro.resilience.retry.RetryPolicy` retrying
        transient comm faults; retry counts surface as
        ``SpmdResult.comm_retries``.
    quarantine:
        Optional :class:`~repro.resilience.quarantine.DiskQuarantine`
        shared with the run's disks; its counters are snapshotted into
        the result's durability fields.
    cancel:
        Optional :class:`~repro.governor.CancelToken` attached to the
        fabric, so every blocked send/receive is a cancellation
        point. A run whose primary failure is a
        :class:`~repro.errors.Cancellation` re-raises it *unwrapped*
        (not inside :class:`~repro.errors.SpmdError`): the caller asked
        for the stop and should catch the structured cause directly.
    backend:
        Transport to run on: ``"thread"`` (default) or ``"process"``
        (see :func:`~repro.cluster.transport.get_transport`).
    disks:
        The run's :class:`~repro.disks.virtual_disk.VirtualDisk` list.
        Only needed by non-shared-memory backends, which use it to
        merge the ranks' per-disk I/O counter deltas back into these
        (the caller's) stats objects after the join.
    restart_policy:
        Optional :class:`~repro.resilience.supervisor.RestartPolicy`.
        When set, the whole launch runs under a
        :class:`~repro.resilience.supervisor.RunSupervisor`: a
        restartable cohort failure (a killed or vanished rank, a
        watchdog timeout, an escaped transient fault) relaunches the
        *entire program from rank 0* on the same transport — identical
        supervision seam on every backend, so the conformance suite
        holds. The supervision record lands on
        ``SpmdResult.supervisor``. Programs launched this way must be
        idempotent (or resolve their own resume point); the
        checkpoint-aware seam in ``run_pass_program`` is the one the
        sorts use.

    Returns
    -------
    SpmdResult
        ``returns[p]`` is rank ``p``'s return value; ``stats[p]`` its
        communication counters.
    """
    from repro.cluster.transport import get_transport

    if size < 1:
        raise ConfigError(f"SPMD world needs at least 1 rank, got {size}")
    if rank_args is not None and len(rank_args) != size:
        raise ConfigError(
            f"rank_args must have one entry per rank ({size}), got {len(rank_args)}"
        )
    transport = get_transport(backend)

    def launch() -> SpmdResult:
        return transport.run(
            size,
            program,
            *args,
            rank_args=rank_args,
            timeout=timeout,
            watchdog_deadline=watchdog_deadline,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            quarantine=quarantine,
            cancel=cancel,
            disks=disks,
            **kwargs,
        )

    if restart_policy is None:
        return launch()
    # Transport.run fully tears its cohort down before raising
    # (join/terminate every rank, sweep fabric and segments), so the
    # bare seam needs no between-attempt hook beyond reviving any
    # quarantine state the dead attempt left armed.
    from repro.resilience.supervisor import RunSupervisor

    supervisor = RunSupervisor(restart_policy, cancel=cancel)

    def on_restart(restart: int, exc: BaseException) -> None:
        if quarantine is not None:
            quarantine.revive()

    result = supervisor.run(launch, on_restart=on_restart)
    result.supervisor = supervisor.stats.as_dict()
    return result
