"""SPMD launcher: run ``P`` ranks of a program on threads.

Rank programs have the signature ``program(comm, *args, **kwargs)`` and
are written exactly like MPI programs (the paper's are C + MPI). Threads
are the right substrate here: the heavy per-rank work is NumPy sorting
and copying, which releases the GIL, so ranks genuinely overlap — the
same overlap structure the paper gets from pthreads.

If any rank raises, the world is shut down (unblocking ranks stuck in
receives) and an :class:`~repro.errors.SpmdError` carrying the first
failing rank propagates to the caller.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cluster.comm import Comm
from repro.cluster.mailbox import DEFAULT_TIMEOUT, MailboxRouter
from repro.cluster.stats import CommStats
from repro.errors import CommError, ConfigError, SpmdError


@dataclass
class SpmdResult:
    """Results of one SPMD run: per-rank return values and comm stats."""

    returns: list
    stats: list[CommStats]

    def total_network_bytes(self) -> int:
        return sum(s.snapshot()["network_bytes"] for s in self.stats)

    def total_network_messages(self) -> int:
        return sum(s.snapshot()["network_messages"] for s in self.stats)


def run_spmd(
    size: int,
    program: Callable,
    *args,
    rank_args: Sequence[tuple] | None = None,
    timeout: float = DEFAULT_TIMEOUT,
    **kwargs,
) -> SpmdResult:
    """Run ``program(comm, *args, **kwargs)`` on ``size`` ranks.

    Parameters
    ----------
    size:
        Number of ranks (the cluster's ``P``).
    program:
        The rank program; its first argument is the rank's
        :class:`~repro.cluster.comm.Comm`.
    rank_args:
        Optional per-rank extra positional arguments: rank ``p`` runs
        ``program(comm, *args, *rank_args[p], **kwargs)``.
    timeout:
        Deadlock timeout for blocked receives, in seconds.

    Returns
    -------
    SpmdResult
        ``returns[p]`` is rank ``p``'s return value; ``stats[p]`` its
        communication counters.
    """
    if size < 1:
        raise ConfigError(f"SPMD world needs at least 1 rank, got {size}")
    if rank_args is not None and len(rank_args) != size:
        raise ConfigError(
            f"rank_args must have one entry per rank ({size}), got {len(rank_args)}"
        )

    router = MailboxRouter(timeout=timeout)
    stats = [CommStats(rank=p) for p in range(size)]
    comms = [Comm(p, size, router, stats[p]) for p in range(size)]
    returns: list = [None] * size
    failures: list[tuple[int, BaseException]] = []
    failure_lock = threading.Lock()

    def runner(p: int) -> None:
        extra = rank_args[p] if rank_args is not None else ()
        try:
            returns[p] = program(comms[p], *args, *extra, **kwargs)
        except BaseException as exc:  # noqa: BLE001 — must cross threads
            with failure_lock:
                failures.append((p, exc))
            router.close()  # unblock ranks waiting in receives

    if size == 1:
        # Degenerate world: run inline for easier debugging.
        runner(0)
    else:
        threads = [
            threading.Thread(target=runner, args=(p,), name=f"spmd-rank-{p}")
            for p in range(size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    if failures:
        failures.sort(key=lambda f: f[0])
        rank, cause = failures[0]
        # A CommError("shut down") on another rank is collateral damage of
        # the primary failure; prefer reporting a non-collateral cause.
        for p, exc in failures:
            if not (isinstance(exc, CommError) and "shut down" in str(exc)):
                rank, cause = p, exc
                break
        raise SpmdError(rank, cause) from cause
    return SpmdResult(returns=returns, stats=stats)
