"""MPI-like communicator for the in-process SPMD engine.

The interface follows mpi4py's lowercase (object) methods: ``send`` /
``recv`` / ``bcast`` / ``scatter`` / ``gather`` / ``allgather`` /
``alltoall`` / ``allreduce`` — plus ``alltoallv`` taking one array per
destination (the shape every columnsort communicate stage uses).

Semantics intentionally modeled on MPI:

* **copy-on-send** — NumPy arrays are copied as they enter the fabric,
  so a sender mutating its buffer after ``send`` cannot corrupt the
  message (there is no shared memory between "nodes");
* **non-overtaking order** per (source, dest, tag);
* collectives must be called by every rank in the same order; a
  mismatch raises :class:`~repro.errors.CommError` (detected via the
  operation name traveling with each internal message) rather than
  deadlocking.

Every send is metered by :class:`~repro.cluster.stats.CommStats`,
self-messages and network messages separately (paper §3 reasons about
exactly this split).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.cluster.mailbox import MailboxRouter
from repro.cluster.stats import CommStats
from repro.errors import CommError
from repro.membuf import copy_stats, get_pool, legacy_copies


def _isolate(payload: object, fabric_isolates: bool = False) -> object:
    """Copy array payloads entering the fabric (no shared memory between
    simulated nodes). Non-array payloads are control-plane metadata and
    are passed through; senders must not mutate them after sending.

    On the pooled path the copy lands in an *untracked* pool buffer
    (``grab`` — ownership transfers to the receiver, which may keep it
    indefinitely); the bytes duplicated are metered either way.

    ``fabric_isolates=True`` (a router advertising ``isolating_fabric``,
    e.g. the process backend's eager-pickling queues) means the fabric
    itself captures the payload bytes inside ``put`` — a second copy
    here would be pure overhead, so only the *meter* fires: the copy
    semantically happens (MPI copy-on-send holds, and the byte meters
    stay identical across backends), the fabric just provides it.
    """
    if isinstance(payload, np.ndarray):
        copy_stats().record_copy(payload.nbytes)
        if fabric_isolates:
            return payload
        if payload.ndim == 1 and payload.size and not legacy_copies():
            buf = get_pool().grab(payload.dtype, payload.shape[0])
            np.copyto(buf, payload)
            return buf
        return payload.copy()
    if isinstance(payload, (list, tuple)):
        return type(payload)(_isolate(x, fabric_isolates) for x in payload)
    return payload


class Comm:
    """One rank's endpoint of the SPMD world."""

    def __init__(
        self,
        rank: int,
        size: int,
        router: MailboxRouter,
        stats: CommStats | None = None,
    ) -> None:
        self._rank = rank
        self._size = size
        self._router = router
        self.stats = stats if stats is not None else CommStats(rank=rank)
        self._epoch = 0
        # True when the router captures payload bytes inside put()
        # (process backend's eager pickle); _isolate then only meters.
        self._fabric_isolates = getattr(router, "isolating_fabric", False)

    @property
    def rank(self) -> int:
        """This rank's index, ``0 .. size-1``."""
        return self._rank

    def _top_rank(self) -> int:
        """This rank's index in the top-level world (sub-communicators
        override; used to give split groups globally unique identity)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the world (the cluster's ``P``)."""
        return self._size

    @property
    def shared_fabric(self) -> bool:
        """Whether every rank shares one address space (thread backend).

        On a shared fabric, process-global meters (disk ``IoStats``,
        the buffer pool) already see every rank's work, so rank 0 may
        read them directly. On a non-shared fabric (process backend)
        each rank sees only its own counters and must gather —
        :class:`~repro.oocs.base.PassMarker` switches on exactly this.
        """
        return getattr(self._router, "shared_fabric", True)

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------

    def send(self, payload: object, dest: int, tag: int = 0) -> None:
        """Send ``payload`` to ``dest``. Never blocks (buffered)."""
        self._check_rank(dest)
        self.stats.record_send(dest, payload, "send")
        self._router.put(
            self._rank, dest, ("p2p", tag),
            _isolate(payload, self._fabric_isolates),
        )

    def recv(self, source: int, tag: int = 0) -> object:
        """Receive the next message from ``source`` on ``tag``."""
        self._check_rank(source)
        return self._router.get(source, self._rank, ("p2p", tag))

    def sendrecv(
        self, payload: object, dest: int, source: int | None = None, tag: int = 0
    ) -> object:
        """Combined send+receive (safe against exchange deadlock)."""
        if source is None:
            source = dest
        self.send(payload, dest, tag)
        return self.recv(source, tag)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------

    def _coll_tag(self) -> tuple:
        tag = ("coll", self._epoch)
        self._epoch += 1
        return tag

    def _coll_send(self, dest: int, tag: tuple, op: str, payload: object) -> None:
        self.stats.record_send(dest, payload, op)
        self._router.put(
            self._rank, dest, tag,
            (op, _isolate(payload, self._fabric_isolates)),
        )

    def _coll_put_unmetered(self, dest: int, tag: tuple, op: str, payload) -> None:
        """Deliver without counting as a message (empty alltoallv slots)."""
        self._router.put(self._rank, dest, tag, (op, payload))

    def _coll_send_view(self, dest: int, tag: tuple, op: str, payload) -> None:
        """Metered delivery of an *already isolated* payload — a disjoint
        view of a fresh packed buffer — skipping the ``_isolate`` copy."""
        self.stats.record_send(dest, payload, op)
        self._router.put(self._rank, dest, tag, (op, payload))

    def _coll_recv(self, source: int, tag: tuple, op: str) -> object:
        got_op, payload = self._router.get(source, self._rank, tag)
        if got_op != op:
            raise CommError(
                f"collective mismatch on rank {self._rank}: expected {op!r} "
                f"from rank {source}, found {got_op!r} — ranks are calling "
                f"collectives in different orders"
            )
        return payload

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._size:
            raise CommError(f"rank {rank} out of range for size {self._size}")

    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""
        tag = self._coll_tag()
        for dest in range(self._size):
            self._coll_send(dest, tag, "barrier", None)
        for source in range(self._size):
            self._coll_recv(source, tag, "barrier")

    def bcast(self, payload: object, root: int = 0) -> object:
        """Broadcast ``payload`` from ``root``; every rank returns it."""
        self._check_rank(root)
        tag = self._coll_tag()
        if self._rank == root:
            for dest in range(self._size):
                self._coll_send(dest, tag, "bcast", payload)
        return self._coll_recv(root, tag, "bcast")

    def scatter(self, payloads: Sequence[object] | None, root: int = 0) -> object:
        """Rank ``root`` provides one payload per rank; each rank returns
        its own."""
        self._check_rank(root)
        tag = self._coll_tag()
        if self._rank == root:
            if payloads is None or len(payloads) != self._size:
                raise CommError(
                    f"scatter root must supply exactly {self._size} payloads"
                )
            for dest in range(self._size):
                self._coll_send(dest, tag, "scatter", payloads[dest])
        return self._coll_recv(root, tag, "scatter")

    def gather(self, payload: object, root: int = 0) -> list | None:
        """Gather one payload per rank at ``root`` (others return None)."""
        self._check_rank(root)
        tag = self._coll_tag()
        self._coll_send(root, tag, "gather", payload)
        if self._rank != root:
            return None
        return [self._coll_recv(source, tag, "gather") for source in range(self._size)]

    def allgather(self, payload: object) -> list:
        """Gather one payload per rank at every rank."""
        tag = self._coll_tag()
        for dest in range(self._size):
            self._coll_send(dest, tag, "allgather", payload)
        return [
            self._coll_recv(source, tag, "allgather") for source in range(self._size)
        ]

    def gather_oob(self, payload: object, root: int = 0) -> list | None:
        """Out-of-band gather: like :meth:`gather` but *unmetered*.

        For accounting metadata that must cross ranks without becoming
        part of the communication accounting itself (e.g. the per-rank
        disk-I/O deltas :class:`~repro.oocs.base.PassMarker` combines on
        a non-shared fabric). The paper counts messages carrying
        records; a counter snapshot is bookkeeping, so metering it would
        make ``CommStats`` differ between backends that need the gather
        and backends that do not.
        """
        self._check_rank(root)
        tag = self._coll_tag()
        self._coll_put_unmetered(root, tag, "gather_oob", payload)
        if self._rank != root:
            return None
        return [
            self._coll_recv(source, tag, "gather_oob")
            for source in range(self._size)
        ]

    def barrier_oob(self) -> None:
        """Out-of-band barrier: like :meth:`barrier` but *unmetered*
        (see :meth:`gather_oob`). For synchronizing accounting
        snapshots without the synchronization itself showing up in the
        communication accounting."""
        tag = self._coll_tag()
        for dest in range(self._size):
            self._coll_put_unmetered(dest, tag, "barrier_oob", None)
        for source in range(self._size):
            self._coll_recv(source, tag, "barrier_oob")

    def alltoall(self, payloads: Sequence[object]) -> list:
        """Each rank provides one payload per destination; returns the
        payloads addressed to this rank, indexed by source."""
        if len(payloads) != self._size:
            raise CommError(
                f"alltoall needs exactly {self._size} payloads, got {len(payloads)}"
            )
        tag = self._coll_tag()
        for dest in range(self._size):
            self._coll_send(dest, tag, "alltoall", payloads[dest])
        return [
            self._coll_recv(source, tag, "alltoall") for source in range(self._size)
        ]

    def alltoallv(self, arrays: Sequence[np.ndarray]) -> list[np.ndarray]:
        """All-to-all of variable-length record arrays — the shape of
        every columnsort communicate stage.

        Empty arrays are still delivered (the receive side stays uniform)
        but are not metered: the paper counts *messages carrying records*
        (§3 properties 1-3), so the stats must match that accounting.

        Fast path (1-D arrays sharing one dtype, unless
        ``REPRO_LEGACY_COPIES`` is set): all outgoing parts are packed
        once into a single fresh contiguous buffer and each destination
        receives a disjoint *view* of it — one copy total instead of one
        ``_isolate`` copy per destination. The packed buffer is never
        mutated by the sender and never pooled (receivers may hold their
        views indefinitely), so MPI mutation semantics are preserved:
        receivers can write into their slice without affecting anyone
        else's.
        """
        if len(arrays) != self._size:
            raise CommError(
                f"alltoallv needs exactly {self._size} arrays, got {len(arrays)}"
            )
        tag = self._coll_tag()
        packable = not legacy_copies() and all(
            isinstance(a, np.ndarray)
            and a.ndim == 1
            and a.dtype == arrays[0].dtype
            for a in arrays
        )
        if packable:
            self._alltoallv_packed(arrays, tag)
        else:
            for dest in range(self._size):
                arr = arrays[dest]
                if len(arr) == 0:
                    self._coll_put_unmetered(dest, tag, "alltoallv", arr.copy())
                    continue
                self._coll_send(dest, tag, "alltoallv", arr)
        return [
            self._coll_recv(source, tag, "alltoallv") for source in range(self._size)
        ]

    def _alltoallv_packed(self, arrays: Sequence[np.ndarray], tag: tuple) -> None:
        """Send side of the contiguous alltoallv fast path: one packed
        buffer, one offset per destination, views out.

        The buffer comes from the router (``alloc_packed``) so each
        transport can choose its backing store: plain heap memory on the
        thread fabric, a ``multiprocessing.shared_memory`` segment on
        the process fabric. Allocation is unmetered on every backend, so
        the copy accounting below is byte-identical either way.
        """
        total = sum(len(a) for a in arrays)
        packed = self._router.alloc_packed(arrays[0].dtype, total)
        offset = 0
        for dest in range(self._size):
            arr = arrays[dest]
            n = len(arr)
            if n == 0:
                self._coll_put_unmetered(dest, tag, "alltoallv", arr.copy())
                continue
            part = packed[offset : offset + n]
            np.copyto(part, arr)
            offset += n
            copy_stats().record_copy(part.nbytes)
            copy_stats().record_zero_copy(part.nbytes)
            self._coll_send_view(dest, tag, "alltoallv", part)

    def allreduce(self, value, op: Callable = None):
        """Combine one value per rank with ``op`` (default: sum) and
        return the result on every rank."""
        parts = self.allgather(value)
        if op is None:
            total = parts[0]
            for part in parts[1:]:
                total = total + part
            return total
        result = parts[0]
        for part in parts[1:]:
            result = op(result, part)
        return result

    def exscan(self, value):
        """Exclusive prefix sum across ranks (rank 0 gets 0) — used by
        the distributed radix sort to place buckets."""
        parts = self.allgather(value)
        total = 0
        for source in range(self._rank):
            total = total + parts[source]
        return total

    # ------------------------------------------------------------------
    # Sub-communicators
    # ------------------------------------------------------------------

    def split(self, color: int, key: int | None = None) -> "Comm":
        """MPI_Comm_split: ranks with equal ``color`` form a
        sub-communicator, ordered by ``key`` (default: world rank).

        The sub-communicator shares the world's message fabric but uses
        namespaced tags, so point-to-point and collective traffic on the
        child never collides with the parent's. Used by the adjustable
        height interpretation (g-columnsort), whose sort stages are
        distributed sorts *within* processor groups.
        """
        if key is None:
            key = self._rank
        membership = self.allgather((color, key, self._top_rank()))
        members = sorted(
            (k, top) for (c, k, top) in membership if c == color
        )
        top_ranks = [top for _, top in members]
        return _SubComm(self, top_ranks)


class _SubComm(Comm):
    """A communicator over a subset of the world's ranks.

    Routes through the top-level mailbox fabric using *top-level* rank
    indices, with tags namespaced by the member list (itself expressed
    in top-level ranks, so nested splits can never collide). Shares the
    parent's :class:`CommStats` — communication is communication.
    """

    def __init__(self, parent: Comm, top_ranks: list[int]) -> None:
        my_top = parent._top_rank()
        if my_top not in top_ranks:
            raise CommError(
                f"rank {my_top} is not a member of the split group {top_ranks}"
            )
        self._top_ranks = top_ranks
        self._my_top = my_top
        self._group_id = tuple(top_ranks)
        super().__init__(
            rank=top_ranks.index(my_top),
            size=len(top_ranks),
            router=parent._router,
            stats=parent.stats,
        )

    def _top_rank(self) -> int:
        return self._my_top

    def _top_of(self, rank: int) -> int:
        self._check_rank(rank)
        return self._top_ranks[rank]

    def send(self, payload: object, dest: int, tag: int = 0) -> None:
        top_dest = self._top_of(dest)
        self.stats.record_send(top_dest, payload, "send")
        self._router.put(
            self._my_top, top_dest, ("sub-p2p", self._group_id, tag),
            _isolate(payload, self._fabric_isolates),
        )

    def recv(self, source: int, tag: int = 0) -> object:
        return self._router.get(
            self._top_of(source), self._my_top, ("sub-p2p", self._group_id, tag)
        )

    def _coll_tag(self) -> tuple:
        tag = ("sub-coll", self._group_id, self._epoch)
        self._epoch += 1
        return tag

    def _coll_send(self, dest: int, tag: tuple, op: str, payload: object) -> None:
        top_dest = self._top_of(dest)
        self.stats.record_send(top_dest, payload, op)
        self._router.put(
            self._my_top, top_dest, tag,
            (op, _isolate(payload, self._fabric_isolates)),
        )

    def _coll_put_unmetered(self, dest: int, tag: tuple, op: str, payload) -> None:
        self._router.put(self._my_top, self._top_of(dest), tag, (op, payload))

    def _coll_send_view(self, dest: int, tag: tuple, op: str, payload) -> None:
        top_dest = self._top_of(dest)
        self.stats.record_send(top_dest, payload, op)
        self._router.put(self._my_top, top_dest, tag, (op, payload))

    def _coll_recv(self, source: int, tag: tuple, op: str) -> object:
        got_op, payload = self._router.get(
            self._top_of(source), self._my_top, tag
        )
        if got_op != op:
            raise CommError(
                f"collective mismatch on sub-rank {self.rank}: expected "
                f"{op!r} from sub-rank {source}, found {got_op!r}"
            )
        return payload

