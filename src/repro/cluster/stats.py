"""Per-rank communication accounting.

The paper's §3 argues about *message counts*: the subblock pass sends
``⌈P/√s⌉`` messages per processor per round instead of ``P``, and zero
bytes cross the network when ``√s ≥ P`` (the single message stays on its
sender). :class:`CommStats` meters exactly those quantities so the tests
and the T-msgcount benchmark can check the claims against a live run.

Self-messages (a rank "sending" to itself) are counted separately from
network traffic, mirroring the paper's observation that the message a
processor addresses to itself "does not need to go over the network".
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field


def payload_nbytes(payload: object) -> int:
    """Best-effort byte size of a message payload.

    NumPy arrays (the only payloads on the algorithms' hot paths) are
    measured exactly; other objects are approximated, which is fine —
    they only appear in control-plane messages.
    """
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(x) for x in payload)
    return 0


@dataclass
class CommStats:
    """Communication counters for one rank.

    ``messages``/``bytes`` count everything the rank sent (collectives
    included); the ``network_*`` variants exclude messages addressed to
    the sender itself. ``by_op`` breaks messages down by the operation
    that produced them (``"send"``, ``"alltoallv"``, …).
    """

    rank: int = 0
    messages: int = 0
    bytes: int = 0
    network_messages: int = 0
    network_bytes: int = 0
    by_op: Counter = field(default_factory=Counter)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_send(self, dest: int, payload: object, op: str) -> None:
        size = payload_nbytes(payload)
        with self._lock:
            self.messages += 1
            self.bytes += size
            self.by_op[op] += 1
            if dest != self.rank:
                self.network_messages += 1
                self.network_bytes += size

    def snapshot(self) -> dict:
        """A plain-dict copy (safe to compare/serialize in tests)."""
        with self._lock:
            return {
                "rank": self.rank,
                "messages": self.messages,
                "bytes": self.bytes,
                "network_messages": self.network_messages,
                "network_bytes": self.network_bytes,
                "by_op": dict(self.by_op),
            }

    def reset(self) -> None:
        with self._lock:
            self.messages = 0
            self.bytes = 0
            self.network_messages = 0
            self.network_bytes = 0
            self.by_op.clear()


def stats_from_snapshot(snap: dict | None, rank: int = 0) -> CommStats:
    """Rebuild a :class:`CommStats` from a :meth:`CommStats.snapshot`.

    Live ``CommStats`` objects hold a lock and cannot cross a process
    boundary; the process transport ships each rank's snapshot dict home
    and rehydrates it here, so ``SpmdResult.stats`` has the same shape
    on every backend. A missing snapshot (a rank that died before
    reporting) yields zeroed counters.
    """
    stats = CommStats(rank=rank)
    if snap is None:
        return stats
    stats.rank = snap.get("rank", rank)
    stats.messages = snap.get("messages", 0)
    stats.bytes = snap.get("bytes", 0)
    stats.network_messages = snap.get("network_messages", 0)
    stats.network_bytes = snap.get("network_bytes", 0)
    stats.by_op = Counter(snap.get("by_op", {}))
    return stats


def measured_wall(passes: list) -> dict[str, float]:
    """Aggregate measured per-stage wall time across passes.

    Each pass is a :class:`~repro.simulate.trace.PassTrace` whose
    ``wall`` dict was filled by the pipeline's
    :class:`~repro.pipeline.StageClock` (categories ``read_wait``,
    ``compute``, ``comm``, ``incore``, ``write_wait``). Returns the
    category → seconds sum; empty when no pass carried measurements
    (e.g. the run had ``collect_trace=False``).
    """
    total: dict[str, float] = {}
    for pass_trace in passes:
        for category, seconds in getattr(pass_trace, "wall", {}).items():
            total[category] = total.get(category, 0.0) + seconds
    return total


def combined(stats: list[CommStats]) -> dict:
    """Aggregate counters across ranks (for whole-run assertions)."""
    total = {
        "messages": 0,
        "bytes": 0,
        "network_messages": 0,
        "network_bytes": 0,
    }
    for s in stats:
        snap = s.snapshot()
        for key in total:
            total[key] += snap[key]
    return total


def copy_totals() -> dict:
    """Process-wide data-plane copy counters (see :mod:`repro.membuf`).

    Communication volume and memory-copy volume are the two halves of the
    data-movement story: ``CommStats`` meters what crosses ranks, this
    meters what crosses buffers. The counters are cumulative for the
    process; callers who want per-run deltas should snapshot before and
    after (``run_spmd_metered`` does this for every algorithm run).
    """
    from repro.membuf import copy_stats

    return copy_stats().snapshot()
