"""Thread-safe mailboxes backing point-to-point communication.

One FIFO queue per ``(source, dest, tag)`` triple. MPI guarantees
non-overtaking order between a fixed (source, dest, tag) pair; a queue
per triple gives exactly that, while messages on different tags may be
consumed in any order — matching the semantics the rank programs rely
on.
"""

from __future__ import annotations

import queue
import threading
from collections import defaultdict

from repro.errors import CommError

#: Default seconds a receive waits before declaring deadlock. Rank
#: programs in this package exchange messages promptly; a stuck receive
#: virtually always means mismatched sends/receives.
DEFAULT_TIMEOUT = 120.0


class MailboxRouter:
    """The shared message fabric of one SPMD world."""

    def __init__(self, timeout: float = DEFAULT_TIMEOUT) -> None:
        self._timeout = timeout
        self._queues: dict[tuple[int, int, object], queue.SimpleQueue] = {}
        self._lock = threading.Lock()
        self._closed = False

    def _queue_for(self, source: int, dest: int, tag: object) -> queue.SimpleQueue:
        key = (source, dest, tag)
        with self._lock:
            q = self._queues.get(key)
            if q is None:
                q = self._queues[key] = queue.SimpleQueue()
            return q

    def put(self, source: int, dest: int, tag: object, payload: object) -> None:
        if self._closed:
            raise CommError("communicator has been shut down")
        self._queue_for(source, dest, tag).put(payload)

    def get(self, source: int, dest: int, tag: object) -> object:
        # Poll in short slices so that a world shutdown (another rank
        # failed) interrupts blocked receivers promptly instead of after
        # the full deadlock timeout.
        q = self._queue_for(source, dest, tag)
        waited = 0.0
        slice_s = 0.05
        while True:
            if self._closed:
                raise CommError("communicator has been shut down")
            try:
                return q.get(timeout=slice_s)
            except queue.Empty:
                waited += slice_s
                if waited >= self._timeout:
                    raise CommError(
                        f"receive timed out after {self._timeout}s: "
                        f"rank {dest} waiting for (source={source}, tag={tag!r}) — "
                        f"likely mismatched sends/receives or a collective mismatch"
                    ) from None

    def pending(self) -> dict[tuple[int, int, object], int]:
        """Undelivered message counts per (source, dest, tag) — used by
        tests to assert the fabric drains completely."""
        with self._lock:
            counts = defaultdict(int)
            for key, q in self._queues.items():
                n = q.qsize()
                if n:
                    counts[key] = n
            return dict(counts)

    def close(self) -> None:
        self._closed = True
