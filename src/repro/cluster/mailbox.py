"""Thread-safe mailboxes backing point-to-point communication.

One FIFO queue per ``(source, dest, tag)`` triple. MPI guarantees
non-overtaking order between a fixed (source, dest, tag) pair; a queue
per triple gives exactly that, while messages on different tags may be
consumed in any order — matching the semantics the rank programs rely
on.

The router is also where the resilience layer instruments the fabric:
an attached :class:`~repro.resilience.faults.FaultPlan` injects comm
faults at the top of :meth:`MailboxRouter.put` (before the payload is
enqueued, so a retried send never duplicates a message), an attached
:class:`~repro.resilience.retry.RetryPolicy` retries transient comm
faults, and every put/successful get stamps per-rank activity times the
:class:`~repro.resilience.watchdog.RankWatchdog` polls to detect stuck
ranks.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import defaultdict

from repro.errors import CommError

#: Default seconds a receive waits before declaring deadlock. Rank
#: programs in this package exchange messages promptly; a stuck receive
#: virtually always means mismatched sends/receives.
DEFAULT_TIMEOUT = 120.0


class MailboxRouter:
    """The shared message fabric of one SPMD world."""

    def __init__(self, timeout: float = DEFAULT_TIMEOUT) -> None:
        self._timeout = timeout
        self._queues: dict[tuple[int, int, object], queue.SimpleQueue] = {}
        self._lock = threading.Lock()
        self._closed = False
        self.fault_plan = None
        self.retry_policy = None
        self.cancel_token = None
        self.comm_retries = 0
        self._activity: dict[int, float] = {}

    def _check_cancel(self) -> None:
        """Raise the attached token's structured exception once it is
        cancelled, so blocked sends/receives unwind within one poll
        slice (duck-typed; no :mod:`repro.governor` import)."""
        token = self.cancel_token
        if token is not None and token.cancelled():
            raise token.exception()

    def _queue_for(self, source: int, dest: int, tag: object) -> queue.SimpleQueue:
        key = (source, dest, tag)
        with self._lock:
            q = self._queues.get(key)
            if q is None:
                q = self._queues[key] = queue.SimpleQueue()
            return q

    # -- watchdog support ----------------------------------------------

    def touch(self, rank: int) -> None:
        """Stamp ``rank`` as having made progress just now."""
        with self._lock:
            self._activity[rank] = time.monotonic()

    def activity(self) -> dict[int, float]:
        """Latest progress stamp (``time.monotonic()``) per rank."""
        with self._lock:
            return dict(self._activity)

    # ------------------------------------------------------------------

    def put(self, source: int, dest: int, tag: object, payload: object) -> None:
        plan = self.fault_plan
        policy = self.retry_policy
        attempt = 1
        while True:
            if self._closed:
                raise CommError("communicator has been shut down")
            self._check_cancel()
            try:
                if plan is not None:
                    plan.check("comm", where=f"{source}->{dest} tag={tag!r}")
                break
            except CommError as exc:
                if (
                    policy is None
                    or attempt >= policy.max_attempts
                    or not policy.retryable(exc)
                ):
                    raise
                with self._lock:
                    self.comm_retries += 1
                token = self.cancel_token
                if token is not None:
                    token.sleep(policy.delay_s(attempt))
                else:
                    time.sleep(policy.delay_s(attempt))
                attempt += 1
        self._queue_for(source, dest, tag).put(payload)
        self.touch(source)

    def get(self, source: int, dest: int, tag: object) -> object:
        # Poll in short slices so that a world shutdown (another rank
        # failed) interrupts blocked receivers promptly instead of after
        # the full deadlock timeout.
        q = self._queue_for(source, dest, tag)
        waited = 0.0
        slice_s = 0.05
        while True:
            if self._closed:
                raise CommError("communicator has been shut down")
            self._check_cancel()
            try:
                payload = q.get(timeout=slice_s)
            except queue.Empty:
                waited += slice_s
                if waited >= self._timeout:
                    raise CommError(
                        f"receive timed out after {self._timeout}s: "
                        f"rank {dest} waiting for (source={source}, tag={tag!r}) — "
                        f"likely mismatched sends/receives or a collective mismatch"
                    ) from None
            else:
                self.touch(dest)
                return payload

    def pending(self) -> dict[tuple[int, int, object], int]:
        """Undelivered message counts per (source, dest, tag) — used by
        tests to assert the fabric drains completely."""
        with self._lock:
            counts = defaultdict(int)
            for key, q in self._queues.items():
                n = q.qsize()
                if n:
                    counts[key] = n
            return dict(counts)

    def close(self) -> None:
        self._closed = True
