"""Thread-safe mailboxes backing point-to-point communication.

One FIFO queue per ``(source, dest, tag)`` triple. MPI guarantees
non-overtaking order between a fixed (source, dest, tag) pair; a queue
per triple gives exactly that, while messages on different tags may be
consumed in any order — matching the semantics the rank programs rely
on.

The router is also where the resilience layer instruments the fabric:
an attached :class:`~repro.resilience.faults.FaultPlan` injects comm
faults at the top of :meth:`MailboxRouter.put` (before the payload is
enqueued, so a retried send never duplicates a message), an attached
:class:`~repro.resilience.retry.RetryPolicy` retries transient comm
faults, and every put/successful get stamps per-rank activity times the
:class:`~repro.resilience.watchdog.RankWatchdog` polls to detect stuck
ranks.

:class:`MailboxRouter` is the fabric of the *thread* transport; the
process transport's router (:mod:`repro.cluster.process_backend`)
shares the send-admission logic through :class:`SendAdmission`, so
fault injection, retry accounting, and cancellation unwinding behave
identically on both backends.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import defaultdict

import numpy as np

from repro.errors import CommError

#: Default seconds a receive waits before declaring deadlock. Rank
#: programs in this package exchange messages promptly; a stuck receive
#: virtually always means mismatched sends/receives.
DEFAULT_TIMEOUT = 120.0

#: Seconds per poll slice in blocked receives (and cancel checks).
POLL_SLICE = 0.05


class SendAdmission:
    """Shared send-side admission control for every transport's router.

    The sequence every ``put`` must run before a payload may enter the
    fabric — closed check, cancellation check, fault injection, retry
    with backoff — lives here once, so the thread and process routers
    cannot drift. Subclasses provide the backend-specific state:

    * :meth:`_is_closed` — whether the world has been shut down;
    * :meth:`_count_retry` — account one retried send (surfaces as
      ``SpmdResult.comm_retries``).

    ``fault_plan`` / ``retry_policy`` / ``cancel_token`` are plain
    attributes the SPMD launcher assigns (duck-typed; no
    :mod:`repro.resilience` or :mod:`repro.governor` import).
    """

    fault_plan = None
    retry_policy = None
    cancel_token = None

    def _is_closed(self) -> bool:
        raise NotImplementedError

    def _count_retry(self) -> None:
        raise NotImplementedError

    def _check_cancel(self) -> None:
        """Raise the attached token's structured exception once it is
        cancelled, so blocked sends/receives unwind within one poll
        slice."""
        token = self.cancel_token
        if token is not None and token.cancelled():
            raise token.exception()

    def _check_closed(self) -> None:
        if self._is_closed():
            raise CommError("communicator has been shut down")

    def _admit_send(self, source: int, dest: int, tag: object) -> None:
        """Run the closed/cancel/fault/retry ladder for one send."""
        plan = self.fault_plan
        policy = self.retry_policy
        attempt = 1
        while True:
            self._check_closed()
            self._check_cancel()
            try:
                if plan is not None:
                    plan.check("comm", where=f"{source}->{dest} tag={tag!r}")
                return
            except CommError as exc:
                if (
                    policy is None
                    or attempt >= policy.max_attempts
                    or not policy.retryable(exc)
                ):
                    raise
                self._count_retry()
                token = self.cancel_token
                if token is not None:
                    token.sleep(policy.delay_s(attempt))
                else:
                    time.sleep(policy.delay_s(attempt))
                attempt += 1


class MailboxRouter(SendAdmission):
    """The shared message fabric of one SPMD world (thread transport).

    ``shared_fabric`` is True: every rank runs in the same address
    space, so payloads cross the fabric by reference, stats objects are
    shared, and rank 0 can see every disk's counters directly.
    """

    #: All ranks share one address space (see ``Comm.shared_fabric``).
    shared_fabric = True

    def __init__(self, timeout: float = DEFAULT_TIMEOUT) -> None:
        self._timeout = timeout
        self._queues: dict[tuple[int, int, object], queue.SimpleQueue] = {}
        self._lock = threading.Lock()
        self._closed = False
        self.comm_retries = 0
        self._activity: dict[int, float] = {}

    # -- SendAdmission hooks -------------------------------------------

    def _is_closed(self) -> bool:
        return self._closed

    def _count_retry(self) -> None:
        with self._lock:
            self.comm_retries += 1

    # ------------------------------------------------------------------

    def _queue_for(self, source: int, dest: int, tag: object) -> queue.SimpleQueue:
        key = (source, dest, tag)
        with self._lock:
            q = self._queues.get(key)
            if q is None:
                q = self._queues[key] = queue.SimpleQueue()
            return q

    # -- watchdog support ----------------------------------------------

    def touch(self, rank: int, stamp: float | None = None) -> None:
        """Stamp ``rank`` as having made progress.

        Stamps are *monotonic by construction*: a stamp older than the
        one already recorded is discarded, never written. Concurrent
        deliveries for the same rank (a pipelined pass's reader thread
        racing its writer, or — on the process backend — stamps
        propagating through shared memory with latency) may therefore
        call ``touch`` in any order without ever moving a rank's
        activity time backwards, which would make the watchdog see
        phantom silence. ``stamp`` defaults to ``time.monotonic()``
        taken now; an explicit value must come from the same clock.
        """
        now = time.monotonic() if stamp is None else stamp
        with self._lock:
            prev = self._activity.get(rank)
            if prev is None or now > prev:
                self._activity[rank] = now

    def activity(self) -> dict[int, float]:
        """Latest progress stamp (``time.monotonic()``) per rank."""
        with self._lock:
            return dict(self._activity)

    # -- data-plane hooks ----------------------------------------------

    def alloc_packed(self, dtype: np.dtype, total: int) -> np.ndarray:
        """A fresh buffer for the packed single-buffer ``alltoallv``.

        The thread fabric shares one address space, so plain heap memory
        works: receivers get disjoint views of this buffer. The process
        fabric overrides this to hand out a ``shared_memory``-backed
        array instead (same contract: fresh, contiguous, never pooled).
        """
        return np.empty(total, dtype=dtype)

    # ------------------------------------------------------------------

    def put(self, source: int, dest: int, tag: object, payload: object) -> None:
        self._admit_send(source, dest, tag)
        self._queue_for(source, dest, tag).put(payload)
        self.touch(source)

    def get(self, source: int, dest: int, tag: object) -> object:
        # Poll in short slices so that a world shutdown (another rank
        # failed) interrupts blocked receivers promptly instead of after
        # the full deadlock timeout.
        q = self._queue_for(source, dest, tag)
        waited = 0.0
        while True:
            self._check_closed()
            self._check_cancel()
            try:
                payload = q.get(timeout=POLL_SLICE)
            except queue.Empty:
                waited += POLL_SLICE
                if waited >= self._timeout:
                    raise CommError(
                        f"receive timed out after {self._timeout}s: "
                        f"rank {dest} waiting for (source={source}, tag={tag!r}) — "
                        f"likely mismatched sends/receives or a collective mismatch"
                    ) from None
            else:
                self.touch(dest)
                return payload

    def pending(self) -> dict[tuple[int, int, object], int]:
        """Undelivered message counts per (source, dest, tag) — used by
        tests to assert the fabric drains completely."""
        with self._lock:
            counts = defaultdict(int)
            for key, q in self._queues.items():
                n = q.qsize()
                if n:
                    counts[key] = n
            return dict(counts)

    def close(self) -> None:
        self._closed = True
