"""Persistent shared-memory arena for the process transport.

PR 6's packed ``alltoallv`` created one ``multiprocessing.shared_memory``
segment per collective and unlinked it once every slice was
acknowledged. That is correct but expensive: every collective pays a
``shm_open``/``ftruncate``/``mmap`` on the send side and an
``shm_open``/``mmap``/``munmap`` per receiving rank — kernel round
trips on the hottest path the transport has. The paper's discipline
(and Vitter's PDM framing) is that out-of-core sorts are won by not
moving or re-mapping the same bytes twice; this module applies it to
the transport:

* :class:`ShmArena` — the *creator-side* pool: size-classed slabs
  (power-of-two, ≥ 4 KiB) created once and recycled across collectives.
  A slab returns to its free list when every slice cut from it has been
  acknowledged, so at steady state ``alloc_packed`` is a freelist pop —
  zero segment creates, zero unlinks. Slabs are unlinked only at rank
  teardown (or by the parent sweep if the rank dies first).
* :class:`AttachCache` — the *receiver-side* mirror: each
  ``(creator, segment)`` mapping is attached once and cached for the
  run lifetime, so landing a slice is a single ``memcpy`` out of an
  already-mapped page range instead of attach/copy/detach.

Both sides meter into :class:`~repro.membuf.CopyStats`:
``arena_hits`` / ``arena_misses`` (slab reuse vs. creation) and
``attach_count`` (first-time receiver mappings). The escape hatch
``REPRO_SHM_ARENA=0`` restores the PR 6 one-segment-per-collective
lifecycle (create, ack-counted unlink, per-slice attach) for A/B
benchmarking; ``benchmarks/bench_backend.py`` gates on the arena
reaching a ≥ 90 % hit rate with zero steady-state creates.

Ownership rule (unchanged from PR 6): a slab belongs to the rank that
created it. Receivers never unlink; the creator recycles on full
acknowledgement and unlinks at teardown; the parent unlinks whatever a
dying rank left behind (reported names, or a ``/dev/shm`` scan keyed by
the dead child's pid).
"""

from __future__ import annotations

import os
from bisect import bisect_right, insort
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.membuf import copy_stats

#: Prefix of every shared-memory segment the process transport creates;
#: the test-suite leak guard scans ``/dev/shm`` for it, and the parent's
#: crash sweep matches ``<prefix>-<pid>-*`` for children that died
#: without reporting their slab names.
SHM_PREFIX = "repro-shm"

#: Smallest slab the arena hands out. Collectives smaller than a page
#: are not worth distinguishing by size.
MIN_SLAB_BYTES = 4096


def arena_enabled() -> bool:
    """Whether the persistent arena backs ``alloc_packed``.

    ``REPRO_SHM_ARENA=0`` selects the PR 6 per-collective
    create/unlink lifecycle instead (the A/B escape hatch). Read per
    call so tests and benchmarks can flip it without re-importing; the
    flag crosses the fork like every other environment switch.
    """
    return os.environ.get("REPRO_SHM_ARENA", "1") not in ("", "0")


def slab_class(nbytes: int) -> int:
    """The size class serving a request: next power of two ≥ 4 KiB.

    Power-of-two rounding keeps the number of distinct classes one run
    touches small (a pass's collectives vary in exact byte count but
    rarely in magnitude), which is what makes the freelists hit."""
    cls = MIN_SLAB_BYTES
    while cls < nbytes:
        cls <<= 1
    return cls


def untrack(shm: shared_memory.SharedMemory) -> None:
    """Opt a segment out of the resource tracker's cleanup.

    The transport manages segment lifetime explicitly (ack-counted
    recycle, rank teardown, parent sweep). CPython < 3.13 registers a
    segment with the tracker on *attach* as well as create (bpo-39959),
    so every mapping — creator or receiver — must be unregistered, or
    the first rank to exit would unlink segments its siblings still
    map and the tracker would print spurious leak warnings."""
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def unlink_quiet(shm: shared_memory.SharedMemory) -> None:
    """Unlink a segment without notifying the resource tracker.

    ``SharedMemory.unlink`` always sends the tracker an UNREGISTER, but
    every mapping here is already untracked (see :func:`untrack`), so
    that message would make the tracker log a spurious ``KeyError``.
    Missing segments (already unlinked by another path) are ignored."""
    try:
        shared_memory._posixshmem.shm_unlink(shm._name)
    except FileNotFoundError:
        pass
    except AttributeError:  # non-POSIX fallback
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def unlink_by_name(name: str) -> None:
    """Unlink a segment by bare name without ever mapping it — the
    parent's crash-sweep path (attaching just to unlink would fault the
    pages back in)."""
    try:
        shared_memory._posixshmem.shm_unlink("/" + name)
    except (FileNotFoundError, AttributeError):
        pass


class _Slab:
    """One arena segment: the mapping, its address range (for outbound
    view detection), how many remote slices are still unacknowledged,
    and whether it recycles (arena mode) or retires on full ack
    (one-shot mode)."""

    __slots__ = ("name", "shm", "base", "nbytes", "pending", "recycle", "free")

    def __init__(self, name, shm, base, nbytes, recycle):
        self.name = name
        self.shm = shm
        self.base = base
        self.nbytes = nbytes
        self.pending = 0
        self.recycle = recycle
        self.free = False


class ShmArena:
    """Creator-side pool of size-classed shared-memory slabs.

    Single-threaded by design: an arena belongs to exactly one rank
    (one process), and every call happens on that rank's program
    thread — acknowledgements from other ranks arrive over the fabric's
    ack queue and are applied here by the owner via :meth:`ack`.
    """

    def __init__(self) -> None:
        self._slabs: dict[str, _Slab] = {}
        self._free: dict[int, list[_Slab]] = {}
        # Base-address index for O(log n) outbound view lookup: a
        # sorted list of slab base addresses plus a dict to the slabs.
        self._bases: list[int] = []
        self._by_base: dict[int, _Slab] = {}
        self._seq = 0

    # -- acquisition ---------------------------------------------------

    def lease(self, nbytes: int, recycle: bool = True) -> _Slab:
        """A slab with capacity ≥ ``nbytes``, exclusively the caller's
        until every slice cut from it has been acknowledged.

        ``recycle=True`` (arena mode) serves from the size class's free
        list when it can — an ``arena_hit`` — and otherwise creates a
        slab that will be recycled, not unlinked, on full ack.
        ``recycle=False`` (the ``REPRO_SHM_ARENA=0`` escape hatch)
        always creates, and the slab retires permanently once acked —
        the PR 6 lifecycle, metered as a miss either way so the A/B
        benchmark sees creates-per-collective directly."""
        cls = slab_class(nbytes)
        if recycle:
            stack = self._free.get(cls)
            if stack:
                slab = stack.pop()
                slab.free = False
                slab.pending = 0
                copy_stats().record_arena(hit=True)
                return slab
        name = f"{SHM_PREFIX}-{os.getpid()}-{self._seq}"
        self._seq += 1
        shm = shared_memory.SharedMemory(create=True, size=cls, name=name)
        untrack(shm)
        base = np.frombuffer(shm.buf, dtype=np.uint8).__array_interface__[
            "data"
        ][0]
        slab = _Slab(name, shm, base, cls, recycle)
        self._slabs[name] = slab
        insort(self._bases, base)
        self._by_base[base] = slab
        copy_stats().record_arena(hit=False)
        return slab

    # -- outbound view lookup ------------------------------------------

    def locate(self, addr: int, nbytes: int) -> _Slab | None:
        """The slab whose address range contains ``[addr, addr+nbytes)``
        — O(log n) in the number of live slabs via the base index."""
        i = bisect_right(self._bases, addr) - 1
        if i < 0:
            return None
        slab = self._by_base[self._bases[i]]
        if addr + nbytes <= slab.base + slab.nbytes:
            return slab
        return None

    def owned(self, name: str) -> _Slab | None:
        """The live (leased, not yet recycled) slab named ``name`` if
        this arena created it — the receiver's self-send fast path."""
        slab = self._slabs.get(name)
        if slab is not None and not slab.free:
            return slab
        return None

    # -- acknowledgement / recycling -----------------------------------

    def pin(self, name: str) -> None:
        """One outbound slice descriptor now references ``name``: the
        slab stays leased until a matching :meth:`ack` arrives."""
        self._slabs[name].pending += 1

    def ack(self, name: str) -> None:
        """One slice of ``name`` has been landed by its receiver. On
        the last ack a recycling slab returns to its free list; a
        one-shot slab is closed and unlinked."""
        slab = self._slabs.get(name)
        if slab is None or slab.free:
            return
        slab.pending -= 1
        if slab.pending <= 0:
            self._release(slab)

    def _release(self, slab: _Slab) -> None:
        if slab.recycle:
            slab.free = True
            self._free.setdefault(slab.nbytes, []).append(slab)
            return
        self._retire(slab)

    def _retire(self, slab: _Slab) -> None:
        """Close and unlink one slab, dropping it from every index."""
        del self._slabs[slab.name]
        self._bases.remove(slab.base)
        del self._by_base[slab.base]
        try:
            slab.shm.close()
        except BufferError:
            pass  # a stale view pins the mapping; the unlink still frees the name
        unlink_quiet(slab.shm)

    # -- lifecycle -----------------------------------------------------

    def all_acked(self) -> bool:
        """Whether every outstanding slice has been acknowledged."""
        return all(
            slab.free or slab.pending <= 0 for slab in self._slabs.values()
        )

    def slab_count(self) -> int:
        return len(self._slabs)

    def free_count(self) -> int:
        return sum(len(stack) for stack in self._free.values())

    def names(self) -> list[str]:
        return list(self._slabs)

    def unlink_all(self) -> list[str]:
        """Teardown: close and unlink every slab regardless of pending
        counts (callers wait out a grace period first). Returns the
        names that could not be unlinked — the parent sweeps those."""
        failures: list[str] = []
        for slab in list(self._slabs.values()):
            try:
                self._retire(slab)
            except Exception:
                failures.append(slab.name)
        self._free.clear()
        return failures


class AttachCache:
    """Receiver-side cache of segment mappings, attached once per
    ``(creator, segment)`` and held for the run lifetime.

    Safe because arena slab names are unique per creation
    (``repro-shm-<pid>-<seq>``) and a recycled slab keeps its name and
    size — the cached mapping stays valid across reuse; only the slice
    descriptors (offset, count) change. Every cache miss is metered as
    an ``attach_count``; in one-shot mode the transport bypasses the
    cache entirely (a retired segment must not be pinned by a stale
    mapping), so ``attach_count`` there counts every slice — exactly
    the cost the arena exists to remove."""

    def __init__(self) -> None:
        self._maps: dict[str, shared_memory.SharedMemory] = {}

    def get(self, name: str) -> shared_memory.SharedMemory:
        shm = self._maps.get(name)
        if shm is None:
            shm = shared_memory.SharedMemory(name=name)
            untrack(shm)
            self._maps[name] = shm
            copy_stats().record_attach()
        return shm

    def close_all(self) -> None:
        for shm in self._maps.values():
            try:
                shm.close()
            except BufferError:
                pass
        self._maps.clear()
