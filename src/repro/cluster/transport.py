"""Pluggable SPMD transports.

A :class:`Transport` turns ``P`` copies of a rank program into one
:class:`~repro.cluster.spmd.SpmdResult`: it spawns the ranks, wires each
one's :class:`~repro.cluster.comm.Comm` to a message fabric, keeps the
watchdog's activity stamps flowing, threads the resilience hooks (fault
plan, retry policy, cancel token) through the fabric, and aggregates
per-rank failures with one shared severity ranking. Everything above
this interface — the pass programs in :mod:`repro.oocs`, the governor's
cancellation unwinding, the byte-exact ``CommStats`` / ``IoStats`` /
``CopyStats`` accounting — is backend-agnostic by construction, which
the transport conformance suite (``tests/test_transport_conformance.py``)
pins down.

Two implementations ship:

* ``"thread"`` (:class:`ThreadTransport`, here) — one daemon thread per
  rank over a shared :class:`~repro.cluster.mailbox.MailboxRouter`.
  NumPy kernels release the GIL, so sorts overlap, but Python-level
  record packing serializes.
* ``"process"`` (:class:`~repro.cluster.process_backend.ProcessTransport`,
  imported lazily) — one forked OS process per rank with
  ``multiprocessing.shared_memory`` segments backing the packed
  ``alltoallv``, so rank-local compute escapes the GIL entirely.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.cluster.comm import Comm
from repro.cluster.mailbox import DEFAULT_TIMEOUT, MailboxRouter
from repro.cluster.stats import CommStats
from repro.errors import Cancellation, CommError, ConfigError, WatchdogTimeout


def is_collateral(exc: BaseException) -> bool:
    """True for the CommError a rank gets because the world was already
    shutting down around it — noise, not the root cause."""
    return isinstance(exc, CommError) and "shut down" in str(exc)


def failure_severity(exc: BaseException) -> int:
    """Rank a failure for primary-cause selection.

    A CommError("shut down") on another rank is collateral damage of
    the primary failure; prefer reporting a non-collateral cause, a
    genuine rank failure over a requested cancellation (the bug
    outranks the stop that raced it), and either over the watchdog's
    verdict. Used identically by every transport so the reported cause
    never depends on the backend.
    """
    if isinstance(exc, Cancellation):
        return 1
    if isinstance(exc, WatchdogTimeout):
        return 2
    if is_collateral(exc):
        return 3
    return 0


def raise_primary_failure(failures: list[tuple[int, BaseException]]):
    """Raise the most blameworthy failure of a run (see
    :func:`failure_severity`; within a class, the lowest rank wins).
    A :class:`~repro.errors.Cancellation` is re-raised *unwrapped* —
    the caller asked for the stop and should catch the structured
    cause directly, not a rank-failure wrapper."""
    from repro.errors import SpmdError

    ranked = sorted(failures, key=lambda f: (failure_severity(f[1]), f[0]))
    rank, cause = ranked[0]
    if isinstance(cause, Cancellation):
        raise cause
    raise SpmdError(rank, cause) from cause


class Transport(ABC):
    """One way of running ``P`` ranks of an SPMD program.

    The ``run`` contract (shared by every backend, enforced by the
    conformance suite):

    * ``program(comm, *args, *rank_args[p], **kwargs)`` runs once per
      rank with an MPI-shaped :class:`~repro.cluster.comm.Comm`;
    * per-rank return values and :class:`CommStats` come back in rank
      order; stats meter sends identically on every backend;
    * a failing rank shuts the world down (unblocking receivers) and
      the primary cause propagates per :func:`failure_severity`;
    * ``fault_plan`` / ``retry_policy`` instrument the fabric's send
      side; retries surface as ``SpmdResult.comm_retries``;
    * ``cancel`` makes every blocked send/receive a cancellation point;
    * ``watchdog_deadline`` converts universal rank silence into a
      structured :class:`~repro.errors.WatchdogTimeout`;
    * ``disks`` (the run's :class:`~repro.disks.virtual_disk.VirtualDisk`
      list) lets a non-shared-memory backend merge per-rank I/O counter
      deltas back into the caller's stats objects — the thread backend
      ignores it because the objects are already shared;
    * **idempotent teardown** — before ``run`` raises, the cohort is
      fully torn down (ranks joined or abandoned-as-daemons, fabric
      drained and closed, crash-swept segments unlinked), leaving no
      state that would poison an immediate re-``run`` on the same
      transport. This is what lets a
      :class:`~repro.resilience.supervisor.RunSupervisor` relaunch a
      crashed run inside the same call, on either backend, through the
      single seam in :func:`~repro.cluster.spmd.run_spmd`.
    """

    #: Registry key (``"thread"`` / ``"process"``).
    name: str = ""

    @abstractmethod
    def run(
        self,
        size: int,
        program: Callable,
        *args,
        rank_args: Sequence[tuple] | None = None,
        timeout: float = DEFAULT_TIMEOUT,
        watchdog_deadline: float | None = None,
        fault_plan=None,
        retry_policy=None,
        quarantine=None,
        cancel=None,
        disks=None,
        **kwargs,
    ):
        """Run the program; returns :class:`~repro.cluster.spmd.SpmdResult`."""


class ThreadTransport(Transport):
    """One daemon thread per rank over a shared mailbox fabric."""

    name = "thread"

    def run(
        self,
        size: int,
        program: Callable,
        *args,
        rank_args: Sequence[tuple] | None = None,
        timeout: float = DEFAULT_TIMEOUT,
        watchdog_deadline: float | None = None,
        fault_plan=None,
        retry_policy=None,
        quarantine=None,
        cancel=None,
        disks=None,
        **kwargs,
    ):
        from repro.cluster.spmd import SpmdResult

        router = MailboxRouter(timeout=timeout)
        router.fault_plan = fault_plan
        router.retry_policy = retry_policy
        router.cancel_token = cancel
        stats = [CommStats(rank=p) for p in range(size)]
        comms = [Comm(p, size, router, stats[p]) for p in range(size)]
        returns: list = [None] * size
        failures: list[tuple[int, BaseException]] = []
        failure_lock = threading.Lock()

        watchdog = None
        if watchdog_deadline is not None:
            from repro.resilience.watchdog import RankWatchdog

            watchdog = RankWatchdog(router, watchdog_deadline)
        for p in range(size):
            router.touch(p)  # baseline stamp: a rank that never speaks is stuck

        def runner(p: int) -> None:
            extra = rank_args[p] if rank_args is not None else ()
            try:
                returns[p] = program(comms[p], *args, *extra, **kwargs)
            except BaseException as exc:  # noqa: BLE001 — must cross threads
                with failure_lock:
                    failures.append((p, exc))
                router.close()  # unblock ranks waiting in receives
            finally:
                if watchdog is not None:
                    watchdog.rank_done(p)

        if watchdog is not None:
            watchdog.start()
        if size == 1:
            # Degenerate world: run inline for easier debugging. (The
            # watchdog still works — closing the router unblocks a stuck
            # receive on the calling thread.)
            runner(0)
        else:
            threads = [
                threading.Thread(
                    target=runner, args=(p,), name=f"spmd-rank-{p}", daemon=True
                )
                for p in range(size)
            ]
            for t in threads:
                t.start()
            if watchdog is None:
                for t in threads:
                    t.join()
            else:
                for t in threads:
                    while t.is_alive() and not watchdog.fired.is_set():
                        t.join(timeout=0.25)
                    if watchdog.fired.is_set():
                        break
                if watchdog.fired.is_set():
                    # The router is closed; give ranks a moment to fail out
                    # of their receives, then abandon any thread still wedged
                    # (daemons — they cannot pin the process).
                    grace_until = time.monotonic() + 2.0
                    for t in threads:
                        t.join(timeout=max(0.0, grace_until - time.monotonic()))
        if watchdog is not None:
            watchdog.stop()
            if watchdog.error is not None:
                with failure_lock:
                    failures.append((watchdog.error.rank, watchdog.error))

        if failures:
            raise_primary_failure(failures)
        result = SpmdResult(
            returns=returns, stats=stats, comm_retries=router.comm_retries
        )
        if quarantine is not None:
            snap = quarantine.snapshot()
            result.degraded_disks = snap["degraded_disks"]
            result.reconstructed_blocks = snap["reconstructed_blocks"]
            result.checksum_failures = snap["checksum_failures"]
        return result


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_transport` (and every ``backend=``
    knob built on it)."""
    return ("thread", "process")


def get_transport(name: str) -> Transport:
    """Resolve a backend name to a transport instance.

    The process backend is imported lazily so that merely loading the
    cluster package never touches :mod:`multiprocessing`.
    """
    if name == "thread":
        return ThreadTransport()
    if name == "process":
        from repro.cluster.process_backend import ProcessTransport

        return ProcessTransport()
    raise ConfigError(
        f"unknown transport backend {name!r}; expected one of "
        f"{available_backends()}"
    )
