"""Simulated distributed-memory cluster.

The paper ran on a Beowulf cluster: one MPI process per node, pthreads
inside each process, Myrinet between nodes. mpi4py is unavailable here
(and slow for I/O-heavy sorting per the calibration notes), so this
subpackage provides the synthetic equivalent: an in-process SPMD engine.

* :class:`~repro.cluster.config.ClusterConfig` — the machine shape:
  ``P`` processors, ``D`` disks, memory per processor;
* :class:`~repro.cluster.comm.Comm` — an MPI-like communicator (``send``
  / ``recv`` / ``sendrecv`` / ``barrier`` / ``bcast`` / ``gather`` /
  ``allgather`` / ``scatter`` / ``alltoall`` / ``alltoallv`` /
  ``allreduce``), with mpi4py-style copy-on-send buffer semantics;
* :func:`~repro.cluster.spmd.run_spmd` — launch ``P`` ranks of a program
  (one Python thread each; NumPy releases the GIL, so local sorts
  genuinely overlap) and gather their results;
* :class:`~repro.cluster.stats.CommStats` — per-rank message/byte
  accounting, distinguishing network traffic from self-messages. This is
  what the message-count experiments (paper §3, properties 1-3) read.

Rank programs written against :class:`Comm` are structured exactly like
their MPI originals, so communication counts and volumes match the
paper's analysis record for record.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.comm import Comm
from repro.cluster.spmd import run_spmd
from repro.cluster.stats import CommStats
from repro.cluster.transport import Transport, available_backends, get_transport

__all__ = [
    "ClusterConfig",
    "Comm",
    "run_spmd",
    "CommStats",
    "Transport",
    "available_backends",
    "get_transport",
]
