"""Fixed-size record formats.

A record is ``key | uid | padding``:

* ``key`` — the sort key (one of :data:`~repro.records.keys.KEY_DTYPES`);
* ``uid`` — a 64-bit unsigned "record identity" stamped at generation time
  with the record's original index. Columnsort never looks at it, but the
  verification layer uses it to prove that an output is a true permutation
  of its input (the paper verified output files the same way, by keeping
  the original data files around — see §5, footnote 7);
* ``padding`` — opaque filler bringing the record up to ``record_size``
  bytes (the paper used 64- to 128-byte records).

Records are represented as NumPy structured arrays so that whole-record
permutations are single vectorized gathers and disk I/O is a straight
``tobytes``/``frombuffer`` of the underlying buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.membuf.copystats import copy_stats
from repro.records.keys import KeyInfo, key_info

_UID_DTYPE = np.dtype("<u8")


@dataclass(frozen=True)
class RecordFormat:
    """A fixed-size record layout.

    Parameters
    ----------
    key:
        Key dtype name (``"u8"``, ``"i8"``, ``"f8"``, ``"u4"``, ``"i4"``).
    record_size:
        Total record size in bytes. Must be at least key size + 8 (for the
        uid field). The paper's experiments used 64 and 128.

    >>> fmt = RecordFormat("u8", 64)
    >>> fmt.dtype.itemsize
    64
    """

    key: str = "u8"
    record_size: int = 64
    _info: KeyInfo = field(init=False, repr=False, compare=False)
    _dtype: np.dtype = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        info = key_info(self.key)
        overhead = info.itemsize + _UID_DTYPE.itemsize
        if self.record_size < overhead:
            raise ConfigError(
                f"record_size={self.record_size} too small for a "
                f"{self.key} key plus 8-byte uid ({overhead} bytes minimum)"
            )
        pad = self.record_size - overhead
        fields: list[tuple[str, object]] = [
            ("key", info.dtype),
            ("uid", _UID_DTYPE),
        ]
        if pad:
            fields.append(("pad", np.dtype(f"V{pad}")))
        object.__setattr__(self, "_info", info)
        object.__setattr__(self, "_dtype", np.dtype(fields))

    # -- basic properties ------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        """The structured dtype of one record."""
        return self._dtype

    @property
    def key_dtype(self) -> np.dtype:
        return self._info.dtype

    @property
    def key_min(self) -> object:
        """The ``-inf`` sentinel key."""
        return self._info.min_value

    @property
    def key_max(self) -> object:
        """The ``+inf`` sentinel key."""
        return self._info.max_value

    def nbytes(self, n: int) -> int:
        """Bytes occupied by ``n`` records."""
        return n * self.record_size

    def count(self, nbytes: int) -> int:
        """Number of whole records in ``nbytes`` bytes."""
        if nbytes % self.record_size:
            raise ConfigError(
                f"{nbytes} bytes is not a whole number of "
                f"{self.record_size}-byte records"
            )
        return nbytes // self.record_size

    # -- constructors ----------------------------------------------------

    def empty(self, n: int) -> np.ndarray:
        """An uninitialized array of ``n`` records."""
        return np.empty(n, dtype=self._dtype)

    def make(self, keys: np.ndarray, uids: np.ndarray | None = None) -> np.ndarray:
        """Build records from an array of keys (and optional uids).

        When ``uids`` is omitted, records are stamped ``0..n-1``.
        """
        keys = np.asarray(keys)
        out = np.zeros(len(keys), dtype=self._dtype)
        out["key"] = keys.astype(self._info.dtype, copy=False)
        out["uid"] = (
            np.arange(len(keys), dtype=_UID_DTYPE)
            if uids is None
            else np.asarray(uids, dtype=_UID_DTYPE)
        )
        return out

    def pad_low(self, n: int) -> np.ndarray:
        """``n`` records of ``-inf`` keys (columnsort step-6 top padding)."""
        out = np.zeros(n, dtype=self._dtype)
        out["key"] = self.key_min
        return out

    def pad_high(self, n: int) -> np.ndarray:
        """``n`` records of ``+inf`` keys (columnsort step-6 bottom padding)."""
        out = np.zeros(n, dtype=self._dtype)
        out["key"] = self.key_max
        return out

    # -- (de)serialization ------------------------------------------------

    def to_bytes(self, records: np.ndarray) -> bytes:
        """Serialize records to their on-disk byte representation."""
        out = np.ascontiguousarray(records, dtype=self._dtype).tobytes()
        copy_stats().record_copy(len(out))
        return out

    def from_bytes(self, data: bytes | bytearray | memoryview) -> np.ndarray:
        """Deserialize records from their on-disk byte representation.

        The result always owns its memory (callers mutate it freely), so
        exactly one copy happens here — ``frombuffer`` reads ``bytes``,
        ``bytearray`` and ``memoryview`` alike without materializing an
        intermediate ``bytes``.
        """
        out = np.frombuffer(data, dtype=self._dtype).copy()
        copy_stats().record_copy(out.nbytes)
        return out

    def from_buffer(self, data: bytes | bytearray | memoryview) -> np.ndarray:
        """Deserialize records as a read-only *view* of ``data`` — no
        copy. The caller must not need to outlive or mutate the backing
        buffer; use :meth:`from_bytes` for an owned array."""
        out = np.frombuffer(data, dtype=self._dtype)
        copy_stats().record_zero_copy(out.nbytes)
        return out

    def wire_view(self, records: np.ndarray) -> memoryview | bytes:
        """The on-disk byte representation of ``records`` as a
        memoryview of their existing memory when possible (the zero-copy
        write path); falls back to a serialized copy for non-contiguous
        or foreign-dtype inputs."""
        if (
            isinstance(records, np.ndarray)
            and records.dtype == self._dtype
            and records.flags.c_contiguous
        ):
            copy_stats().record_zero_copy(records.nbytes)
            return records.data
        return self.to_bytes(records)

    def into_buffer(self, records: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Copy ``records`` into the caller-owned array ``out`` (e.g. a
        pool lease) and return ``out``. One metered copy; no temporary."""
        np.copyto(out[: len(records)], records.astype(self._dtype, copy=False))
        copy_stats().record_copy(self.nbytes(len(records)))
        return out

    # -- sorting helpers ---------------------------------------------------

    def argsort(self, records: np.ndarray) -> np.ndarray:
        """Stable argsort of records by key.

        Stability is load-bearing: the ±∞ padding discipline of columnsort
        steps 6-8 relies on padding records not crossing equal-keyed data
        records (see :mod:`repro.records.keys`).
        """
        return np.argsort(records["key"], kind="stable")

    def sort(self, records: np.ndarray) -> np.ndarray:
        """Return records stably sorted by key."""
        return records[self.argsort(records)]

    def is_sorted(self, records: np.ndarray) -> bool:
        """Whether records are in nondecreasing key order."""
        keys = records["key"]
        if len(keys) < 2:
            return True
        return bool(np.all(keys[:-1] <= keys[1:]))
