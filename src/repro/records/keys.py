"""Key dtypes and sentinel values.

Columnsort's steps 6-8 pad the matrix with ``-inf`` and ``+inf`` keys.
With integer keys there is no true infinity, so we use the dtype's extreme
values together with *stable* sorting: padding records are prepended
(for ``-inf``) or appended (for ``+inf``) to the data they pad, so after a
stable sort they remain outside the retained slice even when real keys
collide with the sentinel values. No key values need to be reserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Key dtypes supported by :class:`~repro.records.format.RecordFormat`.
KEY_DTYPES: dict[str, np.dtype] = {
    "u4": np.dtype("<u4"),
    "u8": np.dtype("<u8"),
    "i4": np.dtype("<i4"),
    "i8": np.dtype("<i8"),
    "f8": np.dtype("<f8"),
}


@dataclass(frozen=True)
class KeyInfo:
    """Resolved information about a key dtype."""

    name: str
    dtype: np.dtype
    min_value: object
    max_value: object

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize


def _extremes(dtype: np.dtype) -> tuple[object, object]:
    if dtype.kind in "iu":
        info = np.iinfo(dtype)
        return info.min, info.max
    if dtype.kind == "f":
        return -np.inf, np.inf
    raise TypeError(f"unsupported key dtype: {dtype}")


def key_info(name_or_dtype: str | np.dtype) -> KeyInfo:
    """Resolve a key dtype name (or dtype) to a :class:`KeyInfo`.

    >>> key_info("u8").itemsize
    8
    """
    if isinstance(name_or_dtype, str):
        try:
            dtype = KEY_DTYPES[name_or_dtype]
        except KeyError:
            raise TypeError(
                f"unknown key dtype {name_or_dtype!r}; "
                f"expected one of {sorted(KEY_DTYPES)}"
            ) from None
        name = name_or_dtype
    else:
        dtype = np.dtype(name_or_dtype)
        for candidate, dt in KEY_DTYPES.items():
            if dt == dtype:
                name = candidate
                break
        else:
            raise TypeError(f"unsupported key dtype: {dtype}")
    lo, hi = _extremes(dtype)
    return KeyInfo(name=name, dtype=dtype, min_value=lo, max_value=hi)


def min_key(name_or_dtype: str | np.dtype) -> object:
    """The ``-inf`` sentinel for a key dtype."""
    return key_info(name_or_dtype).min_value


def max_key(name_or_dtype: str | np.dtype) -> object:
    """The ``+inf`` sentinel for a key dtype."""
    return key_info(name_or_dtype).max_value
