"""Workload generators.

Columnsort's I/O and communication patterns are oblivious to key values
(paper §2), but its *correctness* must hold for every input, and local
sort times do vary with input shape. The test suite, examples, and
benchmark harness therefore draw inputs from a family of generators
covering the usual sorting stress cases.

Every generator stamps record ``uid`` fields with ``0..n-1`` so the
verification layer can prove outputs are permutations of inputs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.records.format import RecordFormat

GeneratorFn = Callable[[RecordFormat, int, np.random.Generator], np.ndarray]

WORKLOADS: dict[str, GeneratorFn] = {}


def _register(name: str) -> Callable[[GeneratorFn], GeneratorFn]:
    def deco(fn: GeneratorFn) -> GeneratorFn:
        WORKLOADS[name] = fn
        return fn

    return deco


def _key_span(fmt: RecordFormat) -> tuple[float, float]:
    """A comfortable key range for random draws, avoiding dtype extremes
    only to keep printed examples readable (extremes are still legal)."""
    if fmt.key_dtype.kind == "f":
        return -1e9, 1e9
    info = np.iinfo(fmt.key_dtype)
    return float(info.min), float(info.max)


def _random_keys(fmt: RecordFormat, n: int, rng: np.random.Generator) -> np.ndarray:
    if fmt.key_dtype.kind == "f":
        return rng.standard_normal(n) * 1e6
    info = np.iinfo(fmt.key_dtype)
    return rng.integers(info.min, info.max, size=n, endpoint=True, dtype=fmt.key_dtype)


@_register("uniform")
def uniform(fmt: RecordFormat, n: int, rng: np.random.Generator) -> np.ndarray:
    """Keys drawn uniformly over the full key range."""
    return fmt.make(_random_keys(fmt, n, rng))


@_register("sorted")
def already_sorted(fmt: RecordFormat, n: int, rng: np.random.Generator) -> np.ndarray:
    """Keys already in nondecreasing order (best case for merging sorts)."""
    keys = np.sort(_random_keys(fmt, n, rng))
    return fmt.make(keys)


@_register("reverse")
def reverse_sorted(fmt: RecordFormat, n: int, rng: np.random.Generator) -> np.ndarray:
    """Keys in nonincreasing order."""
    keys = np.sort(_random_keys(fmt, n, rng))[::-1].copy()
    return fmt.make(keys)


@_register("nearly-sorted")
def nearly_sorted(fmt: RecordFormat, n: int, rng: np.random.Generator) -> np.ndarray:
    """Sorted keys with ~1% of positions perturbed by random swaps."""
    keys = np.sort(_random_keys(fmt, n, rng))
    swaps = max(1, n // 100)
    a = rng.integers(0, n, size=swaps)
    b = rng.integers(0, n, size=swaps)
    keys[a], keys[b] = keys[b].copy(), keys[a].copy()
    return fmt.make(keys)


@_register("duplicates")
def duplicate_heavy(fmt: RecordFormat, n: int, rng: np.random.Generator) -> np.ndarray:
    """Only ~16 distinct key values — stresses stability and tie handling."""
    distinct = _random_keys(fmt, 16, rng)
    keys = distinct[rng.integers(0, len(distinct), size=n)]
    return fmt.make(keys)


@_register("all-equal")
def all_equal(fmt: RecordFormat, n: int, rng: np.random.Generator) -> np.ndarray:
    """Every key identical — a degenerate tie-only input."""
    keys = np.broadcast_to(_random_keys(fmt, 1, rng), (n,)).copy()
    return fmt.make(keys)


@_register("gaussian")
def gaussian(fmt: RecordFormat, n: int, rng: np.random.Generator) -> np.ndarray:
    """Keys clustered around the middle of the key range."""
    lo, hi = _key_span(fmt)
    mid = (lo + hi) / 2.0
    spread = (hi - lo) / 64.0
    vals = rng.standard_normal(n) * spread + mid
    vals = np.clip(vals, lo, hi)
    return fmt.make(vals.astype(fmt.key_dtype))


@_register("zipf")
def zipf(fmt: RecordFormat, n: int, rng: np.random.Generator) -> np.ndarray:
    """Zipf-distributed keys — a heavily skewed value histogram, the shape
    that breaks naive distribution sorts (relevant to the §6 future-work
    distribution-based sort stage)."""
    ranks = rng.zipf(1.3, size=n).astype(np.float64)
    lo, hi = _key_span(fmt)
    vals = np.minimum(ranks, 1e6) / 1e6 * (hi - lo) / 2 + lo
    return fmt.make(vals.astype(fmt.key_dtype))


@_register("sawtooth")
def sawtooth(fmt: RecordFormat, n: int, rng: np.random.Generator) -> np.ndarray:
    """Repeating ascending runs — adversarial for run-detecting merges."""
    period = max(2, n // 64)
    base = np.arange(n, dtype=np.int64) % period
    lo, hi = _key_span(fmt)
    # Stay well inside the dtype range: casting a float equal to the
    # integer maximum overflows (floats round up at 2^64).
    scale = (hi - lo) / 4 / max(period - 1, 1)
    vals = base * scale + lo / 4
    return fmt.make(vals.astype(fmt.key_dtype))


@_register("organ-pipe")
def organ_pipe(fmt: RecordFormat, n: int, rng: np.random.Generator) -> np.ndarray:
    """Ascending then descending — every element far from its final home."""
    half = n // 2
    up = np.arange(half, dtype=np.int64)
    down = np.arange(n - half, dtype=np.int64)[::-1]
    base = np.concatenate([up, down])
    lo, hi = _key_span(fmt)
    scale = (hi - lo) / 4 / max(n, 1)
    vals = base * scale + lo / 4
    return fmt.make(vals.astype(fmt.key_dtype))


def workload_names() -> list[str]:
    """Names of all registered workload generators."""
    return sorted(WORKLOADS)


def generate(
    workload: str,
    fmt: RecordFormat,
    n: int,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """Generate ``n`` records of the named workload.

    >>> fmt = RecordFormat("u8", 64)
    >>> recs = generate("uniform", fmt, 100, seed=1)
    >>> len(recs), recs.dtype.itemsize
    (100, 64)
    """
    try:
        fn = WORKLOADS[workload]
    except KeyError:
        raise ConfigError(
            f"unknown workload {workload!r}; expected one of {workload_names()}"
        ) from None
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    if n < 0:
        raise ConfigError(f"cannot generate {n} records")
    return fn(fmt, n, rng)
