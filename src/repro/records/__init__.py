"""Record formats and workload generators.

Out-of-core columnsort sorts fixed-size *records*, each carrying a *key*
(the sort key) and an opaque *payload*. The paper used 64- to 128-byte
records; this subpackage provides:

* :class:`~repro.records.format.RecordFormat` — a structured-dtype record
  description (key type + record size) with constructors and accessors;
* :mod:`~repro.records.keys` — key dtypes, sentinel (±∞) values, and
  comparison helpers;
* :mod:`~repro.records.generators` — the workload generators used by the
  tests, examples, and benchmark harness (uniform, sorted, reverse,
  nearly-sorted, duplicate-heavy, gaussian, zipf, …). Generated payloads
  embed the record's original index so that any later permutation of the
  data can be verified to be a true permutation.
"""

from repro.records.format import RecordFormat
from repro.records.keys import (
    KEY_DTYPES,
    key_info,
    max_key,
    min_key,
)
from repro.records.generators import (
    WORKLOADS,
    generate,
    workload_names,
)

__all__ = [
    "RecordFormat",
    "KEY_DTYPES",
    "key_info",
    "min_key",
    "max_key",
    "WORKLOADS",
    "generate",
    "workload_names",
]
