"""XOR parity across the D-disk array, RAID-5 style.

The PDM layout already spreads every stripe across all D disks, which
makes single-disk redundancy cheap: group data extents into *stripe
rows* of D−1 members (one per data disk) plus one XOR parity extent,
and rotate the parity holder round-robin (row ``r``'s parity lives on
disk ``r mod D``) so no single disk becomes the parity bottleneck.

The layer hooks the write path of every
:class:`~repro.disks.virtual_disk.VirtualDisk` in the array:

* a **write** folds any overlapped stale extents out of their rows
  (parity ``^=`` old bytes), then assigns the new extent to the next
  free row slot of its disk and XORs its bytes into that row's parity;
* a **delete** folds all of the object's extents out;
* a **reconstruction** XORs a row's parity with its surviving members
  to recover a lost or corrupt extent, verifying the result against the
  owning disk's block-checksum catalog before trusting it.

Members are XORed zero-padded to the row's longest extent, so rows may
mix extent sizes (columns vs. PDM block ranges). Parity extents are raw
files under ``<holder root>/.parity/``; a dead disk's recovered data
lands under ``<root>/.spare/``. All staging buffers are leased from the
shared :class:`~repro.membuf.BufferPool` and recycled before return.

Parity maintenance I/O is metered in the layer's own counters, *not* in
``IoStats`` reads/writes: the paper's pass-count invariants (3N / 4N
records through disk per sort) are asserted byte-exactly by the
integration tests and describe data movement, not redundancy overhead.

The extent catalog is per-process (think of it as the metadata server's
in-memory state); attaching a layer to a directory that holds stale
``.parity``/``.spare`` files from an earlier process clears them —
protection restarts with the next write.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.durability.hashing import block_checksum
from repro.errors import ConfigError, CorruptionError, DiskError
from repro.membuf import get_pool
from repro.resilience.quarantine import DiskQuarantine

_U1 = np.dtype("u1")

#: Counter keys exposed by :attr:`ParityLayer.counters`.
PARITY_KEYS = (
    "parity_bytes_read",
    "parity_bytes_written",
    "reconstructed_blocks",
    "repaired_blocks",
    "folds",
)


@dataclass
class _Extent:
    disk: int
    name: str
    offset: int
    length: int
    row: int
    spare: bool = False


class ParityLayer:
    """One XOR parity domain over a D-disk array (D >= 2)."""

    def __init__(self, disks: list, quarantine: DiskQuarantine) -> None:
        if len(disks) < 2:
            raise ConfigError(
                f"parity needs at least 2 disks, got {len(disks)} "
                "(no surviving disk could hold the redundancy)"
            )
        self._order = sorted(disks, key=lambda disk: disk.disk_id)
        self._by_id = {disk.disk_id: disk for disk in self._order}
        if len(self._by_id) != len(disks):
            raise ConfigError("duplicate disk ids in parity array")
        self._pos = {disk.disk_id: i for i, disk in enumerate(self._order)}
        self.d = len(self._order)
        self.quarantine = quarantine
        self._lock = threading.RLock()
        self._extents: dict[tuple[int, str], list[_Extent]] = {}
        self._rows: dict[int, dict[int, _Extent]] = {}
        self._row_len: dict[int, int] = {}
        self._next_slot = [0] * self.d
        self.maintenance_enabled = True
        self.counters = {key: 0 for key in PARITY_KEYS}
        for disk in self._order:
            for sub in (".parity", ".spare"):
                stale = disk.root / sub
                if stale.is_dir():
                    for path in stale.iterdir():
                        os.unlink(path)

    # -- bookkeeping -----------------------------------------------------

    def counters_snapshot(self) -> dict:
        with self._lock:
            return dict(self.counters)

    def disable_maintenance(self) -> None:
        """Stop maintaining parity for *new* writes (the run governor's
        disk-full degradation: ``.parity/`` stops growing). Existing
        rows keep serving reconstructions and repairs; writes made
        while maintenance is off are simply unprotected."""
        with self._lock:
            self.maintenance_enabled = False

    # -- geometry --------------------------------------------------------

    def _alloc_row(self, pos: int) -> int:
        """Next stripe row with a free slot for the disk at array
        position ``pos`` (rows whose parity holder is ``pos`` are
        skipped — a disk never holds parity for its own data)."""
        k = self._next_slot[pos]
        self._next_slot[pos] = k + 1
        group, idx = divmod(k, self.d - 1)
        residue = idx if idx < pos else idx + 1
        return group * self.d + residue

    def _parity_path(self, row: int) -> Path:
        holder = self._order[row % self.d]
        return holder.root / ".parity" / f"row{row:08d}"

    def spare_path(self, disk) -> Path:
        return disk.root / ".spare"

    # -- raw byte movement (leased staging, layer-level metering) --------

    def _lease(self, nbytes: int) -> np.ndarray:
        return get_pool().lease(_U1, nbytes)

    def _read_parity(self, row: int) -> np.ndarray:
        nbytes = self._row_len[row]
        arr = self._lease(nbytes)
        with open(self._parity_path(row), "rb") as fh:
            got = fh.readinto(memoryview(arr))
        if got != nbytes:
            get_pool().recycle(arr)
            raise DiskError(
                f"cannot reconstruct: parity row {row} is "
                f"{got} bytes, expected {nbytes}"
            )
        self.counters["parity_bytes_read"] += nbytes
        return arr

    def _write_parity(self, row: int, arr: np.ndarray, nbytes: int) -> None:
        path = self._parity_path(row)
        path.parent.mkdir(exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(memoryview(arr)[:nbytes])
        self._row_len[row] = nbytes
        self.counters["parity_bytes_written"] += nbytes

    def _extent_file(self, ext: _Extent) -> Path:
        disk = self._by_id[ext.disk]
        if ext.spare:
            return self.spare_path(disk) / ext.name
        return disk.root / ext.name

    def _readable(self, ext: _Extent) -> bool:
        return ext.spare or not self.quarantine.is_dead(ext.disk)

    def _extent_bytes(self, ext: _Extent) -> np.ndarray:
        """Current bytes of one member extent, as a leased u1 array.

        A dead disk's not-yet-reconstructed extent is rebuilt from its
        row instead of read (its medium is gone).
        """
        if not self._readable(ext):
            data = self._reconstruct(ext)
            arr = self._lease(ext.length)
            memoryview(arr)[:] = data
            return arr
        arr = self._lease(ext.length)
        with open(self._extent_file(ext), "rb") as fh:
            fh.seek(ext.offset)
            got = fh.readinto(memoryview(arr))
        if got != ext.length:
            get_pool().recycle(arr)
            raise DiskError(
                f"cannot reconstruct: member extent {ext.name!r}@{ext.offset} "
                f"on disk {ext.disk} is short ({got} < {ext.length} bytes)"
            )
        self.counters["parity_bytes_read"] += ext.length
        return arr

    # -- parity maintenance ----------------------------------------------

    def _fold_out(self, ext: _Extent) -> None:
        """Remove one extent from its stripe row (parity ^= old bytes)."""
        old = self._extent_bytes(ext)
        row = ext.row
        members = self._rows[row]
        del members[ext.disk]
        self._extents[(ext.disk, ext.name)].remove(ext)
        if not members:
            try:
                os.unlink(self._parity_path(row))
            except OSError:
                pass
            del self._rows[row]
            del self._row_len[row]
        else:
            par = self._read_parity(row)
            np.bitwise_xor(par[: ext.length], old, out=par[: ext.length])
            keep = max(m.length for m in members.values())
            self._write_parity(row, par, keep)
            get_pool().recycle(par)
        get_pool().recycle(old)
        self.counters["folds"] += 1

    def on_write(self, disk, name: str, offset: int, data, spare: bool) -> None:
        """Hook called by the disk *before* the file write lands, under
        the disk's lock; ``data`` is the new extent's bytes."""
        if not self.maintenance_enabled:
            return
        mv = memoryview(data).cast("B")
        nbytes = mv.nbytes
        if nbytes == 0:
            return
        end = offset + nbytes
        key = (disk.disk_id, name)
        with self._lock:
            stale = [
                e
                for e in list(self._extents.get(key, []))
                if e.offset < end and e.offset + e.length > offset
            ]
            for ext in stale:
                self._fold_out(ext)
            row = self._alloc_row(self._pos[disk.disk_id])
            ext = _Extent(disk.disk_id, name, offset, nbytes, row, spare=spare)
            self._extents.setdefault(key, []).append(ext)
            self._extents[key].sort(key=lambda e: e.offset)
            members = self._rows.setdefault(row, {})
            cur_len = self._row_len.get(row, 0)
            new_len = max(cur_len, nbytes)
            par = self._lease(new_len)
            par[:] = 0
            if cur_len:
                old_par = self._read_parity(row)
                par[:cur_len] = old_par
                get_pool().recycle(old_par)
            src = np.frombuffer(mv, dtype=_U1)
            np.bitwise_xor(par[:nbytes], src, out=par[:nbytes])
            members[disk.disk_id] = ext
            self._write_parity(row, par, new_len)
            get_pool().recycle(par)

    def on_delete(self, disk, name: str) -> None:
        """Fold every extent of a deleted object out of its rows."""
        key = (disk.disk_id, name)
        with self._lock:
            for ext in list(self._extents.get(key, [])):
                self._fold_out(ext)
            self._extents.pop(key, None)

    # -- recovery --------------------------------------------------------

    def _reconstruct(self, ext: _Extent) -> bytes:
        """Rebuild one extent by XORing its row's parity with the
        surviving members; verified against the owner's checksum
        catalog when a CRC is on record."""
        row = ext.row
        acc = self._read_parity(row)
        try:
            for member in self._rows[row].values():
                if member is ext:
                    continue
                if not self._readable(member):
                    raise DiskError(
                        f"cannot reconstruct {ext.name!r}@{ext.offset} on disk "
                        f"{ext.disk}: stripe row {row} has a second lost "
                        f"extent on disk {member.disk}"
                    )
                peer = self._extent_bytes(member)
                np.bitwise_xor(
                    acc[: member.length], peer, out=acc[: member.length]
                )
                get_pool().recycle(peer)
            data = bytes(memoryview(acc)[: ext.length])
        finally:
            get_pool().recycle(acc)
        checksums = getattr(self._by_id[ext.disk], "checksums", None)
        if checksums is not None:
            expected = checksums.expected_crc(ext.name, ext.offset, ext.length)
            if expected is not None and block_checksum(data) != expected:
                raise CorruptionError(
                    ext.disk, ext.name, [(ext.offset, ext.length)],
                    repairable=False,
                )
        self.counters["reconstructed_blocks"] += 1
        self.quarantine.record_reconstruction()
        return data

    def ensure_spare(self, disk, name: str, logical_size: int) -> Path:
        """Materialize a dead disk's object in its spare region.

        Reconstructs every still-primary extent of the object into
        ``<root>/.spare/<name>`` and pads the file to ``logical_size``
        (uncataloged regions were zero-filled gaps, so zeros are
        faithful). Idempotent; later calls only rebuild extents that
        are still primary.

        The spare bytes are reserved against the disk's capacity first
        (every cataloged extent ends within the object's logical size,
        so ``logical_size`` bounds the materialization) — and *before*
        taking the layer lock, keeping the disk-then-layer lock order
        that every other path uses.
        """
        disk.reserve_spare(name, logical_size)
        sdir = self.spare_path(disk)
        path = sdir / name
        with self._lock:
            sdir.mkdir(exist_ok=True)
            if not path.exists():
                path.touch()
            for ext in self._extents.get((disk.disk_id, name), []):
                if ext.spare:
                    continue
                data = self._reconstruct(ext)
                with open(path, "r+b") as fh:
                    size = fh.seek(0, os.SEEK_END)
                    if ext.offset > size:
                        fh.write(b"\0" * (ext.offset - size))
                    fh.seek(ext.offset)
                    fh.write(data)
                ext.spare = True
            size = path.stat().st_size
            if size < logical_size:
                with open(path, "r+b") as fh:
                    fh.seek(size)
                    fh.write(b"\0" * (logical_size - size))
        return path

    def can_repair(self, disk_id: int, name: str, extents) -> bool:
        """True when every listed ``(offset, length)`` block is an
        intact stripe member that reconstruction could rebuild."""
        with self._lock:
            cataloged = {
                (e.offset, e.length): e
                for e in self._extents.get((disk_id, name), [])
            }
            for off, ln in extents:
                ext = cataloged.get((off, ln))
                if ext is None:
                    return False
                for member in self._rows[ext.row].values():
                    if member is not ext and not self._readable(member):
                        return False
        return True

    def repair(self, disk, name: str, extents) -> int:
        """Rewrite corrupt blocks in place from parity; returns the
        number of blocks repaired."""
        repaired = 0
        with self._lock:
            cataloged = {
                (e.offset, e.length): e
                for e in self._extents.get((disk.disk_id, name), [])
            }
            for off, ln in extents:
                ext = cataloged.get((off, ln))
                if ext is None:
                    raise CorruptionError(
                        disk.disk_id, name, [(off, ln)], repairable=False
                    )
                data = self._reconstruct(ext)
                with open(self._extent_file(ext), "r+b") as fh:
                    fh.seek(ext.offset)
                    fh.write(data)
                repaired += 1
        self.counters["repaired_blocks"] += repaired
        self.quarantine.record_repair(repaired)
        return repaired


def attach_durability(
    disks: list,
    parity: bool = False,
    dead_after: int = 1,
) -> tuple[DiskQuarantine, ParityLayer | None]:
    """Wire a disk array's durability hooks, idempotently.

    Creates (or reuses) one :class:`DiskQuarantine` shared by the
    array, and — when ``parity=True`` — one :class:`ParityLayer`.
    Returns ``(quarantine, layer-or-None)``.
    """
    if not disks:
        raise ConfigError("cannot attach durability to an empty disk array")
    quarantine = getattr(disks[0], "quarantine", None)
    if quarantine is None:
        quarantine = DiskQuarantine(dead_after=dead_after)
        for disk in disks:
            disk.quarantine = quarantine
    layer = getattr(disks[0], "parity_layer", None)
    if parity and layer is None:
        layer = ParityLayer(disks, quarantine)
        for disk in disks:
            disk.parity_layer = layer
    return quarantine, layer
