"""Online per-pass invariant audits.

A checkpoint is only worth resuming from if the pass it records
actually produced columnsort-legal data. :class:`PassAuditor` runs on
rank 0 at every pass boundary (before the checkpoint manifest is
written) and verifies, against the structural claims of
:mod:`repro.columnsort.checks`:

* **count/permutation structure** — every column (or portion / PDM
  stripe set) holds exactly the records it must: a pass that dropped or
  duplicated a segment fails the size check immediately;
* **sorted-run structure** — a sampled column of a deal pass's output
  is a bounded interleaving of sorted chunks, so its number of maximal
  sorted runs is bounded (``s`` for whole columns, ``s·P`` for striped
  portions — see the paper's §3 run-structure argument);
* **output order** — sampled ranges of the PDM store, spanning block
  boundaries, must be globally nondecreasing.

A violation raises :class:`~repro.errors.AuditError` on rank 0, which
surfaces as a structured SPMD failure *before* ``save_pass`` runs — a
corrupted pass can never become a resume point.

Audit reads go through the normal store read path, so they are metered
I/O and get block-checksum verification (and degraded-mode
reconstruction) for free. Audits are opt-in (``OocJob.audit``) because
the extra reads perturb the byte-exact pass accounting the integration
tests assert.
"""

from __future__ import annotations

import random

from repro.columnsort.checks import count_sorted_runs
from repro.errors import AuditError


class PassAuditor:
    """Samples and verifies one pass's output store.

    Parameters
    ----------
    samples:
        Columns (or portions, or PDM ranges) to spot-check per pass, on
        top of the exhaustive structural size check.
    seed:
        Sampling PRNG seed (audits are deterministic per run).
    """

    def __init__(self, samples: int = 2, seed: int = 0) -> None:
        self.samples = max(1, samples)
        self._rng = random.Random(seed)
        self.audited_passes = 0
        self.audited_units = 0

    # ------------------------------------------------------------------

    def audit_pass(self, algorithm: str, store, index: int, total: int) -> None:
        """Verify the store pass ``index`` just wrote; raises
        :class:`AuditError` on any violation."""
        ctx = f"{algorithm} pass {index}/{total}, store {store.name!r}"
        if hasattr(store, "read_global"):
            self._audit_pdm(store, ctx)
        elif hasattr(store, "read_column"):
            self._audit_columns(store, ctx)
        elif hasattr(store, "read_portion"):
            self._audit_portions(store, ctx)
        else:
            return
        self.audited_passes += 1

    # ------------------------------------------------------------------

    def _sample(self, n: int) -> list[int]:
        return self._rng.sample(range(n), min(self.samples, n))

    def _audit_columns(self, store, ctx: str) -> None:
        want = store.fmt.nbytes(store.r)
        for j in range(store.s):
            have = store.disk_for(j).size(store._file(j))
            if have != want:
                raise AuditError(
                    f"{ctx}: column {j} holds {have} bytes, expected {want} "
                    f"(r={store.r} records) — records were lost or duplicated"
                )
        for j in self._sample(store.s):
            col = store.read_column(store.owner(j), j)
            runs = count_sorted_runs(col)
            if runs > store.s:
                raise AuditError(
                    f"{ctx}: column {j} has {runs} sorted runs, legal bound "
                    f"is s={store.s} — the deal structure is violated"
                )
            self.audited_units += 1

    def _audit_portions(self, store, ctx: str) -> None:
        want = store.fmt.nbytes(store.portion)
        grouped = hasattr(store, "rank_of")  # GroupColumnStore
        members = store.g if grouped else store.cfg.p
        for j in range(store.s):
            for m in range(members):
                rank = store.rank_of(j, m) if grouped else m
                part = store._file(j, m)
                have = store._disk_for(j, rank).size(part)
                if have != want:
                    raise AuditError(
                        f"{ctx}: column {j} part {m} holds {have} bytes, "
                        f"expected {want} — records were lost or duplicated"
                    )
        bound = store.s * store.cfg.p
        for j in self._sample(store.s):
            m = self._rng.randrange(members)
            rank = store.rank_of(j, m) if grouped else m
            part = store.read_portion(rank, j)
            runs = count_sorted_runs(part)
            if runs > bound:
                raise AuditError(
                    f"{ctx}: column {j} part {m} has {runs} sorted runs, "
                    f"legal bound is s·P={bound}"
                )
            self.audited_units += 1

    def _audit_pdm(self, store, ctx: str) -> None:
        total = sum(
            disk.size(store._file(d))
            for d, disk in enumerate(store.disks[: store.cfg.virtual_disks])
        )
        want = store.fmt.nbytes(store.n)
        if total != want:
            raise AuditError(
                f"{ctx}: output holds {total} bytes across its stripes, "
                f"expected {want} (N={store.n} records)"
            )
        span = min(store.n, 2 * store.block)
        for _ in range(self.samples):
            start = self._rng.randrange(max(1, store.n - span + 1))
            ranged = store.read_global(start, span)
            if count_sorted_runs(ranged) > 1:
                raise AuditError(
                    f"{ctx}: output range [{start}, {start + span}) is not "
                    "nondecreasing — final order is corrupt"
                )
            self.audited_units += 1
