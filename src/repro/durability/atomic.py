"""Crash-safe write primitives shared by every durability plane.

Three subsystems persist small metadata files whose loss or tearing
would break a recovery claim: the job journal's compaction rewrite, the
checkpoint manifests, and the block-checksum sidecar catalogs. All
three follow the same discipline, and this module is the one place it
is implemented so an audit of "did we fsync the parent directory?" has
exactly one answer:

1. write the new content to ``<path>.tmp`` in the destination
   directory;
2. ``fsync`` the temp file, so its *bytes* are durable before any name
   points at them (skipping this is the classic bug where power loss
   leaves the rename pointing at a zero-length file);
3. ``os.replace`` the temp file over the destination — atomic against
   both concurrent readers and a crash (the name maps to the old or the
   new inode, never a mixture);
4. ``fsync`` the parent directory, so the *rename itself* is durable
   (skipping this is the second classic bug: after power loss the
   directory entry silently reverts to the old file).

``durable=False`` skips the two fsyncs for hot paths that batch their
durability into an explicit barrier (see
:meth:`~repro.durability.checksums.BlockChecksums.sync`) — the replace
is still atomic with respect to process crashes, which cannot lose
page-cache contents.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


def fsync_dir(path: str | Path) -> None:
    """Flush a directory's entries to disk, making the renames, links,
    and unlinks inside it durable. No-op on platforms whose directory
    handles reject fsync (the POSIX targets we run on accept it)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - non-POSIX directory handles
        pass
    finally:
        os.close(fd)


def fsync_file(path: str | Path) -> None:
    """Flush one existing file's data to disk (used by barriers that
    make previously buffered writes durable in place)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str | Path, data: bytes, durable: bool = True
) -> None:
    """Atomically replace ``path``'s contents with ``data`` (temp file
    + ``os.replace``); with ``durable=True`` the bytes are fsynced
    before the rename and the parent directory after it, so the write
    survives power loss all-or-nothing."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        if durable:
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if durable:
        fsync_dir(path.parent)


def atomic_write_json(
    path: str | Path,
    doc: dict,
    indent: int | None = None,
    durable: bool = True,
) -> None:
    """:func:`atomic_write_bytes` for a JSON document (sorted keys, so
    repeated writes of equal content are byte-identical)."""
    atomic_write_bytes(
        path,
        json.dumps(doc, indent=indent, sort_keys=True).encode(),
        durable=durable,
    )
