"""One home for every digest the repo computes over stored bytes.

Three consumers share these helpers so their algorithms cannot drift:

* the disk layer's per-extent block checksums
  (:func:`block_checksum`);
* :meth:`~repro.disks.virtual_disk.VirtualDisk.fingerprint`
  (:func:`file_digest`);
* :func:`~repro.resilience.checkpoint.store_digest`, which folds disk
  fingerprints into one checkpoint digest (:func:`hexdigest`).

Block checksums prefer hardware-accelerated CRC32C when a ``crc32c``
module is importable and fall back to :func:`zlib.crc32` otherwise —
both are 32-bit CRCs computed on the zero-copy wire view, and the
sidecar records which algorithm wrote it so a mismatch between
environments is detected rather than misread as corruption.
"""

from __future__ import annotations

import hashlib
import zlib
from pathlib import Path

try:  # pragma: no cover - depends on the environment
    import crc32c as _crc32c_mod

    def _crc(view) -> int:
        return _crc32c_mod.crc32c(bytes(view))

    CHECKSUM_ALGO = "crc32c"
except ImportError:  # pragma: no cover - the baked-in toolchain path
    def _crc(view) -> int:
        return zlib.crc32(view) & 0xFFFFFFFF

    CHECKSUM_ALGO = "crc32"

#: Digest used for whole-file fingerprints and checkpoint digests.
DIGEST_ALGO = "sha256"


def block_checksum(data) -> int:
    """32-bit checksum of one block (any C-contiguous buffer)."""
    return _crc(memoryview(data))


def file_digest(path: str | Path) -> str:
    """Streaming hex digest of a file's bytes (:data:`DIGEST_ALGO`)."""
    h = hashlib.new(DIGEST_ALGO)
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def hexdigest(data: bytes) -> str:
    """Hex digest of in-memory bytes (:data:`DIGEST_ALGO`) — used to
    fold per-file fingerprints into one store/checkpoint digest."""
    return hashlib.new(DIGEST_ALGO, data).hexdigest()
