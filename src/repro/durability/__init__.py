"""Durability layer: block checksums, XOR parity, degraded-mode recovery.

The paper's runs are I/O-bound on commodity SCSI disks, so the failure
modes that matter in practice are disk-level: silent corruption (bit
rot, torn writes) and whole-disk loss mid-run. This package adds the
three defenses the resilience layer (PR 3) left open:

* :mod:`repro.durability.hashing` — the one place checksum and digest
  algorithms live (block CRCs, file/checkpoint SHA-256), so the disk
  layer and :class:`~repro.resilience.checkpoint.CheckpointStore` can
  never drift apart;
* block checksums — every :class:`~repro.disks.virtual_disk.VirtualDisk`
  write records a per-extent CRC (persisted in a ``.meta/`` sidecar),
  every read verifies it, and a mismatch raises
  :class:`~repro.errors.CorruptionError`;
* :mod:`repro.durability.parity` — an opt-in RAID-5-style XOR parity
  layer across the D disks; any single lost or corrupt block is
  reconstructed online from the surviving D−1 disks;
* :mod:`repro.durability.audit` — an optional per-pass auditor that
  checks the columnsort invariants before a checkpoint is declared
  good, so a corrupted pass can never be resumed from.

``attach_durability`` wires a disk array up: it creates (or reuses) a
:class:`~repro.resilience.quarantine.DiskQuarantine` and, when
``parity=True``, a :class:`~repro.durability.parity.ParityLayer`.
"""

from __future__ import annotations

from repro.durability.hashing import (
    CHECKSUM_ALGO,
    block_checksum,
    file_digest,
    hexdigest,
)
from repro.durability.parity import ParityLayer, attach_durability
from repro.durability.audit import PassAuditor

__all__ = [
    "CHECKSUM_ALGO",
    "block_checksum",
    "file_digest",
    "hexdigest",
    "ParityLayer",
    "PassAuditor",
    "attach_durability",
]
