"""Per-extent block-checksum catalog for one virtual disk.

Every :meth:`~repro.disks.virtual_disk.VirtualDisk.write_at` records a
CRC of the written extent here; every ``read_at`` verifies the extents
that tile the read range. The catalog is persisted as one JSON sidecar
per object under ``<disk root>/.meta/`` (a dot-directory, invisible to
the disk's object namespace), so checksums survive process restarts and
a ``--resume`` can detect corruption introduced while the job was down.

The catalog is deliberately extent-based rather than fixed-block-based:
the matrixfile stores write whole columns, column segments, and PDM
block ranges, and always read ranges that those write extents tile
exactly. An extent only partially covered by a later write is dropped
from the catalog (its old checksum no longer describes the file), which
matches the raw-disk semantics the disk unit tests pin down.

Sidecar durability is *barriered*, not per-write: each write rewrites
the object's sidecar atomically (temp file + ``os.replace``, which a
process crash cannot tear) but leaves the bytes and the rename in the
page cache; :meth:`BlockChecksums.sync` fsyncs every dirty sidecar and
the ``.meta/`` directory itself. The checkpoint layer calls it before a
pass manifest becomes durable, so a durable manifest can never point at
sidecars (or sidecar renames) that power loss would roll back — the
crashsim harness enumerates exactly those states (DESIGN §14).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.durability.atomic import atomic_write_json, fsync_dir, fsync_file
from repro.durability.hashing import CHECKSUM_ALGO, block_checksum


class BlockChecksums:
    """CRC catalog for the objects of one disk, with sidecar persistence."""

    def __init__(self, root: str | Path) -> None:
        self._dir = Path(root) / ".meta"
        self._lock = threading.Lock()
        #: name -> list of [offset, length, crc], sorted by offset.
        self._extents: dict[str, list[list[int]]] = {}
        #: names whose sidecar changed since the last :meth:`sync`.
        self._dirty: set[str] = set()
        if self._dir.is_dir():
            for sidecar in self._dir.glob("*.json"):
                try:
                    doc = json.loads(sidecar.read_text())
                except (OSError, ValueError):
                    continue
                # A sidecar written with a different CRC algorithm (other
                # environment) is unusable: discard instead of misreading
                # every mismatch as corruption.
                if doc.get("algo") != CHECKSUM_ALGO:
                    continue
                name = doc.get("name")
                extents = doc.get("extents")
                if isinstance(name, str) and isinstance(extents, list):
                    self._extents[name] = sorted(
                        [list(map(int, e)) for e in extents]
                    )

    # ------------------------------------------------------------------

    def _sidecar(self, name: str) -> Path:
        return self._dir / f"{name}.json"

    def _persist(self, name: str) -> None:
        """Rewrite one sidecar atomically (buffered — see :meth:`sync`
        for the durability barrier). Caller holds the lock."""
        self._dirty.add(name)
        extents = self._extents.get(name)
        if extents is None:
            try:
                self._sidecar(name).unlink()
            except OSError:
                pass
            return
        self._dir.mkdir(exist_ok=True)
        doc = {"algo": CHECKSUM_ALGO, "name": name, "extents": extents}
        atomic_write_json(self._sidecar(name), doc, durable=False)

    def sync(self) -> int:
        """Durability barrier: fsync every sidecar dirtied since the
        last barrier, then fsync ``.meta/`` itself (making the renames
        — and any unlinks from :meth:`drop` — durable). Returns the
        number of sidecars flushed.

        Between barriers a power loss may roll a sidecar back to an
        older generation (the rename was buffered); that is safe by
        construction — a stale CRC can only *refuse* bytes, never
        accept wrong ones — and the checkpoint layer calls this before
        persisting a manifest so resume points are never built on
        roll-backable metadata.
        """
        with self._lock:
            dirty, self._dirty = self._dirty, set()
            if not dirty:
                return 0
            flushed = 0
            for name in sorted(dirty):
                sidecar = self._sidecar(name)
                if sidecar.exists():
                    fsync_file(sidecar)
                    flushed += 1
            if self._dir.is_dir():
                fsync_dir(self._dir)
            return flushed

    # ------------------------------------------------------------------

    def record(self, name: str, offset: int, data) -> int:
        """Checksum one written extent and fold out any stale overlaps.

        Returns the number of bytes hashed (for ``IoStats`` metering).
        """
        view = memoryview(data)
        length = view.nbytes
        crc = block_checksum(view)
        end = offset + length
        with self._lock:
            kept = [
                e
                for e in self._extents.get(name, [])
                if e[0] >= end or e[0] + e[1] <= offset
            ]
            kept.append([offset, length, crc])
            kept.sort()
            self._extents[name] = kept
            self._persist(name)
        return length

    def drop(self, name: str) -> None:
        """Forget an object (on delete)."""
        with self._lock:
            self._extents.pop(name, None)
            self._persist(name)

    def extents(self, name: str) -> list[tuple[int, int, int]]:
        """The cataloged ``(offset, length, crc)`` extents of an object."""
        with self._lock:
            return [tuple(e) for e in self._extents.get(name, [])]

    def expected_crc(self, name: str, offset: int, length: int) -> int | None:
        """The recorded CRC of one exact extent, or ``None``."""
        with self._lock:
            for off, ln, crc in self._extents.get(name, []):
                if off == offset and ln == length:
                    return crc
        return None

    def verify(
        self, name: str, offset: int, view
    ) -> tuple[list[tuple[int, int]], int]:
        """Verify the cataloged extents fully contained in a read.

        ``view`` holds the bytes just read from ``offset``. Returns
        ``(mismatched (offset, length) extents, bytes hashed)``.
        Extents straddling the read boundary are skipped — in practice
        the stores' reads are tiled exactly by their writes.
        """
        mv = memoryview(view).cast("B")
        end = offset + mv.nbytes
        bad: list[tuple[int, int]] = []
        hashed = 0
        with self._lock:
            extents = list(self._extents.get(name, []))
        for off, ln, crc in extents:
            if off < offset or off + ln > end:
                continue
            lo = off - offset
            hashed += ln
            if block_checksum(mv[lo : lo + ln]) != crc:
                bad.append((off, ln))
        return bad, hashed
