"""Pass-boundary checkpoints: restart a killed sort at its last pass.

Every out-of-core program is a short sequence of passes, and each pass
rewrites a whole intermediate store from the previous one. That makes
the pass boundary a perfect checkpoint: a tiny manifest (pass index,
matrix shape, the name of the store holding the data, and a content
digest of that store) is enough to resume, because

* a killed pass can simply be re-run — it reads only the previous
  store and fully overwrites its own output, and every pass is
  deterministic given its input bytes, so a resumed run is
  byte-identical to an uninterrupted one;
* nothing else needs saving: append cursors, pipeline state, and pool
  leases are all pass-local.

Manifests are JSON files written atomically (temp file + ``os.replace``)
under one checkpoint directory, one per completed pass; rank 0 writes
them inside the pass-boundary barrier so no rank runs ahead of a
manifest that does not yet exist. On resume the latest manifest is
validated against the job (algorithm, shape) and the digest of the
store it names — any mismatch raises
:class:`~repro.errors.CheckpointError` rather than silently resuming
from the wrong data.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.durability.atomic import atomic_write_json, fsync_dir
from repro.durability.hashing import block_checksum, hexdigest
from repro.errors import CheckpointError

#: Manifest schema version; bump on incompatible changes.
MANIFEST_VERSION = 1


def store_digest(store) -> str:
    """Content digest of a matrixfile store: one
    :mod:`repro.durability.hashing` digest over its files' names and
    fingerprints in deterministic (disk, name) order — the same
    algorithm family as the disks' own fingerprints, by construction,
    so the two can never drift.

    Reads through :meth:`~repro.disks.virtual_disk.VirtualDisk.fingerprint`,
    which is unmetered — digesting a store must not perturb the
    byte-exact I/O accounting the integration tests assert.

    Names come from the union of the disk's in-memory size table and a
    filesystem scan of its root: under the process transport backend,
    rank 0 digests the store from a forked worker whose size table only
    tracks its *own* writes, while sibling ranks' files (flushed before
    the pass-boundary barrier) are only visible on the filesystem. The
    size table still contributes names a degraded disk serves from
    parity reconstruction, whose medium files no longer exist.
    """
    parts = []
    prefix = f"{store.name}."
    for disk in store.disks:
        names = set(disk.files())
        names.update(
            path.name for path in disk.root.iterdir() if path.is_file()
        )
        for name in sorted(names):
            if name.startswith(prefix):
                parts.append(f"{disk.disk_id}:{name}:{disk.fingerprint(name)}")
    return hexdigest("".join(parts).encode())


def corrupt_blocks(store) -> list[tuple[int, str, int, int]]:
    """Blocks of a store whose stored CRC no longer matches the file.

    Returns ``(disk_id, name, offset, length)`` tuples, reading the
    files raw (unmetered, no fault injection) — this is resume-time
    bookkeeping, not data movement. Objects already rerouted to a spare
    region are skipped; the store digest covers them.
    """
    bad: list[tuple[int, str, int, int]] = []
    prefix = f"{store.name}."
    for disk in store.disks:
        for name in disk.files():
            if not name.startswith(prefix):
                continue
            path = disk.root / name
            if not path.exists():
                continue
            with open(path, "rb") as fh:
                data = fh.read()
            view = memoryview(data)
            for offset, length, crc in disk.checksums.extents(name):
                if offset + length > len(data):
                    bad.append((disk.disk_id, name, offset, length))
                elif block_checksum(view[offset : offset + length]) != crc:
                    bad.append((disk.disk_id, name, offset, length))
    return bad


def pass_manifest(job, algorithm: str, pass_index: int, total_passes: int,
                  store) -> dict:
    """The manifest recording that ``pass_index`` completed, leaving its
    output in ``store``."""
    return {
        "version": MANIFEST_VERSION,
        "algorithm": algorithm,
        "pass_index": pass_index,
        "total_passes": total_passes,
        "n": job.n,
        "r": store.r if hasattr(store, "r") else None,
        "s": store.s if hasattr(store, "s") else None,
        "buffer_records": job.buffer_records,
        "record_size": job.fmt.record_size,
        "key": job.fmt.key,
        "store": store.name,
        "store_kind": type(store).__name__,
        "digest": store_digest(store),
    }


class CheckpointStore:
    """One directory of pass-boundary manifests for one run."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, pass_index: int) -> Path:
        return self.root / f"pass_{pass_index:04d}.json"

    # -- write -----------------------------------------------------------

    def save(self, manifest: dict) -> None:
        """Persist one manifest crash-atomically.

        Temp file + ``os.replace`` makes the manifest appear all-or-
        nothing to other *processes*, but surviving a machine crash
        needs more: the data must be fsynced before the rename (or the
        rename can land pointing at zero bytes), and the directory must
        be fsynced after it (or the rename itself can be lost). The
        supervisor restarts runs on the strength of these files; a torn
        one would turn recovery into corruption.
        """
        atomic_write_json(
            self._path(manifest["pass_index"]), manifest, indent=2
        )

    def save_pass(self, job, algorithm: str, pass_index: int,
                  total_passes: int, store) -> dict:
        """Build and persist the manifest for one completed pass.

        The manifest is a durable promise about the store it names, so
        the store is flushed *first* (every disk's object files and
        block-checksum sidecars — :meth:`VirtualDisk.sync
        <repro.disks.virtual_disk.VirtualDisk.sync>`): power loss after
        the manifest's rename persisted must find the exact bytes and
        CRCs the manifest's digest was computed over, or resume
        validation could refuse (or worse, trust) a store the page
        cache silently rolled back.
        """
        manifest = pass_manifest(job, algorithm, pass_index, total_passes, store)
        for disk in getattr(store, "disks", ()):
            sync = getattr(disk, "sync", None)
            if sync is not None:
                sync()
        self.save(manifest)
        return manifest

    # -- read ------------------------------------------------------------

    def manifests(self) -> list[dict]:
        """All manifests, ascending by pass index. A manifest that does
        not parse raises :class:`~repro.errors.CheckpointError` (a torn
        or hand-edited checkpoint directory must not be trusted)."""
        out = []
        for path in sorted(self.root.glob("pass_*.json")):
            try:
                text = path.read_text()
            except OSError as exc:
                raise CheckpointError(
                    f"unreadable checkpoint manifest {path.name}: {exc}"
                ) from exc
            if not text.strip():
                raise CheckpointError(
                    f"checkpoint manifest {path.name} is empty — a crash "
                    "truncated it before the bytes reached disk; delete it "
                    "(or the checkpoint directory) to restart from the "
                    "previous pass"
                )
            try:
                manifest = json.loads(text)
            except ValueError as exc:
                raise CheckpointError(
                    f"unreadable checkpoint manifest {path.name} (truncated "
                    f"or torn JSON): {exc}"
                ) from exc
            if manifest.get("version") != MANIFEST_VERSION:
                raise CheckpointError(
                    f"manifest {path.name} has version "
                    f"{manifest.get('version')!r}, expected {MANIFEST_VERSION}"
                )
            out.append(manifest)
        return sorted(out, key=lambda m: m["pass_index"])

    def latest(self) -> dict | None:
        """The highest-numbered manifest, or None for a fresh directory."""
        manifests = self.manifests()
        return manifests[-1] if manifests else None

    def protected_stores(self) -> set[str]:
        """Store names any manifest references — the scratch files a
        failed run must *keep* so a resume stays possible."""
        try:
            return {m["store"] for m in self.manifests()}
        except CheckpointError:
            return set()

    def clear(self) -> None:
        """Remove every manifest — and any ``.json.tmp`` leftover a
        crash stranded mid-:meth:`save` (a completed run's checkpoints
        are garbage). The directory is fsynced afterwards so power loss
        cannot roll the unlinks back and resurrect a retired manifest
        as a bogus resume point."""
        removed = False
        for path in self.root.glob("pass_*.json"):
            path.unlink(missing_ok=True)
            removed = True
        for path in self.root.glob("pass_*.json.tmp"):
            path.unlink(missing_ok=True)
            removed = True
        if removed and self.root.is_dir():
            fsync_dir(self.root)

    def prune(self) -> None:
        """Retire the whole checkpoint directory after a successful run:
        :meth:`clear` the manifests, then remove the directory itself if
        nothing foreign lives there (best-effort — a caller-owned parent
        or unexpected file means we leave the directory in place rather
        than guess). The parent directory is fsynced after a successful
        removal: an un-fsynced ``rmdir`` can be undone by power loss,
        and a resurrected stale checkpoint directory is exactly the
        "phantom resume point" the crashsim harness checks for."""
        self.clear()
        parent = self.root.parent
        try:
            self.root.rmdir()
        except OSError:
            return
        try:
            fsync_dir(parent)
        except OSError:  # pragma: no cover - parent itself raced away
            pass

    # -- resume ----------------------------------------------------------

    def resume_index(self, job, algorithm: str, stores: dict) -> int:
        """Validate the latest manifest against ``job`` and the live
        stores; return the index of the last completed pass (0 = start
        from scratch).

        ``stores`` maps the run's store keys to store objects; the
        manifest's store must be among them and its current on-disk
        digest must match the recorded one.
        """
        manifest = self.latest()
        if manifest is None:
            return 0
        if manifest["algorithm"] != algorithm:
            raise CheckpointError(
                f"checkpoint is for algorithm {manifest['algorithm']!r}, "
                f"cannot resume a {algorithm!r} run"
            )
        for field, value in (
            ("n", job.n),
            ("buffer_records", job.buffer_records),
            ("record_size", job.fmt.record_size),
            ("key", job.fmt.key),
        ):
            if manifest[field] != value:
                raise CheckpointError(
                    f"checkpoint {field}={manifest[field]!r} does not match "
                    f"the resumed job's {field}={value!r}"
                )
        by_name = {store.name: store for store in stores.values()}
        store = by_name.get(manifest["store"])
        if store is None:
            raise CheckpointError(
                f"checkpoint references store {manifest['store']!r}, which "
                f"this run does not create"
            )
        bad = corrupt_blocks(store)
        if bad:
            disk_id, name, offset, length = bad[0]
            more = f" (and {len(bad) - 1} more)" if len(bad) > 1 else ""
            raise CheckpointError(
                f"cannot resume from store {manifest['store']!r}: block "
                f"checksum failure in {name!r} at offset {offset} "
                f"({length} bytes) on disk {disk_id}{more} — the scratch "
                "bytes rotted or were tampered with since the checkpoint"
            )
        digest = store_digest(store)
        if digest != manifest["digest"]:
            raise CheckpointError(
                f"store {manifest['store']!r} digest {digest[:12]}… does not "
                f"match checkpoint {manifest['digest'][:12]}… — the scratch "
                f"files changed since the checkpoint was written"
            )
        return manifest["pass_index"]
