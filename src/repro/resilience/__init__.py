"""Fault tolerance for out-of-core runs: retries, checkpoints, watchdog.

The layer has four pieces, each usable alone:

* :class:`~repro.resilience.faults.FaultPlan` — seeded fault injection
  (probabilistic, nth-op, transient vs. permanent) shared by the disks
  and the communication fabric;
* :class:`~repro.resilience.retry.RetryPolicy` — bounded retry with
  deterministic backoff, wrapped around disk and mailbox operations;
* :class:`~repro.resilience.checkpoint.CheckpointStore` — pass-boundary
  manifests that let a killed multi-pass sort resume byte-identically;
* :class:`~repro.resilience.watchdog.RankWatchdog` — converts a hung
  rank into a prompt, structured :class:`~repro.errors.SpmdError`.
"""

from repro.resilience.checkpoint import (
    MANIFEST_VERSION,
    CheckpointStore,
    pass_manifest,
    store_digest,
)
from repro.resilience.faults import FAULT_OPS, FaultPlan, FaultSpec, transient_plan
from repro.resilience.retry import RetryPolicy
from repro.resilience.watchdog import RankWatchdog

__all__ = [
    "FAULT_OPS",
    "MANIFEST_VERSION",
    "CheckpointStore",
    "FaultPlan",
    "FaultSpec",
    "RankWatchdog",
    "RetryPolicy",
    "pass_manifest",
    "store_digest",
    "transient_plan",
]
