"""Fault tolerance for out-of-core runs: retries, checkpoints, watchdog.

The layer has six pieces, each usable alone:

* :class:`~repro.resilience.faults.FaultPlan` — seeded fault injection
  (probabilistic, nth-op, transient vs. permanent, optionally
  disk-targeted, up to killing the executing rank outright) shared by
  the disks and the communication fabric;
* :class:`~repro.resilience.retry.RetryPolicy` — bounded retry with
  deterministic backoff, wrapped around disk and mailbox operations;
* :class:`~repro.resilience.checkpoint.CheckpointStore` — pass-boundary
  manifests that let a killed multi-pass sort resume byte-identically;
* :class:`~repro.resilience.watchdog.RankWatchdog` — converts a hung
  rank into a prompt, structured :class:`~repro.errors.SpmdError`;
* :class:`~repro.resilience.quarantine.DiskQuarantine` — declares a
  disk dead after repeated permanent faults, so the durability layer
  (:mod:`repro.durability`) can switch it to degraded-mode service;
* :class:`~repro.resilience.supervisor.RunSupervisor` — the in-run
  restart loop above all of the above: when a rank dies or a cohort
  failure escapes the per-op retries, classify it against a
  :class:`~repro.resilience.supervisor.RestartPolicy` and relaunch
  from the last pass-boundary checkpoint within the same call.
"""

from repro.resilience.checkpoint import (
    MANIFEST_VERSION,
    CheckpointStore,
    corrupt_blocks,
    pass_manifest,
    store_digest,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FAULT_OPS,
    KILL_KINDS,
    RANK_EXIT_CODE,
    FaultPlan,
    FaultSpec,
    transient_plan,
)
from repro.resilience.quarantine import (
    DiskQuarantine,
    active_quarantines,
    release_all_quarantines,
)
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import (
    RestartPolicy,
    RunSupervisor,
    SupervisorStats,
)
from repro.resilience.watchdog import RankWatchdog

__all__ = [
    "FAULT_KINDS",
    "FAULT_OPS",
    "KILL_KINDS",
    "MANIFEST_VERSION",
    "RANK_EXIT_CODE",
    "CheckpointStore",
    "DiskQuarantine",
    "FaultPlan",
    "FaultSpec",
    "RankWatchdog",
    "RestartPolicy",
    "RetryPolicy",
    "RunSupervisor",
    "SupervisorStats",
    "active_quarantines",
    "corrupt_blocks",
    "pass_manifest",
    "release_all_quarantines",
    "store_digest",
    "transient_plan",
]
