"""Disk quarantine: the registry that declares a disk dead.

A transient fault is retried; a *permanent* disk fault means the medium
itself is gone. :class:`DiskQuarantine` counts permanent faults per disk
and, once a disk crosses the ``dead_after`` threshold, marks it dead.
What happens next depends on whether a
:class:`~repro.durability.parity.ParityLayer` is attached to the array:

* **with parity** — the dead disk's reads are served by reconstructing
  its blocks from the surviving D−1 disks into a spare region, and its
  writes are rerouted to that spare region; the run completes in
  *degraded mode*, byte-identical to a fault-free run;
* **without parity** — every further operation on the dead disk fails
  fast with a structural (never-retryable) ``DiskError``, so the run
  aborts promptly instead of burning its retry budget against a disk
  that cannot answer.

The quarantine also aggregates the durability counters surfaced in
:class:`~repro.cluster.spmd.SpmdResult` and the breakdown tables:
checksum failures observed, blocks reconstructed, repairs, and spare
writes.

A process-global registry tracks quarantines that currently hold dead
disks; the test suite's leak check asserts it is empty between tests so
a degraded run can never silently bleed state into the next one.
"""

from __future__ import annotations

import threading

_active_lock = threading.Lock()
_active: set["DiskQuarantine"] = set()


def active_quarantines() -> list["DiskQuarantine"]:
    """Quarantines currently holding at least one dead disk (leak check)."""
    with _active_lock:
        return list(_active)


def release_all_quarantines() -> int:
    """Release every active quarantine; returns how many there were.

    Test-teardown helper so one leaked degraded run cannot cascade into
    failures of every later test.
    """
    leaked = active_quarantines()
    for q in leaked:
        q.release()
    return len(leaked)


class DiskQuarantine:
    """Permanent-fault bookkeeping for one disk array.

    Parameters
    ----------
    dead_after:
        Permanent faults a disk may suffer before it is declared dead.
        The default of 1 models the paper's hardware: one SCSI disk per
        node, and a permanent error means the disk is gone.
    """

    def __init__(self, dead_after: int = 1) -> None:
        if dead_after < 1:
            raise ValueError(f"dead_after must be >= 1, got {dead_after}")
        self.dead_after = dead_after
        self._lock = threading.Lock()
        self._permanent: dict[int, int] = {}
        self._dead: set[int] = set()
        self._released = False
        self.checksum_failures = 0
        self.reconstructed_blocks = 0
        self.repaired_blocks = 0
        self.spare_writes = 0

    # -- fault accounting ----------------------------------------------

    def record_permanent(self, disk_id: int) -> bool:
        """Count one permanent fault; returns True if the disk just died."""
        with self._lock:
            n = self._permanent.get(disk_id, 0) + 1
            self._permanent[disk_id] = n
            if n >= self.dead_after and disk_id not in self._dead:
                self._dead.add(disk_id)
                self._register()
                return True
        return False

    def mark_dead(self, disk_id: int) -> None:
        """Declare a disk dead outright (tests, operator action)."""
        with self._lock:
            self._permanent[disk_id] = max(
                self._permanent.get(disk_id, 0), self.dead_after
            )
            if disk_id not in self._dead:
                self._dead.add(disk_id)
                self._register()

    def is_dead(self, disk_id: int) -> bool:
        with self._lock:
            return disk_id in self._dead

    def degraded_disks(self) -> list[int]:
        """Sorted ids of the disks currently declared dead."""
        with self._lock:
            return sorted(self._dead)

    # -- durability counters -------------------------------------------

    def record_checksum_failure(self, disk_id: int, n: int = 1) -> None:
        with self._lock:
            self.checksum_failures += n

    def record_reconstruction(self, blocks: int = 1) -> None:
        with self._lock:
            self.reconstructed_blocks += blocks

    def record_repair(self, blocks: int = 1) -> None:
        with self._lock:
            self.repaired_blocks += blocks

    def record_spare_write(self) -> None:
        with self._lock:
            self.spare_writes += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "degraded_disks": sorted(self._dead),
                "permanent_faults": dict(self._permanent),
                "checksum_failures": self.checksum_failures,
                "reconstructed_blocks": self.reconstructed_blocks,
                "repaired_blocks": self.repaired_blocks,
                "spare_writes": self.spare_writes,
            }

    # -- lifecycle ------------------------------------------------------

    def _register(self) -> None:
        # Called with self._lock held; the global lock nests inside.
        if not self._released:
            with _active_lock:
                _active.add(self)

    def revive(self) -> list[int]:
        """Forget dead-disk state between supervised restart attempts.

        A supervised relaunch re-executes the failed pass against the
        same virtual disks; dead/permanent state inherited from the
        crashed attempt would make the fresh attempt fail fast on disks
        that (in the simulated world) came back with the new cohort —
        and would trip the leak check if the run then succeeded.
        Clears the dead set and permanent-fault counts and drops the
        quarantine from the global registry, but — unlike
        :meth:`release` — leaves it *armed*: a disk that dies again in
        the next attempt re-registers normally. The cumulative
        durability counters (checksums, reconstructions, repairs,
        spare writes) are kept: they describe the whole run, wasted
        attempts included. Returns the disk ids that were dead.
        """
        with self._lock:
            revived = sorted(self._dead)
            self._dead.clear()
            self._permanent.clear()
        with _active_lock:
            _active.discard(self)
        return revived

    def release(self) -> None:
        """Retire this quarantine from the global leak-check registry.

        Idempotent. A test or benchmark that drove a disk dead must call
        this (directly or via ``OocResult.release_durability``) once it
        is done reading the degraded workspace.
        """
        with self._lock:
            self._released = True
        with _active_lock:
            _active.discard(self)
