"""Rank watchdog: turn a hung SPMD run into a prompt structured failure.

Each mailbox operation stamps a per-rank activity time in the
:class:`~repro.cluster.mailbox.MailboxRouter`. The watchdog is one
daemon thread that polls those stamps; when every live, unfinished
rank has been silent past the deadline, the quietest rank (oldest
stamp, ties to the lowest rank) is declared stuck. The watchdog then

* records a :class:`~repro.errors.WatchdogTimeout` naming that rank,
* closes the router, which unblocks every sibling rank waiting in a
  receive (they fail with shutdown-collateral ``CommError``), and
* lets ``run_spmd`` abandon any rank thread that *still* will not
  exit (rank threads are daemons, so a thread stuck in a sleep or a
  hung syscall cannot keep the process alive).

The driver therefore always gets a single
:class:`~repro.errors.SpmdError` whose cause names the stuck rank,
within roughly ``deadline_s`` plus one poll interval, instead of
hanging forever.
"""

from __future__ import annotations

import threading
import time

from repro.errors import WatchdogTimeout


class RankWatchdog:
    """Monitors rank liveness through router activity stamps.

    Parameters
    ----------
    router:
        The run's :class:`~repro.cluster.mailbox.MailboxRouter`; its
        ``activity()`` map and ``close()`` are the whole interface.
    deadline_s:
        Seconds of universal silence before the run is declared stuck.
    poll_s:
        Poll interval; defaults to ``deadline_s / 10`` capped at 0.25 s.
    """

    def __init__(self, router, deadline_s: float, poll_s: float | None = None) -> None:
        self.router = router
        self.deadline_s = float(deadline_s)
        self.poll_s = poll_s if poll_s is not None else min(self.deadline_s / 10, 0.25)
        self.error: WatchdogTimeout | None = None
        self.fired = threading.Event()
        self._done: set[int] = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._watch, name="rank-watchdog", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def rank_done(self, rank: int) -> None:
        """A rank finished (or failed) on its own; stop watching it."""
        with self._lock:
            self._done.add(rank)

    def stop(self) -> None:
        """Shut the watchdog down (normal end of run)."""
        self._stop.set()
        self._thread.join(timeout=self.poll_s + 1.0)

    # -- internals -------------------------------------------------------

    def _watch(self) -> None:
        while not self._stop.wait(self.poll_s):
            now = time.monotonic()
            with self._lock:
                done = set(self._done)
            stamps = {
                rank: stamp
                for rank, stamp in self.router.activity().items()
                if rank not in done
            }
            if not stamps:
                continue
            # The run is stuck only when *no* watched rank is making
            # progress; a slow-but-active run must never trip the
            # watchdog just because one rank waits on another.
            if any(now - stamp < self.deadline_s for stamp in stamps.values()):
                continue
            # Every watched rank is past the deadline by construction;
            # report them all (quietest first) so a supervisor's
            # restart-cause log is diagnosable, with the quietest rank
            # as the primary suspect.
            stalled = sorted(
                ((rank, now - stamp) for rank, stamp in stamps.items()),
                key=lambda item: (-item[1], item[0]),
            )
            stuck, idle_s = stalled[0]
            self.error = WatchdogTimeout(
                stuck, idle_s, self.deadline_s, stalled=stalled
            )
            self.fired.set()
            self.router.close()
            return
