"""Seeded fault plans: the chaos layer's one source of injected failure.

A :class:`FaultPlan` decides, per operation, whether an injected fault
fires. It generalizes the old one-shot ``VirtualDisk.inject_fault`` in
three directions the chaos harness needs:

* **probabilistic faults** — each matching op fails with probability
  ``p``, drawn from a seeded PRNG so a soak run is exactly
  reproducible from its seed;
* **nth-op triggers** — deterministic "fail the 3rd write" plans, the
  precision tool for kill-and-resume tests;
* **transient vs. permanent modes** — a *transient* fault marks its
  exception with ``transient=True`` so a
  :class:`~repro.resilience.retry.RetryPolicy` may retry the op; a
  *permanent* fault is never retryable and must surface as a
  structured failure.

One plan may be shared by many disks and the communication fabric at
once (its counters are lock-protected); ``snapshot()`` reports how
often it fired so the chaos harness can assert the run actually saw
faults.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import threading
from dataclasses import dataclass

from repro.errors import (
    CommError,
    DiskError,
    DiskFullError,
    RankKilled,
    ResilienceError,
)

#: Operation kinds a fault spec may target. ``"any"`` matches every
#: disk op (read and write) but not comm — matching the legacy
#: ``inject_fault`` contract.
FAULT_OPS = ("read", "write", "comm", "any")

#: Failure kinds a spec may inject. ``"fault"`` is a medium error
#: (:class:`~repro.errors.DiskError` / :class:`~repro.errors.CommError`);
#: ``"disk_full"`` is ENOSPC (:class:`~repro.errors.DiskFullError`),
#: only meaningful for write-side disk ops; ``"rank_kill"`` /
#: ``"rank_exit"`` kill the rank performing the op — SIGKILL or a bare
#: ``os._exit`` when the rank is a real forked process, a
#: :class:`~repro.errors.RankKilled` exception on the thread backend.
FAULT_KINDS = ("fault", "disk_full", "rank_kill", "rank_exit")

#: The kinds that kill the executing rank instead of failing the op.
KILL_KINDS = ("rank_kill", "rank_exit")

#: Exit status a ``rank_exit`` fault dies with — distinct from both a
#: clean exit and any signal, so the parent's dead-rank cause names it.
RANK_EXIT_CODE = 86


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule inside a :class:`FaultPlan`.

    Parameters
    ----------
    op:
        Which operations the rule watches: ``"read"``, ``"write"``,
        ``"comm"``, or ``"any"`` (any *disk* op).
    probability:
        Chance each matching op fails, in ``[0, 1]``. Ignored when
        ``nth`` is set.
    nth:
        Fire deterministically on the nth matching op (1-based, counted
        per plan — per disk when ``disk`` is set), instead of
        probabilistically. With ``count=None`` the rule keeps firing on
        every later matching op too — "the medium fails at op n and
        stays failed", the disk-kill scenario.
    count:
        Maximum number of times this rule may fire (``None`` =
        unlimited). A permanent fault with ``count=None`` fails every
        matching op forever.
    transient:
        Transient faults mark their exception ``transient=True`` (a
        retry may succeed); permanent ones mark it ``False``.
    disk:
        Restrict the rule to one disk id (``None`` = any). The nth-op
        counter for a disk-targeted rule counts only that disk's ops,
        so "kill disk 2 at its 5th read" is exact regardless of what
        the other disks do.
    kind:
        ``"fault"`` (default) injects a medium error; ``"disk_full"``
        injects :class:`~repro.errors.DiskFullError` — the disk ran out
        of space at exactly this op, the precision tool for exercising
        the governor's reclaim/degrade ladder mid-pass. ``disk_full``
        rules must target write-side ops (``"write"`` or ``"any"``):
        reads never allocate space. ``"rank_kill"`` / ``"rank_exit"``
        kill the *rank* performing the op: a real forked rank dies on
        the spot (SIGKILL, or ``os._exit(RANK_EXIT_CODE)`` for
        ``rank_exit``) so the parent must detect the silent death; a
        thread-backend rank raises :class:`~repro.errors.RankKilled`
        instead. Kill rules require a finite ``count`` and claim their
        fires through a fork-shared counter, so exactly ``count`` ranks
        of the whole cohort die — and a supervised restart of the same
        plan does not re-fire a spent kill.
    """

    op: str = "any"
    probability: float = 1.0
    nth: int | None = None
    count: int | None = 1
    transient: bool = True
    disk: int | None = None
    kind: str = "fault"

    def __post_init__(self) -> None:
        if self.op not in FAULT_OPS:
            raise ResilienceError(f"unknown fault op {self.op!r}")
        if self.kind not in FAULT_KINDS:
            raise ResilienceError(f"unknown fault kind {self.kind!r}")
        if self.kind == "disk_full" and self.op not in ("write", "any"):
            raise ResilienceError(
                f"disk_full faults only fire on write-side ops, not {self.op!r}"
            )
        if self.kind in KILL_KINDS and self.count is None:
            raise ResilienceError(
                "rank-kill faults need a finite count — an unlimited kill "
                "rule would kill every restarted cohort forever"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ResilienceError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.nth is not None and self.nth < 1:
            raise ResilienceError(f"nth-op trigger must be >= 1, got {self.nth}")
        if self.count is not None and self.count < 1:
            raise ResilienceError(f"fault count must be >= 1, got {self.count}")
        if self.disk is not None and self.disk < 0:
            raise ResilienceError(f"fault disk id must be >= 0, got {self.disk}")

    def matches(self, op: str) -> bool:
        if self.op == op:
            return True
        return self.op == "any" and op in ("read", "write")


class FaultPlan:
    """A seeded, thread-safe schedule of injected faults.

    Attach one to a :class:`~repro.disks.virtual_disk.VirtualDisk`
    (``disk.fault_plan``) and/or a
    :class:`~repro.cluster.mailbox.MailboxRouter` (``router.fault_plan``);
    both call :meth:`check` at the top of every operation, before any
    state changes, so a retried op is indistinguishable from a fresh one.
    """

    def __init__(self, specs: tuple | list = (), seed: int = 0) -> None:
        self.seed = seed
        self._specs: list[FaultSpec] = list(specs)
        self._fired: dict[int, int] = {}
        self._ops: dict[str, int] = {}
        self._ops_by_disk: dict[tuple[str, int], int] = {}
        self._faults: dict[str, int] = {}
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        # Kill rules claim fires through fork-shared cells: a plan is
        # fork-copied into every rank of the process backend, so a
        # plain dict counter would (a) let every rank kill itself on
        # its own nth op and (b) die with the killed child, re-arming
        # the rule on every supervised restart. An anonymous
        # multiprocessing.Value is inherited over fork, written
        # atomically under its own lock, and survives any child's
        # SIGKILL — the parent sees the spent counter.
        self._kill_cells: dict[int, object] = {}
        self._register_kill_cells()

    def _register_kill_cells(self) -> None:
        ctx = multiprocessing.get_context("fork")
        for i, spec in enumerate(self._specs):
            if spec.kind in KILL_KINDS and i not in self._kill_cells:
                self._kill_cells[i] = ctx.Value("i", 0)

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        """The plan's rules, as an immutable snapshot."""
        with self._lock:
            return tuple(self._specs)

    def add(self, spec: FaultSpec) -> None:
        """Append one more rule to the plan."""
        with self._lock:
            self._specs.append(spec)
            self._register_kill_cells()

    def arm_once(self, op: str) -> None:
        """The legacy ``inject_fault`` contract: the next matching op
        fails, permanently (not retryable), exactly once."""
        self.add(FaultSpec(op=op, probability=1.0, count=1, transient=False))

    def _error(self, op: str, spec: FaultSpec, where: str):
        mode = "transient" if spec.transient else "permanent"
        if spec.kind == "disk_full":
            exc: Exception = DiskFullError(f"injected disk-full {where}")
        elif op == "comm":
            exc = CommError(f"injected {mode} comm fault {where}")
        else:
            exc = DiskError(f"injected {op} fault {where} ({mode})")
        exc.transient = spec.transient
        return exc

    def _kill(self, spec: FaultSpec, where: str):
        """Kill the executing rank. Never returns normally."""
        if multiprocessing.parent_process() is not None:
            # A real forked rank: die for real, no unwind, no goodbye
            # message — the parent must detect the silent death.
            if spec.kind == "rank_exit":
                os._exit(RANK_EXIT_CODE)
            os.kill(os.getpid(), signal.SIGKILL)
        # Thread-backend ranks share the test runner's address space;
        # the closest analogue of losing the rank is a structured,
        # never-retryable exception.
        raise RankKilled(f"injected {spec.kind} {where}")

    def check(self, op: str, where: str = "", disk_id: int | None = None) -> None:
        """Raise an injected fault if a rule fires for this op.

        Disk ops raise :class:`~repro.errors.DiskError`, comm ops
        :class:`~repro.errors.CommError`; either way the exception
        carries ``transient`` so a retry policy can classify it. Called
        before the op has any side effect, so retrying after a
        transient fault is always safe. ``disk_id`` identifies the
        disk performing the op (``None`` for comm) so disk-targeted
        rules can match.
        """
        with self._lock:
            n = self._ops.get(op, 0) + 1
            self._ops[op] = n
            if disk_id is not None:
                key = (op, disk_id)
                n_disk = self._ops_by_disk.get(key, 0) + 1
                self._ops_by_disk[key] = n_disk
            else:
                n_disk = 0
            for i, spec in enumerate(self._specs):
                if not spec.matches(op):
                    continue
                if spec.kind == "disk_full" and op != "write":
                    continue  # reads never allocate space
                if spec.disk is not None and spec.disk != disk_id:
                    continue
                if spec.kind in KILL_KINDS:
                    cell = self._kill_cells[i]
                    with cell.get_lock():
                        if cell.value >= spec.count:
                            continue
                        if spec.nth is not None:
                            seen = n_disk if spec.disk is not None else n
                            # >= rather than ==: the first rank past the
                            # threshold claims the kill, whatever its
                            # exact local count (each forked rank counts
                            # its own ops).
                            hit = seen >= spec.nth
                        else:
                            hit = self._rng.random() < spec.probability
                        if not hit:
                            continue
                        cell.value += 1
                    self._faults[op] = self._faults.get(op, 0) + 1
                    self._kill(spec, where)
                fired = self._fired.get(i, 0)
                if spec.count is not None and fired >= spec.count:
                    continue
                if spec.nth is not None:
                    seen = n_disk if spec.disk is not None else n
                    # An unlimited-count nth rule models a medium that
                    # dies at op n and never answers again.
                    hit = seen == spec.nth if spec.count is not None else seen >= spec.nth
                else:
                    hit = self._rng.random() < spec.probability
                if hit:
                    self._fired[i] = fired + 1
                    self._faults[op] = self._faults.get(op, 0) + 1
                    raise self._error(op, spec, where)

    def snapshot(self) -> dict:
        """Ops seen and faults fired, per op kind. ``rank_kills`` is
        read from the fork-shared cells, so the parent sees kills that
        fired inside (and died with) a forked rank."""
        with self._lock:
            kills = sum(cell.value for cell in self._kill_cells.values())
            return {
                "ops": dict(self._ops),
                "faults": dict(self._faults),
                "fired_total": sum(self._fired.values()) + kills,
                "rank_kills": kills,
            }

    def reset_counters(self) -> None:
        """Clear op/fired counters and re-seed the PRNG (rules stay)."""
        with self._lock:
            self._fired.clear()
            self._ops.clear()
            self._ops_by_disk.clear()
            self._faults.clear()
            self._rng = random.Random(self.seed)
            for cell in self._kill_cells.values():
                with cell.get_lock():
                    cell.value = 0


def transient_plan(
    read_p: float = 0.0,
    write_p: float = 0.0,
    comm_p: float = 0.0,
    seed: int = 0,
    count: int | None = None,
) -> FaultPlan:
    """A plan of independent transient faults at the given per-op rates
    — the chaos harness's 'survivable weather' preset."""
    specs = []
    for op, p in (("read", read_p), ("write", write_p), ("comm", comm_p)):
        if p > 0:
            specs.append(
                FaultSpec(op=op, probability=p, count=count, transient=True)
            )
    return FaultPlan(specs, seed=seed)
