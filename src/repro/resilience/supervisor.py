"""Supervised recovery: automatic restart of a crashed SPMD cohort.

The paper's out-of-core sorts target runs long enough that losing a
rank is the *expected* case, not the exceptional one. Before this
module, a rank dying (SIGKILL, ``os._exit``, an unhandled exception, a
watchdog timeout) aborted the whole ``sort_out_of_core`` call and
recovery meant a human re-invoking with ``--resume``. The supervisor
closes that loop in-process: the parent tears down the surviving
cohort, sweeps leftover state (scratch stores, ``/dev/shm`` segments,
quarantines, pool leases — the *caller* owns those resets, via the
``on_restart`` hook), and relaunches the pass program from the last
pass-boundary checkpoint **within the same call**.

Three pieces:

* :class:`RestartPolicy` — how many restarts, how long to back off
  (seeded exponential backoff with jitter, mirroring
  :class:`~repro.resilience.retry.RetryPolicy`), and the
  restartable-vs-fatal classification. The classification reuses the
  failure taxonomy the retry and governor layers established: asking
  to stop (:class:`~repro.errors.Cancellation`), refusing to start
  (:class:`~repro.errors.AdmissionRejected`,
  :class:`~repro.errors.BudgetExceeded`), and failures a relaunch
  cannot cure (unrepairable corruption, a full disk, a bad config, a
  failed audit or checkpoint) stay fatal; crashes and hangs restart.
* :class:`SupervisorStats` — restarts taken, wall spent restarting,
  and a per-attempt cause log, surfaced end to end on
  ``SpmdResult.supervisor`` / ``OocResult.supervisor`` and rendered by
  ``breakdown.supervisor_breakdown_table``.
* :class:`RunSupervisor` — the loop itself: run the attempt, classify
  the failure, reset the world through ``on_restart``, back off
  (cancellably — a governor deadline expiring during backoff wins),
  and try again.

The supervisor deliberately knows nothing about stores, transports, or
checkpoints: the attempt callable re-resolves the resume point itself
and the ``on_restart`` hook does the domain-specific sweeping. That
keeps one supervisor correct above both seams — bare ``run_spmd`` (the
transport-conformance seam) and the checkpoint-aware
``run_pass_program``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.errors import (
    AdmissionRejected,
    AuditError,
    BudgetExceeded,
    Cancellation,
    CheckpointError,
    ConfigError,
    CorruptionError,
    DimensionError,
    DiskFullError,
    SpmdError,
    VerificationError,
)
from repro.governor.cancel import maybe_sleep

#: Failure classes a relaunch can never cure: structured refusals and
#: stop requests (cancellation, admission, budget), configuration and
#: shape mistakes, data already known bad (failed audit/verification,
#: untrusted checkpoint), and resource exhaustion that deterministic
#: re-execution would simply hit again (a full disk).
FATAL_TYPES = (
    Cancellation,
    AdmissionRejected,
    BudgetExceeded,
    CheckpointError,
    AuditError,
    ConfigError,
    DimensionError,
    VerificationError,
    DiskFullError,
)


@dataclass(frozen=True)
class RestartPolicy:
    """When and how often a supervised run may be relaunched.

    Parameters
    ----------
    max_restarts:
        Restarts allowed *after* the first attempt (so a policy with
        ``max_restarts=2`` runs at most 3 attempts).
    base_backoff_s / max_backoff_s / jitter / seed:
        Seeded exponential backoff between attempts, same shape as
        :class:`~repro.resilience.retry.RetryPolicy`: restart ``k``
        sleeps ``base * 2**(k-1)`` capped at ``max_backoff_s``, plus a
        uniform jitter fraction drawn from ``random.Random(seed)`` so
        two supervised runs with the same seed back off identically.
    """

    max_restarts: int = 2
    base_backoff_s: float = 0.01
    max_backoff_s: float = 1.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ConfigError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigError("restart backoff must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")

    def restartable(self, exc: BaseException) -> bool:
        """True when relaunching from the last checkpoint may cure
        ``exc``.

        The launcher wraps rank failures as
        :class:`~repro.errors.SpmdError`; classification looks at the
        carried cause. Restartable: killed/vanished ranks, watchdog
        timeouts, escaped transient faults, repairable corruption, and
        any ordinary unhandled exception (a crash is exactly what
        supervision is for). Fatal: every :data:`FATAL_TYPES` class,
        unrepairable corruption, an injected fault explicitly marked
        permanent (``transient=False`` — deterministic re-execution
        would hit it again), and non-``Exception`` signals like
        ``KeyboardInterrupt``.
        """
        cause = exc.cause if isinstance(exc, SpmdError) else exc
        if not isinstance(cause, Exception):
            return False
        if isinstance(cause, FATAL_TYPES):
            return False
        if isinstance(cause, CorruptionError):
            return cause.repairable
        if getattr(cause, "transient", None) is False:
            return False
        return True

    def delay_s(self, restart: int, rng: random.Random) -> float:
        """Backoff before restart number ``restart`` (1-based)."""
        if restart < 1:
            raise ConfigError(f"restart number must be >= 1, got {restart}")
        base = min(
            self.base_backoff_s * (2 ** (restart - 1)), self.max_backoff_s
        )
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class SupervisorStats:
    """What supervision did to one run.

    ``attempts`` logs every *failed* attempt (a clean first attempt
    leaves it empty): cause type and message, the failing rank when the
    launcher identified one, the classification verdict, whether a
    restart followed, and the backoff taken. ``restarts`` counts the
    relaunches actually performed; ``restart_wall`` is the wall-clock
    spent between attempts (teardown hook + backoff + resume
    re-validation).
    """

    max_restarts: int = 0
    restarts: int = 0
    restart_wall: float = 0.0
    attempts: list[dict] = field(default_factory=list)

    def record_failure(
        self,
        exc: BaseException,
        restartable: bool,
        restarted: bool,
        backoff_s: float,
    ) -> dict:
        cause = exc.cause if isinstance(exc, SpmdError) else exc
        entry = {
            "attempt": len(self.attempts) + 1,
            "cause": type(cause).__name__,
            "detail": str(cause)[:200],
            "rank": getattr(exc, "rank", None),
            "restartable": restartable,
            "restarted": restarted,
            "backoff_s": round(backoff_s, 6),
        }
        self.attempts.append(entry)
        return entry

    def as_dict(self) -> dict:
        return {
            "max_restarts": self.max_restarts,
            "restarts": self.restarts,
            "restart_wall": self.restart_wall,
            "attempts": [dict(entry) for entry in self.attempts],
        }


class RunSupervisor:
    """The classified restart loop around one SPMD launch.

    ``run(attempt, on_restart)`` calls ``attempt()`` until it returns.
    On failure the policy classifies the exception; a fatal class, an
    exhausted restart budget, or a cancellation during backoff
    re-raises to the caller's normal failure path. Otherwise
    ``on_restart(restart_number, exc)`` sweeps the world (delete
    un-checkpointed scratch, revive quarantines, reap stale shared
    memory — whatever the seam owns), the supervisor backs off
    cancellably, and the next attempt starts. The attempt callable is
    responsible for re-resolving its resume point (the last trusted
    pass-boundary checkpoint) at the top of every attempt.
    """

    def __init__(self, policy: RestartPolicy, cancel=None) -> None:
        self.policy = policy
        self.cancel = cancel
        self.stats = SupervisorStats(max_restarts=policy.max_restarts)
        self._rng = random.Random(policy.seed)

    def run(self, attempt, on_restart=None):
        while True:
            try:
                return attempt()
            except BaseException as exc:
                restartable = self.policy.restartable(exc)
                restart = restartable and (
                    self.stats.restarts < self.policy.max_restarts
                )
                backoff = (
                    self.policy.delay_s(self.stats.restarts + 1, self._rng)
                    if restart
                    else 0.0
                )
                self.stats.record_failure(exc, restartable, restart, backoff)
                if not restart:
                    raise
                self.stats.restarts += 1
                started = time.monotonic()
                try:
                    if on_restart is not None:
                        on_restart(self.stats.restarts, exc)
                    # A cancel/deadline arriving during backoff wins
                    # over the restart: maybe_sleep raises the
                    # structured Cancellation, which propagates to the
                    # caller's fatal path.
                    maybe_sleep(self.cancel, backoff)
                finally:
                    self.stats.restart_wall += time.monotonic() - started
