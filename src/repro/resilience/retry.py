"""Transient-fault retry: bounded attempts with deterministic backoff.

A :class:`RetryPolicy` wraps the lowest-level fallible operations —
:meth:`~repro.disks.virtual_disk.VirtualDisk.read_at` /
:meth:`~repro.disks.virtual_disk.VirtualDisk.write_at` (and, through
them, every matrixfile store) and
:meth:`~repro.cluster.mailbox.MailboxRouter.put` — with:

* a hard attempt budget (``max_attempts``);
* exponential backoff with *seeded* jitter, so two runs with the same
  seed sleep the same schedule (the chaos soak depends on this for
  reproducibility);
* per-exception classification: only *retryable* faults are retried.

Classification policy (:meth:`RetryPolicy.retryable`): an exception
carrying ``transient`` (set by :class:`~repro.resilience.faults.FaultPlan`)
is classified by that flag; :class:`~repro.errors.DiskFullError` and
structural misuse (read-only disks, invalid names/ranges, wrong-rank
access, missing objects) are always fatal; bare short reads are treated
as transient (the out-of-core stores never legitimately short-read, so
a short read means a racing or flaky medium).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.errors import CorruptionError, DiskError, DiskFullError, ResilienceError

#: Substrings identifying structural (never-retryable) DiskError
#: messages raised by the virtual-disk layer itself.
_FATAL_MARKERS = (
    "read-only",
    "invalid",
    "negative",
    "no object",
    "out of range",
    "cannot access",
    "cannot write",
    "cannot reconstruct",
    "quarantined dead",
    "unknown fault kind",
    "read buffer holds",
)


@dataclass
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff.

    Parameters
    ----------
    max_attempts:
        Total tries per operation (1 = no retry).
    base_delay_s:
        Sleep before the first retry; doubles each further retry.
    max_delay_s:
        Backoff ceiling.
    jitter:
        Fraction of the delay randomized (``0.25`` → ±25%), drawn from
        a PRNG seeded with ``seed`` so schedules are reproducible.
    seed:
        Jitter PRNG seed.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.005
    max_delay_s: float = 0.25
    jitter: float = 0.25
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    _lock: threading.Lock = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ResilienceError("retry delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError(f"jitter must be in [0, 1], got {self.jitter}")
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    # -- classification --------------------------------------------------

    @staticmethod
    def retryable(exc: BaseException) -> bool:
        """True when retrying ``exc``'s operation could plausibly help."""
        if isinstance(exc, DiskFullError):
            # Non-retryable-without-reclaim, whatever its transient flag
            # says: backing off cannot conjure free space, so ENOSPC must
            # not burn the backoff budget. Space recovery is the run
            # governor's job (reclaim dead scratch, then degrade); its
            # retry happens in the disk's op loop, outside this policy.
            return False
        transient = getattr(exc, "transient", None)
        if transient is not None:
            return bool(transient)
        if isinstance(exc, CorruptionError):
            # Retryable-with-repair: the disk's op loop rebuilds the
            # block from parity before the retry; without parity there
            # is nothing a retry could change.
            return bool(exc.repairable)
        if isinstance(exc, DiskError):
            msg = str(exc)
            return not any(marker in msg for marker in _FATAL_MARKERS)
        return False

    # -- backoff ---------------------------------------------------------

    def delay_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ResilienceError(f"attempt must be >= 1, got {attempt}")
        delay = min(self.base_delay_s * (2 ** (attempt - 1)), self.max_delay_s)
        if self.jitter and delay:
            with self._lock:
                factor = 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
            delay *= factor
        return delay

    # -- execution -------------------------------------------------------

    def run(self, fn, on_retry=None, cancel=None):
        """Call ``fn()`` under this policy.

        Retries only retryable exceptions, sleeping the backoff between
        attempts; ``on_retry(attempt, exc)`` is invoked before each
        retry (the disks use it to meter retry counts into
        :class:`~repro.disks.iostats.IoStats`). With ``cancel`` (a
        :class:`~repro.governor.CancelToken`), backoff sleeps are
        cancellation points. The final failure is re-raised unchanged.
        """
        attempt = 1
        while True:
            if cancel is not None and cancel.cancelled():
                raise cancel.exception()
            try:
                return fn()
            except BaseException as exc:
                if attempt >= self.max_attempts or not self.retryable(exc):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                if cancel is not None:
                    cancel.sleep(self.delay_s(attempt))
                else:
                    time.sleep(self.delay_s(attempt))
                attempt += 1
