"""The JSON-lines protocol on the daemon's local socket.

One connection carries any number of request/response pairs; each is a
single newline-terminated JSON object. Requests name an ``op`` —
``submit`` / ``status`` / ``cancel`` / ``result`` / ``health`` /
``drain`` — plus op-specific fields; responses are ``{"ok": true, ...}``
or ``{"ok": false, "error": {"type": ..., "message": ...}}``. Everything
is idempotent by construction: ``submit`` dedupes on its idempotency
key, ``cancel``/``drain`` are level-triggered, and the reads are pure —
which is what lets the client retry any request after a reconnect
without double-effects.

Job specs share the ``sort`` CLI's vocabulary (the service runs exactly
the sorts the CLI runs); :func:`validate_spec` normalizes a request's
spec against :data:`SPEC_DEFAULTS` and rejects unknown fields or
illegal values *before* anything is journaled.
"""

from __future__ import annotations

import json
import socket

from repro.errors import ServiceError

#: Ops the daemon serves.
OPS = ("submit", "status", "cancel", "result", "health", "drain")

#: Job-spec fields and their defaults (the ``sort`` CLI's defaults).
SPEC_DEFAULTS = {
    "algorithm": "threaded",
    "records": 8192,
    "buffer": 512,
    "processors": 4,
    "record_size": 64,
    "key": "u8",
    "workload": "uniform",
    "seed": 0,
    "pipeline_depth": 2,
    "backend": "thread",
    "verify": True,
}

#: Maximum accepted request line (a spec is a few hundred bytes; a
#: megabyte means a confused or hostile peer).
MAX_LINE_BYTES = 1 << 20


def validate_spec(spec: dict) -> dict:
    """Normalize a submitted job spec; raises
    :class:`~repro.errors.ServiceError` on unknown fields or illegal
    values. Full shape/bound validation happens when the job runs (the
    algorithms own those rules); this rejects what can be rejected
    before a journal record exists."""
    from repro.oocs.api import ALGORITHMS
    from repro.records.generators import workload_names

    if not isinstance(spec, dict):
        raise ServiceError(f"job spec must be an object, got {type(spec).__name__}")
    unknown = set(spec) - set(SPEC_DEFAULTS)
    if unknown:
        raise ServiceError(f"unknown job-spec field(s): {sorted(unknown)}")
    out = dict(SPEC_DEFAULTS)
    out.update(spec)
    if out["algorithm"] not in ALGORITHMS:
        raise ServiceError(
            f"unknown algorithm {out['algorithm']!r}; expected one of "
            f"{sorted(ALGORITHMS)}"
        )
    if out["workload"] not in workload_names():
        raise ServiceError(f"unknown workload {out['workload']!r}")
    for name in ("records", "buffer", "processors", "record_size", "seed",
                 "pipeline_depth"):
        if not isinstance(out[name], int) or isinstance(out[name], bool):
            raise ServiceError(f"spec field {name!r} must be an integer")
    for name in ("records", "buffer", "processors", "record_size"):
        if out[name] < 1:
            raise ServiceError(f"spec field {name!r} must be >= 1")
    if out["pipeline_depth"] < 0:
        raise ServiceError("spec field 'pipeline_depth' must be >= 0")
    if not isinstance(out["verify"], bool):
        raise ServiceError("spec field 'verify' must be a boolean")
    return out


# -- framing ---------------------------------------------------------------


def send_message(sock: socket.socket, message: dict) -> None:
    """Write one JSON line (the whole message or an exception)."""
    data = json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n"
    sock.sendall(data.encode())


def recv_message(fh) -> dict | None:
    """Read one JSON line from a socket makefile; None on EOF.

    Raises :class:`~repro.errors.ServiceError` on an over-long or
    unparsable line — the connection is then dropped (a framing error
    leaves no way to find the next message boundary safely).
    """
    line = fh.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ServiceError(f"protocol line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ServiceError(f"unparsable protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise ServiceError("protocol messages must be JSON objects")
    return message


def ok(**fields) -> dict:
    out = {"ok": True}
    out.update(fields)
    return out


def error(exc_or_type, message: str | None = None) -> dict:
    """A structured error response; accepts an exception or a type name."""
    if isinstance(exc_or_type, BaseException):
        type_name = type(exc_or_type).__name__
        message = str(exc_or_type)
    else:
        type_name = str(exc_or_type)
    return {"ok": False, "error": {"type": type_name, "message": message or ""}}
