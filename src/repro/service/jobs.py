"""The job lifecycle state machine and its journal replay.

One job's life (DESIGN §13)::

    submitted ──► admitted ──► running ──► done
        │             │        │    ▲  └──► failed
        │             │        ▼    │
        │             │     checkpointed ──► done | failed
        │             │        │
        └──────┬──────┴────────┘
               ▼
           cancelled

``running → running`` (and ``checkpointed → running``) is legal: a
daemon restart relaunches a crashed job, journaling a fresh ``running``
event for the new attempt. ``checkpointed`` records pass-boundary
progress (the durable resume point is the checkpoint *manifest*; the
journal event makes the progress observable and survives with it).

Replay folds the journal's event prefix into a job table. It is strict
where strictness is free: a duplicate ``submitted`` for one job id, an
event for a job never submitted, or an illegal transition raises
:class:`~repro.errors.JournalError` — the journal is written by one
daemon holding an exclusive lock, so such a sequence can only mean
corruption that CRC validation missed, and trusting it would be exactly
the lost/duplicated-job bug this layer exists to prevent. Truncation is
*not* an error: any prefix of a legal event sequence is itself legal
(the property the hypothesis suite pins down), so replay of a torn
journal yields the honest state as of the last durable event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import JournalError

#: Every state a job can be journaled in.
JOB_STATES = (
    "submitted",
    "admitted",
    "running",
    "checkpointed",
    "done",
    "failed",
    "cancelled",
)

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: state → states it may transition to.
LEGAL_TRANSITIONS = {
    "submitted": {"admitted", "running", "cancelled", "failed"},
    "admitted": {"running", "cancelled", "failed"},
    "running": {"running", "checkpointed", "done", "failed", "cancelled"},
    "checkpointed": {"running", "checkpointed", "done", "failed", "cancelled"},
    "done": set(),
    "failed": set(),
    "cancelled": set(),
}


@dataclass
class JobRecord:
    """One job's current state as replayed from (or mirrored ahead of)
    the journal."""

    job_id: str
    tenant: str
    spec: dict
    idempotency_key: str | None = None
    state: str = "submitted"
    submitted_seq: int = 0
    updated_seq: int = 0
    passes_done: int = 0
    attempts: int = 0  # ``running`` events observed (restarts show here)
    error: dict | None = None
    result: dict | None = None
    cancel_reason: str | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def public(self) -> dict:
        """The job as the status/result protocol responses show it."""
        out = {
            "job": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "passes_done": self.passes_done,
            "attempts": self.attempts,
            "spec": dict(self.spec),
        }
        if self.idempotency_key is not None:
            out["idempotency_key"] = self.idempotency_key
        if self.error is not None:
            out["error"] = dict(self.error)
        if self.result is not None:
            out["result"] = dict(self.result)
        if self.cancel_reason is not None:
            out["cancel_reason"] = self.cancel_reason
        return out


def apply_event(jobs: dict[str, JobRecord], event: dict) -> JobRecord | None:
    """Fold one journal event into the job table (None for service-level
    events like ``drain``/``recovered``, which carry no job id)."""
    job_id = event.get("job")
    kind = event.get("kind")
    if job_id is None:
        return None
    if kind == "submitted":
        if job_id in jobs:
            raise JournalError(
                f"journal replays a second submission for job {job_id!r}"
            )
        record = JobRecord(
            job_id=job_id,
            tenant=event.get("tenant", "default"),
            spec=event.get("spec", {}),
            idempotency_key=event.get("key"),
            submitted_seq=event["seq"],
            updated_seq=event["seq"],
        )
        jobs[job_id] = record
        return record
    record = jobs.get(job_id)
    if record is None:
        raise JournalError(
            f"journal has a {kind!r} event for job {job_id!r} "
            "that was never submitted"
        )
    if kind not in JOB_STATES:
        raise JournalError(f"journal has unknown job state {kind!r}")
    if kind not in LEGAL_TRANSITIONS[record.state]:
        raise JournalError(
            f"illegal transition {record.state!r} → {kind!r} for job "
            f"{job_id!r} at seq {event.get('seq')}"
        )
    record.state = kind
    record.updated_seq = event["seq"]
    if kind == "running":
        record.attempts += 1
    elif kind == "checkpointed":
        record.passes_done = max(record.passes_done, int(event.get("pass", 0)))
    elif kind == "done":
        record.result = event.get("result")
    elif kind == "failed":
        record.error = event.get("error")
    elif kind == "cancelled":
        record.cancel_reason = event.get("reason")
    return record


def replay_jobs(events: list[dict]) -> tuple[dict[str, JobRecord], list[dict]]:
    """Replay a journal prefix into ``(job table, service events)``.

    Service events (``drain``, ``recovered`` — anything without a job
    id) come back verbatim for observability; job events must form a
    legal history or :class:`~repro.errors.JournalError` is raised.
    """
    jobs: dict[str, JobRecord] = {}
    service_events: list[dict] = []
    for event in events:
        if event.get("job") is None:
            service_events.append(event)
        else:
            apply_event(jobs, event)
    return jobs, service_events


def compaction_events(jobs: dict[str, JobRecord]) -> list[dict]:
    """A minimal legal event sequence reconstructing ``jobs`` — what
    :meth:`~repro.service.journal.JobJournal.compact` rewrites a grown
    journal down to. Ordering follows each job's original submission
    order, so replay stays deterministic."""
    out: list[dict] = []
    for record in sorted(jobs.values(), key=lambda r: r.submitted_seq):
        out.append(
            {
                "kind": "submitted",
                "job": record.job_id,
                "tenant": record.tenant,
                "spec": record.spec,
                **({"key": record.idempotency_key} if record.idempotency_key else {}),
            }
        )
        if record.state == "submitted":
            continue
        replayed: list[dict] = []
        if record.state in ("running", "checkpointed", "done", "failed",
                            "cancelled") and record.attempts:
            replayed.append({"kind": "admitted", "job": record.job_id})
            replayed.append({"kind": "running", "job": record.job_id})
        elif record.state == "admitted":
            replayed.append({"kind": "admitted", "job": record.job_id})
        if record.passes_done and record.state != "submitted":
            replayed.append(
                {"kind": "checkpointed", "job": record.job_id,
                 "pass": record.passes_done}
            )
        if record.state == "done":
            replayed.append(
                {"kind": "done", "job": record.job_id, "result": record.result}
            )
        elif record.state == "failed":
            replayed.append(
                {"kind": "failed", "job": record.job_id, "error": record.error}
            )
        elif record.state == "cancelled":
            replayed.append(
                {"kind": "cancelled", "job": record.job_id,
                 "reason": record.cancel_reason}
            )
        out.extend(replayed)
    return out
