"""The sort-as-a-service daemon: a crash-safe job lifecycle over
:class:`~repro.governor.JobGovernor`.

Design (DESIGN §13):

* **Journal-before-acknowledge.** Every acknowledged state change hits
  the :class:`~repro.service.journal.JobJournal` (fsync'd) first. The
  daemon's memory is just a cache of the journal; ``kill -9`` at any
  instant loses at most an un-acknowledged request, which the client
  retries idempotently.
* **Recovery-on-restart.** Startup repairs the journal's torn tail,
  replays it, and requeues every non-terminal job: ``submitted``/
  ``admitted`` jobs run from scratch; ``running``/``checkpointed`` jobs
  rerun with ``resume=True`` against their surviving pass-boundary
  checkpoints (the :mod:`repro.resilience` machinery makes the resumed
  output byte-identical to an uninterrupted run).
* **Tenancy on top of the governor.** The scheduler picks the
  highest-priority admitted job whose tenant is under its
  ``max_running`` quota, then the executor maps the job onto the shared
  :class:`~repro.governor.JobGovernor` with the tenant's priority — so
  global concurrency, memory/scratch quotas, and priority ordering are
  all enforced by the same admission gate single sorts use.
* **Graceful drain.** ``drain`` (and SIGTERM) stops admission and new
  job starts, lets in-flight jobs finish under a deadline, then
  cancel-interrupts the stragglers *without journaling a terminal
  state* — their last checkpoint stays valid and their journal state
  stays ``running``/``checkpointed``, so the next start resumes them.
  The drain itself is journaled.

In-run robustness is inherited, not reimplemented: each job runs under
its own :class:`~repro.governor.CancelToken`, the service-wide
:class:`~repro.resilience.supervisor.RestartPolicy` (rank crashes
restart in place), and per-job checkpoint directories that
:func:`~repro.oocs.api.sort_out_of_core` prunes on success.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError, Cancellation, JobNotFound, ServiceError
from repro.governor import CancelToken, JobGovernor
from repro.service import protocol
from repro.service.jobs import (
    TERMINAL_STATES,
    JobRecord,
    apply_event,
    compaction_events,
    replay_jobs,
)
from repro.service.journal import JobJournal

#: Unix sockets cap sun_path around 108 bytes; fail early and clearly.
_MAX_SOCKET_PATH = 100


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's share of the service.

    ``max_running`` bounds the tenant's concurrently running jobs,
    ``max_queued`` its jobs waiting to run (a submit past it is shed,
    un-journaled, with a structured rejection — exactly the governor's
    shedding contract), and ``priority`` orders the scheduler and the
    governor queue (higher runs sooner; FIFO within a priority).
    """

    max_running: int = 2
    max_queued: int = 16
    priority: int = 0


class _ProgressToken(CancelToken):
    """The per-job cancel token, extended to report pass-boundary
    progress: every rank calls :meth:`pass_boundary`, the first call
    per index journals one ``checkpointed`` event."""

    def __init__(self, on_pass) -> None:
        super().__init__()
        self._on_pass = on_pass
        self._last_reported = 0
        self._report_lock = threading.Lock()
        self.drain_interrupt = False  # set before a drain-deadline cancel

    def pass_boundary(self, completed_index: int) -> None:
        report = False
        with self._report_lock:
            if completed_index > self._last_reported:
                self._last_reported = completed_index
                report = True
        if report:
            try:
                self._on_pass(completed_index)
            except Exception:
                pass  # progress reporting must never fail the sort
        super().pass_boundary(completed_index)


class SortService:
    """The long-running daemon. ``start()`` binds the socket and spawns
    the acceptor and executor threads; ``drain()``/``stop()`` wind it
    down. All protocol ops are also plain methods (``submit`` /
    ``status`` / ``cancel`` / ``result`` / ``health`` / ``drain``) so
    tests and embedders can drive the service without a socket.
    """

    def __init__(
        self,
        root: str | Path,
        socket_path: str | Path | None = None,
        workers: int = 2,
        max_concurrent: int | None = None,
        mem_quota_bytes: int | None = None,
        scratch_quota_bytes: int | None = None,
        tenants: dict[str, TenantPolicy] | None = None,
        default_policy: TenantPolicy | None = None,
        restart_policy=None,
        drain_timeout_s: float = 30.0,
        compact_min_bytes: int | None = 1 << 20,
        compact_min_events: int | None = 4096,
        log=None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.socket_path = Path(
            socket_path if socket_path is not None else self.root / "service.sock"
        )
        if len(str(self.socket_path)) > _MAX_SOCKET_PATH:
            raise ServiceError(
                f"socket path {str(self.socket_path)!r} exceeds "
                f"{_MAX_SOCKET_PATH} bytes (AF_UNIX limit); pass a shorter "
                "socket_path"
            )
        self.workers = workers
        self.tenants = dict(tenants or {})
        self.default_policy = default_policy or TenantPolicy()
        self.restart_policy = restart_policy
        self.drain_timeout_s = drain_timeout_s
        self.compact_min_bytes = compact_min_bytes
        self.compact_min_events = compact_min_events
        self._log = log or (lambda line: None)
        self.governor = JobGovernor(
            max_concurrent=max_concurrent or workers,
            max_queue=workers,
            mem_quota_bytes=mem_quota_bytes,
            scratch_quota_bytes=scratch_quota_bytes,
            queue_timeout_s=24 * 3600.0,
        )
        self.journal = JobJournal(self.root / "journal.log")

        self._cv = threading.Condition()
        self._jobs: dict[str, JobRecord] = {}
        self._keys: dict[str, str] = {}  # idempotency key → job id
        self._pending: list[str] = []  # admitted, waiting for an executor
        self._resume: set[str] = set()  # pending jobs that must resume
        self._running: set[str] = set()
        self._tokens: dict[str, _ProgressToken] = {}
        self._tenant_running: dict[str, int] = {}
        self._draining = False
        self._stopping = False
        self._next_id = 1
        self._started_at = time.monotonic()
        self._recovered: dict = {}

        self._server: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._lock_fh = None
        self.stopped = threading.Event()

    # -- lifecycle -------------------------------------------------------

    def _acquire_lock(self) -> None:
        """One daemon per service root: an ``flock`` the kernel releases
        even on ``kill -9`` (a stale lock can never brick the root)."""
        import fcntl

        self._lock_fh = open(self.root / "daemon.lock", "w")
        try:
            fcntl.flock(self._lock_fh, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            self._lock_fh.close()
            self._lock_fh = None
            raise ServiceError(
                f"another daemon already serves {self.root} ({exc})"
            ) from exc

    def _maybe_compact(self, events: list[dict], jobs) -> dict | None:
        """Boot-time journal compaction (ROADMAP: implemented-but-unwired
        until now). When the replayed journal exceeds the size *or*
        event threshold — and the minimal history is actually smaller —
        rewrite it via :meth:`~repro.service.journal.JobJournal.compact`
        (crash-atomic: the journal is the old file or the new one,
        never a mixture) and journal a ``compacted`` service event so
        the rewrite itself is observable in replay. Returns the
        compaction summary, or None when the policy does not fire."""
        size = self.journal.size_bytes()
        over_bytes = (
            self.compact_min_bytes is not None
            and size >= self.compact_min_bytes
        )
        over_events = (
            self.compact_min_events is not None
            and len(events) >= self.compact_min_events
        )
        if not (over_bytes or over_events):
            return None
        minimal = compaction_events(jobs)
        # Compare against *job* events only: compaction always discards
        # historical service events (drain/recovered/compacted), and
        # counting them would make every boot re-compact an already
        # minimal journal just to strip its own compaction marker.
        job_events = sum(1 for e in events if e.get("job") is not None)
        if len(minimal) >= job_events:
            return None  # nothing to reclaim; keep the journal as-is
        self.journal.compact(minimal)
        summary = {
            "events_before": len(events),
            "events_after": len(minimal),
            "bytes_before": size,
            "bytes_after": self.journal.size_bytes(),
        }
        self.journal.append("compacted", **summary)
        return summary

    def _recover(self) -> None:
        """Repair the journal, replay it, and requeue unfinished work."""
        torn = self.journal.repair()
        events, _ = self.journal.replay()
        jobs, service_events = replay_jobs(events)
        compacted = self._maybe_compact(events, jobs)
        if compacted is not None:
            events, _ = self.journal.replay()
            jobs, service_events = replay_jobs(events)
        requeued, resumed = [], []
        with self._cv:
            self._jobs = jobs
            for record in jobs.values():
                if record.idempotency_key:
                    self._keys[record.idempotency_key] = record.job_id
                try:
                    self._next_id = max(self._next_id, int(record.job_id[1:]) + 1)
                except ValueError:
                    pass
            for record in sorted(jobs.values(), key=lambda r: r.submitted_seq):
                if record.terminal:
                    continue
                if record.state == "submitted":
                    # Crash landed between the submit ack and the
                    # admitted record; finish the admission now.
                    self._transition_locked(record.job_id, "admitted")
                if record.state in ("running", "checkpointed"):
                    self._resume.add(record.job_id)
                    resumed.append(record.job_id)
                else:
                    requeued.append(record.job_id)
                self._pending.append(record.job_id)
        self._recovered = {
            "torn_bytes_repaired": torn,
            "events_replayed": len(events),
            "service_events": len(service_events),
            "requeued": requeued,
            "resumed": resumed,
            "compacted": compacted,
        }
        if requeued or resumed or torn:
            self.journal.append(
                "recovered",
                requeued=requeued or None,
                resumed=resumed or None,
                torn_bytes=torn or None,
            )
        self._log(
            f"recovered: {len(events)} events, {len(requeued)} requeued, "
            f"{len(resumed)} resumed, {torn} torn bytes repaired"
            + (
                f", compacted {compacted['events_before']}→"
                f"{compacted['events_after']} events"
                if compacted
                else ""
            )
        )

    def start(self) -> "SortService":
        self._acquire_lock()
        self._recover()
        self.socket_path.unlink(missing_ok=True)
        self._server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._server.bind(str(self.socket_path))
        self._server.listen(64)
        acceptor = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)
        for i in range(self.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"service-exec-{i}", daemon=True
            )
            worker.start()
            self._threads.append(worker)
        self._log(f"serving on {self.socket_path} (pid {os.getpid()})")
        return self

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain then stop (main thread only)."""

        def _handle(signum, frame):
            self._log(f"signal {signum}: draining")
            threading.Thread(
                target=self._drain_and_stop, name="service-drain", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    def _drain_and_stop(self) -> None:
        try:
            self.drain()
        finally:
            self.stop()

    def stop(self) -> None:
        """Tear the daemon down (no drain: callers wanting a graceful
        exit call :meth:`drain` first). Joins every service thread."""
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
            self._server = None
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=30)
        self._threads = []
        self.socket_path.unlink(missing_ok=True)
        self.journal.close()
        if self._lock_fh is not None:
            self._lock_fh.close()
            self._lock_fh = None
        self.stopped.set()

    # -- journal-backed transitions --------------------------------------

    def _transition_locked(self, job_id: str, kind: str, **fields) -> JobRecord:
        """Append one event and fold it into the in-memory mirror.
        Caller holds ``self._cv`` (it is re-entrant); the append's fsync
        happens under the lock so mirror order equals journal order."""
        seq = self.journal.append(kind, job=job_id, **fields)
        event = {"seq": seq, "kind": kind, "job": job_id}
        event.update(fields)
        record = apply_event(self._jobs, event)
        self._cv.notify_all()
        return record

    def _transition(self, job_id: str, kind: str, **fields) -> JobRecord:
        with self._cv:
            return self._transition_locked(job_id, kind, **fields)

    def _policy(self, tenant: str) -> TenantPolicy:
        return self.tenants.get(tenant, self.default_policy)

    # -- protocol ops ----------------------------------------------------

    def submit(self, spec: dict, tenant: str = "default",
               key: str | None = None) -> dict:
        spec = protocol.validate_spec(spec)
        with self._cv:
            if key is not None and key in self._keys:
                record = self._jobs[self._keys[key]]
                return protocol.ok(
                    job=record.job_id, state=record.state, duplicate=True
                )
            if self._draining or self._stopping:
                return protocol.error(
                    "AdmissionRejected", "service is draining"
                )
            policy = self._policy(tenant)
            queued = sum(
                1 for job_id in self._pending
                if self._jobs[job_id].tenant == tenant
            )
            if queued >= policy.max_queued:
                # Shed, not journaled: a shed creates no durable job, so
                # a later retry (same key) gets a fresh chance.
                return protocol.error(
                    "AdmissionRejected",
                    f"tenant {tenant!r} queue full "
                    f"({queued} of {policy.max_queued})",
                )
            job_id = f"j{self._next_id:06d}"
            self._next_id += 1
            self._transition_locked(
                job_id, "submitted", tenant=tenant, spec=spec, key=key
            )
            if key is not None:
                self._keys[key] = job_id
            self._transition_locked(job_id, "admitted")
            self._pending.append(job_id)
            self._cv.notify_all()
            return protocol.ok(job=job_id, state="admitted", duplicate=False)

    def _record(self, job_id: str) -> JobRecord:
        record = self._jobs.get(job_id)
        if record is None:
            raise JobNotFound(job_id)
        return record

    def status(self, job_id: str) -> dict:
        with self._cv:
            record = self._record(job_id)
            out = record.public()
            if job_id in self._pending:
                out["queue_position"] = self._pending.index(job_id)
            return protocol.ok(**out)

    def result(self, job_id: str) -> dict:
        with self._cv:
            record = self._record(job_id)
            if not record.terminal:
                return protocol.error(
                    "JobPending",
                    f"job {job_id} is {record.state}, not finished",
                )
            return protocol.ok(**record.public())

    def cancel(self, job_id: str, reason: str = "cancelled by client") -> dict:
        with self._cv:
            record = self._record(job_id)
            if record.terminal:
                return protocol.ok(job=job_id, state=record.state)
            if job_id in self._pending:
                self._pending.remove(job_id)
                self._resume.discard(job_id)
                record = self._transition_locked(
                    job_id, "cancelled", reason=reason
                )
                return protocol.ok(job=job_id, state=record.state)
            token = self._tokens.get(job_id)
            if token is not None:
                token.cancel(reason)
            # The executor journals the terminal state when the ranks
            # unwind; until then the job is honestly still running.
            return protocol.ok(job=job_id, state=record.state, cancelling=True)

    def health(self) -> dict:
        with self._cv:
            by_state: dict[str, int] = {}
            for record in self._jobs.values():
                by_state[record.state] = by_state.get(record.state, 0) + 1
            return protocol.ok(
                pid=os.getpid(),
                uptime_s=round(time.monotonic() - self._started_at, 3),
                draining=self._draining,
                jobs=by_state,
                pending=len(self._pending),
                running=sorted(self._running),
                governor=self.governor.snapshot(),
                tenant_running=dict(self._tenant_running),
                journal={
                    "path": str(self.journal.path),
                    "bytes": self.journal.size_bytes(),
                },
                recovered=self._recovered,
            )

    def drain(self, deadline_s: float | None = None) -> dict:
        """Stop admission and new starts; finish in-flight jobs under
        ``deadline_s``; cancel-interrupt the rest (their checkpoints
        stay valid and their journal state stays resumable); journal
        the drain. Idempotent; returns the drain summary."""
        deadline_s = self.drain_timeout_s if deadline_s is None else deadline_s
        with self._cv:
            already = self._draining
            self._draining = True
            self._cv.notify_all()
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            with self._cv:
                if not self._running:
                    break
            time.sleep(0.05)
        interrupted = []
        with self._cv:
            for job_id in sorted(self._running):
                token = self._tokens.get(job_id)
                if token is not None:
                    token.drain_interrupt = True
                    token.cancel("service drain deadline")
                    interrupted.append(job_id)
        # Give interrupted ranks one unwind window to reach their
        # executors (which leave the journal state resumable).
        grace = time.monotonic() + 10.0
        while time.monotonic() < grace:
            with self._cv:
                if not self._running:
                    break
            time.sleep(0.05)
        with self._cv:
            finished = not self._running
            pending = list(self._pending)
        summary = {
            "drained_clean": finished and not interrupted,
            "interrupted": interrupted,
            "still_pending": pending,
            "deadline_s": deadline_s,
        }
        if not already:
            self.journal.append("drain", **summary)
            self._log(
                f"drained ({'clean' if summary['drained_clean'] else 'deadline'}): "
                f"{len(interrupted)} interrupted, {len(pending)} left queued"
            )
        return protocol.ok(**summary)

    def handle_request(self, request: dict) -> dict:
        op = request.get("op")
        try:
            if op == "submit":
                return self.submit(
                    request.get("spec", {}),
                    tenant=request.get("tenant", "default"),
                    key=request.get("key"),
                )
            if op == "status":
                return self.status(request.get("job", ""))
            if op == "result":
                return self.result(request.get("job", ""))
            if op == "cancel":
                return self.cancel(
                    request.get("job", ""),
                    reason=request.get("reason", "cancelled by client"),
                )
            if op == "health":
                return self.health()
            if op == "drain":
                return self.drain(request.get("deadline_s"))
            return protocol.error("ServiceError", f"unknown op {op!r}")
        except ReproError as exc:
            return protocol.error(exc)

    # -- socket plumbing -------------------------------------------------

    def _accept_loop(self) -> None:
        server = self._server
        while True:
            try:
                conn, _ = server.accept()
            except OSError:
                return  # socket closed: stopping
            with self._conn_lock:
                if self._stopping:
                    conn.close()
                    return
                self._conns.add(conn)
            handler = threading.Thread(
                target=self._serve_conn, args=(conn,),
                name="service-conn", daemon=True,
            )
            handler.start()

    def _serve_conn(self, conn: socket.socket) -> None:
        try:
            fh = conn.makefile("rb")
            while True:
                try:
                    request = protocol.recv_message(fh)
                except (ServiceError, OSError):
                    break  # framing violation or dead peer: drop
                if request is None:
                    break
                try:
                    protocol.send_message(conn, self.handle_request(request))
                except OSError:
                    break
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    # -- the scheduler and executors --------------------------------------

    def _pick_locked(self) -> str | None:
        """The next job an executor may claim: highest tenant priority,
        FIFO within it, tenants under their max_running, never while
        draining."""
        if self._draining:
            return None
        best = None
        best_rank = None
        for job_id in self._pending:
            record = self._jobs[job_id]
            policy = self._policy(record.tenant)
            if self._tenant_running.get(record.tenant, 0) >= policy.max_running:
                continue
            rank = (-policy.priority, record.submitted_seq)
            if best_rank is None or rank < best_rank:
                best, best_rank = job_id, rank
        return best

    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                job_id = None
                while not self._stopping:
                    job_id = self._pick_locked()
                    if job_id is not None:
                        break
                    self._cv.wait(0.2)
                if job_id is None:
                    return
                self._pending.remove(job_id)
                resume = job_id in self._resume
                self._resume.discard(job_id)
                record = self._jobs[job_id]
                tenant = record.tenant
                self._tenant_running[tenant] = (
                    self._tenant_running.get(tenant, 0) + 1
                )
                self._running.add(job_id)
                token = _ProgressToken(
                    lambda idx, jid=job_id: self._transition(
                        jid, "checkpointed", **{"pass": idx}
                    )
                )
                self._tokens[job_id] = token
            try:
                self._execute(job_id, token, resume)
            finally:
                with self._cv:
                    self._running.discard(job_id)
                    self._tokens.pop(job_id, None)
                    count = self._tenant_running.get(tenant, 1) - 1
                    if count:
                        self._tenant_running[tenant] = count
                    else:
                        self._tenant_running.pop(tenant, None)
                    self._cv.notify_all()

    def job_dir(self, job_id: str) -> Path:
        return self.root / "jobs" / job_id

    def _execute(self, job_id: str, token: _ProgressToken, resume: bool) -> None:
        from repro.cluster.config import ClusterConfig
        from repro.oocs.api import job_demands, sort_out_of_core
        from repro.oocs.base import OocJob
        from repro.oocs.report import output_digest, result_summary
        from repro.records.format import RecordFormat
        from repro.records.generators import generate

        record = self._jobs[job_id]
        spec = record.spec
        self._transition(job_id, "running")
        self._log(
            f"{job_id}: running ({record.tenant}, {spec['algorithm']}, "
            f"n={spec['records']}{', resume' if resume else ''})"
        )
        jobdir = self.job_dir(job_id)
        workdir = jobdir / "work"
        ckptdir = jobdir / "ckpt"
        workdir.mkdir(parents=True, exist_ok=True)
        ticket = None
        try:
            fmt = RecordFormat(spec["key"], spec["record_size"])
            cluster = ClusterConfig(
                p=spec["processors"], mem_per_proc=spec["buffer"] * 2
            )
            records = generate(
                spec["workload"], fmt, spec["records"], seed=spec["seed"]
            )
            job = OocJob(
                cluster=cluster,
                fmt=fmt,
                n=spec["records"],
                buffer_records=spec["buffer"],
                workdir=workdir,
                pipeline_depth=spec["pipeline_depth"],
                backend=spec["backend"],
            )
            mem, scratch = job_demands(job)
            policy = self._policy(record.tenant)
            ticket = self.governor.admit(
                mem_bytes=mem, scratch_bytes=scratch,
                priority=policy.priority, cancel=token,
            )
            result = sort_out_of_core(
                spec["algorithm"],
                records,
                cluster,
                fmt,
                buffer_records=spec["buffer"],
                workdir=workdir,
                verify=spec["verify"],
                pipeline_depth=spec["pipeline_depth"],
                checkpoint_dir=ckptdir,
                resume=resume,
                cancel=token,
                backend=spec["backend"],
                restart_policy=self.restart_policy,
            )
            digest = output_digest(result)
            summary = result_summary(
                result, verified=spec["verify"], digest=digest
            )
            summary.setdefault("governor", {}).update(ticket.snapshot())
            summary["workdir"] = str(workdir)
            result.release_durability()
            self._transition(job_id, "done", result=summary)
            self._log(f"{job_id}: done (digest {digest[:12]}…)")
        except Cancellation as exc:
            if token.drain_interrupt:
                # Drain interrupt: no terminal event — the journal keeps
                # the job running/checkpointed, and the next start
                # resumes it from its surviving checkpoint.
                self._log(f"{job_id}: interrupted by drain ({exc})")
            else:
                self._transition(job_id, "cancelled", reason=str(exc))
                self._log(f"{job_id}: cancelled ({exc})")
        except Exception as exc:  # structured: every failure is journaled
            self._transition(
                job_id, "failed",
                error={"type": type(exc).__name__, "message": str(exc)[:500]},
            )
            self._log(f"{job_id}: failed ({type(exc).__name__}: {exc})")
        finally:
            if ticket is not None:
                ticket.release()
