"""The service client: timeouts, exponential-backoff reconnect, and
idempotent retry.

The protocol is request/response over a local socket, and every op is
idempotent (``submit`` carries an idempotency key, ``cancel``/``drain``
are level-triggered, reads are pure), so the client's retry policy is
simple and safe: on any transport failure — refused connection while
the daemon restarts, a connection the daemon's death severed mid-reply,
a timeout — drop the connection, back off exponentially, reconnect, and
resend the same request. A ``submit`` retried across a daemon crash
either finds its journaled job (``duplicate: true``) or creates it
fresh; either way exactly one job exists.
"""

from __future__ import annotations

import socket
import time
import uuid
from pathlib import Path

from repro.errors import JobNotFound, ServiceError
from repro.service import protocol

#: Error types the daemon reports that map onto local exception classes.
_ERROR_CLASSES = {"JobNotFound": JobNotFound}


class ServiceClient:
    """One connection (lazily opened, transparently reopened) to a
    :class:`~repro.service.daemon.SortService` daemon."""

    def __init__(
        self,
        socket_path: str | Path,
        connect_timeout_s: float = 5.0,
        request_timeout_s: float = 120.0,
        retries: int = 5,
        backoff_s: float = 0.1,
        backoff_max_s: float = 2.0,
    ) -> None:
        self.socket_path = str(socket_path)
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self._sock: socket.socket | None = None
        self._fh = None

    # -- transport -------------------------------------------------------

    def _connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.connect_timeout_s)
        sock.connect(self.socket_path)
        sock.settimeout(self.request_timeout_s)
        self._sock = sock
        self._fh = sock.makefile("rb")

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(self, message: dict, timeout_s: float | None = None) -> dict:
        """Send one request, retrying over reconnects; raises
        :class:`~repro.errors.ServiceError` (or a mapped subclass) on a
        structured error response or after retries are exhausted."""
        last: Exception | None = None
        delay = self.backoff_s
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(delay)
                delay = min(delay * 2, self.backoff_max_s)
            try:
                if self._sock is None:
                    self._connect()
                if timeout_s is not None:
                    self._sock.settimeout(timeout_s)
                try:
                    protocol.send_message(self._sock, message)
                    response = protocol.recv_message(self._fh)
                finally:
                    if timeout_s is not None and self._sock is not None:
                        self._sock.settimeout(self.request_timeout_s)
                if response is None:  # daemon closed the connection
                    raise ConnectionError("connection closed by daemon")
            except (OSError, ConnectionError) as exc:
                self.close()
                last = exc
                continue
            return self._check(response)
        raise ServiceError(
            f"service at {self.socket_path} unreachable after "
            f"{self.retries + 1} attempts: {last}"
        ) from last

    @staticmethod
    def _check(response: dict) -> dict:
        if response.get("ok"):
            return response
        err = response.get("error") or {}
        type_name = err.get("type", "ServiceError")
        message = err.get("message", "")
        cls = _ERROR_CLASSES.get(type_name)
        if cls is JobNotFound:
            # message is "unknown job 'jNNNNNN'" — recover the id.
            raise JobNotFound(message.split()[-1].strip("'\""))
        raise ServiceError(f"{type_name}: {message}")

    # -- ops -------------------------------------------------------------

    def submit(self, spec: dict | None = None, tenant: str = "default",
               key: str | None = None, **spec_fields) -> dict:
        """Submit a job; returns ``{"job": id, "state": ..., "duplicate":
        ...}``. An idempotency key is generated when not supplied, so
        the *transport* retries inside this call can never double-submit
        — pass an explicit ``key`` to extend that guarantee across your
        own retries."""
        spec = dict(spec or {})
        spec.update(spec_fields)
        if key is None:
            key = uuid.uuid4().hex
        return self._request(
            {"op": "submit", "spec": spec, "tenant": tenant, "key": key}
        )

    def status(self, job_id: str) -> dict:
        return self._request({"op": "status", "job": job_id})

    def result(self, job_id: str) -> dict:
        return self._request({"op": "result", "job": job_id})

    def cancel(self, job_id: str, reason: str = "cancelled by client") -> dict:
        return self._request({"op": "cancel", "job": job_id, "reason": reason})

    def health(self) -> dict:
        return self._request({"op": "health"})

    def drain(self, deadline_s: float | None = None,
              timeout_s: float | None = None) -> dict:
        """Ask the daemon to drain. The response only arrives once the
        drain completes, so the read timeout must cover the deadline."""
        if timeout_s is None:
            timeout_s = (deadline_s or 30.0) + 30.0
        return self._request(
            {"op": "drain", "deadline_s": deadline_s}, timeout_s=timeout_s
        )

    def wait(self, job_id: str, timeout_s: float = 300.0,
             poll_s: float = 0.1) -> dict:
        """Poll until ``job_id`` reaches a terminal state; returns its
        final record (the ``result`` response). Raises
        :class:`~repro.errors.ServiceError` on timeout."""
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return self.result(job_id)
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after {timeout_s}s"
                )
            time.sleep(poll_s)
