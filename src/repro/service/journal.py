"""The durable job journal: an fsync'd, torn-write-tolerant WAL.

The daemon acknowledges nothing it has not journaled. Every job state
transition is one record appended to a single journal file and fsynced
before the acknowledgment leaves the process, so the journal — not the
daemon's memory — is the authoritative job table. A ``kill -9`` at any
instant leaves one of two file states: the record is fully on disk, or
its tail is torn; replay accepts the longest valid prefix and discards
the rest, which loses at most the single acknowledgment-pending record
(whose client, never having been acknowledged, retries idempotently).

Record format — one line per event::

    <crc32-hex8> <compact-json>\\n

The CRC covers exactly the JSON payload bytes. A record is trusted iff
its line is newline-terminated, the CRC matches, the payload parses,
and its ``seq`` continues the sequence. Anything else ends the valid
prefix: a torn tail cannot masquerade as an event, and — because the
file is append-only and each append is fsynced before the next — a
record that fails validation mid-file means everything after it is
untrustworthy too.

:meth:`JobJournal.repair` truncates the file back to the valid prefix
(the daemon does this once on startup, so a crash's torn tail does not
shadow the next append), and :meth:`JobJournal.compact` atomically
rewrites the journal from a caller-provided event list (bounding replay
cost for a long-lived service).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.durability.atomic import atomic_write_bytes, fsync_dir
from repro.durability.hashing import block_checksum
from repro.errors import JournalError

#: Journal format version, recorded in every event.
JOURNAL_VERSION = 1


def _encode(event: dict) -> bytes:
    payload = json.dumps(event, separators=(",", ":"), sort_keys=True)
    if "\n" in payload:  # json.dumps never emits raw newlines; belt & braces
        raise JournalError("journal event serialized with an embedded newline")
    return f"{block_checksum(payload.encode()) & 0xFFFFFFFF:08x} {payload}\n".encode()


def _decode(line: bytes) -> dict | None:
    """Parse one complete line; None when it cannot be trusted."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if block_checksum(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        event = json.loads(payload)
    except ValueError:
        return None
    return event if isinstance(event, dict) else None


class JobJournal:
    """One append-only journal file of job state transitions.

    Thread-safe: the daemon's socket handlers, executor threads, and
    the pass-boundary progress hook all append concurrently. Each
    append is written, flushed, and fsynced under one lock, so the
    on-disk sequence numbers are gap-free and monotonic.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = None
        self._seq = 0  # last sequence number on disk (0 = empty)

    # -- write -----------------------------------------------------------

    def _handle(self):
        if self._fh is None:
            existed = self.path.exists()
            self._fh = open(self.path, "ab")
            if not existed:
                # A brand-new journal's *directory entry* is not covered
                # by the per-append fsync (which flushes the file's data,
                # not the name pointing at it): without this, power loss
                # after the first acknowledged append could drop the
                # whole file. Found by the crashsim sweep (DESIGN §14).
                fsync_dir(self.path.parent)
        return self._fh

    def append(self, kind: str, job: str | None = None, **fields) -> int:
        """Durably append one event; returns its sequence number.

        The event is on disk (data fsynced) before this returns —
        callers may acknowledge it to clients the moment it does.
        """
        with self._lock:
            seq = self._seq + 1
            event = {
                "v": JOURNAL_VERSION,
                "seq": seq,
                "kind": kind,
                "job": job,
                "at": time.time(),
            }
            for key, value in fields.items():
                if value is not None:
                    event[key] = value
            fh = self._handle()
            fh.write(_encode(event))
            fh.flush()
            os.fsync(fh.fileno())
            self._seq = seq
            return seq

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- read ------------------------------------------------------------

    def replay(self) -> tuple[list[dict], int]:
        """The longest valid event prefix, plus the count of trailing
        bytes discarded as torn (0 for a clean journal).

        Also primes the append sequence, so a journal opened on a
        recovered directory continues numbering where the valid prefix
        ended (replay before the first append — the daemon's startup
        order — makes this automatic).
        """
        events: list[dict] = []
        valid_bytes = 0
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            data = b""
        offset = 0
        expect = 1
        while offset < len(data):
            end = data.find(b"\n", offset)
            if end < 0:
                break  # torn tail: no newline ever made it to disk
            line = data[offset : end + 1]
            event = _decode(line[:-1])
            if event is None or event.get("seq") != expect:
                break  # torn or foreign bytes; nothing after is trusted
            events.append(event)
            expect += 1
            offset = end + 1
            valid_bytes = offset
        with self._lock:
            self._seq = max(self._seq, len(events))
        return events, len(data) - valid_bytes

    # -- maintenance -----------------------------------------------------

    def repair(self) -> int:
        """Truncate the file back to its valid prefix; returns the
        number of torn bytes removed. Idempotent; 0 for a clean file."""
        events, torn = self.replay()
        if torn:
            with self._lock:
                if self._fh is not None:
                    self._fh.close()
                    self._fh = None
                size = sum(len(_encode(e)) for e in events)
                # Re-encoding is byte-exact: we only ever wrote _encode's
                # own output, and json round-trips its compact form.
                with open(self.path, "ab") as fh:
                    fh.truncate(size)
                    fh.flush()
                    os.fsync(fh.fileno())
        return torn

    def compact(self, events: list[dict]) -> None:
        """Atomically replace the journal's contents with ``events``
        (renumbered from 1). Crash-safe the same way checkpoint
        manifests are: temp file fsync + ``os.replace`` + directory
        fsync, so the journal is always either the old file or the new
        one, never a mixture."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            lines = []
            for seq, event in enumerate(events, start=1):
                event = dict(event)
                event["seq"] = seq
                lines.append(_encode(event))
            atomic_write_bytes(self.path, b"".join(lines))
            self._seq = len(events)

    def size_bytes(self) -> int:
        try:
            return self.path.stat().st_size
        except FileNotFoundError:
            return 0
