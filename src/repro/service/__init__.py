"""Sort-as-a-service: a crash-safe, long-running daemon over the
out-of-core sorts.

Every robustness layer below this one hardens a single
:func:`~repro.oocs.api.sort_out_of_core` call; this package hardens the
*service process* around many of them — the deployment-engineering half
of external sorting Rahn–Sanders argue is where such systems are won:

* :mod:`repro.service.journal` — :class:`JobJournal`, the fsync'd,
  append-only, torn-write-tolerant write-ahead log of job state
  transitions. Every change of a job's life is durable before it is
  acknowledged, so a ``kill -9`` of the daemon loses nothing.
* :mod:`repro.service.jobs` — the job state machine
  (``submitted → admitted → running → checkpointed* → done | failed |
  cancelled``) and its replay, including idempotency-key dedup so a
  retried submission can never create a second job.
* :mod:`repro.service.protocol` — the JSON-lines request/response
  protocol on the daemon's local socket (``submit`` / ``status`` /
  ``cancel`` / ``result`` / ``health`` / ``drain``) and job-spec
  validation.
* :mod:`repro.service.daemon` — :class:`SortService`, the daemon:
  per-tenant quotas and priorities mapped onto the
  :class:`~repro.governor.JobGovernor` queue, recovery-on-restart
  (replay the journal, requeue queued jobs, resume crashed ones from
  their pass-boundary checkpoints), and graceful drain on SIGTERM.
* :mod:`repro.service.client` — :class:`ServiceClient`, the client
  library: connect/request timeouts, exponential-backoff reconnect,
  and safe idempotent retry.
"""

from repro.service.client import ServiceClient
from repro.service.daemon import SortService, TenantPolicy
from repro.service.jobs import JOB_STATES, TERMINAL_STATES, JobRecord, replay_jobs
from repro.service.journal import JobJournal
from repro.service.protocol import SPEC_DEFAULTS, validate_spec

__all__ = [
    "JOB_STATES",
    "JobJournal",
    "JobRecord",
    "SPEC_DEFAULTS",
    "ServiceClient",
    "SortService",
    "TERMINAL_STATES",
    "TenantPolicy",
    "replay_jobs",
    "validate_spec",
]
