"""Output verification.

The paper kept the original input files around to verify output files
(footnote 7). We verify more strongly, using the ``uid`` field stamped
by the workload generators:

1. **order** — output keys are nondecreasing in PDM global order;
2. **permutation** — the output's uid multiset equals the input's (no
   record lost, duplicated, or fabricated);
3. **integrity** — each record's key still matches the key its uid had
   in the input (no record body was corrupted in flight).
"""

from __future__ import annotations

import numpy as np

from repro.disks.matrixfile import PdmStore
from repro.errors import VerificationError


def verify_sorted(records: np.ndarray) -> None:
    """Raise unless keys are nondecreasing."""
    keys = records["key"]
    if len(keys) and np.any(keys[:-1] > keys[1:]):
        bad = int(np.flatnonzero(keys[:-1] > keys[1:])[0])
        raise VerificationError(
            f"output not sorted: key[{bad}]={keys[bad]} > key[{bad + 1}]={keys[bad + 1]}"
        )


def verify_permutation(output: np.ndarray, reference: np.ndarray) -> None:
    """Raise unless ``output`` is a true permutation of ``reference``
    with intact keys (matched through the uid field)."""
    if len(output) != len(reference):
        raise VerificationError(
            f"output has {len(output)} records, input had {len(reference)}"
        )
    out_order = np.argsort(output["uid"], kind="stable")
    ref_order = np.argsort(reference["uid"], kind="stable")
    out_uid = output["uid"][out_order]
    ref_uid = reference["uid"][ref_order]
    if not np.array_equal(out_uid, ref_uid):
        raise VerificationError("output uids are not a permutation of input uids")
    if not np.array_equal(output["key"][out_order], reference["key"][ref_order]):
        raise VerificationError("some record's key changed between input and output")


def verify_pdm_balance(store: PdmStore) -> None:
    """Raise unless the output layout has PDM's load-balance property
    (paper footnote 6): any window of ``k·B·D`` consecutive records
    touches every disk exactly ``k·B`` records' worth.

    Checked structurally from the store's address arithmetic over a set
    of windows covering every block-phase offset.
    """
    from repro.disks.pdm import pdm_disk_of

    block, d = store.block, store.cfg.virtual_disks
    stripe = block * d
    if store.n < stripe:
        return  # fewer records than one stripe: balance is vacuous
    for start in range(0, min(store.n - stripe, 3 * stripe) + 1, max(1, block // 2)):
        counts = np.bincount(
            [pdm_disk_of(g, block, d) for g in range(start, start + stripe)],
            minlength=d,
        )
        if counts.max() != counts.min():
            raise VerificationError(
                f"PDM balance violated: window [{start}, {start + stripe}) "
                f"touches disks unevenly ({counts.tolist()})"
            )


def verify_output(
    output: PdmStore | np.ndarray, reference: np.ndarray
) -> np.ndarray:
    """Full verification of a sort run: read the output (if given as a
    store), check order, permutation, integrity, and — for stores — the
    PDM balance property. Returns the output records for inspection."""
    if isinstance(output, PdmStore):
        records = output.read_all()
        verify_pdm_balance(output)
    else:
        records = output
    verify_sorted(records)
    verify_permutation(records, reference)
    return records
