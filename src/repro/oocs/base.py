"""Shared machinery of the out-of-core columnsort programs.

Every program is organized as *passes* over the data; every pass is
decomposed into rounds; every round flows through a pipeline whose
stages are, functionally, the bodies of the helpers here:

* :func:`pass_step2_deal` — sort each column and apply step 2's
  transpose-and-reshape (pass 1 of all programs);
* :func:`pass_step4_deal` — sort each column and apply step 4's
  reshape-and-transpose (pass 2 of threaded/M; pass 3 of subblock);
* :func:`pass_final_windows` — steps 5-8 realized window-wise: sort
  each column, exchange halves with the neighboring column's owner,
  merge the window, and write it at its final PDM position (the last
  pass of every program);
* :func:`pass_io_only` — the baseline that only reads and writes.

The helpers run inside SPMD rank programs. Rank 0 additionally emits a
:class:`~repro.simulate.trace.PassTrace` (the processors are symmetric,
so one rank's trace describes them all).

Each pass overlaps its disk I/O with compute and communication through
the :mod:`repro.pipeline` buffer pools: column reads are prefetched by a
bounded read-ahead thread and disk writes retired by a write-behind
thread, ``plan.depth`` buffers deep on each side (depth 0 = the strictly
sequential baseline). The measured read-wait / compute / comm /
write-wait breakdown lands in ``PassTrace.wall``.

A correctness-relevant storage freedom (also exploited by the paper's
implementation, cf. footnote 5 on write patterns and sorted runs):
between passes, records need to be in the right *column* but may sit at
any position within it, because every pass begins by sorting its
columns. Only the final pass writes exact (PDM) positions.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path

import numpy as np

from repro.cluster.comm import Comm
from repro.cluster.config import ClusterConfig
from repro.cluster.spmd import run_spmd
from repro.cluster.transport import available_backends
from repro.disks.iostats import IoStats
from repro.disks.matrixfile import ColumnStore, PdmStore
from repro.disks.virtual_disk import VirtualDisk, make_disk_array
from repro.errors import ConfigError
from repro.matrix.bits import is_power_of_two
from repro.membuf import copy_delta, copy_stats, get_pool, legacy_copies
from repro.pipeline import (
    COMM,
    COMPUTE,
    SYNCHRONOUS,
    PipelinePlan,
    ReadAhead,
    StageClock,
    WriteBehind,
)
from repro.records.format import RecordFormat
from repro.simulate.trace import (
    PassTrace,
    RunTrace,
    eleven_stage_pipeline,
    five_stage_pipeline,
    io_only_pipeline,
    seven_stage_pipeline,
    twenty_stage_pipeline,
)
from repro.simulate.traces import (
    deal_round_work,
    final_round_work,
    io_round_work,
)

#: Point-to-point tag used for the half-column exchange of the final pass.
WINDOW_TAG = 77


@dataclass
class OocJob:
    """A fully specified out-of-core sort problem.

    Parameters
    ----------
    cluster:
        The machine (``P``, ``D``, memory per processor).
    fmt:
        Record format.
    n:
        Number of records (power of 2).
    buffer_records:
        The per-processor buffer ``r`` in records (the paper's "buffer
        size", there quoted in bytes). For threaded/subblock columnsort
        this is the column height; for M-columnsort it is the
        per-processor *portion* of an ``r = M``-high column.
    workdir:
        Directory for the virtual disks.
    pdm_block:
        Output PDM block size in records (defaults to
        ``buffer_records / P``, so one buffer's worth of output stripes
        across all processors' disks).
    pipeline_depth:
        Buffers the read-ahead and write-behind pools may each keep in
        flight per pass (see :mod:`repro.pipeline`); ``0`` runs every
        pass strictly synchronously.
    retry_policy:
        Optional :class:`~repro.resilience.retry.RetryPolicy` attached
        to every disk (and the comm fabric) for the run: transient
        faults are retried with metered retry counts.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan` injected
        into every disk and the comm fabric (chaos testing).
    watchdog_deadline:
        If set, seconds of universal rank silence after which the run
        is aborted with a structured
        :class:`~repro.errors.WatchdogTimeout` instead of hanging.
    parity:
        Maintain an XOR parity stripe across the disk array
        (:class:`~repro.durability.parity.ParityLayer`): corrupt blocks
        are repaired in place and a disk lost to permanent faults is
        served in degraded mode from the surviving D−1 disks.
    audit:
        Verify columnsort invariants of every pass's output (sampled,
        on rank 0) before its checkpoint is declared good; violations
        raise :class:`~repro.errors.AuditError`.
    cancel:
        Optional :class:`~repro.governor.CancelToken`. Threaded through
        the pipeline pools, the mailbox fabric, the disks' op loops,
        and the pass-boundary loop, so a cancel (or expired deadline)
        unwinds every rank within one poll interval into a structured
        :class:`~repro.errors.Cancellation` — with the last
        pass-boundary checkpoint still valid for a later resume.
    backend:
        SPMD transport running the rank programs: ``"thread"`` (one
        thread per rank, shared address space) or ``"process"`` (one
        forked process per rank with shared-memory alltoallv buffers;
        see :mod:`repro.cluster.process_backend`). Sorted output,
        pass structure, and the byte-exact I/O/comm/copy accounting
        are identical on both.
    restart_policy:
        Optional :class:`~repro.resilience.supervisor.RestartPolicy`.
        When set, ``run_pass_program`` supervises the whole pass
        program: a rank crash (SIGKILL, ``os._exit``, an unhandled
        exception, a watchdog timeout) or an escaped transient cohort
        failure sweeps the failed attempt's state and relaunches from
        the last pass-boundary checkpoint *within the same call* —
        from pass 0 when the job has no checkpoint directory. Fatal
        classes (cancellation, admission, budget, unrepairable
        corruption, config errors …) propagate unchanged; see
        :meth:`~repro.resilience.supervisor.RestartPolicy.restartable`.
    """

    cluster: ClusterConfig
    fmt: RecordFormat
    n: int
    buffer_records: int
    workdir: str | Path | None = None
    pdm_block: int | None = None
    pipeline_depth: int = 0
    retry_policy: object = None
    fault_plan: object = None
    watchdog_deadline: float | None = None
    parity: bool = False
    audit: bool = False
    cancel: object = None
    backend: str = "thread"
    restart_policy: object = None

    def __post_init__(self) -> None:
        if self.backend not in available_backends():
            raise ConfigError(
                f"unknown transport backend {self.backend!r}; expected one "
                f"of {available_backends()}"
            )
        if self.backend == "process" and self.parity:
            raise ConfigError(
                "parity=True requires the thread backend: the parity "
                "layer's stripe state lives in one address space and "
                "would silently diverge across forked rank processes"
            )
        if self.pipeline_depth < 0:
            raise ConfigError(
                f"pipeline_depth must be >= 0, got {self.pipeline_depth}"
            )
        if not is_power_of_two(self.n):
            raise ConfigError(f"N must be a power of 2 records, got {self.n}")
        if not is_power_of_two(self.buffer_records):
            raise ConfigError(
                f"buffer_records must be a power of 2, got {self.buffer_records}"
            )
        if self.buffer_records > self.cluster.mem_per_proc:
            raise ConfigError(
                f"buffer of {self.buffer_records} records exceeds per-processor "
                f"memory of {self.cluster.mem_per_proc} records"
            )
        if self.pdm_block is None:
            self.pdm_block = max(1, self.buffer_records // self.cluster.p)

    @property
    def buffer_bytes(self) -> int:
        return self.buffer_records * self.fmt.record_size

    def pipeline_plan(self) -> PipelinePlan:
        """The per-pass overlap plan this job asks for (the cancel
        token rides on the plan, so every pool wait observes it)."""
        if self.pipeline_depth == 0 and self.cancel is None:
            return SYNCHRONOUS
        return PipelinePlan(depth=self.pipeline_depth, cancel=self.cancel)


@dataclass
class OocResult:
    """What an out-of-core sort run produced."""

    algorithm: str
    job: OocJob
    output: PdmStore
    passes: int
    io: dict  # aggregate disk I/O over the whole run
    io_per_pass: list[dict]  # one {reads, writes, ...} delta per pass
    comm_per_pass: list[dict]  # rank-0 comm deltas per pass
    comm_total: dict  # aggregate across ranks
    copy: dict = field(default_factory=dict)  # data-plane copy accounting
    durability: dict = field(default_factory=dict)  # checksums/parity/audit
    governor: dict = field(default_factory=dict)  # budgets/ladder/admission
    supervisor: dict = field(default_factory=dict)  # restarts/causes/wall
    trace: RunTrace | None = None
    workspace: object = None  # set by the convenience API to pin disks alive

    def output_records(self) -> np.ndarray:
        """Read the sorted output back (verification convenience)."""
        return self.output.read_all()

    def release_durability(self) -> None:
        """Retire this run's :class:`~repro.resilience.quarantine.DiskQuarantine`
        from the global leak-check registry. Call once done reading a
        degraded workspace (idempotent; a no-op for runs that never
        attached one)."""
        quarantine = getattr(self.output.disks[0], "quarantine", None)
        if quarantine is not None:
            quarantine.release()

    def stage_wall(self) -> dict[str, float]:
        """Measured per-stage wall time (rank 0) summed over all passes:
        ``read_wait`` / ``compute`` / ``comm`` / ``incore`` /
        ``write_wait`` seconds as recorded by the pass pipeline's
        :class:`~repro.pipeline.StageClock`. Empty when the run was
        traced with ``collect_trace=False``."""
        if self.trace is None:
            return {}
        return self.trace.measured_wall()


@dataclass
class Workspace:
    """Disks plus the input store for a run."""

    disks: list[VirtualDisk]
    input: ColumnStore
    workdir: Path
    _tmp: object = field(default=None, repr=False)


def make_workspace(
    cluster: ClusterConfig,
    fmt: RecordFormat,
    records: np.ndarray,
    r: int,
    s: int,
    workdir: str | Path | None = None,
    striped: bool = False,
    parity: bool = False,
) -> Workspace:
    """Create the virtual disks and load ``records`` as the input matrix
    (column-major: column ``j`` is ``records[j·r:(j+1)·r]``).

    With ``striped=True`` the input uses M-columnsort's layout
    (:class:`~repro.disks.matrixfile.StripedColumnStore`). With
    ``parity=True`` a :class:`~repro.durability.parity.ParityLayer` is
    attached *before* the input is loaded, so every byte of the run —
    input included — is reconstructable from any D−1 disks.
    """
    tmp = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-oocs-")
        workdir = tmp.name
    disks = make_disk_array(workdir, cluster.virtual_disks)
    if parity:
        from repro.durability import attach_durability

        attach_durability(disks, parity=True)
    if striped:
        from repro.disks.matrixfile import StripedColumnStore

        store = StripedColumnStore.from_records(
            cluster, fmt, records, r, s, disks, name="input"
        )
    else:
        store = ColumnStore.from_records(
            cluster, fmt, records, r, s, disks, name="input"
        )
    ws = Workspace(disks=disks, input=store, workdir=Path(workdir))
    ws._tmp = tmp  # keep TemporaryDirectory alive with the workspace
    return ws


# ---------------------------------------------------------------------------
# Pass bodies (run per rank)
# ---------------------------------------------------------------------------
#
# Every pass pulls its column buffers through a ReadAhead prefetcher and
# retires its disk writes through a WriteBehind flusher (repro.pipeline):
# with plan.depth >= 1 the NumPy compute and mailbox communication of
# round t overlap the read of round t+depth and the writes of earlier
# rounds, the same overlap structure [CC02] gets from pthreads. With the
# default SYNCHRONOUS plan both pools degenerate to inline calls.


def _recycle(buf: np.ndarray) -> None:
    """Return a pass buffer to the global pool — a no-op under
    ``REPRO_LEGACY_COPIES`` so the legacy path never touches the pool."""
    if not legacy_copies():
        get_pool().recycle(buf)


def _task_then_recycle(task, buf: np.ndarray):
    """Wrap a write task so ``buf`` (a pool lease kept alive until the
    write retires) is recycled afterwards, even on error."""
    def run():
        try:
            task()
        finally:
            _recycle(buf)
    return run


def _column_prefetch(
    src: ColumnStore, rank: int, cols, plan: PipelinePlan, clock: StageClock
) -> ReadAhead:
    """Read-ahead over whole owned columns (threaded/subblock layout).

    On the pooled path every prefetched column is a tracked
    :class:`~repro.membuf.BufferPool` lease; the pass body recycles it
    as soon as the sorted permutation is materialized, and the reader
    recycles anything prefetched but never consumed (``on_drop``).
    """
    reuse = not legacy_copies()
    return ReadAhead(
        [partial(src.read_column, rank, c, reuse=reuse) for c in cols],
        plan,
        clock,
        on_drop=get_pool().recycle if reuse else None,
    )


def _finish_pass(trace: PassTrace | None, clock: StageClock) -> None:
    """Record the measured stage breakdown on the pass trace (rank 0)."""
    if trace is not None:
        clock.merge_into(trace.wall)


def pass_step2_deal(
    comm: Comm,
    src: ColumnStore,
    dst: ColumnStore,
    fmt: RecordFormat,
    trace: PassTrace | None = None,
    plan: PipelinePlan | None = None,
) -> None:
    """Pass = columnsort steps 1+2 (or 3+4's mirror — see
    :func:`pass_step4_deal`): each round, sort one column per processor
    and deal it across all columns.

    Step 2 sends the record at sorted row ``i`` of column ``c`` to
    column ``i mod s``, row ``c·r/s + i div s``; each processor sends
    exactly ``r/P`` records to every processor, and each target column
    receives one contiguous band segment per round.
    """
    p = comm.size
    r, s = src.r, src.s
    band = r // s  # rows each source column contributes to each target
    plan = plan if plan is not None else SYNCHRONOUS
    clock = StageClock()
    cols = [t * p + comm.rank for t in range(s // p)]
    reader = _column_prefetch(src, comm.rank, cols, plan, clock)
    writer = WriteBehind(plan, clock)
    try:
        for t in range(s // p):
            raw = reader.get()
            with clock.stage(COMPUTE):
                col = raw[np.argsort(raw["key"], kind="stable")]
                _recycle(raw)  # the unsorted lease is dead after the gather
                # Sorted row i goes to target column i mod s, rank i mod P.
                parts = [col[q::p] for q in range(p)]
            with clock.stage(COMM):
                recv = comm.alltoallv(parts)
            with clock.stage(COMPUTE):
                # recv[q] holds rows i ≡ rank (mod P) of source column t·P+q
                # in ascending order; as a (band, s/P) block its column l is
                # the slice bound for target column rank + l·P.
                blocks = [a.reshape(band, s // p) for a in recv]
                segs = []
                for l in range(s // p):
                    target = comm.rank + l * p
                    segs.append(
                        (target, np.concatenate([blocks[q][:, l] for q in range(p)]))
                    )
            for target, seg in segs:
                writer.put(
                    partial(dst.write_segment, comm.rank, target, t * p * band, seg)
                )
            if trace is not None:
                trace.rounds.append(
                    deal_round_work(fmt.record_size, r, (p - 1) / p, p - 1)
                )
        writer.drain()
    finally:
        reader.close()
        writer.close()
    _finish_pass(trace, clock)


def pass_step4_deal(
    comm: Comm,
    src: ColumnStore,
    dst: ColumnStore,
    fmt: RecordFormat,
    trace: PassTrace | None = None,
    plan: PipelinePlan | None = None,
) -> None:
    """Pass = columnsort steps 3+4: sort one column per processor per
    round and apply the inverse deal.

    Step 4 sends the ``r/s``-record chunk ``m`` of sorted column ``c``
    to target column ``m`` (at rows ``≡ c mod s``, strided — the records
    are appended instead, since the next pass re-sorts each column).
    """
    p = comm.size
    r, s = src.r, src.s
    chunk = r // s
    plan = plan if plan is not None else SYNCHRONOUS
    clock = StageClock()
    cols = [t * p + comm.rank for t in range(s // p)]
    reader = _column_prefetch(src, comm.rank, cols, plan, clock)
    writer = WriteBehind(plan, clock)
    try:
        for t in range(s // p):
            raw = reader.get()
            with clock.stage(COMPUTE):
                col = raw[np.argsort(raw["key"], kind="stable")]
                _recycle(raw)
                chunks = col.reshape(s, chunk)
                parts = [chunks[q::p].reshape(-1) for q in range(p)]
            with clock.stage(COMM):
                recv = comm.alltoallv(parts)
            with clock.stage(COMPUTE):
                blocks = [a.reshape(s // p, chunk) for a in recv]
                segs = []
                for l in range(s // p):
                    target = comm.rank + l * p
                    segs.append(
                        (target, np.concatenate([blocks[q][l] for q in range(p)]))
                    )
            for target, seg in segs:
                writer.put(partial(dst.append_to_column, comm.rank, target, seg))
            if trace is not None:
                trace.rounds.append(
                    deal_round_work(fmt.record_size, r, (p - 1) / p, p - 1)
                )
        writer.drain()
    finally:
        reader.close()
        writer.close()
    _finish_pass(trace, clock)


def pass_final_windows(
    comm: Comm,
    src: ColumnStore,
    pdm: PdmStore,
    fmt: RecordFormat,
    trace: PassTrace | None = None,
    plan: PipelinePlan | None = None,
) -> None:
    """The combined last pass (steps 5+6+7+8).

    Steps 6-8 are realized window-wise: window ``w`` is the bottom half
    of column ``w-1`` followed by the top half of column ``w`` (±∞
    padding at the ends); once sorted (step 7 — a two-run merge), window
    ``w`` *is* the final output at global ranks
    ``[w·r − r/2, w·r + r/2)``, so the pass writes it straight into PDM
    position. Pipeline: read, sort, communicate (half exchange), sort,
    communicate (PDM routing), permute, write — the paper's 7 stages.
    """
    p = comm.size
    r, s = src.r, src.s
    half = r // 2
    n = r * s
    right = (comm.rank + 1) % p
    left = (comm.rank - 1) % p
    rounds = s // p
    plan = plan if plan is not None else SYNCHRONOUS
    clock = StageClock()
    cols = [t * p + comm.rank for t in range(rounds)]
    reader = _column_prefetch(src, comm.rank, cols, plan, clock)
    writer = WriteBehind(plan, clock)

    def window_range(w: int) -> tuple[int, int]:
        """Final global range [start, stop) of sorted window w."""
        return max(0, w * r - half), min(n, w * r + half)

    def route_and_write(t: int, window: np.ndarray | None, extra: bool) -> None:
        """Second communicate + permute + write: every rank routes its
        window (if any) to the PDM owners and writes what it receives.
        Receivers reconstruct senders' window ranges deterministically
        from the round number — no metadata crosses the network."""
        with clock.stage(COMPUTE):
            parts = [fmt.empty(0) for _ in range(p)]
            if window is not None:
                w = s if extra else t * p + comm.rank
                start, _ = window_range(w)
                for q, pieces in pdm.split_by_owner(start, len(window)).items():
                    parts[q] = np.concatenate(
                        [window[rel : rel + nn] for (_d, _o, rel, nn) in pieces]
                    )
        with clock.stage(COMM):
            recv = comm.alltoallv(parts)
        for q_src in range(p):
            w = s if extra else t * p + q_src
            if extra and q_src != 0:
                continue
            if w > s:
                continue
            start, stop = window_range(w)
            pieces = pdm.split_by_owner(start, stop - start).get(comm.rank, [])
            got = recv[q_src]
            at = 0
            for (_disk, _off, rel, nn) in pieces:
                writer.put(
                    partial(pdm.write_global, comm.rank, start + rel, got[at : at + nn])
                )
                at += nn

    try:
        for t in range(rounds):
            c = t * p + comm.rank
            raw = reader.get()
            with clock.stage(COMPUTE):
                col = raw[np.argsort(raw["key"], kind="stable")]  # step 5
                _recycle(raw)
            with clock.stage(COMM):
                # First communicate: bottom half → owner of window c+1.
                comm.send(col[half:], right, tag=WINDOW_TAG)
                if t == 0 and comm.rank == 0:
                    upper = fmt.pad_low(half)  # window 0's −∞ padding
                else:
                    upper = comm.recv(left, tag=WINDOW_TAG)  # bottom of col c−1
            with clock.stage(COMPUTE):
                merged = np.concatenate([upper, col[:half]])
                window = merged[np.argsort(merged["key"], kind="stable")]  # step 7
                # col/upper/merged are dead; adopting them feeds the
                # grabs of the next round's half-column sends.
                _recycle(col)
                _recycle(upper)
                _recycle(merged)
                if c == 0:
                    window = window[half:]  # drop the −∞ padding (step 8)
            route_and_write(t, window, extra=False)
            if trace is not None:
                trace.rounds.append(final_round_work(fmt.record_size, r, p))

        # Window s: the bottom half of the last column followed by +∞
        # padding — already sorted, so rank 0 (its owner) writes it directly.
        if comm.rank == 0:
            with clock.stage(COMM):
                tail = comm.recv(left, tag=WINDOW_TAG)
            route_and_write(rounds, tail, extra=True)
        else:
            route_and_write(rounds, None, extra=True)
        writer.drain()
    finally:
        reader.close()
        writer.close()
    _finish_pass(trace, clock)


def pass_io_only(
    comm: Comm,
    src: ColumnStore,
    dst: ColumnStore,
    fmt: RecordFormat,
    trace: PassTrace | None = None,
    plan: PipelinePlan | None = None,
) -> None:
    """Read every owned column and write it back — one baseline I/O pass
    (paper §5's 'just the I/O portions' runs)."""
    p = comm.size
    r, s = src.r, src.s
    plan = plan if plan is not None else SYNCHRONOUS
    clock = StageClock()
    cols = [t * p + comm.rank for t in range(s // p)]
    reader = _column_prefetch(src, comm.rank, cols, plan, clock)
    writer = WriteBehind(plan, clock)
    try:
        for t in range(s // p):
            c = t * p + comm.rank
            col = reader.get()
            # The lease stays with the write until it retires (ownership
            # rule: nobody may reuse a buffer with a write in flight).
            writer.put(
                _task_then_recycle(
                    partial(dst.write_column, comm.rank, c, col), col
                )
            )
            if trace is not None:
                trace.rounds.append(io_round_work(fmt.record_size, r))
        writer.drain()
    finally:
        reader.close()
        writer.close()
    _finish_pass(trace, clock)


# ---------------------------------------------------------------------------
# Run orchestration
# ---------------------------------------------------------------------------


def run_spmd_metered(size: int, program, *args, **kwargs):
    """:func:`run_spmd` plus this run's data-plane copy accounting.

    Returns ``(SpmdResult, copy)`` where ``copy`` is a
    :data:`~repro.membuf.COPY_KEYS` delta dict covering exactly the SPMD
    section (``peak_leases`` is rebased, so it is this run's high-water
    mark). If the world dies mid-pass, buffers leased by the failed
    ranks can never be recycled by their pass bodies — the leases are
    forgotten here so a failure-injection test does not read as a leak.
    """
    stats = copy_stats()
    pool = get_pool()
    stats.rebase_peak(pool.outstanding())
    before = stats.snapshot()
    try:
        res = run_spmd(size, program, *args, **kwargs)
    except BaseException:
        pool.forget_leases()
        raise
    return res, copy_delta(before, stats.snapshot())


class PassMarker:
    """Synchronized per-pass accounting inside a rank program.

    Call :meth:`mark` at every pass boundary: it barriers, snapshots this
    rank's communication counters and the aggregate disk I/O, then
    barriers again so no rank races ahead into the next pass while the
    snapshot is taken.

    The disk I/O marks follow ``comm.shared_fabric``: on a shared
    fabric (thread backend) rank 0's view of the disk counters already
    covers every rank's work, so only rank 0 keeps marks; on a
    non-shared fabric (process backend) each rank's fork-copied disk
    stats see only that rank's own I/O, so *every* rank keeps local
    marks and :meth:`io_deltas` sums them across ranks with an
    out-of-band gather — unmetered, so ``CommStats`` stays identical
    between backends.
    """

    def __init__(self, comm: Comm, disks: list[VirtualDisk]) -> None:
        from repro.disks.iostats import IoStats

        self._iostats = IoStats
        self.comm = comm
        self.disks = disks
        self.comm_marks = [comm.stats.snapshot()]
        self._local_io = not comm.shared_fabric
        self.io_marks = (
            [IoStats.combine([d.stats for d in disks])]
            if comm.rank == 0 or self._local_io
            else []
        )
        # Hold every rank here until the baseline snapshots are taken —
        # on the shared fabric a rank that started pass 1 early would
        # leak I/O out of the first pass's delta (rank 0's combine sees
        # every rank's counters). Unmetered, so the baseline comm
        # snapshot above is what a run without the marker would show.
        comm.barrier_oob()

    def mark(self) -> None:
        self.comm.barrier()
        self.comm_marks.append(self.comm.stats.snapshot())
        if self.comm.rank == 0 or self._local_io:
            self.io_marks.append(
                self._iostats.combine([d.stats for d in self.disks])
            )
        self.comm.barrier()

    @staticmethod
    def _deltas(marks: list[dict], keys: tuple) -> list[dict]:
        return [
            {k: marks[i + 1][k] - marks[i][k] for k in keys}
            for i in range(len(marks) - 1)
        ]

    def comm_deltas(self) -> list[dict]:
        return self._deltas(
            self.comm_marks,
            ("messages", "bytes", "network_messages", "network_bytes"),
        )

    def io_deltas(self) -> list[dict]:
        """Per-pass disk-I/O deltas (rank 0; other ranks get ``[]``).

        On a non-shared fabric this is a *collective*: every rank
        contributes its local per-pass deltas through an unmetered
        gather and rank 0 sums them elementwise. All ranks call it
        (the rank program returns it in its result dict), so the
        collective ordering is symmetric by construction.
        """
        from repro.disks.iostats import IO_KEYS

        local = self._deltas(self.io_marks, IO_KEYS)
        if not self._local_io:
            return local
        gathered = self.comm.gather_oob(local, root=0)
        if gathered is None:
            return []
        return [
            {k: sum(per_rank[i][k] for per_rank in gathered) for k in IO_KEYS}
            for i in range(len(local))
        ]


def new_pass_trace(name: str, shape: str) -> PassTrace:
    """Create a :class:`PassTrace` with the named pipeline shape
    (``"five"``, ``"seven"``, ``"eleven"``, ``"twenty"``, or ``"io"``)."""
    stages = {
        "five": five_stage_pipeline,
        "seven": seven_stage_pipeline,
        "eleven": eleven_stage_pipeline,
        "twenty": twenty_stage_pipeline,
        "io": io_only_pipeline,
    }[shape]()
    return PassTrace(name=name, stages=stages)


# ---------------------------------------------------------------------------
# Pass programs: declarative pass lists, checkpointing, failure cleanup
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PassSpec:
    """One pass of an out-of-core program, declaratively.

    ``body`` is any pass function with the shared signature
    ``body(comm, src_store, dst_store, fmt, trace, plan=...)``; ``src``
    and ``dst`` are keys into the run's store dict; ``shape`` names the
    simulated pipeline shape for the pass trace (see
    :func:`new_pass_trace`).
    """

    name: str
    shape: str
    body: object
    src: str
    dst: str


def execute_passes(
    comm: Comm,
    job: OocJob,
    stores: dict,
    specs: list[PassSpec],
    collect_trace: bool = True,
    checkpoint=None,
    algorithm: str = "",
    start_pass: int = 0,
    governor=None,
) -> dict:
    """The shared SPMD rank program: run ``specs`` in order over
    ``stores``, with per-pass accounting and optional pass-boundary
    checkpoints.

    ``start_pass`` passes are skipped at the front (their output already
    sits on disk — the resume path, validated by
    :meth:`~repro.resilience.checkpoint.CheckpointStore.resume_index`).
    After each completed pass, every rank's writes are on disk (each
    pass drains its write-behind pool, and :class:`PassMarker` barriers),
    so rank 0 persists the manifest *inside* the boundary and a final
    barrier keeps any rank from outrunning a manifest that is not yet
    durable.

    With ``job.audit`` set, rank 0 additionally runs a
    :class:`~repro.durability.audit.PassAuditor` over each pass's output
    store at the boundary — *before* the manifest is written, so a pass
    whose output violates a columnsort invariant fails the run instead
    of becoming a resume point. (Audit reads are metered store reads;
    the byte-exact pass-count tests therefore run with auditing off.)

    With ``governor`` (the run's
    :class:`~repro.governor.RunGovernor`) set, each pass start updates
    the governor's live-store bookkeeping and runs under its
    *effective* plan — the job's plan minus any pressure downshift,
    depth 0 once degraded. ``job.cancel`` makes every pass boundary a
    cancellation point, checked *after* the boundary's checkpoint is
    persisted so a cancelled run always resumes from the pass it
    finished last.
    """
    fmt = job.fmt
    plan = job.pipeline_plan()
    want_trace = comm.rank == 0 and collect_trace
    marker = PassMarker(comm, stores["input"].disks)
    auditor = None
    if job.audit and comm.rank == 0:
        from repro.durability import PassAuditor

        auditor = PassAuditor()
    traces = []
    total = len(specs)
    for index, spec in enumerate(specs, start=1):
        if index <= start_pass:
            continue
        if job.cancel is not None:
            job.cancel.check()
        effective = plan
        if governor is not None:
            governor.begin_pass(index)
            effective = governor.effective_plan(plan)
        trace = new_pass_trace(spec.name, spec.shape) if want_trace else None
        spec.body(
            comm, stores[spec.src], stores[spec.dst], fmt, trace, plan=effective
        )
        marker.mark()
        if trace is not None:
            traces.append(trace)
        if job.audit:
            if auditor is not None:
                auditor.audit_pass(algorithm, stores[spec.dst], index, total)
            comm.barrier()  # no rank outruns a failed audit
        if checkpoint is not None:
            if comm.rank == 0:
                checkpoint.save_pass(job, algorithm, index, total, stores[spec.dst])
            comm.barrier()
        if job.cancel is not None:
            # Boundary cancellation point — after the checkpoint is
            # durable, so a cancelled run resumes from this pass.
            job.cancel.pass_boundary(index)
            job.cancel.check()
    return {
        "traces": traces,
        "comm_per_pass": marker.comm_deltas(),
        "io_per_pass": marker.io_deltas(),
        "audited_passes": auditor.audited_passes if auditor is not None else 0,
        "audited_units": auditor.audited_units if auditor is not None else 0,
    }


def attach_resilience(disks: list[VirtualDisk], job: OocJob) -> None:
    """Install the job's retry policy / fault plan on every disk (without
    clobbering a plan a test armed directly on a disk)."""
    for disk in disks:
        if job.retry_policy is not None:
            disk.retry_policy = job.retry_policy
        if job.fault_plan is not None:
            disk.fault_plan = job.fault_plan


def cleanup_failed_run(stores: dict, checkpoint=None) -> None:
    """Delete the scratch stores of a failed run.

    The input store always survives (so the caller can retry), and any
    store a checkpoint manifest references survives (so a resume stays
    possible); everything else the run created is garbage and is
    removed. Best-effort: cleanup must never mask the original failure.
    """
    protected = checkpoint.protected_stores() if checkpoint is not None else set()
    for key, store in stores.items():
        if key == "input" or store.name in protected:
            continue
        try:
            store.delete()
        except Exception:
            pass


def run_pass_program(
    algorithm: str,
    job: OocJob,
    stores: dict,
    specs: list[PassSpec],
    collect_trace: bool = True,
    keep_intermediates: bool = False,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    keep_checkpoints: bool = False,
    trace_algorithm: str | None = None,
) -> OocResult:
    """Shared orchestration of every multi-pass program: resolve the
    resume point, run :func:`execute_passes` across the SPMD world with
    the job's resilience settings, account I/O and communication, clean
    up (differently for success and failure), and assemble the
    :class:`OocResult`.

    With ``checkpoint_dir`` set, a manifest is persisted after every
    completed pass; ``resume=True`` restarts after the last completed
    pass recorded there (validated against the job and the on-disk
    store digest). On failure, scratch stores not referenced by a
    manifest are deleted; on success the intermediates are deleted
    (unless ``keep_intermediates``) and the checkpoint directory is
    pruned away entirely (unless ``keep_checkpoints`` — the two
    lifecycles are independent: checkpoints exist to survive *failed*
    runs, so a successful one retires them no matter what it keeps for
    debugging).
    """
    from repro.cluster.stats import combined
    from repro.errors import Cancellation
    from repro.governor import RunGovernor, attach_governor
    from repro.resilience.checkpoint import CheckpointStore

    cluster, fmt = job.cluster, job.fmt
    disks = stores["input"].disks
    attach_resilience(disks, job)
    if job.parity:
        from repro.durability import attach_durability

        quarantine, layer = attach_durability(disks, parity=True)
    else:
        quarantine = getattr(disks[0], "quarantine", None)
        layer = getattr(disks[0], "parity_layer", None)
    parity_before = layer.counters_snapshot() if layer is not None else None
    ckpt = CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None
    start_pass = 0
    if ckpt is not None:
        if resume:
            start_pass = ckpt.resume_index(job, algorithm, stores)
        else:
            ckpt.clear()

    run_governor = RunGovernor(stores, specs, cancel=job.cancel)
    attach_governor(disks, run_governor)
    pool = get_pool()
    pool.reset_budget_accounting()
    # One snapshot before *all* attempts: the run's reported I/O
    # includes traffic a crashed attempt wasted, which is the honest
    # cost of the recovery.
    io_before = IoStats.combine([d.stats for d in disks])

    supervisor = None
    if job.restart_policy is not None:
        from repro.resilience.supervisor import RunSupervisor

        supervisor = RunSupervisor(job.restart_policy, cancel=job.cancel)

    def attempt():
        nonlocal start_pass
        if supervisor is not None and supervisor.stats.attempts:
            # A relaunch resumes after the last pass whose manifest (and
            # on-disk store digest) survived the crash — from scratch
            # when the job keeps no checkpoints.
            start_pass = (
                ckpt.resume_index(job, algorithm, stores)
                if ckpt is not None
                else 0
            )
            supervisor.stats.attempts[-1]["resumed_from_pass"] = start_pass
        return run_spmd_metered(
            cluster.p,
            execute_passes,
            job,
            stores,
            specs,
            collect_trace=collect_trace,
            checkpoint=ckpt,
            algorithm=algorithm,
            start_pass=start_pass,
            governor=run_governor,
            watchdog_deadline=job.watchdog_deadline,
            fault_plan=job.fault_plan,
            retry_policy=job.retry_policy,
            quarantine=quarantine,
            cancel=job.cancel,
            backend=job.backend,
            disks=disks,
        )

    def between_attempts(restart: int, exc: BaseException) -> None:
        # Sweep everything the dead attempt could poison the next one
        # with. Pool leases were already forgotten by run_spmd_metered's
        # unwind; the transport joined/terminated the cohort and swept
        # its reported segments before raising.
        cleanup_failed_run(stores, ckpt)  # un-checkpointed scratch
        for store in stores.values():
            # Stale append cursors would corrupt a re-run of a dealing
            # pass (its writes append); the files they described were
            # just deleted.
            reset = getattr(store, "reset_cursors", None)
            if reset is not None:
                reset()
        if quarantine is not None:
            # The relaunched cohort gets fresh (simulated) hardware:
            # dead-disk state must not be inherited across attempts.
            quarantine.revive()
        if job.backend == "process":
            from repro.cluster.process_backend import sweep_stale_segments

            sweep_stale_segments()

    try:
        if supervisor is not None:
            res, copy = supervisor.run(attempt, on_restart=between_attempts)
        else:
            res, copy = attempt()
    except BaseException as exc:
        cleanup_failed_run(stores, ckpt)
        if isinstance(exc, Cancellation) and quarantine is not None:
            # The caller asked for the stop; nothing is left to read
            # from a degraded workspace, so retire the quarantine from
            # the leak registry (cancellation must leak nothing).
            quarantine.release()
        raise
    finally:
        attach_governor(disks, None)
    io_after = IoStats.combine([d.stats for d in disks])

    rank0 = res.returns[0]
    run_trace = None
    if collect_trace:
        run_trace = RunTrace(
            algorithm=trace_algorithm or algorithm,
            n_records=job.n,
            record_size=fmt.record_size,
            p=cluster.p,
            buffer_bytes=job.buffer_bytes,
            passes=rank0["traces"],
        )
    if not keep_intermediates:
        for key, store in stores.items():
            if key not in ("input", "output"):
                store.delete()
    if ckpt is not None and not keep_checkpoints:
        ckpt.prune()  # a finished run's checkpoints are garbage

    durability: dict = {}
    if quarantine is not None:
        durability = quarantine.snapshot()
        durability["parity"] = layer is not None
        if layer is not None:
            parity_after = layer.counters_snapshot()
            for key, value in parity_after.items():
                # Per-run deltas: the layer may outlive several runs.
                durability[key] = value - parity_before[key]
    if job.audit:
        durability["audited_passes"] = rank0["audited_passes"]
        durability["audited_units"] = rank0["audited_units"]

    governance = run_governor.snapshot()
    governance.update(pool.budget_snapshot())
    if job.cancel is not None:
        governance["cancel_checks"] = job.cancel.checks
        governance["deadline_s"] = job.cancel.deadline_s

    comm_total = combined(res.stats)
    comm_total["retries"] = res.comm_retries
    return OocResult(
        algorithm=algorithm,
        job=job,
        output=stores["output"],
        passes=len(specs),
        io={k: io_after[k] - io_before[k] for k in io_after},
        io_per_pass=rank0["io_per_pass"],
        comm_per_pass=rank0["comm_per_pass"],
        comm_total=comm_total,
        copy=copy,
        durability=durability,
        governor=governance,
        supervisor=supervisor.stats.as_dict() if supervisor is not None else {},
        trace=run_trace,
    )

