"""One-call convenience API over the out-of-core sorting programs.

:func:`sort_out_of_core` builds a workspace (virtual disks + input
store) around an in-memory record array, runs the chosen algorithm, and
optionally verifies the output — the entry point the examples and most
tests use. For long-lived stores or repeated runs over the same data,
drive :mod:`repro.oocs.base` and the algorithm modules directly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.errors import ConfigError
from repro.governor import CancelToken, get_job_governor
from repro.membuf import get_pool
from repro.oocs.base import OocJob, OocResult, make_workspace
from repro.oocs.baseline_io import baseline_io_passes
from repro.oocs.hybrid import hybrid_columnsort_ooc
from repro.oocs.hybrid import derive_shape as hybrid_shape
from repro.oocs.mcolumnsort import m_columnsort_ooc
from repro.oocs.mcolumnsort import derive_shape as m_shape
from repro.oocs.subblock import subblock_columnsort_ooc
from repro.oocs.subblock import derive_shape as subblock_shape
from repro.oocs.threaded import threaded_columnsort_ooc
from repro.oocs.threaded import derive_shape as threaded_shape
from repro.oocs.verify import verify_output
from repro.records.format import RecordFormat

#: algorithm name → (runner, shape resolver, striped input layout?)
ALGORITHMS: dict[str, tuple] = {
    "threaded": (threaded_columnsort_ooc, threaded_shape, False),
    "subblock": (subblock_columnsort_ooc, subblock_shape, False),
    "m": (m_columnsort_ooc, m_shape, True),
    "hybrid": (hybrid_columnsort_ooc, hybrid_shape, True),
}


def job_demands(job: OocJob) -> tuple[int, int]:
    """Declared ``(mem_bytes, scratch_bytes)`` demand of a job, for
    admission control.

    Memory: every rank pins one column buffer per pipeline slot
    (``2·depth``) plus a handful of working copies (sorted column,
    packed send, receive) — conservatively 4. Scratch: a pass program
    keeps at most input + two generations of intermediates on disk at
    once, ≈ ``3·N`` records (the paper's experiments were disk-space
    limited at exactly this multiple — footnote 7).
    """
    mem = job.buffer_bytes * job.cluster.p * (2 * job.pipeline_depth + 4)
    scratch = 3 * job.n * job.fmt.record_size
    return mem, scratch


def sort_out_of_core(
    algorithm: str,
    records: np.ndarray,
    cluster: ClusterConfig,
    fmt: RecordFormat,
    buffer_records: int,
    workdir: str | Path | None = None,
    verify: bool = True,
    collect_trace: bool = True,
    pipeline_depth: int = 0,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    keep_checkpoints: bool = False,
    retry_policy=None,
    fault_plan=None,
    watchdog_deadline: float | None = None,
    parity: bool = False,
    audit: bool = False,
    cancel: CancelToken | None = None,
    deadline_s: float | None = None,
    mem_budget_bytes: int | None = None,
    governor=None,
    backend: str = "thread",
    restart_policy=None,
) -> OocResult:
    """Sort ``records`` out-of-core with the named algorithm
    (``"threaded"``, ``"subblock"``, ``"m"``, or ``"hybrid"``).

    ``buffer_records`` is the per-processor buffer ``r`` in records:
    the column height for threaded/subblock, the per-processor portion
    of an ``M``-high column for m/hybrid.

    ``pipeline_depth`` enables overlapped I/O inside every pass: each
    rank prefetches up to that many columns ahead of the compute stage
    and retires writes through a write-behind flusher. Depth 0 (the
    default) runs every pass synchronously; any depth produces
    byte-identical output.

    With ``verify=True`` (default) the PDM output is read back and
    checked to be a sorted permutation of the input with intact keys.

    Resilience knobs: ``checkpoint_dir`` persists a manifest after
    every completed pass; with ``resume=True`` a killed run restarts
    after the last completed pass (requires an explicit ``workdir`` so
    the scratch files survive the kill) and produces byte-identical
    output. A successful run prunes its checkpoint directory (the
    manifests and, when empty, the directory itself) — pass
    ``keep_checkpoints=True`` to keep it for inspection.
    ``retry_policy`` / ``fault_plan`` /
    ``watchdog_deadline`` are forwarded to the disks and the SPMD
    world — see :mod:`repro.resilience`. If the run fails with a
    temporary workdir, the scratch directory is removed.

    Durability knobs (see :mod:`repro.durability`): ``parity=True``
    maintains an XOR parity stripe across the disk array, letting the
    run repair corrupt blocks in place and complete byte-identically in
    degraded mode if a disk is lost to permanent faults mid-run;
    ``audit=True`` verifies sampled columnsort invariants of every
    pass's output before its checkpoint is declared good. Counters for
    both land in ``OocResult.durability``. A degraded run should call
    ``OocResult.release_durability()`` once its output has been read.

    Governance knobs (see :mod:`repro.governor`): ``cancel`` threads a
    :class:`~repro.governor.CancelToken` through every blocking seam —
    cancelling it (or passing ``deadline_s``, which builds a
    deadline-armed token) unwinds all ranks within one poll interval
    into a structured :class:`~repro.errors.Cancellation`, leaking no
    leases/threads/quarantines and leaving the last checkpoint valid
    for ``resume``. ``mem_budget_bytes`` installs a hard byte budget on
    the (process-wide) buffer pool: leases block under backpressure and
    the run downshifts its pipeline depth when pressure persists.
    ``governor`` (or a process-wide one installed via
    :func:`repro.governor.set_job_governor`) gates the run through
    admission control — it may queue FIFO and can be shed with
    :class:`~repro.errors.AdmissionRejected`. Counters land in
    ``OocResult.governor``.

    ``backend`` selects the SPMD transport: ``"thread"`` (default) or
    ``"process"`` — one forked OS process per rank with shared-memory
    alltoallv buffers, so rank-local compute escapes the GIL. Output
    and accounting are byte-identical across backends; ``parity=True``
    requires the thread backend (the parity layer's state lives in one
    address space).

    ``restart_policy`` arms in-run supervised recovery (see
    :mod:`repro.resilience.supervisor`): a rank that dies mid-run
    (SIGKILL, ``os._exit``, an unhandled exception, a watchdog timeout)
    no longer aborts the call — the cohort is torn down, stale state
    swept, and the pass program relaunched from the last pass-boundary
    checkpoint (from scratch without a ``checkpoint_dir``), up to
    ``max_restarts`` times with seeded backoff. Restart attempts run
    under the *same* cancel token and admission ticket: a deadline
    expiring during recovery still cancels the run, and a supervised
    job is admitted (and charged) exactly once however many attempts
    it takes. The supervision record lands in ``OocResult.supervisor``.

    >>> from repro.records import RecordFormat, generate
    >>> from repro.cluster import ClusterConfig
    >>> fmt = RecordFormat("u8", 64)
    >>> recs = generate("uniform", fmt, 8192, seed=1)
    >>> cfg = ClusterConfig(p=4, mem_per_proc=2**12)
    >>> res = sort_out_of_core("threaded", recs, cfg, fmt, buffer_records=512)
    >>> res.passes
    3
    """
    try:
        runner, shape_of, striped = ALGORITHMS[algorithm]
    except KeyError:
        raise ConfigError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(ALGORITHMS)}"
        ) from None
    if resume and workdir is None:
        raise ConfigError(
            "resume=True needs an explicit workdir (a temporary workspace "
            "does not survive the run being resumed)"
        )
    if checkpoint_dir is None and resume:
        raise ConfigError("resume=True needs a checkpoint_dir")
    if deadline_s is not None:
        if cancel is not None:
            raise ConfigError(
                "pass either cancel= or deadline_s=, not both (arm the "
                "deadline on your own CancelToken instead)"
            )
        cancel = CancelToken(deadline_s=deadline_s)
    if mem_budget_bytes is not None:
        # The buffer pool is process-wide, so the budget outlives this
        # call; the last caller to set it wins.
        get_pool().set_budget(mem_budget_bytes)
    job = OocJob(
        cluster=cluster,
        fmt=fmt,
        n=len(records),
        buffer_records=buffer_records,
        workdir=workdir,
        pipeline_depth=pipeline_depth,
        retry_policy=retry_policy,
        fault_plan=fault_plan,
        watchdog_deadline=watchdog_deadline,
        parity=parity,
        audit=audit,
        cancel=cancel,
        backend=backend,
        restart_policy=restart_policy,
    )
    if governor is None:
        governor = get_job_governor()
    ticket = None
    if governor is not None:
        mem_demand, scratch_demand = job_demands(job)
        ticket = governor.admit(
            mem_bytes=mem_demand, scratch_bytes=scratch_demand, cancel=cancel
        )
    try:
        r, s = shape_of(job)
        ws = make_workspace(
            cluster, fmt, records, r, s,
            workdir=workdir, striped=striped, parity=parity,
        )
        try:
            result = runner(
                job,
                ws.input,
                collect_trace=collect_trace,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                keep_checkpoints=keep_checkpoints,
            )
        except BaseException:
            if ws._tmp is not None:
                ws._tmp.cleanup()  # a temp workspace of a failed run is garbage
            raise
    finally:
        if ticket is not None:
            ticket.release()
    if ticket is not None:
        result.governor.update(ticket.snapshot())
    result.workspace = ws  # keep disks (and any TemporaryDirectory) alive
    if verify:
        verify_output(result.output, records)
    return result


def run_baseline_io(
    records: np.ndarray,
    cluster: ClusterConfig,
    fmt: RecordFormat,
    buffer_records: int,
    passes: int = 3,
    workdir: str | Path | None = None,
    pipeline_depth: int = 0,
    cancel: CancelToken | None = None,
    collect_trace: bool = True,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    retry_policy=None,
    fault_plan=None,
    backend: str = "thread",
) -> OocResult:
    """Run the §5 I/O-only baseline over ``records``.

    ``cancel`` / ``checkpoint_dir`` / ``resume`` / ``retry_policy`` /
    ``fault_plan`` behave exactly as in :func:`sort_out_of_core`, so the
    baseline participates in the same cancel-then-resume and chaos
    drills as the real algorithms.
    """
    job = OocJob(
        cluster=cluster,
        fmt=fmt,
        n=len(records),
        buffer_records=buffer_records,
        workdir=workdir,
        pipeline_depth=pipeline_depth,
        cancel=cancel,
        retry_policy=retry_policy,
        fault_plan=fault_plan,
        backend=backend,
    )
    r, s = threaded_shape(job)
    ws = make_workspace(cluster, fmt, records, r, s, workdir=workdir)
    result = baseline_io_passes(
        job,
        ws.input,
        passes=passes,
        collect_trace=collect_trace,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    result.workspace = ws
    return result
