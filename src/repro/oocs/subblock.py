"""Subblock columnsort: 4 passes, relaxed height restriction (paper §3).

The 10-step subblock columnsort maps onto the 3-pass threaded program
plus one extra pass:

======  ==========================  ================================
pass    columnsort steps            pipeline
======  ==========================  ================================
1       1 + 2                       5-stage (deal)
2       3 + 3.1 (subblock pass)     5-stage (subblock permutation)
3       3.2 + 4                     5-stage (deal)
4       5 + 6 + 7 + 8               7-stage (windows)
======  ==========================  ================================

The subblock pass's communicate stage is the interesting one: by the
bit-permutation structure of step 3.1 (Figure 1), each processor sends
only ``⌈P/√s⌉`` messages per round (of ``r/⌈P/√s⌉`` records each), and
when ``√s ≥ P`` the single message is addressed to its own sender — no
network traffic at all. Both properties are metered and tested; the
paper also proves this message count optimal among all permutations
with the subblock property (property 3).
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.cluster.comm import Comm
from repro.cluster.stats import combined
from repro.columnsort.validation import validate_subblock
from repro.disks.iostats import IoStats
from repro.disks.matrixfile import ColumnStore, PdmStore
from repro.errors import ConfigError
from repro.matrix.bits import sqrt_pow4
from repro.oocs.base import (
    OocJob,
    OocResult,
    PassMarker,
    _column_prefetch,
    _finish_pass,
    _recycle,
    new_pass_trace,
    pass_final_windows,
    pass_step2_deal,
    pass_step4_deal,
    run_spmd_metered,
)
from repro.pipeline import COMM, COMPUTE, SYNCHRONOUS, StageClock, WriteBehind
from repro.simulate.trace import RunTrace
from repro.simulate.traces import subblock_round_work


def derive_shape(job: OocJob) -> tuple[int, int]:
    """Resolve and validate the ``r × s`` matrix of a subblock-columnsort
    job: ``s`` must be a power of 4 with ``P | s`` and ``r ≥ 4·s^(3/2)``
    — the relaxed height restriction behind problem-size bound (2)."""
    r = job.buffer_records
    if job.n % r:
        raise ConfigError(f"buffer r={r} must divide N={job.n}")
    s = job.n // r
    p = job.cluster.p
    if s < p or s % p:
        raise ConfigError(
            f"need at least P={p} columns with P | s, got s={s} (N={job.n}, r={r})"
        )
    validate_subblock(r, s, powers_of_two=True)
    return r, s


def subblock_round_routing(c: int, r: int, s: int, p: int) -> dict[int, list[int]]:
    """Routing table of the subblock pass for source column ``c``: maps
    each destination processor to the ascending list of subblock row
    classes ``x`` (``i ≡ x mod √s``) it receives; class ``x`` is bound
    for target column ``x·√s + (c mod √s)``.

    The number of keys is exactly ``⌈P/√s⌉`` — properties 1 and 2 of
    paper §3.
    """
    t = sqrt_pow4(s)
    c0 = c % t
    routing: dict[int, list[int]] = {}
    for x in range(t):
        dest = (x * t + c0) % p
        routing.setdefault(dest, []).append(x)
    return routing


def expected_messages_per_round(s: int, p: int) -> int:
    """``⌈P/√s⌉`` — the paper's (optimal) message count per processor
    per subblock-pass round. Requires ``P ≤ s`` (every processor owns at
    least one column; with P > s the formula would exceed the √s
    distinct target columns a source column even has)."""
    if p > s:
        raise ConfigError(f"P={p} cannot exceed the column count s={s}")
    t = sqrt_pow4(s)
    return -(-p // t)


def pass_subblock(
    comm: Comm,
    src: ColumnStore,
    dst: ColumnStore,
    fmt,
    trace=None,
    plan=None,
) -> None:
    """The subblock pass: sort each column (step 3) and apply the
    subblock permutation (step 3.1).

    Row class ``x`` of sorted column ``c`` (the rows ``i ≡ x mod √s``,
    in ascending order) moves as one block to target column
    ``x·√s + (c mod √s)`` — preserving, as the paper proves, sorted runs
    of length ``r/√s`` in every target column. Receivers reconstruct the
    group boundaries from the (deterministic) routing table, so no
    metadata crosses the network.
    """
    p = comm.size
    r, s = src.r, src.s
    t = sqrt_pow4(s)
    group = r // t
    plan = plan if plan is not None else SYNCHRONOUS
    clock = StageClock()
    cols = [rnd * p + comm.rank for rnd in range(s // p)]
    reader = _column_prefetch(src, comm.rank, cols, plan, clock)
    writer = WriteBehind(plan, clock)
    try:
        for rnd in range(s // p):
            c = rnd * p + comm.rank
            raw = reader.get()
            with clock.stage(COMPUTE):
                col = raw[np.argsort(raw["key"], kind="stable")]  # step 3
                _recycle(raw)
                classes = col.reshape(group, t)  # col x = rows i ≡ x (mod √s)
                routing = subblock_round_routing(c, r, s, p)
                parts = []
                for q in range(p):
                    xs = routing.get(q)
                    if xs:
                        parts.append(
                            np.ascontiguousarray(classes[:, xs].T).reshape(-1)
                        )
                    else:
                        parts.append(fmt.empty(0))
            with clock.stage(COMM):
                recv = comm.alltoallv(parts)
            for q_src in range(p):
                c_src = rnd * p + q_src
                xs = subblock_round_routing(c_src, r, s, p).get(comm.rank, [])
                arr = recv[q_src]
                for idx, x in enumerate(xs):
                    target = x * t + (c_src % t)
                    writer.put(
                        partial(
                            dst.append_to_column,
                            comm.rank,
                            target,
                            arr[idx * group : (idx + 1) * group],
                        )
                    )
            if trace is not None:
                trace.rounds.append(subblock_round_work(fmt.record_size, r, s, p))
        writer.drain()
    finally:
        reader.close()
        writer.close()
    _finish_pass(trace, clock)


def _rank_program(comm: Comm, job: OocJob, stores: dict, collect_trace: bool) -> dict:
    fmt = job.fmt
    plan = job.pipeline_plan()
    want_trace = comm.rank == 0 and collect_trace
    marker = PassMarker(comm, stores["input"].disks)

    t1 = new_pass_trace("pass1:steps1-2", "five") if want_trace else None
    pass_step2_deal(comm, stores["input"], stores["t1"], fmt, t1, plan=plan)
    marker.mark()

    t2 = new_pass_trace("pass2:steps3+3.1(subblock)", "five") if want_trace else None
    pass_subblock(comm, stores["t1"], stores["t2"], fmt, t2, plan=plan)
    marker.mark()

    t3 = new_pass_trace("pass3:steps3.2+4", "five") if want_trace else None
    pass_step4_deal(comm, stores["t2"], stores["t3"], fmt, t3, plan=plan)
    marker.mark()

    t4 = new_pass_trace("pass4:steps5-8", "seven") if want_trace else None
    pass_final_windows(comm, stores["t3"], stores["output"], fmt, t4, plan=plan)
    marker.mark()

    return {
        "traces": [t for t in (t1, t2, t3, t4) if t is not None],
        "comm_per_pass": marker.comm_deltas(),
        "io_per_pass": marker.io_deltas(),
    }


def subblock_columnsort_ooc(
    job: OocJob,
    input_store: ColumnStore,
    collect_trace: bool = True,
    keep_intermediates: bool = False,
) -> OocResult:
    """Run 4-pass subblock columnsort on ``input_store``.

    Compared to threaded columnsort this handles matrices up to a factor
    ``√s/2`` shorter (problem-size bound (2): ``N ≤ (M/P)^(5/3)/4^(2/3)``)
    at the price of one extra pass of disk I/O — the paper measures it
    at roughly 4/3 the time of threaded columnsort, I/O-bound either way.
    """
    r, s = derive_shape(job)
    if (input_store.r, input_store.s) != (r, s):
        raise ConfigError(
            f"input store is {input_store.r}×{input_store.s}, job wants {r}×{s}"
        )
    cluster, fmt = job.cluster, job.fmt
    disks = input_store.disks
    stores = {
        "input": input_store,
        "t1": ColumnStore(cluster, fmt, r, s, disks, name="sub-t1"),
        "t2": ColumnStore(cluster, fmt, r, s, disks, name="sub-t2"),
        "t3": ColumnStore(cluster, fmt, r, s, disks, name="sub-t3"),
        "output": PdmStore(cluster, fmt, job.n, disks, job.pdm_block, name="output"),
    }

    io_before = IoStats.combine([d.stats for d in disks])
    res, copy = run_spmd_metered(cluster.p, _rank_program, job, stores, collect_trace)
    io_after = IoStats.combine([d.stats for d in disks])

    rank0 = res.returns[0]
    run_trace = None
    if collect_trace:
        run_trace = RunTrace(
            algorithm="subblock",
            n_records=job.n,
            record_size=fmt.record_size,
            p=cluster.p,
            buffer_bytes=job.buffer_bytes,
            passes=rank0["traces"],
        )
    if not keep_intermediates:
        for key in ("t1", "t2", "t3"):
            stores[key].delete()

    return OocResult(
        algorithm="subblock",
        job=job,
        output=stores["output"],
        passes=4,
        io={k: io_after[k] - io_before[k] for k in io_after},
        io_per_pass=rank0["io_per_pass"],
        comm_per_pass=rank0["comm_per_pass"],
        comm_total=combined(res.stats),
        copy=copy,
        trace=run_trace,
    )
