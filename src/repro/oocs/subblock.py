"""Subblock columnsort: 4 passes, relaxed height restriction (paper §3).

The 10-step subblock columnsort maps onto the 3-pass threaded program
plus one extra pass:

======  ==========================  ================================
pass    columnsort steps            pipeline
======  ==========================  ================================
1       1 + 2                       5-stage (deal)
2       3 + 3.1 (subblock pass)     5-stage (subblock permutation)
3       3.2 + 4                     5-stage (deal)
4       5 + 6 + 7 + 8               7-stage (windows)
======  ==========================  ================================

The subblock pass's communicate stage is the interesting one: by the
bit-permutation structure of step 3.1 (Figure 1), each processor sends
only ``⌈P/√s⌉`` messages per round (of ``r/⌈P/√s⌉`` records each), and
when ``√s ≥ P`` the single message is addressed to its own sender — no
network traffic at all. Both properties are metered and tested; the
paper also proves this message count optimal among all permutations
with the subblock property (property 3).
"""

from __future__ import annotations

from functools import partial

import numpy as np

from pathlib import Path

from repro.cluster.comm import Comm
from repro.columnsort.validation import validate_subblock
from repro.disks.matrixfile import ColumnStore, PdmStore
from repro.errors import ConfigError
from repro.matrix.bits import sqrt_pow4
from repro.oocs.base import (
    OocJob,
    OocResult,
    PassSpec,
    _column_prefetch,
    _finish_pass,
    _recycle,
    pass_final_windows,
    pass_step2_deal,
    pass_step4_deal,
    run_pass_program,
)
from repro.pipeline import COMM, COMPUTE, SYNCHRONOUS, StageClock, WriteBehind
from repro.simulate.traces import subblock_round_work


def derive_shape(job: OocJob) -> tuple[int, int]:
    """Resolve and validate the ``r × s`` matrix of a subblock-columnsort
    job: ``s`` must be a power of 4 with ``P | s`` and ``r ≥ 4·s^(3/2)``
    — the relaxed height restriction behind problem-size bound (2)."""
    r = job.buffer_records
    if job.n % r:
        raise ConfigError(f"buffer r={r} must divide N={job.n}")
    s = job.n // r
    p = job.cluster.p
    if s < p or s % p:
        raise ConfigError(
            f"need at least P={p} columns with P | s, got s={s} (N={job.n}, r={r})"
        )
    validate_subblock(r, s, powers_of_two=True)
    return r, s


def subblock_round_routing(c: int, r: int, s: int, p: int) -> dict[int, list[int]]:
    """Routing table of the subblock pass for source column ``c``: maps
    each destination processor to the ascending list of subblock row
    classes ``x`` (``i ≡ x mod √s``) it receives; class ``x`` is bound
    for target column ``x·√s + (c mod √s)``.

    The number of keys is exactly ``⌈P/√s⌉`` — properties 1 and 2 of
    paper §3.
    """
    t = sqrt_pow4(s)
    c0 = c % t
    routing: dict[int, list[int]] = {}
    for x in range(t):
        dest = (x * t + c0) % p
        routing.setdefault(dest, []).append(x)
    return routing


def expected_messages_per_round(s: int, p: int) -> int:
    """``⌈P/√s⌉`` — the paper's (optimal) message count per processor
    per subblock-pass round. Requires ``P ≤ s`` (every processor owns at
    least one column; with P > s the formula would exceed the √s
    distinct target columns a source column even has)."""
    if p > s:
        raise ConfigError(f"P={p} cannot exceed the column count s={s}")
    t = sqrt_pow4(s)
    return -(-p // t)


def pass_subblock(
    comm: Comm,
    src: ColumnStore,
    dst: ColumnStore,
    fmt,
    trace=None,
    plan=None,
) -> None:
    """The subblock pass: sort each column (step 3) and apply the
    subblock permutation (step 3.1).

    Row class ``x`` of sorted column ``c`` (the rows ``i ≡ x mod √s``,
    in ascending order) moves as one block to target column
    ``x·√s + (c mod √s)`` — preserving, as the paper proves, sorted runs
    of length ``r/√s`` in every target column. Receivers reconstruct the
    group boundaries from the (deterministic) routing table, so no
    metadata crosses the network.
    """
    p = comm.size
    r, s = src.r, src.s
    t = sqrt_pow4(s)
    group = r // t
    plan = plan if plan is not None else SYNCHRONOUS
    clock = StageClock()
    cols = [rnd * p + comm.rank for rnd in range(s // p)]
    reader = _column_prefetch(src, comm.rank, cols, plan, clock)
    writer = WriteBehind(plan, clock)
    try:
        for rnd in range(s // p):
            c = rnd * p + comm.rank
            raw = reader.get()
            with clock.stage(COMPUTE):
                col = raw[np.argsort(raw["key"], kind="stable")]  # step 3
                _recycle(raw)
                classes = col.reshape(group, t)  # col x = rows i ≡ x (mod √s)
                routing = subblock_round_routing(c, r, s, p)
                parts = []
                for q in range(p):
                    xs = routing.get(q)
                    if xs:
                        parts.append(
                            np.ascontiguousarray(classes[:, xs].T).reshape(-1)
                        )
                    else:
                        parts.append(fmt.empty(0))
            with clock.stage(COMM):
                recv = comm.alltoallv(parts)
            for q_src in range(p):
                c_src = rnd * p + q_src
                xs = subblock_round_routing(c_src, r, s, p).get(comm.rank, [])
                arr = recv[q_src]
                for idx, x in enumerate(xs):
                    target = x * t + (c_src % t)
                    writer.put(
                        partial(
                            dst.append_to_column,
                            comm.rank,
                            target,
                            arr[idx * group : (idx + 1) * group],
                        )
                    )
            if trace is not None:
                trace.rounds.append(subblock_round_work(fmt.record_size, r, s, p))
        writer.drain()
    finally:
        reader.close()
        writer.close()
    _finish_pass(trace, clock)


#: The 4-pass program, declaratively (see
#: :class:`~repro.oocs.base.PassSpec`).
PASSES = [
    PassSpec("pass1:steps1-2", "five", pass_step2_deal, "input", "t1"),
    PassSpec("pass2:steps3+3.1(subblock)", "five", pass_subblock, "t1", "t2"),
    PassSpec("pass3:steps3.2+4", "five", pass_step4_deal, "t2", "t3"),
    PassSpec("pass4:steps5-8", "seven", pass_final_windows, "t3", "output"),
]


def subblock_columnsort_ooc(
    job: OocJob,
    input_store: ColumnStore,
    collect_trace: bool = True,
    keep_intermediates: bool = False,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    keep_checkpoints: bool = False,
) -> OocResult:
    """Run 4-pass subblock columnsort on ``input_store``.

    Compared to threaded columnsort this handles matrices up to a factor
    ``√s/2`` shorter (problem-size bound (2): ``N ≤ (M/P)^(5/3)/4^(2/3)``)
    at the price of one extra pass of disk I/O — the paper measures it
    at roughly 4/3 the time of threaded columnsort, I/O-bound either way.
    With ``checkpoint_dir``, a manifest is saved after every pass and
    ``resume=True`` restarts after the last completed one.
    """
    r, s = derive_shape(job)
    if (input_store.r, input_store.s) != (r, s):
        raise ConfigError(
            f"input store is {input_store.r}×{input_store.s}, job wants {r}×{s}"
        )
    cluster, fmt = job.cluster, job.fmt
    disks = input_store.disks
    stores = {
        "input": input_store,
        "t1": ColumnStore(cluster, fmt, r, s, disks, name="sub-t1", parity=job.parity),
        "t2": ColumnStore(cluster, fmt, r, s, disks, name="sub-t2", parity=job.parity),
        "t3": ColumnStore(cluster, fmt, r, s, disks, name="sub-t3", parity=job.parity),
        "output": PdmStore(
            cluster, fmt, job.n, disks, job.pdm_block, name="output",
            parity=job.parity,
        ),
    }
    return run_pass_program(
        "subblock",
        job,
        stores,
        PASSES,
        collect_trace=collect_trace,
        keep_intermediates=keep_intermediates,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        keep_checkpoints=keep_checkpoints,
    )
