"""One machine-readable result schema for scripts and the service.

The ``sort --json`` CLI flag and the service daemon's ``result``
responses both emit :func:`result_summary`'s shape, so a script that
parses one parses the other — and the service's crash-recovery proof
(byte-identical output after a ``kill -9``) rests on the same
``output_digest`` field a plain CLI run reports.
"""

from __future__ import annotations

from repro.durability.hashing import DIGEST_ALGO, hexdigest

#: Bump on incompatible changes to the summary shape.
RESULT_SCHEMA = "repro.sort-result/1"


def output_digest(result) -> str:
    """Content digest (:data:`DIGEST_ALGO`) of the sorted output bytes —
    the identity two runs of one job spec are compared by."""
    out = result.output
    records = out.read_all() if hasattr(out, "read_all") else out.to_records()
    return hexdigest(records.tobytes())


def result_summary(result, verified: bool | None = None,
                   digest: str | None = None) -> dict:
    """Fold an :class:`~repro.oocs.base.OocResult` into plain JSON-able
    data. ``digest`` lets a caller that already hashed the output skip
    the re-read; ``digest=""`` (or leaving the output unread with
    ``digest=None`` on a deleted store) is not special-cased — the
    digest is computed here when not supplied.
    """
    job = result.job
    summary = {
        "schema": RESULT_SCHEMA,
        "algorithm": result.algorithm,
        "n": job.n,
        "record_size": job.fmt.record_size,
        "key": job.fmt.key,
        "processors": job.cluster.p,
        "buffer_records": job.buffer_records,
        "pipeline_depth": job.pipeline_depth,
        "backend": job.backend,
        "passes": result.passes,
        "io": dict(result.io),
        "comm": dict(result.comm_total),
        "stage_wall_s": result.stage_wall(),
        "output_digest": digest if digest is not None else output_digest(result),
        "digest_algo": DIGEST_ALGO,
    }
    if verified is not None:
        summary["verified"] = verified
    if result.copy:
        summary["copy"] = dict(result.copy)
    if result.durability:
        summary["durability"] = dict(result.durability)
    if result.governor:
        summary["governor"] = dict(result.governor)
    if result.supervisor:
        summary["supervisor"] = dict(result.supervisor)
    return summary
