"""Threaded columnsort: the paper's 3-pass baseline program.

Pass 1 performs columnsort steps 1+2, pass 2 steps 3+4, and pass 3 the
combined steps 5-8 (the third implementation of [CC02], which all of
the paper's algorithms start from). Column height is interpreted as
``r = M/P`` — each column must fit in one processor's memory — which
yields the problem-size restriction (1):
``N ≤ (M/P)^(3/2) / √2``.
"""

from __future__ import annotations

from repro.cluster.comm import Comm
from repro.cluster.stats import combined
from repro.columnsort.validation import validate_basic
from repro.disks.iostats import IoStats
from repro.disks.matrixfile import ColumnStore, PdmStore
from repro.errors import ConfigError
from repro.oocs.base import (
    OocJob,
    OocResult,
    PassMarker,
    new_pass_trace,
    pass_final_windows,
    pass_step2_deal,
    pass_step4_deal,
    run_spmd_metered,
)
from repro.simulate.trace import RunTrace


def derive_shape(job: OocJob) -> tuple[int, int]:
    """Resolve and validate the ``r × s`` matrix of a threaded-columnsort
    job: ``r`` is the buffer, ``s = N/r``; requires ``P | s`` (the pass
    structure processes ``P`` columns per round) and ``r ≥ 2s²`` — the
    height restriction whose combination with ``r ≤ M/P`` is exactly the
    problem-size restriction (1)."""
    r = job.buffer_records
    if job.n % r:
        raise ConfigError(f"buffer r={r} must divide N={job.n}")
    s = job.n // r
    p = job.cluster.p
    if s < p or s % p:
        raise ConfigError(
            f"need at least P={p} columns with P | s, got s={s} "
            f"(N={job.n}, r={r})"
        )
    validate_basic(r, s, powers_of_two=True)
    return r, s


def _rank_program(comm: Comm, job: OocJob, stores: dict, collect_trace: bool) -> dict:
    fmt = job.fmt
    plan = job.pipeline_plan()
    want_trace = comm.rank == 0 and collect_trace
    marker = PassMarker(comm, stores["input"].disks)

    t1 = new_pass_trace("pass1:steps1-2", "five") if want_trace else None
    pass_step2_deal(comm, stores["input"], stores["t1"], fmt, t1, plan=plan)
    marker.mark()

    t2 = new_pass_trace("pass2:steps3-4", "five") if want_trace else None
    pass_step4_deal(comm, stores["t1"], stores["t2"], fmt, t2, plan=plan)
    marker.mark()

    t3 = new_pass_trace("pass3:steps5-8", "seven") if want_trace else None
    pass_final_windows(comm, stores["t2"], stores["output"], fmt, t3, plan=plan)
    marker.mark()

    return {
        "traces": [t for t in (t1, t2, t3) if t is not None],
        "comm_per_pass": marker.comm_deltas(),
        "io_per_pass": marker.io_deltas(),
    }


def threaded_columnsort_ooc(
    job: OocJob,
    input_store: ColumnStore,
    collect_trace: bool = True,
    keep_intermediates: bool = False,
) -> OocResult:
    """Run 3-pass threaded columnsort on ``input_store`` (a column-major
    ``r × s`` matrix store built by
    :func:`~repro.oocs.base.make_workspace`).

    Returns an :class:`~repro.oocs.base.OocResult` whose ``output`` is a
    PDM-ordered :class:`~repro.disks.matrixfile.PdmStore` on the same
    disks. Intermediate stores are deleted unless ``keep_intermediates``
    (the paper's disk budget was 3× the input size: input + temporary +
    output, footnote 7).
    """
    r, s = derive_shape(job)
    if (input_store.r, input_store.s) != (r, s):
        raise ConfigError(
            f"input store is {input_store.r}×{input_store.s}, job wants {r}×{s}"
        )
    cluster, fmt = job.cluster, job.fmt
    disks = input_store.disks
    stores = {
        "input": input_store,
        "t1": ColumnStore(cluster, fmt, r, s, disks, name="thr-t1"),
        "t2": ColumnStore(cluster, fmt, r, s, disks, name="thr-t2"),
        "output": PdmStore(cluster, fmt, job.n, disks, job.pdm_block, name="output"),
    }

    io_before = IoStats.combine([d.stats for d in disks])
    res, copy = run_spmd_metered(cluster.p, _rank_program, job, stores, collect_trace)
    io_after = IoStats.combine([d.stats for d in disks])

    rank0 = res.returns[0]
    run_trace = None
    if collect_trace:
        run_trace = RunTrace(
            algorithm="threaded",
            n_records=job.n,
            record_size=fmt.record_size,
            p=cluster.p,
            buffer_bytes=job.buffer_bytes,
            passes=rank0["traces"],
        )
    if not keep_intermediates:
        stores["t1"].delete()
        stores["t2"].delete()

    return OocResult(
        algorithm="threaded",
        job=job,
        output=stores["output"],
        passes=3,
        io={k: io_after[k] - io_before[k] for k in io_after},
        io_per_pass=rank0["io_per_pass"],
        comm_per_pass=rank0["comm_per_pass"],
        comm_total=combined(res.stats),
        copy=copy,
        trace=run_trace,
    )
