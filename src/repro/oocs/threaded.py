"""Threaded columnsort: the paper's 3-pass baseline program.

Pass 1 performs columnsort steps 1+2, pass 2 steps 3+4, and pass 3 the
combined steps 5-8 (the third implementation of [CC02], which all of
the paper's algorithms start from). Column height is interpreted as
``r = M/P`` — each column must fit in one processor's memory — which
yields the problem-size restriction (1):
``N ≤ (M/P)^(3/2) / √2``.
"""

from __future__ import annotations

from pathlib import Path

from repro.columnsort.validation import validate_basic
from repro.disks.matrixfile import ColumnStore, PdmStore
from repro.errors import ConfigError
from repro.oocs.base import (
    OocJob,
    OocResult,
    PassSpec,
    pass_final_windows,
    pass_step2_deal,
    pass_step4_deal,
    run_pass_program,
)

#: The 3-pass program, declaratively (see
#: :class:`~repro.oocs.base.PassSpec`).
PASSES = [
    PassSpec("pass1:steps1-2", "five", pass_step2_deal, "input", "t1"),
    PassSpec("pass2:steps3-4", "five", pass_step4_deal, "t1", "t2"),
    PassSpec("pass3:steps5-8", "seven", pass_final_windows, "t2", "output"),
]


def derive_shape(job: OocJob) -> tuple[int, int]:
    """Resolve and validate the ``r × s`` matrix of a threaded-columnsort
    job: ``r`` is the buffer, ``s = N/r``; requires ``P | s`` (the pass
    structure processes ``P`` columns per round) and ``r ≥ 2s²`` — the
    height restriction whose combination with ``r ≤ M/P`` is exactly the
    problem-size restriction (1)."""
    r = job.buffer_records
    if job.n % r:
        raise ConfigError(f"buffer r={r} must divide N={job.n}")
    s = job.n // r
    p = job.cluster.p
    if s < p or s % p:
        raise ConfigError(
            f"need at least P={p} columns with P | s, got s={s} "
            f"(N={job.n}, r={r})"
        )
    validate_basic(r, s, powers_of_two=True)
    return r, s


def threaded_columnsort_ooc(
    job: OocJob,
    input_store: ColumnStore,
    collect_trace: bool = True,
    keep_intermediates: bool = False,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    keep_checkpoints: bool = False,
) -> OocResult:
    """Run 3-pass threaded columnsort on ``input_store`` (a column-major
    ``r × s`` matrix store built by
    :func:`~repro.oocs.base.make_workspace`).

    Returns an :class:`~repro.oocs.base.OocResult` whose ``output`` is a
    PDM-ordered :class:`~repro.disks.matrixfile.PdmStore` on the same
    disks. Intermediate stores are deleted unless ``keep_intermediates``
    (the paper's disk budget was 3× the input size: input + temporary +
    output, footnote 7). With ``checkpoint_dir``, a manifest is saved
    after every pass and ``resume=True`` restarts after the last
    completed one.
    """
    r, s = derive_shape(job)
    if (input_store.r, input_store.s) != (r, s):
        raise ConfigError(
            f"input store is {input_store.r}×{input_store.s}, job wants {r}×{s}"
        )
    cluster, fmt = job.cluster, job.fmt
    disks = input_store.disks
    stores = {
        "input": input_store,
        "t1": ColumnStore(cluster, fmt, r, s, disks, name="thr-t1", parity=job.parity),
        "t2": ColumnStore(cluster, fmt, r, s, disks, name="thr-t2", parity=job.parity),
        "output": PdmStore(
            cluster, fmt, job.n, disks, job.pdm_block, name="output",
            parity=job.parity,
        ),
    }
    return run_pass_program(
        "threaded",
        job,
        stores,
        PASSES,
        collect_trace=collect_trace,
        keep_intermediates=keep_intermediates,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        keep_checkpoints=keep_checkpoints,
    )
