"""The I/O-only baseline (paper §5).

For calibration the paper ran "just the I/O portions of three and four
passes of columnsort": read every record and write it back, ``k``
times, with no sorting or communication. The gap between an algorithm's
time and this baseline is its non-I/O overhead — threaded columnsort at
buffer 2^25 sat just barely above the 3-pass baseline.
"""

from __future__ import annotations

from repro.cluster.comm import Comm
from repro.cluster.stats import combined
from repro.disks.iostats import IoStats
from repro.disks.matrixfile import ColumnStore
from repro.errors import ConfigError
from repro.oocs.base import (
    OocJob,
    OocResult,
    new_pass_trace,
    pass_io_only,
    run_spmd_metered,
)
from repro.simulate.trace import RunTrace


def _rank_program(
    comm: Comm, job: OocJob, stores: list, passes: int, collect_trace: bool
) -> dict:
    plan = job.pipeline_plan()
    traces = []
    for k in range(passes):
        trace = None
        if comm.rank == 0 and collect_trace:
            trace = new_pass_trace(f"io-pass{k + 1}", "io")
            traces.append(trace)
        pass_io_only(comm, stores[k], stores[k + 1], job.fmt, trace, plan=plan)
        comm.barrier()
    return {"traces": traces}


def baseline_io_passes(
    job: OocJob,
    input_store: ColumnStore,
    passes: int = 3,
    collect_trace: bool = True,
) -> OocResult:
    """Run ``passes`` read+write-only passes over the data (3 for the
    threaded/M baseline, 4 for the subblock baseline)."""
    if passes < 1:
        raise ConfigError(f"need at least one pass, got {passes}")
    r, s = input_store.r, input_store.s
    cluster, fmt = job.cluster, job.fmt
    disks = input_store.disks
    stores = [input_store] + [
        ColumnStore(cluster, fmt, r, s, disks, name=f"io-t{k}")
        for k in range(passes)
    ]
    io_before = IoStats.combine([d.stats for d in disks])
    res, copy = run_spmd_metered(
        cluster.p, _rank_program, job, stores, passes, collect_trace
    )
    io_after = IoStats.combine([d.stats for d in disks])
    trace = None
    if collect_trace:
        trace = RunTrace(
            algorithm=f"baseline-io-{passes}",
            n_records=job.n,
            record_size=fmt.record_size,
            p=cluster.p,
            buffer_bytes=job.buffer_bytes,
            passes=res.returns[0]["traces"],
        )
    for store in stores[1:-1]:
        store.delete()
    return OocResult(
        algorithm=f"baseline-io-{passes}",
        job=job,
        output=stores[-1],  # a ColumnStore copy of the input, not a PdmStore
        passes=passes,
        io={k: io_after[k] - io_before[k] for k in io_after},
        io_per_pass=[],
        comm_per_pass=[],
        comm_total=combined(res.stats),
        copy=copy,
        trace=trace,
    )
