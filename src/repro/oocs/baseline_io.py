"""The I/O-only baseline (paper §5).

For calibration the paper ran "just the I/O portions of three and four
passes of columnsort": read every record and write it back, ``k``
times, with no sorting or communication. The gap between an algorithm's
time and this baseline is its non-I/O overhead — threaded columnsort at
buffer 2^25 sat just barely above the 3-pass baseline.
"""

from __future__ import annotations

from pathlib import Path

from repro.disks.matrixfile import ColumnStore
from repro.errors import ConfigError
from repro.oocs.base import (
    OocJob,
    OocResult,
    PassSpec,
    pass_io_only,
    run_pass_program,
)


def baseline_io_passes(
    job: OocJob,
    input_store: ColumnStore,
    passes: int = 3,
    collect_trace: bool = True,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    keep_checkpoints: bool = False,
) -> OocResult:
    """Run ``passes`` read+write-only passes over the data (3 for the
    threaded/M baseline, 4 for the subblock baseline)."""
    if passes < 1:
        raise ConfigError(f"need at least one pass, got {passes}")
    r, s = input_store.r, input_store.s
    cluster, fmt = job.cluster, job.fmt
    disks = input_store.disks
    stores: dict = {"input": input_store}
    keys = ["input"]
    for k in range(passes):
        key = "output" if k == passes - 1 else f"t{k + 1}"
        stores[key] = ColumnStore(
            cluster, fmt, r, s, disks, name=f"io-t{k}", parity=job.parity
        )
        keys.append(key)
    specs = [
        PassSpec(f"io-pass{k + 1}", "io", pass_io_only, keys[k], keys[k + 1])
        for k in range(passes)
    ]
    return run_pass_program(
        f"baseline-io-{passes}",
        job,
        stores,
        specs,
        collect_trace=collect_trace,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        keep_checkpoints=keep_checkpoints,
    )
