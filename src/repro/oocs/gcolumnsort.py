"""Adjustable height interpretation: g-columnsort (§6, future work).

The paper's second future-work item: "The closer the height
interpretation is to r = M/P, the less communication overhead is
incurred during the sort stages. We will develop an implementation
that allows for values of r between M/P and M, depending on the
problem size N for a given run."

This module is that implementation. Pick a *group size* ``g`` (a power
of 2, ``1 ≤ g ≤ P``): the ``P`` processors form ``G = P/g`` groups,
each column is ``r = g·M/P`` records tall, owned by one group and
striped over its members, and every sort stage is a distributed
in-core columnsort *within the owning group* (over a sub-communicator).
The problem-size restriction interpolates between (1) and (3):

    N ≤ (g·M/P)^(3/2) / √2

* ``g = 1`` — threaded columnsort: local sorts, no sort-stage
  communication, smallest bound;
* ``g = P`` — M-columnsort: cluster-wide sorts, no out-of-core
  communicate stage, largest bound;
* in between — sort-stage communication confined to ``g`` ranks while
  the out-of-core deal still crosses groups: the tunable trade the
  paper anticipated. Choose the smallest ``g`` whose bound admits your
  ``N`` (see :func:`smallest_group_size`).

Pass structure mirrors threaded columnsort (3 passes); each round,
every group processes one of its columns.
"""

from __future__ import annotations

import numpy as np

from repro.bounds.restrictions import max_pow2_n
from repro.cluster.comm import Comm
from repro.cluster.stats import combined
from repro.disks.iostats import IoStats
from repro.disks.matrixfile import GroupColumnStore, PdmStore
from repro.errors import ConfigError, DimensionError
from repro.matrix.bits import is_power_of_two
from repro.oocs.base import OocJob, OocResult, PassMarker, run_spmd_metered
from repro.oocs.incore.columnsort_dist import distributed_columnsort
from repro.records.format import RecordFormat

#: Tag for the cross-group bottom-half exchange of the final pass.
GW_TAG = 83


def g_bound(mem_per_proc: int, g: int) -> int:
    """The interpolated problem-size bound ``(g·M/P)^(3/2)/√2``."""
    import math

    if g < 1 or mem_per_proc < 1:
        raise ConfigError(f"need positive g and memory, got {g}, {mem_per_proc}")
    return math.isqrt((g * mem_per_proc) ** 3 // 2)


def smallest_group_size(n: int, p: int, mem_per_proc: int) -> int:
    """The least power-of-2 ``g ≤ P`` whose bound admits ``N`` — the
    run-time policy the paper sketches (minimize sort-stage
    communication subject to feasibility)."""
    g = 1
    while g <= p:
        if n <= max_pow2_n(g_bound(mem_per_proc, g)):
            return g
        g <<= 1
    raise DimensionError(
        f"N={n} exceeds even the g=P bound of {g_bound(mem_per_proc, p)} "
        f"records (restriction (3))"
    )


def derive_shape(job: OocJob, group_size: int) -> tuple[int, int]:
    """Resolve and validate the ``r × s`` matrix for group size ``g``:
    ``r = g·buffer``, with the height restriction ``r ≥ 2s²`` and the
    divisibility conditions of the group-striped deal."""
    p = job.cluster.p
    g = group_size
    if not is_power_of_two(g) or g > p:
        raise ConfigError(f"group size g={g} must be a power of 2 with g ≤ P={p}")
    portion = job.buffer_records
    r = g * portion
    if job.n % r:
        raise ConfigError(f"column height r=g·buffer={r} must divide N={job.n}")
    s = job.n // r
    groups = p // g
    if s < groups or s % groups:
        raise ConfigError(
            f"need at least G={groups} columns with G | s, got s={s}"
        )
    if r < 2 * s * s:
        raise DimensionError(
            f"height restriction violated: r=g·M/P={r} < 2s²={2 * s * s} — "
            f"N={job.n} exceeds the g={g} bound; try a larger group size"
        )
    if portion % s:
        raise ConfigError(f"s={s} must divide the per-rank portion {portion}")
    if g >= 2 and portion < 2 * g * g:
        raise DimensionError(
            f"in-core height restriction violated: r/g={portion} < 2g²={2 * g * g}"
        )
    return r, s


# ---------------------------------------------------------------------------
# Pass bodies
# ---------------------------------------------------------------------------

def _deal_pass_g(
    comm: Comm,
    gcomm: Comm,
    src: GroupColumnStore,
    dst: GroupColumnStore,
    fmt: RecordFormat,
    step: int,
) -> None:
    """Steps 1+2 (``step=2``) or 3+4 (``step=4``) under the group
    interpretation: per round each group distributed-sorts its column,
    then all ranks deal across groups with one global all-to-all.

    Routing (with ``i`` the sorted rank within the column):

    * step 2 — target column ``i mod s``; the receiving member within
      the target group is ``(i div s) mod g``;
    * step 4 — target column ``i div (r/s)``; receiving member
      ``(i mod (r/s)) div (r/(s·g))``.

    Receivers reconstruct every record's target column arithmetically
    from the sender's identity — no metadata crosses the network.
    """
    p = comm.size
    g, groups = src.g, src.groups
    r, s = src.r, src.s
    portion = src.portion
    gid = comm.rank // g
    member = comm.rank % g
    chunk = r // s
    sub = max(1, chunk // g)

    def targets(i: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(target column, receiving member) of sorted ranks ``i``."""
        if step == 2:
            return i % s, (i // s) % g
        return i // chunk, (i % chunk) // sub

    for t in range(s // groups):
        c = t * groups + gid
        local = src.read_portion(comm.rank, c)
        mine = distributed_columnsort(gcomm, local, fmt)
        i = member * portion + np.arange(portion)
        cols, members = targets(i)
        dest = (cols % groups) * g + members
        order = np.argsort(dest, kind="stable")
        dest_sorted = dest[order]
        payload = mine[order]
        bounds = np.searchsorted(dest_sorted, np.arange(p + 1))
        parts = [payload[bounds[q] : bounds[q + 1]] for q in range(p)]
        recv = comm.alltoallv(parts)
        for q_src, arr in enumerate(recv):
            sm = q_src % g
            ivals = sm * portion + np.arange(portion)
            src_cols, src_members = targets(ivals)
            mask = (src_cols % groups == gid) & (src_members == member)
            my_cols = src_cols[mask]
            if len(my_cols) != len(arr):
                raise ConfigError(
                    f"deal reconstruction mismatch: expected {len(my_cols)} "
                    f"records from rank {q_src}, got {len(arr)}"
                )
            if not len(arr):
                continue
            order2 = np.argsort(my_cols, kind="stable")
            sorted_cols = my_cols[order2]
            sorted_arr = arr[order2]
            cuts = np.flatnonzero(np.diff(sorted_cols)) + 1
            starts = np.concatenate([[0], cuts, [len(sorted_cols)]])
            for a, b in zip(starts[:-1], starts[1:]):
                dst.append_to_portion(comm.rank, int(sorted_cols[a]), sorted_arr[a:b])


def _final_pass_g(
    comm: Comm,
    gcomm: Comm,
    src: GroupColumnStore,
    pdm: PdmStore,
    fmt: RecordFormat,
) -> None:
    """Steps 5-8 under the group interpretation, window-wise.

    After each group sorts its column, bottom-half members ship their
    pieces to the same member of the *next* group; the window sort is a
    distributed columnsort within the owning group mixing received
    bottoms with retained tops; sorted windows route to PDM owners.
    Windows 0 and ``s`` carry ±∞ padding contributions whose slices are
    simply not written.
    """
    p = comm.size
    g, groups = src.g, src.groups
    r, s = src.r, src.s
    portion = src.portion
    gid = comm.rank // g
    member = comm.rank % g
    half = r // 2
    half_members = g // 2  # 0 when g == 1 (handled separately)
    n = r * s
    rounds = s // groups
    next_rank = ((gid + 1) % groups) * g + member
    prev_rank = ((gid - 1) % groups) * g + member

    def window_piece(w: int, sm: int) -> tuple[int, int] | None:
        """Global (start, length) of member ``sm``'s slice of sorted
        window ``w``, or None when the slice is pure padding."""
        if g == 1:
            if w == 0:
                return 0, half
            if w == s:
                return n - half, half
            return w * r - half, r
        if w == 0:
            if sm < half_members:
                return None  # −∞ padding
            return (sm - half_members) * portion, portion
        if w == s:
            if sm >= half_members:
                return None  # +∞ padding
            return n - half + sm * portion, portion
        return w * r - half + sm * portion, portion

    def route_write(t: int, piece: np.ndarray | None, extra: bool) -> None:
        parts = [fmt.empty(0) for _ in range(p)]
        my_w = s if extra else t * groups + gid
        rng = window_piece(my_w, member) if (not extra or gid == 0) else None
        if rng is not None and piece is not None:
            gstart, _length = rng
            for q, pieces in pdm.split_by_owner(gstart, len(piece)).items():
                parts[q] = np.concatenate(
                    [piece[rel : rel + nn] for (_d, _o, rel, nn) in pieces]
                )
        recv = comm.alltoallv(parts)
        for q_src in range(p):
            sq, sm = q_src // g, q_src % g
            if extra and sq != 0:
                continue
            w = s if extra else t * groups + sq
            rng = window_piece(w, sm)
            if rng is None:
                continue
            gstart, length = rng
            got = recv[q_src]
            at = 0
            for (_disk, _off, rel, nn) in pdm.split_by_owner(gstart, length).get(
                comm.rank, []
            ):
                pdm.write_global(comm.rank, gstart + rel, got[at : at + nn])
                at += nn

    for t in range(rounds):
        c = t * groups + gid
        local = src.read_portion(comm.rank, c)
        mine = distributed_columnsort(gcomm, local, fmt)  # step 5
        first_window = t == 0 and gid == 0

        if g == 1:
            comm.send(mine[half:], next_rank, tag=GW_TAG)
            upper = (
                fmt.pad_low(half) if first_window else comm.recv(prev_rank, tag=GW_TAG)
            )
            merged = np.concatenate([upper, mine[:half]])
            window = merged[np.argsort(merged["key"], kind="stable")]  # step 7
            piece = window[half:] if c == 0 else window
        else:
            if member >= half_members:
                comm.send(mine, next_rank, tag=GW_TAG)
                contribution = (
                    fmt.pad_low(portion)
                    if first_window
                    else comm.recv(prev_rank, tag=GW_TAG)
                )
            else:
                contribution = mine  # my piece lies in the top half
            window_slice = distributed_columnsort(gcomm, contribution, fmt)  # step 7
            piece = window_slice if window_piece(c, member) is not None else None

        route_write(t, piece, extra=False)

    # Window s: bottom of the last column (held, post-send, by group 0's
    # receive queues) plus +∞ padding.
    if gid == 0:
        if g == 1:
            tail = comm.recv(prev_rank, tag=GW_TAG)  # already sorted
            route_write(rounds, tail, extra=True)
        else:
            contribution = (
                comm.recv(prev_rank, tag=GW_TAG)
                if member >= half_members
                else fmt.pad_high(portion)
            )
            window_slice = distributed_columnsort(gcomm, contribution, fmt)
            piece = window_slice if window_piece(s, member) is not None else None
            route_write(rounds, piece, extra=True)
    else:
        route_write(rounds, None, extra=True)


def _rank_program(
    comm: Comm, job: OocJob, stores: dict, group_size: int
) -> dict:
    fmt = job.fmt
    gcomm = comm.split(color=comm.rank // group_size, key=comm.rank % group_size)
    marker = PassMarker(comm, stores["input"].disks)

    _deal_pass_g(comm, gcomm, stores["input"], stores["t1"], fmt, step=2)
    marker.mark()
    _deal_pass_g(comm, gcomm, stores["t1"], stores["t2"], fmt, step=4)
    marker.mark()
    _final_pass_g(comm, gcomm, stores["t2"], stores["output"], fmt)
    marker.mark()

    return {
        "comm_per_pass": marker.comm_deltas(),
        "io_per_pass": marker.io_deltas(),
    }


def g_columnsort_ooc(
    job: OocJob,
    input_store: GroupColumnStore,
    group_size: int | None = None,
) -> OocResult:
    """Run 3-pass g-columnsort on ``input_store`` (built by
    :func:`make_g_workspace`). With ``group_size=None`` the store's own
    group size is used."""
    g = input_store.g if group_size is None else group_size
    r, s = derive_shape(job, g)
    if (input_store.r, input_store.s, input_store.g) != (r, s, g):
        raise ConfigError(
            f"input store is {input_store.r}×{input_store.s} (g={input_store.g}), "
            f"job wants {r}×{s} (g={g})"
        )
    cluster, fmt = job.cluster, job.fmt
    disks = input_store.disks
    stores = {
        "input": input_store,
        "t1": GroupColumnStore(
            cluster, fmt, r, s, disks, g, name="g-t1", parity=job.parity
        ),
        "t2": GroupColumnStore(
            cluster, fmt, r, s, disks, g, name="g-t2", parity=job.parity
        ),
        "output": PdmStore(
            cluster, fmt, job.n, disks, job.pdm_block, name="output",
            parity=job.parity,
        ),
    }

    io_before = IoStats.combine([d.stats for d in disks])
    res, copy = run_spmd_metered(
        cluster.p, _rank_program, job, stores, g,
        backend=job.backend, disks=disks,
    )
    io_after = IoStats.combine([d.stats for d in disks])

    stores["t1"].delete()
    stores["t2"].delete()
    rank0 = res.returns[0]
    quarantine = getattr(disks[0], "quarantine", None)
    durability = quarantine.snapshot() if quarantine is not None else {}
    if durability:
        durability["parity"] = getattr(disks[0], "parity_layer", None) is not None
    return OocResult(
        algorithm=f"g-columnsort(g={g})",
        job=job,
        output=stores["output"],
        passes=3,
        io={k: io_after[k] - io_before[k] for k in io_after},
        io_per_pass=rank0["io_per_pass"],
        comm_per_pass=rank0["comm_per_pass"],
        comm_total=combined(res.stats),
        copy=copy,
        durability=durability,
        trace=None,
    )


def make_g_workspace(
    cluster,
    fmt: RecordFormat,
    records: np.ndarray,
    r: int,
    s: int,
    group_size: int,
    workdir=None,
):
    """Disks + group-striped input store for a g-columnsort run."""
    import tempfile
    from pathlib import Path

    from repro.disks.virtual_disk import make_disk_array
    from repro.oocs.base import Workspace

    tmp = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-goocs-")
        workdir = tmp.name
    disks = make_disk_array(workdir, cluster.virtual_disks)
    store = GroupColumnStore.from_records(
        cluster, fmt, records, r, s, disks, group_size, name="input"
    )
    ws = Workspace(disks=disks, input=store, workdir=Path(workdir))
    ws._tmp = tmp
    return ws


def sort_with_group_size(
    records: np.ndarray,
    cluster,
    fmt: RecordFormat,
    buffer_records: int,
    group_size: int | None = None,
    workdir=None,
    verify: bool = True,
    backend: str = "thread",
) -> OocResult:
    """One-call g-columnsort. With ``group_size=None``, picks the
    smallest feasible ``g`` for this ``N`` (the paper's intended
    policy)."""
    from repro.oocs.verify import verify_output

    job = OocJob(
        cluster=cluster, fmt=fmt, n=len(records),
        buffer_records=buffer_records, backend=backend,
    )
    if group_size is None:
        group_size = smallest_group_size(len(records), cluster.p, buffer_records)
        # The bound-feasible g may still fail a divisibility condition
        # for this exact N; walk upward until the shape resolves.
        while group_size <= cluster.p:
            try:
                derive_shape(job, group_size)
                break
            except (ConfigError, DimensionError):
                group_size <<= 1
        if group_size > cluster.p:
            raise DimensionError(
                f"no group size can realize N={len(records)} at buffer "
                f"{buffer_records} on P={cluster.p}"
            )
    r, s = derive_shape(job, group_size)
    ws = make_g_workspace(cluster, fmt, records, r, s, group_size, workdir)
    result = g_columnsort_ooc(job, ws.input, group_size)
    result.workspace = ws
    if verify:
        verify_output(result.output, records)
    return result
