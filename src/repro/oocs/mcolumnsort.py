"""M-columnsort: 3 passes with the height interpretation ``r = M``
(paper §4).

Each out-of-core column holds ``M`` records — the whole cluster's
memory — striped across all processors (each holds ``M/P`` of every
column). The per-pass sort stage becomes a distributed in-core
columnsort on an ``(M/P) × P`` matrix, and because every processor owns
a portion of every column, the in-core sort's final communication step
can deliver each processor exactly the sorted ranks it must write into
its own portions of the target columns — eliminating the out-of-core
communicate stage in passes 1-2 and one of the two in the last pass.

The payoff is problem-size restriction (3), ``N ≤ M^(3/2)/√2``: the
maximum problem size now scales (superlinearly) with the *total* memory
of the system, so adding processors grows the reachable ``N`` even at
fixed memory per processor — up to a terabyte on the paper's 16-node
configuration.

Pipelines: passes 1-2 have 11 stages on 4 threads (read+write, permute,
in-core local sort, in-core communication); the last pass has 20 stages
on 7 threads.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from pathlib import Path

from repro.cluster.comm import Comm
from repro.disks.matrixfile import PdmStore, StripedColumnStore
from repro.errors import ConfigError, DimensionError
from repro.membuf import get_pool, legacy_copies
from repro.oocs.base import (
    OocJob,
    OocResult,
    PassSpec,
    _finish_pass,
    _recycle,
    run_pass_program,
)
from repro.oocs.incore.columnsort_dist import distributed_columnsort
from repro.oocs.incore.common import Ranges
from repro.pipeline import (
    COMM,
    COMPUTE,
    INCORE,
    SYNCHRONOUS,
    PipelinePlan,
    ReadAhead,
    StageClock,
    WriteBehind,
)
from repro.records.format import RecordFormat
from repro.simulate.trace import PassTrace
from repro.simulate.traces import m_deal_round_work, m_final_round_work


def derive_shape(job: OocJob) -> tuple[int, int]:
    """Resolve and validate the ``r × s`` matrix of an M-columnsort job:
    ``r = M = P · buffer`` and ``s = N/M``, subject to the outer height
    restriction ``M ≥ 2s²``, the inner one ``M/P ≥ 2P²`` (the sort
    stage's in-core columnsort), and ``s | M/P`` (so each round's
    delivery splits evenly)."""
    p = job.cluster.p
    if p < 2:
        raise ConfigError(
            "M-columnsort needs P ≥ 2 (with one processor it degenerates "
            "to threaded columnsort)"
        )
    portion = job.buffer_records
    r = p * portion  # r = M
    if job.n % r:
        raise ConfigError(f"column height r=M={r} must divide N={job.n}")
    s = job.n // r
    if r < 2 * s * s:
        raise DimensionError(
            f"height restriction violated: M={r} < 2s²={2 * s * s} — "
            f"N={job.n} exceeds M-columnsort's problem-size bound"
        )
    if portion < 2 * p * p:
        raise DimensionError(
            f"in-core height restriction violated: M/P={portion} < 2P²="
            f"{2 * p * p} (the sort stage's distributed columnsort)"
        )
    if portion % s:
        raise ConfigError(
            f"s={s} must divide M/P={portion} for even per-round delivery"
        )
    return r, s


# ---------------------------------------------------------------------------
# Pass bodies
# ---------------------------------------------------------------------------

def _portion_prefetch(
    src: StripedColumnStore, rank: int, plan: PipelinePlan, clock: StageClock
) -> ReadAhead:
    """Read-ahead over this rank's portions of columns 0..s-1 (pooled
    leases on the zero-copy path; see ``_column_prefetch``)."""
    reuse = not legacy_copies()
    return ReadAhead(
        [partial(src.read_portion, rank, c, reuse=reuse) for c in range(src.s)],
        plan,
        clock,
        on_drop=get_pool().recycle if reuse else None,
    )


def _pass1_m(
    comm: Comm,
    src: StripedColumnStore,
    dst: StripedColumnStore,
    fmt: RecordFormat,
    trace: PassTrace | None,
    plan: PipelinePlan | None = None,
) -> None:
    """Steps 1+2 with ``r = M``: one round per column; the distributed
    sort delivers balanced contiguous sorted ranges, whose records each
    rank deals into its own portions of the ``s`` target columns
    (sorted rank ``i`` → target column ``i mod s``)."""
    p, s = comm.size, src.s
    portion = src.portion
    share = portion // s
    plan = plan if plan is not None else SYNCHRONOUS
    clock = StageClock()
    reader = _portion_prefetch(src, comm.rank, plan, clock)
    writer = WriteBehind(plan, clock)
    try:
        for c in range(s):
            local = reader.get()
            with clock.stage(INCORE):
                mine = distributed_columnsort(comm, local, fmt)
                _recycle(local)  # the unsorted portion is dead
            with clock.stage(COMPUTE):
                base = comm.rank * portion
                cols = (base + np.arange(portion)) % s
                grouped = mine[np.argsort(cols, kind="stable")]
            for target in range(s):
                writer.put(
                    partial(
                        dst.append_to_portion,
                        comm.rank,
                        target,
                        grouped[target * share : (target + 1) * share],
                    )
                )
            if trace is not None:
                trace.rounds.append(
                    m_deal_round_work(fmt.record_size, portion, p, "balanced")
                )
        writer.drain()
    finally:
        reader.close()
        writer.close()
    _finish_pass(trace, clock)


def _pass2_m(
    comm: Comm,
    src: StripedColumnStore,
    dst: StripedColumnStore,
    fmt: RecordFormat,
    trace: PassTrace | None,
    plan: PipelinePlan | None = None,
) -> None:
    """Steps 3+4 with ``r = M``: sorted chunk ``m`` (ranks
    ``[m·M/s, (m+1)·M/s)``) belongs to target column ``m``; the in-core
    sort delivers each rank the ``q``-th ``1/P`` slice of every chunk,
    which it appends to its own portion of the corresponding column —
    keeping all portions balanced at ``M/P`` records."""
    p, r, s = comm.size, src.r, src.s
    portion = src.portion
    chunk = r // s
    piece = chunk // p
    ranges: Ranges = [
        [(m * chunk + q * piece, m * chunk + (q + 1) * piece) for m in range(s)]
        for q in range(p)
    ]
    plan = plan if plan is not None else SYNCHRONOUS
    clock = StageClock()
    reader = _portion_prefetch(src, comm.rank, plan, clock)
    writer = WriteBehind(plan, clock)
    try:
        for c in range(s):
            local = reader.get()
            with clock.stage(INCORE):
                mine = distributed_columnsort(comm, local, fmt, target_ranges=ranges)
                _recycle(local)
            for m in range(s):
                writer.put(
                    partial(
                        dst.append_to_portion,
                        comm.rank,
                        m,
                        mine[m * piece : (m + 1) * piece],
                    )
                )
            if trace is not None:
                trace.rounds.append(
                    m_deal_round_work(fmt.record_size, portion, p, "scattered")
                )
        writer.drain()
    finally:
        reader.close()
        writer.close()
    _finish_pass(trace, clock)


def _route_write(
    comm: Comm,
    pdm: PdmStore,
    fmt: RecordFormat,
    my_piece: tuple[int, np.ndarray] | None,
    piece_range_of,
    writer: WriteBehind | None = None,
    clock: StageClock | None = None,
) -> None:
    """The remaining out-of-core communicate + permute + write: each
    rank splits its (globally positioned) piece by PDM disk owner;
    receivers reconstruct every sender's range from the deterministic
    ``piece_range_of(q) -> (gstart, length) | None`` and write (through
    the write-behind flusher when one is supplied)."""
    p = comm.size
    clock = clock if clock is not None else StageClock()
    with clock.stage(COMPUTE):
        parts = [fmt.empty(0) for _ in range(p)]
        if my_piece is not None:
            gstart, arr = my_piece
            for q, pieces in pdm.split_by_owner(gstart, len(arr)).items():
                parts[q] = np.concatenate(
                    [arr[rel : rel + nn] for (_d, _o, rel, nn) in pieces]
                )
    with clock.stage(COMM):
        recv = comm.alltoallv(parts)
    for q_src in range(p):
        rng = piece_range_of(q_src)
        if rng is None:
            continue
        gstart, length = rng
        pieces = pdm.split_by_owner(gstart, length).get(comm.rank, [])
        got = recv[q_src]
        at = 0
        for (_disk, _off, rel, nn) in pieces:
            task = partial(pdm.write_global, comm.rank, gstart + rel, got[at : at + nn])
            if writer is not None:
                writer.put(task)
            else:
                task()
            at += nn


def _pass3_m(
    comm: Comm,
    src: StripedColumnStore,
    pdm: PdmStore,
    fmt: RecordFormat,
    trace: PassTrace | None,
    plan: PipelinePlan | None = None,
) -> None:
    """Steps 5-8 with ``r = M``, window-wise.

    Window ``w`` = bottom half of column ``w−1`` + top half of column
    ``w``; once sorted it occupies final global ranks
    ``[w·M − M/2, w·M + M/2)``. Per round: distributed sort of column
    ``c`` (step 5); ranks in the top half contribute their slices and
    ranks in the bottom half contribute the slices they retained from
    column ``c−1`` to a second distributed sort (step 7; this is where
    the first out-of-core communicate stage disappears — the halves are
    already distributed); the surviving communicate routes the sorted
    window to PDM disk owners. Windows 0 and ``s`` carry ±∞ padding and
    reduce to direct writes of already-sorted halves.
    """
    p, r, s = comm.size, src.r, src.s
    portion = src.portion
    half_ranks = p // 2
    retained: np.ndarray | None = None
    plan = plan if plan is not None else SYNCHRONOUS
    clock = StageClock()
    reader = _portion_prefetch(src, comm.rank, plan, clock)
    writer = WriteBehind(plan, clock)

    try:
        for c in range(s):
            local = reader.get()
            with clock.stage(INCORE):
                mine = distributed_columnsort(comm, local, fmt)  # step 5
                _recycle(local)
            if c == 0:
                # Window 0: −∞ padding + top(col 0) → its kept half is just
                # the sorted top half, final ranks [0, M/2).
                piece = (
                    (comm.rank * portion, mine) if comm.rank < half_ranks else None
                )
                _route_write(
                    comm,
                    pdm,
                    fmt,
                    piece,
                    lambda q: (q * portion, portion) if q < half_ranks else None,
                    writer,
                    clock,
                )
            else:
                contribution = mine if comm.rank < half_ranks else retained
                with clock.stage(INCORE):
                    wsorted = distributed_columnsort(comm, contribution, fmt)  # step 7
                base = c * r - r // 2

                def range_of(q: int, base=base) -> tuple[int, int]:
                    return (base + q * portion, portion)

                _route_write(
                    comm,
                    pdm,
                    fmt,
                    (base + comm.rank * portion, wsorted),
                    range_of,
                    writer,
                    clock,
                )
            retained = mine if comm.rank >= half_ranks else None
            if trace is not None:
                trace.rounds.append(m_final_round_work(fmt.record_size, portion, p))

        # Window s: bottom(col s−1) + +∞ padding — already sorted; final
        # ranks [(s−1)·M + q·M/P, …) for the bottom-half ranks.
        piece = (
            ((s - 1) * r + comm.rank * portion, retained)
            if comm.rank >= half_ranks
            else None
        )
        _route_write(
            comm,
            pdm,
            fmt,
            piece,
            lambda q: ((s - 1) * r + q * portion, portion) if q >= half_ranks else None,
            writer,
            clock,
        )
        writer.drain()
    finally:
        reader.close()
        writer.close()
    _finish_pass(trace, clock)


#: The 3-pass program, declaratively (see
#: :class:`~repro.oocs.base.PassSpec`).
PASSES = [
    PassSpec("pass1:steps1-2", "eleven", _pass1_m, "input", "t1"),
    PassSpec("pass2:steps3-4", "eleven", _pass2_m, "t1", "t2"),
    PassSpec("pass3:steps5-8", "twenty", _pass3_m, "t2", "output"),
]


def m_columnsort_ooc(
    job: OocJob,
    input_store: StripedColumnStore,
    collect_trace: bool = True,
    keep_intermediates: bool = False,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    keep_checkpoints: bool = False,
) -> OocResult:
    """Run 3-pass M-columnsort on ``input_store`` (a striped column
    store built by :func:`~repro.oocs.base.make_workspace` with
    ``striped=True``). With ``checkpoint_dir``, a manifest is saved
    after every pass and ``resume=True`` restarts after the last
    completed one."""
    r, s = derive_shape(job)
    if (input_store.r, input_store.s) != (r, s):
        raise ConfigError(
            f"input store is {input_store.r}×{input_store.s}, job wants {r}×{s}"
        )
    cluster, fmt = job.cluster, job.fmt
    disks = input_store.disks
    stores = {
        "input": input_store,
        "t1": StripedColumnStore(
            cluster, fmt, r, s, disks, name="m-t1", parity=job.parity
        ),
        "t2": StripedColumnStore(
            cluster, fmt, r, s, disks, name="m-t2", parity=job.parity
        ),
        "output": PdmStore(
            cluster, fmt, job.n, disks, job.pdm_block, name="output",
            parity=job.parity,
        ),
    }
    return run_pass_program(
        "m-columnsort",
        job,
        stores,
        PASSES,
        collect_trace=collect_trace,
        keep_intermediates=keep_intermediates,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        keep_checkpoints=keep_checkpoints,
    )
