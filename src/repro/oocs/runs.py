"""Sorted-run structure between passes, and merge-based column sorting.

Paper footnote 5: "In a given pass p, the data might start with some
sorted runs, depending on the write pattern of pass p−1. The
implementation takes advantage of the sorted runs to sort by merging."

Our pass bodies produce exactly the run structures the paper exploits:

* after a **deal pass** (steps 1+2 or 3+4), every column is ``s``
  sorted runs of ``r/s`` records — each contribution is an ascending
  slice of one sorted source column;
* after the **subblock pass**, every column is ``√s`` sorted runs of
  ``r/√s`` records — the §3 structural theorem about the subblock
  permutation.

:func:`predict_runs` states this; the tests verify it against live
intermediate files. :func:`merge_sorted_runs` is the merging sort the
paper's C implementation used. An honest engineering note, quantified
in ``benchmarks/bench_merge.py``: in NumPy, ``np.sort`` runs in
optimized C while the k-way merge tree pays Python-level iteration per
level, so merging only wins for few, long runs — the opposite economics
of the paper's hand-written C merger. :func:`sort_column` picks
whichever is predicted cheaper.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.matrix.bits import sqrt_pow4


def predict_runs(pass_name: str, r: int, s: int) -> tuple[int, int]:
    """``(run_count, run_length)`` of a column at the *start* of the
    named pass, given our write patterns.

    ``pass_name`` is one of ``"after-deal"`` (the input came from a
    step-2 or step-4 deal pass) or ``"after-subblock"``.
    """
    if r % s:
        raise ConfigError(f"s={s} must divide r={r}")
    if pass_name == "after-deal":
        return s, r // s
    if pass_name == "after-subblock":
        t = sqrt_pow4(s)
        return t, r // t
    raise ConfigError(
        f"unknown pass {pass_name!r}; expected 'after-deal' or 'after-subblock'"
    )


def merge_two(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Stable merge of two key-sorted record arrays (``a``'s elements
    precede equal-keyed ``b`` elements), vectorized: one searchsorted
    plus two scatters."""
    if not len(a):
        return b.copy()
    if not len(b):
        return a.copy()
    out = np.empty(len(a) + len(b), dtype=a.dtype)
    positions_b = np.searchsorted(a["key"], b["key"], side="right") + np.arange(
        len(b)
    )
    mask_a = np.ones(len(out), dtype=bool)
    mask_a[positions_b] = False
    out[positions_b] = b
    out[mask_a] = a
    return out


def merge_sorted_runs(records: np.ndarray, run_length: int) -> np.ndarray:
    """Sort records known to consist of key-sorted runs of
    ``run_length`` each, by a stable pairwise merge tree (⌈lg k⌉
    levels for ``k`` runs)."""
    n = len(records)
    if run_length < 1 or n % run_length:
        raise ConfigError(
            f"run_length={run_length} must evenly divide {n} records"
        )
    runs = [records[i : i + run_length] for i in range(0, n, run_length)]
    while len(runs) > 1:
        merged = [
            merge_two(runs[i], runs[i + 1]) if i + 1 < len(runs) else runs[i]
            for i in range(0, len(runs), 2)
        ]
        runs = merged
    return runs[0] if runs else records.copy()


def sort_column(records: np.ndarray, run_length: int | None = None) -> np.ndarray:
    """Sort a column, exploiting known run structure when it is
    predicted to pay off.

    The crossover in this NumPy setting: merging beats ``np.sort`` only
    when there are very few runs (k ≤ 4) of substantial length; below
    that we fall through to the stable full sort.
    """
    if run_length is not None and run_length >= 1 and len(records):
        k = -(-len(records) // run_length)
        if k <= 4 and len(records) % run_length == 0:
            return merge_sorted_runs(records, run_length)
    return records[np.argsort(records["key"], kind="stable")]


def verify_run_structure(records: np.ndarray, run_length: int) -> bool:
    """Whether records really are key-sorted runs of ``run_length``
    (the oracle the tests use against live intermediate columns)."""
    keys = records["key"] if records.dtype.names else records
    n = len(keys)
    if run_length < 1 or n % run_length:
        return False
    blocks = keys.reshape(n // run_length, run_length)
    return bool(np.all(blocks[:, :-1] <= blocks[:, 1:]))
