"""Out-of-core sorting programs.

The three programs of the paper, each an SPMD rank program over the
simulated cluster and disks:

* :func:`~repro.oocs.threaded.threaded_columnsort_ooc` — the 3-pass
  baseline ("threaded columnsort", paper §2): pass 1 = steps 1+2,
  pass 2 = steps 3+4, pass 3 = steps 5-8 combined;
* :func:`~repro.oocs.subblock.subblock_columnsort_ooc` — 4 passes,
  inserting the subblock pass (steps 3+3.1) after pass 1 (paper §3);
* :func:`~repro.oocs.mcolumnsort.m_columnsort_ooc` — 3 passes with the
  height interpretation ``r = M``: every column spans the cluster and
  each sort stage is a distributed in-core sort (paper §4);
* :func:`~repro.oocs.baseline_io.baseline_io_passes` — the I/O-only
  baseline of §5;
* :func:`~repro.oocs.hybrid.hybrid_columnsort_ooc` — the §6 future-work
  combination: subblock's relaxed height restriction with M-columnsort's
  height interpretation (4 passes, bound ``N ≤ M^(5/3)/4^(2/3)``);
* :func:`~repro.oocs.gcolumnsort.sort_with_group_size` — the §6
  adjustable height interpretation ``r = g·M/P``, interpolating between
  threaded (g=1) and M-columnsort (g=P) with bound
  ``N ≤ (g·M/P)^(3/2)/√2``.

All programs produce output in PDM striped ordering and are verified by
:mod:`~repro.oocs.verify`.
"""

from repro.oocs.base import OocJob, OocResult, make_workspace
from repro.oocs.threaded import threaded_columnsort_ooc
from repro.oocs.subblock import subblock_columnsort_ooc, subblock_round_routing
from repro.oocs.mcolumnsort import m_columnsort_ooc
from repro.oocs.hybrid import hybrid_columnsort_ooc
from repro.oocs.baseline_io import baseline_io_passes
from repro.oocs.gcolumnsort import (
    g_columnsort_ooc,
    smallest_group_size,
    sort_with_group_size,
)
from repro.oocs.verify import verify_output
from repro.oocs.api import sort_out_of_core, ALGORITHMS

__all__ = [
    "OocJob",
    "OocResult",
    "make_workspace",
    "threaded_columnsort_ooc",
    "subblock_columnsort_ooc",
    "subblock_round_routing",
    "m_columnsort_ooc",
    "hybrid_columnsort_ooc",
    "g_columnsort_ooc",
    "sort_with_group_size",
    "smallest_group_size",
    "baseline_io_passes",
    "verify_output",
    "sort_out_of_core",
    "ALGORITHMS",
]
