"""Hybrid columnsort: subblock + M combined (paper §6, future work).

The paper's first future-work item: "combine subblock columnsort and
M-columnsort into one four-pass algorithm which has a problem-size
bound of N ≤ M^(5/3)/4^(2/3), i.e., restriction (2) but with M/P
replaced by M."

Construction: M-columnsort's height interpretation (``r = M``, columns
striped across the cluster, distributed in-core sort stages) carrying
subblock columnsort's step sequence (the subblock pass inserted as an
extra pass, relaxing the outer height restriction to ``M ≥ 4·s^(3/2)``
with ``s`` a power of 4).

The subblock permutation composes cleanly with the striped layout:
after the step-3 distributed sort, the record at sorted rank ``i`` of
column ``c`` belongs to target column ``(c mod √s) + (i mod √s)·√s``;
each rank's balanced slice contains ``M/(P·√s)`` records for each of
the ``√s`` target columns, which it appends to its own portions — so
the subblock pass, like the deal passes, needs no out-of-core
communicate stage at all in this regime.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from pathlib import Path

from repro.cluster.comm import Comm
from repro.disks.matrixfile import PdmStore, StripedColumnStore
from repro.errors import ConfigError, DimensionError
from repro.matrix.bits import is_power_of_four, sqrt_pow4
from repro.oocs.base import (
    OocJob,
    OocResult,
    PassSpec,
    _finish_pass,
    _recycle,
    run_pass_program,
)
from repro.oocs.incore.columnsort_dist import distributed_columnsort
from repro.oocs.mcolumnsort import _pass1_m, _pass2_m, _pass3_m, _portion_prefetch
from repro.pipeline import (
    COMPUTE,
    INCORE,
    SYNCHRONOUS,
    PipelinePlan,
    StageClock,
    WriteBehind,
)
from repro.records.format import RecordFormat
from repro.simulate.trace import PassTrace
from repro.simulate.traces import m_deal_round_work


def derive_shape(job: OocJob) -> tuple[int, int]:
    """Resolve and validate the matrix of a hybrid job: ``r = M``,
    ``s = N/M`` a power of 4, and the relaxed height restriction
    ``M ≥ 4·s^(3/2)`` — giving bound ``N ≤ M^(5/3)/4^(2/3)``."""
    p = job.cluster.p
    if p < 2:
        raise ConfigError("hybrid columnsort needs P ≥ 2")
    portion = job.buffer_records
    r = p * portion
    if job.n % r:
        raise ConfigError(f"column height r=M={r} must divide N={job.n}")
    s = job.n // r
    if not is_power_of_four(s):
        raise DimensionError(
            f"hybrid columnsort requires s to be a power of 4, got s={s}"
        )
    if r * r < 16 * s**3:
        raise DimensionError(
            f"relaxed height restriction violated: M={r} < 4·s^(3/2)="
            f"{4 * s * sqrt_pow4(s)} — N={job.n} exceeds the hybrid bound"
        )
    if portion < 2 * p * p:
        raise DimensionError(
            f"in-core height restriction violated: M/P={portion} < 2P²={2 * p * p}"
        )
    if portion % s:
        raise ConfigError(f"s={s} must divide M/P={portion}")
    return r, s


def _pass_subblock_m(
    comm: Comm,
    src: StripedColumnStore,
    dst: StripedColumnStore,
    fmt: RecordFormat,
    trace: PassTrace | None,
    plan: PipelinePlan | None = None,
) -> None:
    """The subblock pass under ``r = M``: distributed sort (step 3) then
    the subblock permutation (step 3.1) applied by sorted rank."""
    p, s = comm.size, src.s
    t = sqrt_pow4(s)
    portion = src.portion
    share = portion // t
    plan = plan if plan is not None else SYNCHRONOUS
    clock = StageClock()
    reader = _portion_prefetch(src, comm.rank, plan, clock)
    writer = WriteBehind(plan, clock)
    try:
        for c in range(s):
            local = reader.get()
            with clock.stage(INCORE):
                mine = distributed_columnsort(comm, local, fmt)  # step 3
                _recycle(local)
            with clock.stage(COMPUTE):
                c0 = c % t
                base = comm.rank * portion
                x = (base + np.arange(portion)) % t
                grouped = mine[np.argsort(x, kind="stable")]
            for k in range(t):
                target = c0 + k * t
                writer.put(
                    partial(
                        dst.append_to_portion,
                        comm.rank,
                        target,
                        grouped[k * share : (k + 1) * share],
                    )
                )
            if trace is not None:
                trace.rounds.append(
                    m_deal_round_work(fmt.record_size, portion, p, "balanced")
                )
        writer.drain()
    finally:
        reader.close()
        writer.close()
    _finish_pass(trace, clock)


#: The 4-pass program, declaratively (see
#: :class:`~repro.oocs.base.PassSpec`).
PASSES = [
    PassSpec("pass1:steps1-2", "eleven", _pass1_m, "input", "t1"),
    PassSpec("pass2:steps3+3.1(subblock)", "eleven", _pass_subblock_m, "t1", "t2"),
    PassSpec("pass3:steps3.2+4", "eleven", _pass2_m, "t2", "t3"),
    PassSpec("pass4:steps5-8", "twenty", _pass3_m, "t3", "output"),
]


def hybrid_columnsort_ooc(
    job: OocJob,
    input_store: StripedColumnStore,
    collect_trace: bool = True,
    keep_intermediates: bool = False,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    keep_checkpoints: bool = False,
) -> OocResult:
    """Run the 4-pass hybrid (subblock + M) columnsort — the largest
    problem-size bound of all the variants, ``N ≤ M^(5/3)/4^(2/3)``.
    With ``checkpoint_dir``, a manifest is saved after every pass and
    ``resume=True`` restarts after the last completed one."""
    r, s = derive_shape(job)
    if (input_store.r, input_store.s) != (r, s):
        raise ConfigError(
            f"input store is {input_store.r}×{input_store.s}, job wants {r}×{s}"
        )
    cluster, fmt = job.cluster, job.fmt
    disks = input_store.disks
    stores = {
        "input": input_store,
        "t1": StripedColumnStore(
            cluster, fmt, r, s, disks, name="hy-t1", parity=job.parity
        ),
        "t2": StripedColumnStore(
            cluster, fmt, r, s, disks, name="hy-t2", parity=job.parity
        ),
        "t3": StripedColumnStore(
            cluster, fmt, r, s, disks, name="hy-t3", parity=job.parity
        ),
        "output": PdmStore(
            cluster, fmt, job.n, disks, job.pdm_block, name="output",
            parity=job.parity,
        ),
    }
    return run_pass_program(
        "hybrid",
        job,
        stores,
        PASSES,
        collect_trace=collect_trace,
        keep_intermediates=keep_intermediates,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        keep_checkpoints=keep_checkpoints,
    )
