"""Distributed in-core sorts — M-columnsort's sort stage.

When the height interpretation becomes ``r = M``, each out-of-core
column holds as many records as the whole cluster's memory, and the
sort stage must be a distributed-memory multiprocessor sort. The paper
implemented three and measured them against each other (§4):

* :mod:`~repro.oocs.incore.columnsort_dist` — in-core columnsort on an
  ``(M/P) × P`` matrix (the winner; chosen also because its
  communication pattern is oblivious to key values);
* :mod:`~repro.oocs.incore.bitonic` — distributed bitonic sort
  (consistently slower at sort-stage-representative sizes);
* :mod:`~repro.oocs.incore.radix` — distributed LSD radix sort
  (competitive, but key-format dependent);
* :mod:`~repro.oocs.incore.sample` — a distribution (sample-based)
  sort, the §6 future-work alternative.

All share one contract: every rank contributes an equal-length local
array; afterwards each rank holds an arbitrary caller-chosen slice of
the globally sorted sequence (``target_ranges``). In-core columnsort
delivers those slices *in its own final communication step*, which is
what lets M-columnsort drop the out-of-core communicate stage entirely
(paper §4); the other sorts deliver balanced contiguous slices and
re-range afterwards.
"""

from repro.oocs.incore.common import (
    balanced_ranges,
    redistribute,
    validate_equal_lengths,
)
from repro.oocs.incore.columnsort_dist import distributed_columnsort
from repro.oocs.incore.bitonic import distributed_bitonic_sort
from repro.oocs.incore.radix import distributed_radix_sort
from repro.oocs.incore.sample import distributed_sample_sort

__all__ = [
    "balanced_ranges",
    "redistribute",
    "validate_equal_lengths",
    "distributed_columnsort",
    "distributed_bitonic_sort",
    "distributed_radix_sort",
    "distributed_sample_sort",
]
