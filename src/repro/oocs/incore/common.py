"""Shared plumbing of the distributed in-core sorts.

The contract all of them implement::

    result = distributed_xxx(comm, local, fmt, target_ranges)

Every rank contributes ``local`` (equal lengths across ranks); the
union is sorted; rank ``q`` receives the globally sorted records at the
ranks listed in ``target_ranges[q]`` (disjoint ``[start, stop)`` slices
covering ``[0, N')`` between them), concatenated in ascending order.

``target_ranges`` is the hook that lets M-columnsort eliminate its
out-of-core communicate stage: the out-of-core permutation (step 2 or 4
of the outer columnsort) determines which sorted ranks each processor
must write into its own portion of the target columns, and the in-core
sort's final communication step delivers exactly those (paper §4).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.comm import Comm
from repro.errors import CommError, ConfigError
from repro.records.format import RecordFormat

#: Tag for the neighbor half-exchange inside distributed columnsort.
IC_TAG = 91

Ranges = list[list[tuple[int, int]]]


def balanced_ranges(n_total: int, p: int) -> Ranges:
    """The default delivery: rank ``q`` gets the contiguous slice
    ``[q·N'/P, (q+1)·N'/P)``."""
    if n_total % p:
        raise ConfigError(f"cannot balance {n_total} records over {p} ranks")
    share = n_total // p
    return [[(q * share, (q + 1) * share)] for q in range(p)]


def validate_ranges(target_ranges: Ranges, n_total: int, p: int) -> None:
    """Check that the requested slices are disjoint, sorted, and cover
    ``[0, n_total)`` exactly."""
    if len(target_ranges) != p:
        raise ConfigError(
            f"target_ranges must have one entry per rank ({p}), got "
            f"{len(target_ranges)}"
        )
    pieces = sorted(
        (start, stop) for slices in target_ranges for (start, stop) in slices
    )
    at = 0
    for start, stop in pieces:
        if start != at or stop < start:
            raise ConfigError(
                f"target ranges must tile [0, {n_total}) exactly; "
                f"gap or overlap at {at} (next piece [{start}, {stop}))"
            )
        at = stop
    if at != n_total:
        raise ConfigError(f"target ranges cover [0, {at}), expected [0, {n_total})")


def validate_equal_lengths(comm: Comm, n_local: int) -> int:
    """Assert all ranks contribute the same count; returns the total."""
    lengths = comm.allgather(n_local)
    if len(set(lengths)) != 1:
        raise ConfigError(
            f"distributed sorts need equal local lengths, got {lengths}"
        )
    return n_local * comm.size


def redistribute(
    comm: Comm,
    held: list[tuple[int, np.ndarray]],
    target_ranges: Ranges,
    fmt: RecordFormat,
) -> np.ndarray:
    """Route globally-ranked sorted pieces to their requesting ranks.

    ``held`` is this rank's list of ``(global_start, records)`` pieces
    (each internally sorted; the global ranks they claim must be
    correct). Returns the records of this rank's ``target_ranges``
    slices, concatenated in ascending global order.
    """
    p = comm.size
    outgoing: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(p)]
    for gstart, arr in held:
        gstop = gstart + len(arr)
        for q in range(p):
            for (start, stop) in target_ranges[q]:
                lo, hi = max(gstart, start), min(gstop, stop)
                if lo < hi:
                    outgoing[q].append((lo, arr[lo - gstart : hi - gstart]))
    received = comm.alltoall(outgoing)
    pieces = [piece for batch in received for piece in batch]
    pieces.sort(key=lambda piece: piece[0])
    want = sum(stop - start for (start, stop) in target_ranges[comm.rank])
    got = sum(len(arr) for _, arr in pieces)
    if got != want:
        raise CommError(
            f"rank {comm.rank} expected {want} records from redistribution, "
            f"got {got} — held ranges and target ranges disagree"
        )
    if not pieces:
        return fmt.empty(0)
    return np.concatenate([arr for _, arr in pieces])


def sort_records(records: np.ndarray) -> np.ndarray:
    """Stable sort by key (local building block of every sort here)."""
    return records[np.argsort(records["key"], kind="stable")]
