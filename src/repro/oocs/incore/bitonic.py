"""Distributed bitonic sort (the §4 comparison baseline).

The classic hypercube compare-split formulation: each rank keeps a
sorted block of ``n`` records; ``lg P`` merge phases of compare-split
exchanges leave the blocks globally sorted across ranks. Total
communication is ``n·lg P·(lg P + 1)/2`` records per rank — strictly
more than distributed columnsort's four exchanges once ``P ≥ 16``,
which the paper found "consistently slower" at sort-stage sizes.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.comm import Comm
from repro.errors import ConfigError
from repro.matrix.bits import ilog2, is_power_of_two
from repro.oocs.incore.common import (
    Ranges,
    balanced_ranges,
    redistribute,
    sort_records,
    validate_equal_lengths,
    validate_ranges,
)
from repro.records.format import RecordFormat

#: Tag for compare-split exchanges.
BITONIC_TAG = 92


def _compare_split(
    comm: Comm, local: np.ndarray, partner: int, keep_low: bool
) -> np.ndarray:
    """Exchange blocks with ``partner``; keep the low (or high) half of
    the merged pair. Both sides keep exactly ``len(local)`` records."""
    other = comm.sendrecv(local, partner, tag=BITONIC_TAG)
    both = sort_records(np.concatenate([local, other]))
    n = len(local)
    return both[:n].copy() if keep_low else both[n:].copy()


def distributed_bitonic_sort(
    comm: Comm,
    local: np.ndarray,
    fmt: RecordFormat,
    target_ranges: Ranges | None = None,
) -> np.ndarray:
    """Sort the union of all ranks' ``local`` arrays by distributed
    bitonic sort; return this rank's ``target_ranges`` slices."""
    p = comm.size
    if not is_power_of_two(p):
        raise ConfigError(f"bitonic sort needs a power-of-2 rank count, got {p}")
    n_total = validate_equal_lengths(comm, len(local))
    if target_ranges is None:
        target_ranges = balanced_ranges(n_total, p)
    validate_ranges(target_ranges, n_total, p)

    block = sort_records(local)
    d = ilog2(p)
    for i in range(1, d + 1):
        # After this phase, blocks form bitonic sequences of length 2^(i+1)
        # (fully sorted when i == d: bit i of every rank is then 0).
        ascending = (comm.rank & (1 << i)) == 0
        for j in range(i - 1, -1, -1):
            partner = comm.rank ^ (1 << j)
            keep_low = (comm.rank < partner) == ascending
            block = _compare_split(comm, block, partner, keep_low)

    held = [(comm.rank * len(block), block)]
    return redistribute(comm, held, target_ranges, fmt)


def bitonic_exchange_count(p: int) -> int:
    """Compare-split exchanges per rank: ``lg P · (lg P + 1) / 2`` —
    used by the T-incore benchmark's communication accounting."""
    d = ilog2(p)
    return d * (d + 1) // 2
