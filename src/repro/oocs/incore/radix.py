"""Distributed LSD radix sort (the other §4 comparison baseline).

Sorts by key digits, least significant first; each digit pass counts
local digit occurrences, computes every record's global destination by
prefix sums across ranks, and redistributes with one all-to-all. The
per-pass placement is stable, so after all passes the keys are globally
sorted.

The paper judged radix sort "competitive ... over a wide range of
problem sizes" but rejected it for its key-format dependence — visible
here in :func:`sortable_uint_keys`, which must encode each key type
into order-preserving unsigned integers, whereas columnsort never looks
at keys at all.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.comm import Comm
from repro.errors import ConfigError
from repro.oocs.incore.common import (
    Ranges,
    balanced_ranges,
    redistribute,
    validate_equal_lengths,
    validate_ranges,
)
from repro.records.format import RecordFormat


def sortable_uint_keys(keys: np.ndarray) -> np.ndarray:
    """Map keys to unsigned 64-bit integers preserving order.

    * unsigned ints: widened as-is;
    * signed ints: sign bit flipped;
    * floats (IEEE 754): sign bit flipped for non-negatives, all bits
      inverted for negatives (the classical radix-sortable encoding).
    """
    kind = keys.dtype.kind
    if kind == "u":
        return keys.astype(np.uint64)
    if kind == "i":
        return keys.astype(np.int64).view(np.uint64) ^ np.uint64(1 << 63)
    if kind == "f":
        if keys.dtype.itemsize != 8:
            keys = keys.astype(np.float64)
        bits = keys.view(np.uint64)
        mask = np.where(
            bits >> np.uint64(63) == 1,
            np.uint64(0xFFFFFFFFFFFFFFFF),
            np.uint64(1 << 63),
        )
        return bits ^ mask
    raise ConfigError(f"radix sort cannot encode key dtype {keys.dtype}")


def distributed_radix_sort(
    comm: Comm,
    local: np.ndarray,
    fmt: RecordFormat,
    target_ranges: Ranges | None = None,
    digit_bits: int = 8,
) -> np.ndarray:
    """Sort the union of all ranks' ``local`` arrays by distributed LSD
    radix sort; return this rank's ``target_ranges`` slices."""
    p = comm.size
    n_local = len(local)
    n_total = validate_equal_lengths(comm, n_local)
    if target_ranges is None:
        target_ranges = balanced_ranges(n_total, p)
    validate_ranges(target_ranges, n_total, p)
    if digit_bits < 1 or digit_bits > 16:
        raise ConfigError(f"digit_bits must be in [1, 16], got {digit_bits}")

    radix = 1 << digit_bits
    mask = np.uint64(radix - 1)
    block = local.copy()
    encoded = sortable_uint_keys(block["key"])
    passes = -(-64 // digit_bits)

    for d in range(passes):
        shift = np.uint64(d * digit_bits)
        digits = ((encoded >> shift) & mask).astype(np.int64)
        # Early exit: if no rank has a nonzero digit here, placement is
        # the identity. (Common once d passes the keys' magnitude.)
        any_nonzero = comm.allreduce(int(digits.any()))
        if not any_nonzero:
            continue
        # Stable local order within each digit.
        order = np.argsort(digits, kind="stable")
        block, encoded, digits = block[order], encoded[order], digits[order]
        counts = np.bincount(digits, minlength=radix)
        # Global destination of this rank's first record of each digit:
        # all smaller digits everywhere + same digit on lower ranks.
        all_counts = np.stack(comm.allgather(counts))  # (P, radix)
        digit_base = np.concatenate([[0], np.cumsum(all_counts.sum(axis=0))[:-1]])
        lower_rank_same = all_counts[: comm.rank].sum(axis=0)
        my_base = digit_base + lower_rank_same
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        dest = (
            my_base[digits]
            + np.arange(n_local)
            - starts[digits]
        )
        # dest is already strictly increasing: within a digit run it is
        # consecutive, and my_base[d] + counts[d] ≤ digit_base[d+1] ≤
        # my_base[d+1] across digit boundaries — so no second argsort
        # (and no triple gather) is needed before partitioning.
        # Destination rank q holds global slots [q·n_local, (q+1)·n_local).
        dest_rank = dest // n_local
        bounds = np.searchsorted(dest_rank, np.arange(p + 1))
        parts = [block[bounds[q] : bounds[q + 1]] for q in range(p)]
        eparts = [encoded[bounds[q] : bounds[q + 1]] for q in range(p)]
        dparts = [dest[bounds[q] : bounds[q + 1]] for q in range(p)]
        # Records, their encodings, and their destination slots travel
        # together; arrivals from different sources interleave in global
        # order, so the receiver re-places them by destination slot.
        block = np.concatenate(comm.alltoallv(parts))
        encoded = np.concatenate(comm.alltoallv(eparts))
        dest_got = np.concatenate(comm.alltoallv(dparts))
        place = np.argsort(dest_got, kind="stable")
        block, encoded = block[place], encoded[place]

    held = [(comm.rank * n_local, block)]
    return redistribute(comm, held, target_ranges, fmt)
