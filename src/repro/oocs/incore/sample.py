"""Distributed sample (distribution) sort — the §6 future-work
alternative for M-columnsort's sort stage.

Each rank draws a regular sample of its sorted block; the gathered
samples yield ``P−1`` splitters; records are partitioned by splitter,
exchanged with one all-to-all, and merged locally. Unlike columnsort,
the resulting distribution is data-dependent (skewed inputs produce
imbalanced ranks — metered by the T-incore benchmark), which is exactly
the trade-off the paper's discussion anticipates.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.comm import Comm
from repro.errors import ConfigError
from repro.oocs.incore.common import (
    Ranges,
    balanced_ranges,
    redistribute,
    sort_records,
    validate_equal_lengths,
    validate_ranges,
)
from repro.records.format import RecordFormat


def distributed_sample_sort(
    comm: Comm,
    local: np.ndarray,
    fmt: RecordFormat,
    target_ranges: Ranges | None = None,
    oversample: int = 4,
) -> np.ndarray:
    """Sort the union of all ranks' ``local`` arrays by sample sort;
    return this rank's ``target_ranges`` slices.

    ``oversample`` controls splitter quality: each rank contributes
    ``oversample·P`` regular samples.
    """
    p = comm.size
    n_local = len(local)
    n_total = validate_equal_lengths(comm, n_local)
    if target_ranges is None:
        target_ranges = balanced_ranges(n_total, p)
    validate_ranges(target_ranges, n_total, p)
    if oversample < 1:
        raise ConfigError(f"oversample must be ≥ 1, got {oversample}")

    block = sort_records(local)
    if p == 1:
        return redistribute(comm, [(0, block)], target_ranges, fmt)

    # Regular sampling of the sorted block.
    count = min(n_local, oversample * p)
    idx = (np.arange(count) * n_local) // count
    sample = block["key"][idx]
    gathered = comm.allgather(sample)
    pool = np.sort(np.concatenate(gathered), kind="stable")
    # P−1 evenly spaced splitters.
    splitters = pool[[(k * len(pool)) // p for k in range(1, p)]]

    # Partition: records with key < splitters[0] → rank 0, etc. Ties go
    # right-of-splitter consistently (searchsorted side="left" on the
    # sorted block gives contiguous cuts).
    cuts = np.searchsorted(block["key"], splitters, side="left")
    bounds = np.concatenate([[0], cuts, [n_local]])
    parts = [block[bounds[q] : bounds[q + 1]] for q in range(p)]
    received = comm.alltoallv(parts)
    merged = sort_records(np.concatenate(received))

    # Ranks now hold variable-length sorted runs; global offsets follow
    # from an exclusive prefix sum of the run lengths.
    my_start = comm.exscan(len(merged))
    held = [(my_start, merged)]
    return redistribute(comm, held, target_ranges, fmt)


def imbalance_ratio(comm: Comm, n_held: int) -> float:
    """Max/mean ratio of per-rank held counts after partitioning — the
    skew metric the T-incore benchmark reports for sample sort."""
    counts = comm.allgather(n_held)
    mean = sum(counts) / len(counts)
    return max(counts) / mean if mean else 0.0
