"""Distributed in-core columnsort on an ``(M/P) × P`` matrix.

This is the sort stage of M-columnsort (paper §4): the records of one
out-of-core column (``M`` of them) form an in-core matrix of ``P``
columns, one per processor, each of height ``r' = M/P``. The eight
columnsort steps map onto the cluster as:

* steps 1, 3, 5, 7 — local sorts (one thread in the paper);
* steps 2, 4 — all-to-all exchanges realizing the deal permutations;
* steps 6-8 — a neighbor half-exchange and merge: rank ``q ≥ 1`` merges
  its top half with rank ``q−1``'s bottom half into window ``q``, which
  *is* the globally sorted slice ``[q·r' − r'/2, q·r' + r'/2)``; rank 0's
  top half and rank ``P−1``'s bottom half are the sorted head and tail
  as they stand (their windows only add ±∞ padding);
* the final communication step delivers each rank its requested
  ``target_ranges`` — the step M-columnsort folds its out-of-core
  routing into.

Height restriction: ``r' ≥ 2·P²``, i.e. ``M/P ≥ 2P²``.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.comm import Comm
from repro.errors import DimensionError
from repro.oocs.incore.common import (
    IC_TAG,
    Ranges,
    balanced_ranges,
    redistribute,
    sort_records,
    validate_equal_lengths,
    validate_ranges,
)
from repro.records.format import RecordFormat


def distributed_columnsort(
    comm: Comm,
    local: np.ndarray,
    fmt: RecordFormat,
    target_ranges: Ranges | None = None,
    check: bool = True,
) -> np.ndarray:
    """Sort the union of all ranks' ``local`` arrays; return this rank's
    ``target_ranges`` slices of the sorted sequence (balanced contiguous
    slices by default).

    ``local`` holds ``r' = M/P`` records — in-core column ``rank`` of the
    ``r' × P`` matrix.
    """
    p = comm.size
    rr = len(local)
    n_total = validate_equal_lengths(comm, rr)
    if target_ranges is None:
        target_ranges = balanced_ranges(n_total, p)
    validate_ranges(target_ranges, n_total, p)

    if p == 1:
        col = sort_records(local)
        return np.concatenate(
            [col[start:stop] for (start, stop) in target_ranges[0]]
        ) if target_ranges[0] else fmt.empty(0)

    if check:
        if rr % p:
            raise DimensionError(f"P={p} must divide the local length r'={rr}")
        if rr < 2 * p * p:
            raise DimensionError(
                f"in-core height restriction violated: r'={rr} < 2P²={2 * p * p} "
                f"(distributed columnsort needs M/P ≥ 2P²)"
            )
    chunk = rr // p

    # Step 1: sort own column.
    col = sort_records(local)
    # Step 2 (transpose & reshape): row i of column q → column i mod P.
    recv = comm.alltoallv([col[q::p] for q in range(p)])
    col = np.concatenate(recv)  # sources ascending == target rows ascending
    # Step 3.
    col = sort_records(col)
    # Step 4 (reshape & transpose): chunk m → column m, interleaved rows.
    recv = comm.alltoallv(
        [col[m * chunk : (m + 1) * chunk] for m in range(p)]
    )
    col = fmt.empty(rr)
    for q, piece in enumerate(recv):
        col[q::p] = piece
    # Step 5.
    col = sort_records(col)

    # Steps 6-8: neighbor merge into windows.
    half = rr // 2
    if comm.rank < p - 1:
        comm.send(col[half:], comm.rank + 1, tag=IC_TAG)
    held: list[tuple[int, np.ndarray]] = []
    if comm.rank == 0:
        held.append((0, col[:half]))  # window 0 minus its −∞ padding
    else:
        upper = comm.recv(comm.rank - 1, tag=IC_TAG)
        merged = sort_records(np.concatenate([upper, col[:half]]))
        held.append((comm.rank * rr - half, merged))
    if comm.rank == p - 1:
        held.append((p * rr - half, col[half:]))  # window P minus +∞ padding

    # Final communication step: deliver the requested slices.
    return redistribute(comm, held, target_ranges, fmt)
