"""Command-line interface.

``repro-columnsort <command>`` (or ``python -m repro.cli``):

* ``figure2`` — regenerate the paper's Figure 2 from the calibrated model;
* ``report`` — Figure 2 plus every table and the claim checklist;
* ``bounds`` / ``crossover`` / ``msgcount`` / ``coverage`` — individual tables;
* ``sort`` — run a real (laptop-scale) out-of-core sort on the simulated
  cluster and verify the output (``--json`` for the machine-readable
  result schema);
* ``serve`` / ``client`` — the crash-safe sort-as-a-service daemon and
  its line-protocol client (see :mod:`repro.service`).
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster.config import ClusterConfig
from repro.cluster.transport import available_backends
from repro.records.format import RecordFormat
from repro.records.generators import generate, workload_names


def _cmd_figure2(args: argparse.Namespace) -> int:
    from repro.experiments.figure2 import figure2_series, render_figure2

    print(render_figure2(figure2_series(record_size=args.record_size)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.runner import full_report

    print(full_report())
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import tables

    fn = {
        "bounds": tables.bounds_table,
        "crossover": tables.crossover_table,
        "msgcount": tables.msgcount_table,
        "coverage": tables.coverage_table,
    }[args.command]
    print(tables.render_table(fn()))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.simulate.hardware import BEOWULF_2003, MODERN_NVME
    from repro.simulate.predict import predict_seconds_per_gb

    hw = {"beowulf-2003": BEOWULF_2003, "modern-nvme": MODERN_NVME}[args.hardware]
    n = args.gb * 2**30 // args.record_size
    try:
        value = predict_seconds_per_gb(
            args.algorithm, n, args.processors, args.buffer_bytes,
            args.record_size, hw, passes=args.passes,
        )
    except Exception as exc:
        print(f"configuration not runnable: {exc}")
        return 1
    print(
        f"{args.algorithm} on {args.gb} GB, P={args.processors}, buffer "
        f"{args.buffer_bytes:,} B ({hw.name}): "
        f"{value:.1f} s per (GB/processor) — "
        f"{value * args.gb / args.processors:.1f} s total"
    )
    return 0


def _print_copy_stats(result) -> None:
    copy = result.copy or {}
    moved = copy.get("bytes_copied", 0) + copy.get("bytes_zero_copy", 0)
    frac = 100 * copy.get("bytes_copied", 0) / moved if moved else 0.0
    print(
        f"  copies: {copy.get('bytes_copied', 0):,} B copied / "
        f"{copy.get('bytes_zero_copy', 0):,} B zero-copy "
        f"({frac:.1f}% copied)"
    )
    print(
        f"  pool: {copy.get('pool_hits', 0)} hits, "
        f"{copy.get('pool_misses', 0)} misses, "
        f"peak {copy.get('peak_leases', 0)} leases outstanding"
    )
    arena_ops = copy.get("arena_hits", 0) + copy.get("arena_misses", 0)
    if arena_ops:
        print(
            f"  arena: {copy.get('arena_hits', 0)} slab reuses / "
            f"{copy.get('arena_misses', 0)} creates "
            f"({100 * copy.get('arena_hits', 0) / arena_ops:.1f}% hit), "
            f"{copy.get('attach_count', 0)} attaches, "
            f"{copy.get('bytes_landed_zero_extra_copy', 0):,} B landed "
            f"zero-extra-copy"
        )


def _print_json_summary(result) -> None:
    import json

    from repro.oocs.report import result_summary

    print(json.dumps(result_summary(result, verified=True),
                     indent=2, sort_keys=True))


def _cmd_sort(args: argparse.Namespace) -> int:
    from repro.oocs.api import sort_out_of_core

    fmt = RecordFormat(args.key, args.record_size)
    cluster = ClusterConfig(p=args.processors, mem_per_proc=args.buffer * 2)
    records = generate(args.workload, fmt, args.records, seed=args.seed)
    if getattr(args, "group_size", None) is not None:
        from repro.oocs.gcolumnsort import sort_with_group_size

        result = sort_with_group_size(
            records, cluster, fmt, args.buffer, group_size=args.group_size,
            workdir=args.workdir,
        )
        if args.json:
            _print_json_summary(result)
            return 0
        print(
            f"{result.algorithm}: sorted {len(records)} records on "
            f"P={cluster.p} in {result.passes} passes — verified"
        )
        print(
            f"  network: {result.comm_total['network_bytes']:,} B in "
            f"{result.comm_total['network_messages']} messages"
        )
        if args.copy_stats:
            _print_copy_stats(result)
        return 0
    retry_policy = None
    if args.retries > 1:
        from repro.resilience import RetryPolicy

        retry_policy = RetryPolicy(max_attempts=args.retries, seed=args.seed)
    governor = None
    if args.max_queue is not None:
        from repro.governor import JobGovernor

        governor = JobGovernor(max_queue=args.max_queue)
    restart_policy = None
    if args.max_restarts > 0:
        from repro.resilience import RestartPolicy

        restart_policy = RestartPolicy(
            max_restarts=args.max_restarts,
            base_backoff_s=args.restart_backoff,
            seed=args.seed,
        )
    result = sort_out_of_core(
        args.algorithm, records, cluster, fmt, buffer_records=args.buffer,
        workdir=args.workdir, pipeline_depth=args.pipeline_depth,
        checkpoint_dir=args.checkpoint_dir, resume=args.resume,
        keep_checkpoints=args.keep_checkpoints,
        retry_policy=retry_policy,
        parity=args.parity, audit=args.audit,
        deadline_s=args.deadline,
        mem_budget_bytes=args.mem_budget,
        governor=governor,
        backend=args.backend,
        restart_policy=restart_policy,
    )
    if args.json:
        _print_json_summary(result)
        result.release_durability()
        return 0
    io = result.io
    print(
        f"{args.algorithm}: sorted {args.records} records on P={args.processors} "
        f"in {result.passes} passes (pipeline depth {args.pipeline_depth}) "
        f"— verified"
    )
    print(
        f"  disk I/O: {io['bytes_read']:,} B read / {io['bytes_written']:,} B "
        f"written ({io['reads']} reads, {io['writes']} writes)"
    )
    print(
        f"  network: {result.comm_total['network_bytes']:,} B in "
        f"{result.comm_total['network_messages']} messages"
    )
    retries = (
        io.get("read_retries", 0)
        + io.get("write_retries", 0)
        + result.comm_total.get("retries", 0)
    )
    if retries:
        print(
            f"  retries: {io.get('read_retries', 0)} read, "
            f"{io.get('write_retries', 0)} write, "
            f"{result.comm_total.get('retries', 0)} comm "
            f"(all transient faults recovered)"
        )
    wall = result.stage_wall()
    if wall:
        total = sum(wall.values())
        breakdown = "  ".join(
            f"{cat} {wall[cat] * 1000:.1f} ms"
            for cat in ("read_wait", "compute", "comm", "incore", "write_wait")
            if cat in wall
        )
        print(f"  stage wall (rank 0, {total * 1000:.1f} ms): {breakdown}")
    if args.copy_stats:
        _print_copy_stats(result)
    if args.durability_report:
        from repro.experiments.breakdown import durability_breakdown_table
        from repro.experiments.tables import render_table

        rows = durability_breakdown_table(result)
        if rows:
            print(render_table(rows))
        else:
            print(
                "  durability: no layer attached "
                "(run with --parity and/or --audit)"
            )
    if args.governance_report:
        from repro.experiments.breakdown import governance_breakdown_table
        from repro.experiments.tables import render_table

        rows = governance_breakdown_table(result)
        if rows:
            print(render_table(rows))
        else:
            print("  governance: no counters recorded")
    sup = result.supervisor or {}
    if sup.get("restarts"):
        print(
            f"  supervision: {sup['restarts']} restart"
            f"{'s' if sup['restarts'] != 1 else ''} "
            f"(of {sup.get('max_restarts', 0)} allowed), "
            f"{sup.get('restart_wall', 0.0):.3f}s recovering"
        )
    if args.supervision_report:
        from repro.experiments.breakdown import supervisor_breakdown_table
        from repro.experiments.tables import render_table

        rows = supervisor_breakdown_table(result)
        if rows:
            print(render_table(rows))
        else:
            print(
                "  supervision: no restart policy armed "
                "(run with --max-restarts)"
            )
    result.release_durability()
    return 0


def _parse_tenant(spec: str):
    """``name=priority[:max_running[:max_queued]]`` → (name, TenantPolicy)."""
    from repro.service import TenantPolicy

    name, sep, rest = spec.partition("=")
    if not name or not sep:
        raise argparse.ArgumentTypeError(
            f"tenant spec {spec!r} is not name=priority[:max_running[:max_queued]]"
        )
    parts = rest.split(":")
    try:
        numbers = [int(part) for part in parts if part != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"tenant spec {spec!r} has non-integer fields"
        ) from None
    defaults = TenantPolicy()
    priority = numbers[0] if len(numbers) > 0 else defaults.priority
    max_running = numbers[1] if len(numbers) > 1 else defaults.max_running
    max_queued = numbers[2] if len(numbers) > 2 else defaults.max_queued
    return name, TenantPolicy(
        max_running=max_running, max_queued=max_queued, priority=priority
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import SortService

    restart_policy = None
    if args.max_restarts > 0:
        from repro.resilience import RestartPolicy

        restart_policy = RestartPolicy(max_restarts=args.max_restarts)
    log = (
        (lambda line: print(f"[serve] {line}", file=sys.stderr, flush=True))
        if args.verbose
        else None
    )
    service = SortService(
        root=args.root,
        socket_path=args.socket,
        workers=args.workers,
        max_concurrent=args.max_concurrent,
        mem_quota_bytes=args.mem_quota,
        scratch_quota_bytes=args.scratch_quota,
        tenants=dict(args.tenant or []),
        restart_policy=restart_policy,
        drain_timeout_s=args.drain_timeout,
        compact_min_bytes=args.compact_bytes if args.compact_bytes > 0 else None,
        compact_min_events=(
            args.compact_events if args.compact_events > 0 else None
        ),
        log=log,
    )
    service.start()
    service.install_signal_handlers()
    print(f"serving on {service.socket_path} (pid {service.health()['pid']})",
          flush=True)
    # Poll-wait so SIGTERM/SIGINT handlers run promptly on the main thread.
    while not service.stopped.wait(0.2):
        pass
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceClient

    with ServiceClient(
        args.socket, request_timeout_s=args.timeout, retries=args.retries
    ) as client:
        if args.op == "submit":
            spec = json.loads(args.spec) if args.spec else {}
            response = client.submit(spec, tenant=args.tenant, key=args.key)
            if args.wait:
                response = client.wait(response["job"], timeout_s=args.timeout)
        elif args.op in ("status", "result", "cancel"):
            if not args.job:
                print("error: --job is required for this op", file=sys.stderr)
                return 2
            response = getattr(client, args.op)(args.job)
        elif args.op == "health":
            response = client.health()
        else:  # drain
            response = client.drain(args.deadline)
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-columnsort",
        description="Out-of-core columnsort with relaxed problem-size bounds "
        "(Chaudhry, Hamon & Cormen, SPAA 2003) on a simulated cluster.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure2", help="regenerate the paper's Figure 2")
    fig.add_argument("--record-size", type=int, default=64)
    fig.set_defaults(fn=_cmd_figure2)

    rep = sub.add_parser("report", help="full experiment report")
    rep.set_defaults(fn=_cmd_report)

    for name, help_text in (
        ("bounds", "problem-size bound table"),
        ("crossover", "M vs subblock crossover table"),
        ("msgcount", "subblock-pass message counts"),
        ("coverage", "eligible problem sizes per algorithm"),
    ):
        t = sub.add_parser(name, help=help_text)
        t.set_defaults(fn=_cmd_table)

    srt = sub.add_parser("sort", help="run and verify a real out-of-core sort")
    srt.add_argument(
        "--algorithm", choices=("threaded", "subblock", "m", "hybrid"),
        default="threaded",
    )
    srt.add_argument("--records", type=int, default=8192)
    srt.add_argument("--buffer", type=int, default=512,
                     help="per-processor buffer in records")
    srt.add_argument("--processors", "-p", type=int, default=4)
    srt.add_argument("--record-size", type=int, default=64)
    srt.add_argument("--key", choices=("u8", "i8", "f8", "u4", "i4"), default="u8")
    srt.add_argument("--workload", choices=workload_names(), default="uniform")
    srt.add_argument("--seed", type=int, default=0)
    srt.add_argument("--workdir", default=None)
    srt.add_argument(
        "--pipeline-depth", type=int, default=2,
        help="read-ahead/write-behind depth per pass (0 = synchronous); "
             "output is byte-identical at every depth",
    )
    srt.add_argument(
        "--backend", choices=available_backends(), default="thread",
        help="SPMD transport: 'thread' (one thread per rank, shared "
             "address space) or 'process' (one forked process per rank "
             "with shared-memory alltoallv buffers — rank compute escapes "
             "the GIL); output and accounting are identical on both",
    )
    srt.add_argument(
        "--copy-stats", action="store_true",
        help="print data-plane copy accounting (bytes copied vs zero-copy, "
             "buffer-pool hit rate, peak leases; on the process backend "
             "also the shared-memory arena's slab hit rate, attaches, and "
             "bytes landed without an extra copy)",
    )
    srt.add_argument(
        "--group-size", "-g", type=int, default=None,
        help="adjustable height interpretation: run g-columnsort with "
             "r = g·buffer (overrides --algorithm)",
    )
    srt.add_argument(
        "--checkpoint-dir", default=None,
        help="persist a pass-boundary checkpoint manifest here after every "
             "completed pass (enables --resume)",
    )
    srt.add_argument(
        "--keep-checkpoints", action="store_true",
        help="keep the --checkpoint-dir manifests after a successful run "
             "(default: a success prunes them — checkpoints exist to "
             "survive failures)",
    )
    srt.add_argument(
        "--json", action="store_true",
        help="print a machine-readable result summary (the same "
             "repro.sort-result/1 schema the service daemon returns) "
             "instead of the human report",
    )
    srt.add_argument(
        "--resume", action="store_true",
        help="restart after the last completed pass recorded in "
             "--checkpoint-dir (requires --workdir so scratch files "
             "survived the kill); output is byte-identical to an "
             "uninterrupted run",
    )
    srt.add_argument(
        "--retries", type=int, default=1,
        help="max attempts per disk/comm operation (1 = no retry); "
             "transient faults are retried with seeded exponential backoff",
    )
    srt.add_argument(
        "--parity", action="store_true",
        help="maintain an XOR parity stripe across the disk array: corrupt "
             "blocks are repaired in place, and a disk lost to permanent "
             "faults is served in degraded mode from the surviving D-1 disks",
    )
    srt.add_argument(
        "--audit", action="store_true",
        help="verify sampled columnsort invariants of every pass's output "
             "at the pass boundary, before its checkpoint is trusted",
    )
    srt.add_argument(
        "--durability-report", action="store_true",
        help="print the durability breakdown (bytes hashed, corruption "
             "caught/repaired, degraded-mode service, parity overhead)",
    )
    srt.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline for the whole sort; on expiry every rank "
             "unwinds within one poll interval into DeadlineExceeded, and "
             "the last pass-boundary checkpoint stays valid for --resume",
    )
    srt.add_argument(
        "--mem-budget", type=int, default=None, metavar="BYTES",
        help="hard byte budget for the buffer pool: leases block under "
             "backpressure and the run downshifts its pipeline depth when "
             "pressure persists",
    )
    srt.add_argument(
        "--max-queue", type=int, default=None, metavar="JOBS",
        help="run through admission control with this queue bound "
             "(mostly useful for drills: a single CLI job is always "
             "admitted immediately)",
    )
    srt.add_argument(
        "--governance-report", action="store_true",
        help="print the governance breakdown (cancel checks, budget "
             "stalls/evictions, disk-full reclaims, depth downshifts, "
             "admission wait)",
    )
    srt.add_argument(
        "--max-restarts", type=int, default=0, metavar="N",
        help="supervised recovery: automatically relaunch the run up to N "
             "times from its last pass-boundary checkpoint when a rank "
             "dies or hangs (0 = off); fatal classes — cancellation, "
             "admission, budget, unrepairable corruption — never restart",
    )
    srt.add_argument(
        "--restart-backoff", type=float, default=0.05, metavar="SECONDS",
        help="base backoff before the first supervised restart (doubles "
             "per restart, seeded jitter; only with --max-restarts)",
    )
    srt.add_argument(
        "--supervision-report", action="store_true",
        help="print the supervision breakdown (restarts taken, wall spent "
             "recovering, per-attempt failure causes and resume points)",
    )
    srt.set_defaults(fn=_cmd_sort)

    prd = sub.add_parser(
        "predict", help="predicted runtime for a configuration (no data moved)"
    )
    prd.add_argument(
        "--algorithm",
        choices=("threaded", "subblock", "m", "hybrid", "baseline-io"),
        default="threaded",
    )
    prd.add_argument("--gb", type=int, default=4, help="total data, GB")
    prd.add_argument("--processors", "-p", type=int, default=4)
    prd.add_argument("--buffer-bytes", type=int, default=2**25)
    prd.add_argument("--record-size", type=int, default=64)
    prd.add_argument("--passes", type=int, default=3,
                     help="baseline-io pass count")
    prd.add_argument(
        "--hardware", choices=("beowulf-2003", "modern-nvme"),
        default="beowulf-2003",
    )
    prd.set_defaults(fn=_cmd_predict)

    srv = sub.add_parser(
        "serve",
        help="run the sort-as-a-service daemon (crash-safe job journal, "
             "per-tenant quotas, graceful drain on SIGTERM)",
    )
    srv.add_argument("--root", required=True,
                     help="service root: journal, lock, and per-job dirs")
    srv.add_argument("--socket", default=None,
                     help="unix socket path (default: <root>/service.sock)")
    srv.add_argument("--workers", type=int, default=2,
                     help="executor threads (concurrent jobs)")
    srv.add_argument("--max-concurrent", type=int, default=None,
                     help="governor concurrency cap (default: --workers)")
    srv.add_argument("--mem-quota", type=int, default=None, metavar="BYTES",
                     help="governor memory quota over running jobs")
    srv.add_argument("--scratch-quota", type=int, default=None, metavar="BYTES",
                     help="governor scratch quota over running jobs")
    srv.add_argument(
        "--tenant", action="append", type=_parse_tenant, metavar="SPEC",
        help="per-tenant policy, name=priority[:max_running[:max_queued]] "
             "(repeatable; unnamed tenants get the defaults)",
    )
    srv.add_argument("--max-restarts", type=int, default=2, metavar="N",
                     help="supervised in-run recovery per job (0 = off)")
    srv.add_argument("--drain-timeout", type=float, default=30.0,
                     metavar="SECONDS",
                     help="SIGTERM drain deadline before in-flight jobs are "
                          "checkpoint-interrupted for the next start to resume")
    srv.add_argument("--compact-bytes", type=int, default=1 << 20,
                     metavar="BYTES",
                     help="compact the journal on boot once it exceeds this "
                          "size (0 = never by size)")
    srv.add_argument("--compact-events", type=int, default=4096, metavar="N",
                     help="compact the journal on boot once replay exceeds "
                          "this many events (0 = never by count)")
    srv.add_argument("--verbose", action="store_true",
                     help="log job lifecycle events to stderr")
    srv.set_defaults(fn=_cmd_serve)

    cli = sub.add_parser(
        "client", help="talk to a running serve daemon (JSON in, JSON out)"
    )
    cli.add_argument("op", choices=("submit", "status", "result", "cancel",
                                    "health", "drain"))
    cli.add_argument("--socket", required=True, help="daemon socket path")
    cli.add_argument("--job", default=None, help="job id (status/result/cancel)")
    cli.add_argument("--spec", default=None,
                     help="submit: job spec as a JSON object (sort-CLI "
                          "vocabulary: algorithm, records, buffer, ...)")
    cli.add_argument("--tenant", default="default", help="submit: tenant name")
    cli.add_argument("--key", default=None,
                     help="submit: idempotency key (default: generated)")
    cli.add_argument("--wait", action="store_true",
                     help="submit: block until the job finishes and print "
                          "its final record")
    cli.add_argument("--deadline", type=float, default=None,
                     help="drain: seconds to let in-flight jobs finish")
    cli.add_argument("--timeout", type=float, default=300.0,
                     help="request timeout seconds")
    cli.add_argument("--retries", type=int, default=5,
                     help="transport retries (exponential backoff reconnect)")
    cli.set_defaults(fn=_cmd_client)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.errors import AdmissionRejected, Cancellation, ServiceError

    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except Cancellation as exc:
        # A cancelled/deadlined run is an orderly outcome, not a crash:
        # the last pass-boundary checkpoint is valid for --resume.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except AdmissionRejected as exc:
        print(f"error: admission rejected ({exc.reason}): {exc}", file=sys.stderr)
        return 1
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
