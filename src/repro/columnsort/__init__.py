"""In-core columnsort algorithms.

* :mod:`~repro.columnsort.validation` — the dimension restrictions:
  Leighton's height restriction ``r ≥ 2s²`` for basic columnsort and the
  relaxed ``r ≥ 4·s^(3/2)`` (with ``s`` a power of 4) for subblock
  columnsort, plus the power-of-two requirements of the out-of-core
  setting;
* :mod:`~repro.columnsort.basic` — Leighton's 8-step columnsort;
* :mod:`~repro.columnsort.subblock` — the paper's 10-step subblock
  columnsort (steps 3.1/3.2 inserted after step 3);
* :mod:`~repro.columnsort.checks` — verification oracles: the subblock
  property, sorted-run structure, and full-matrix sortedness;
* :mod:`~repro.columnsort.zero_one` — exhaustive correctness checking
  via the 0-1 principle (the algorithms are oblivious), including the
  empirical height-restriction boundary.

These operate on in-memory matrices; the out-of-core programs in
:mod:`repro.oocs` realize the same step sequences as passes over disk.
"""

from repro.columnsort.validation import (
    basic_height_ok,
    max_s_basic,
    max_s_subblock,
    subblock_height_ok,
    validate_basic,
    validate_subblock,
)
from repro.columnsort.basic import columnsort, columnsort_steps
from repro.columnsort.subblock import subblock_columnsort, subblock_columnsort_steps
from repro.columnsort.checks import (
    count_sorted_runs,
    has_subblock_property,
    min_run_length,
)
from repro.columnsort.zero_one import empirical_min_height, exhaustive_check

__all__ = [
    "validate_basic",
    "validate_subblock",
    "basic_height_ok",
    "subblock_height_ok",
    "max_s_basic",
    "max_s_subblock",
    "columnsort",
    "columnsort_steps",
    "subblock_columnsort",
    "subblock_columnsort_steps",
    "has_subblock_property",
    "count_sorted_runs",
    "min_run_length",
    "exhaustive_check",
    "empirical_min_height",
]
