"""Leighton's 8-step columnsort.

Sorts an ``r × s`` matrix (``s | r``, ``r ≥ 2s²``) into column-major
order:

====  =========================================
step  operation
====  =========================================
1     sort each column
2     transpose and reshape
3     sort each column
4     reshape and transpose (inverse of step 2)
5     sort each column
6     shift down by ``r/2`` (±∞ padding)
7     sort each column (of the ``r × (s+1)`` matrix)
8     shift up by ``r/2`` (inverse of step 6)
====  =========================================

The matrix may hold plain sortable scalars or structured record arrays
with a ``key`` field (see :mod:`repro.matrix.layout`).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.columnsort.validation import validate_basic
from repro.matrix.layout import sort_columns
from repro.matrix.permutations import shift_down, shift_up, step2, step4


def _padding(matrix: np.ndarray, half: int) -> tuple[np.ndarray, np.ndarray]:
    """±∞ padding rows for steps 6-8, matching the matrix's dtype."""
    dtype = matrix.dtype
    low = np.zeros(half, dtype=dtype)
    high = np.zeros(half, dtype=dtype)
    if dtype.names is not None:
        info_dtype = dtype["key"]
        lo_val, hi_val = _extremes(info_dtype)
        low["key"] = lo_val
        high["key"] = hi_val
    else:
        lo_val, hi_val = _extremes(dtype)
        low[:] = lo_val
        high[:] = hi_val
    return low, high


def _extremes(dtype: np.dtype) -> tuple[object, object]:
    if dtype.kind in "iu":
        info = np.iinfo(dtype)
        return info.min, info.max
    if dtype.kind == "f":
        return -np.inf, np.inf
    raise TypeError(f"cannot pad dtype {dtype} with ±∞ sentinels")


def final_four_steps(matrix: np.ndarray) -> Iterator[tuple[str, np.ndarray]]:
    """Steps 5-8, shared between basic and subblock columnsort."""
    r, _ = matrix.shape
    matrix = sort_columns(matrix)
    yield "5:sort", matrix
    low, high = _padding(matrix, r // 2)
    matrix = shift_down(matrix, low, high)
    yield "6:shift-down", matrix
    matrix = sort_columns(matrix)
    yield "7:sort", matrix
    matrix = shift_up(matrix)
    yield "8:shift-up", matrix


def columnsort_steps(
    matrix: np.ndarray, *, check: bool = True
) -> Iterator[tuple[str, np.ndarray]]:
    """Run columnsort one step at a time, yielding ``(label, matrix)``
    after each step — the teaching/debugging interface (see
    ``examples/incore_walkthrough.py``)."""
    r, s = matrix.shape
    if check:
        validate_basic(r, s)
    matrix = sort_columns(matrix)
    yield "1:sort", matrix
    matrix = step2(matrix)
    yield "2:transpose-reshape", matrix
    matrix = sort_columns(matrix)
    yield "3:sort", matrix
    matrix = step4(matrix)
    yield "4:reshape-transpose", matrix
    yield from final_four_steps(matrix)


def columnsort(matrix: np.ndarray, *, check: bool = True) -> np.ndarray:
    """Sort an ``r × s`` matrix into column-major order with Leighton's
    8-step columnsort.

    Parameters
    ----------
    matrix:
        Shape ``(r, s)``; plain scalars or records with a ``key`` field.
    check:
        Validate the height restriction ``r ≥ 2s²`` first. Passing
        ``check=False`` runs the steps regardless — useful for
        demonstrating that the restriction is necessary (the algorithm may
        then produce unsorted output).

    Returns a new, sorted matrix; the input is not modified.
    """
    out = matrix
    for _, out in columnsort_steps(matrix, check=check):
        pass
    return out
