"""The paper's 10-step subblock columnsort.

Basic columnsort's height restriction ``r ≥ 2s²`` is relaxed to
``r ≥ 4·s^(3/2)`` (with ``s`` a power of 4) by inserting two steps after
step 3 — an idea inspired by the Schnorr–Shamir Revsort:

* **step 3.1** — any permutation with the *subblock property*: all the
  values of each aligned ``√s × √s`` subblock move into all ``s``
  distinct columns. We use the paper's *subblock permutation* (Figure 1),
  which in addition leaves each target column composed of ``√s`` sorted
  runs of length ``r/√s`` — so the following sort can merge;
* **step 3.2** — sort each column.

Steps 1-3 and 4-8 are unchanged from basic columnsort.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.columnsort.basic import final_four_steps
from repro.columnsort.validation import validate_subblock
from repro.matrix.layout import sort_columns
from repro.matrix.permutations import step2, step4, subblock


def subblock_columnsort_steps(
    matrix: np.ndarray, *, check: bool = True
) -> Iterator[tuple[str, np.ndarray]]:
    """Run subblock columnsort one step at a time, yielding
    ``(label, matrix)`` after each step."""
    r, s = matrix.shape
    if check:
        validate_subblock(r, s, powers_of_two=False)
    matrix = sort_columns(matrix)
    yield "1:sort", matrix
    matrix = step2(matrix)
    yield "2:transpose-reshape", matrix
    matrix = sort_columns(matrix)
    yield "3:sort", matrix
    matrix = subblock(matrix)
    yield "3.1:subblock-permutation", matrix
    matrix = sort_columns(matrix)
    yield "3.2:sort", matrix
    matrix = step4(matrix)
    yield "4:reshape-transpose", matrix
    yield from final_four_steps(matrix)


def subblock_columnsort(matrix: np.ndarray, *, check: bool = True) -> np.ndarray:
    """Sort an ``r × s`` matrix into column-major order with the 10-step
    subblock columnsort (requires ``s`` a power of 4, ``s | r``, and
    ``r ≥ 4·s^(3/2)`` — a factor ``√s/2`` shorter than basic columnsort
    allows).

    With ``check=False`` the height restriction is not enforced (useful
    for probing where the algorithm actually breaks).
    """
    out = matrix
    for _, out in subblock_columnsort_steps(matrix, check=check):
        pass
    return out
