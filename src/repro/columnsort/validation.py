"""Dimension restrictions for columnsort variants.

Basic columnsort (Leighton) requires, for an ``r × s`` matrix:

* ``s | r``;
* the *height restriction* ``r ≥ 2s²`` (the paper deliberately uses this
  simpler, more stringent form of Leighton's ``r ≥ 2(s−1)²``).

Subblock columnsort relaxes the height restriction by a factor of
``√s / 2`` to ``r ≥ 4·s^(3/2)``, at the price of requiring ``s`` to be a
power of 4 (so that ``√s`` is an integer in the power-of-two world of the
out-of-core setting).

The out-of-core implementations additionally require ``r`` and ``s`` to be
powers of 2 (paper §2).
"""

from __future__ import annotations

from repro.errors import DimensionError
from repro.matrix.bits import ilog2, is_power_of_four, is_power_of_two, sqrt_pow4


def basic_height_ok(r: int, s: int) -> bool:
    """Whether ``r ≥ 2s²`` holds.

    >>> basic_height_ok(512, 16), basic_height_ok(511, 16)
    (True, False)
    """
    return r >= 2 * s * s


def subblock_height_ok(r: int, s: int) -> bool:
    """Whether ``r ≥ 4·s^(3/2)`` holds (`s` must be a power of 4 for the
    bound to be meaningful; this predicate checks only the inequality,
    exactly, in integer arithmetic: ``r² ≥ 16·s³``)."""
    return r * r >= 16 * s**3


def validate_basic(r: int, s: int, *, powers_of_two: bool = False) -> None:
    """Raise :class:`DimensionError` unless ``r × s`` is legal for basic
    columnsort. With ``powers_of_two=True`` also require ``r`` and ``s``
    to be powers of 2 (the out-of-core setting)."""
    if r <= 0 or s <= 0:
        raise DimensionError(f"dimensions must be positive, got r={r}, s={s}")
    if r % s:
        raise DimensionError(f"s must divide r, got r={r}, s={s}")
    if not basic_height_ok(r, s):
        raise DimensionError(
            f"height restriction violated: r={r} < 2s²={2 * s * s} "
            f"(basic columnsort requires r ≥ 2s²)"
        )
    if powers_of_two and not (is_power_of_two(r) and is_power_of_two(s)):
        raise DimensionError(
            f"out-of-core setting requires power-of-2 dimensions, got r={r}, s={s}"
        )


def validate_subblock(r: int, s: int, *, powers_of_two: bool = True) -> None:
    """Raise :class:`DimensionError` unless ``r × s`` is legal for subblock
    columnsort: ``s | r``, ``√s | r``, ``s`` a power of 4, and
    ``r ≥ 4·s^(3/2)``."""
    if r <= 0 or s <= 0:
        raise DimensionError(f"dimensions must be positive, got r={r}, s={s}")
    if not is_power_of_four(s):
        raise DimensionError(
            f"subblock columnsort requires s to be a power of 4, got s={s}"
        )
    if r % s:
        raise DimensionError(f"s must divide r, got r={r}, s={s}")
    if powers_of_two and not is_power_of_two(r):
        raise DimensionError(f"r must be a power of 2, got r={r}")
    if r % sqrt_pow4(s):
        raise DimensionError(f"√s={sqrt_pow4(s)} must divide r, got r={r}")
    if not subblock_height_ok(r, s):
        t = sqrt_pow4(s)
        raise DimensionError(
            f"relaxed height restriction violated: r={r} < 4·s^(3/2)={4 * s * t} "
            f"(subblock columnsort requires r ≥ 4·s^(3/2))"
        )


def max_s_basic(r: int) -> int:
    """The largest power-of-2 ``s`` legal for basic columnsort at height
    ``r`` (a power of 2): ``s = 2^⌊(lg r − 1)/2⌋``.

    >>> max_s_basic(512)
    16
    """
    a = ilog2(r)
    if a < 1:
        raise DimensionError(f"r={r} too small for any s ≥ 1 with r ≥ 2s²")
    return 1 << ((a - 1) // 2)


def max_s_subblock(r: int) -> int:
    """The largest power-of-4 ``s`` legal for subblock columnsort at
    height ``r`` (a power of 2): ``s = 4^⌊(lg r − 2)/3⌋``.

    >>> max_s_subblock(256), max_s_subblock(2048)
    (16, 64)
    """
    a = ilog2(r)
    if a < 2:
        raise DimensionError(f"r={r} too small for any s ≥ 1 with r ≥ 4·s^(3/2)")
    return 1 << (2 * ((a - 2) // 3))
