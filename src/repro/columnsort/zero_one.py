"""Exhaustive correctness checking via the 0-1 principle.

Columnsort is an oblivious algorithm (its permutations are fixed; its
column sorts are realizable as comparator networks), so the classic 0-1
principle applies: it sorts **every** input iff it sorts every input of
0s and 1s. Better still, step 1 sorts each column first, so a 0-1 input
is fully characterized by its per-column zero counts — the input space
collapses from ``2^(r·s)`` to ``(r+1)^s``, which is exhaustively
enumerable for small shapes.

This module runs the 8-step and 10-step algorithms over *batches* of
0-1 matrices (vectorized across the batch dimension), enabling:

* **proof-strength verification** — e.g. every one of the 33^4 ≈ 1.19M
  distinct inputs at ``r=32, s=4`` sorts;
* **empirical boundary mapping** — the smallest ``r`` at which an
  algorithm sorts *all* inputs, compared against the paper's sufficient
  bounds (``2s²``, Leighton's sharper ``2(s−1)²``, and subblock's
  ``4·s^(3/2)``) — the T-boundary experiment.

Padding sentinels: 0-1 data lives in int8 arrays; steps 6-8 pad with
−1 (−∞) and 2 (+∞), which sort strictly outside {0, 1}.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ConfigError, DimensionError
from repro.matrix.bits import is_power_of_four, sqrt_pow4


def count_vectors(r: int, s: int, chunk: int = 65536) -> Iterator[np.ndarray]:
    """Yield all ``(r+1)^s`` per-column zero-count vectors in chunks of
    shape ``(≤chunk, s)`` (mixed-radix enumeration, vectorized)."""
    total = (r + 1) ** s
    base = r + 1
    start = 0
    while start < total:
        stop = min(start + chunk, total)
        idx = np.arange(start, stop, dtype=np.int64)
        cols = np.empty((stop - start, s), dtype=np.int64)
        for j in range(s - 1, -1, -1):
            cols[:, j] = idx % base
            idx //= base
        yield cols
        start = stop


def batch_from_counts(counts: np.ndarray, r: int) -> np.ndarray:
    """0-1 matrices with sorted columns from zero-count vectors:
    column ``j`` of item ``b`` holds ``counts[b, j]`` zeros then ones.
    Shape ``(B, r, s)``, dtype int8."""
    b, s = counts.shape
    rows = np.arange(r).reshape(1, r, 1)
    return (rows >= counts.reshape(b, 1, s)).astype(np.int8)


def _sort_cols(batch: np.ndarray) -> np.ndarray:
    return np.sort(batch, axis=1)


def _step2(batch: np.ndarray) -> np.ndarray:
    b, r, s = batch.shape
    return np.ascontiguousarray(batch.transpose(0, 2, 1)).reshape(b, r, s)


def _step4(batch: np.ndarray) -> np.ndarray:
    b, r, s = batch.shape
    return np.ascontiguousarray(batch.reshape(b, s, r).transpose(0, 2, 1))


def _subblock(batch: np.ndarray) -> np.ndarray:
    b, r, s = batch.shape
    t = sqrt_pow4(s)
    if r % t:
        raise DimensionError(f"√s={t} must divide r={r}")
    blocks = batch.reshape(b, r // t, t, t, t)  # axes (b, w, x, y, z)
    return np.ascontiguousarray(blocks.transpose(0, 3, 1, 2, 4)).reshape(b, r, s)


def _steps_6_to_8(batch: np.ndarray) -> np.ndarray:
    b, r, s = batch.shape
    half = r // 2
    flat = np.ascontiguousarray(batch.transpose(0, 2, 1)).reshape(b, r * s)
    lo = np.full((b, half), -1, dtype=np.int8)
    hi = np.full((b, half), 2, dtype=np.int8)
    shifted = np.concatenate([lo, flat, hi], axis=1).reshape(b, s + 1, r)
    shifted = np.sort(shifted.transpose(0, 2, 1), axis=1)  # step 7
    flat_back = np.ascontiguousarray(shifted.transpose(0, 2, 1)).reshape(b, -1)
    return (
        flat_back[:, half : half + r * s].reshape(b, s, r).transpose(0, 2, 1)
    )


def run_batch(batch: np.ndarray, variant: str = "basic") -> np.ndarray:
    """Run the full step sequence on a ``(B, r, s)`` 0-1 batch.

    ``variant``: ``"basic"`` (8 steps) or ``"subblock"`` (10 steps).
    No height restriction is enforced — exploring where the algorithms
    break is the point.
    """
    if variant not in ("basic", "subblock"):
        raise ConfigError(f"unknown variant {variant!r}")
    out = _sort_cols(batch)  # step 1
    out = _step2(out)
    out = _sort_cols(out)  # step 3
    if variant == "subblock":
        out = _subblock(out)  # step 3.1
        out = _sort_cols(out)  # step 3.2
    out = _step4(out)
    return _steps_6_to_8(_sort_cols(out))  # steps 5-8 (6-8 include 7's sort)


def sorted_mask(batch: np.ndarray) -> np.ndarray:
    """Boolean per batch item: sorted in column-major order?"""
    b, r, s = batch.shape
    flat = np.ascontiguousarray(batch.transpose(0, 2, 1)).reshape(b, r * s)
    return np.all(flat[:, :-1] <= flat[:, 1:], axis=1)


def exhaustive_check(
    r: int, s: int, variant: str = "basic", chunk: int = 65536
) -> np.ndarray | None:
    """Run the algorithm on *every* distinct 0-1 input at shape
    ``r × s``; return None if all sort, else the zero-count vector of
    the first counterexample.

    By the 0-1 principle, None means the algorithm sorts **all** inputs
    at this shape.
    """
    if r < 1 or s < 1 or r % s:
        raise DimensionError(f"need s | r with positive dims, got r={r}, s={s}")
    if variant == "subblock" and not is_power_of_four(s):
        raise DimensionError(f"subblock needs s a power of 4, got {s}")
    if r % 2:
        raise DimensionError(f"steps 6-8 need even r, got {r}")
    for counts in count_vectors(r, s, chunk):
        result = run_batch(batch_from_counts(counts, r), variant)
        ok = sorted_mask(result)
        if not ok.all():
            return counts[np.flatnonzero(~ok)[0]]
    return None


def empirical_min_height(
    s: int, variant: str = "basic", r_max: int | None = None
) -> int:
    """The smallest ``r`` (multiple of ``s``, even) at which the
    algorithm sorts every input — found by exhaustive 0-1 search.

    Compare against the sufficient bounds: the paper's ``2s²``,
    Leighton's ``2(s−1)²``, and subblock's ``4·s^(3/2)``.
    """
    if r_max is None:
        r_max = 4 * s * s
    step = s if s % 2 == 0 else 2 * s  # keep r even and a multiple of s
    r = step
    while r <= r_max:
        if variant != "subblock" or r % sqrt_pow4(s) == 0:
            if exhaustive_check(r, s, variant) is None:
                return r
        r += step
    raise DimensionError(
        f"no working height ≤ {r_max} found for {variant} at s={s}"
    )
