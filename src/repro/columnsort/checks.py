"""Verification oracles for columnsort's structural claims.

These implement, as executable checks, the properties the paper proves:

* the **subblock property** (§3): a permutation moves all values of every
  aligned ``√s × √s`` subblock into ``s`` distinct columns;
* the **sorted-run structure** (§3): after the subblock permutation of
  sorted columns, every target column consists of ``√s`` sorted runs of
  length ``r/√s`` each.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError
from repro.matrix.bits import sqrt_pow4


def has_subblock_property(target_fn, r: int, s: int) -> bool:
    """Whether an index map ``(i, j, r, s) → (i', j')`` satisfies the
    subblock property: each aligned ``√s × √s`` subblock maps onto all
    ``s`` distinct target columns.

    Checks every subblock exhaustively (there are ``(r/√s)·(√s)`` of
    them); intended for test-sized matrices.
    """
    t = sqrt_pow4(s)
    if r % t:
        raise DimensionError(f"√s={t} must divide r, got r={r}")
    ii, jj = np.meshgrid(np.arange(r), np.arange(s), indexing="ij")
    _, tj = target_fn(ii, jj, r, s)
    for bi in range(r // t):
        for bj in range(s // t):
            block = tj[bi * t : (bi + 1) * t, bj * t : (bj + 1) * t]
            if len(np.unique(block)) != s:
                return False
    return True


def count_sorted_runs(values: np.ndarray) -> int:
    """Number of maximal nondecreasing runs in a 1-D array.

    >>> count_sorted_runs(np.array([1, 2, 0, 5, 5, 3]))
    3
    """
    keys = values["key"] if values.dtype.names else values
    if len(keys) < 2:
        return min(len(keys), 1)
    return int(np.sum(keys[:-1] > keys[1:])) + 1


def min_run_length(values: np.ndarray) -> int:
    """Length of the shortest maximal nondecreasing run in a 1-D array."""
    keys = values["key"] if values.dtype.names else values
    if len(keys) == 0:
        return 0
    breaks = np.flatnonzero(keys[:-1] > keys[1:])
    bounds = np.concatenate([[-1], breaks, [len(keys) - 1]])
    return int(np.min(np.diff(bounds)))


def runs_after_subblock_ok(matrix: np.ndarray, r: int, s: int) -> bool:
    """Whether every column of a (post-step-3.1) matrix consists of at
    most ``√s`` sorted runs, each of length ``r/√s`` — the structure the
    paper proves the subblock permutation creates from sorted columns."""
    t = sqrt_pow4(s)
    run = r // t
    keys = matrix["key"] if matrix.dtype.names else matrix
    for j in range(s):
        col = keys[:, j]
        # Run boundaries may only fall at multiples of r/√s.
        breaks = np.flatnonzero(col[:-1] > col[1:]) + 1
        if len(breaks) > t - 1 or np.any(breaks % run):
            return False
    return True
