"""File-backed parallel disks and out-of-core data layouts.

The paper's setting (§2): ``D ≥ P`` disks, each processor owning the
``D/P`` disks it accesses; matrix columns stored in contiguous locations
on their owner's disks; final output in the standard striped ordering of
the Parallel Disk Model (PDM).

* :class:`~repro.disks.virtual_disk.VirtualDisk` — one disk as a
  directory of files with byte-offset block I/O, byte-accurate
  accounting (:class:`~repro.disks.iostats.IoStats`), optional capacity
  limits, and fault injection;
* :class:`~repro.disks.matrixfile.ColumnStore` — an ``r × s`` matrix
  stored column-contiguous, whole columns owned by ``j mod P``
  (threaded and subblock columnsort);
* :class:`~repro.disks.matrixfile.StripedColumnStore` — columns of
  height ``M`` each striped over all processors (M-columnsort's height
  interpretation ``r = M``);
* :mod:`~repro.disks.pdm` + :class:`~repro.disks.matrixfile.PdmStore` —
  PDM striped ordering: the address arithmetic, ownership splitting for
  the final communicate stage, and verification readback.
"""

from repro.disks.iostats import IoStats
from repro.disks.virtual_disk import VirtualDisk, make_disk_array, mmap_reads
from repro.disks.pdm import (
    pdm_disk_of,
    pdm_position,
    split_range_by_disk,
    split_range_by_owner,
)
from repro.disks.matrixfile import ColumnStore, PdmStore, StripedColumnStore

__all__ = [
    "IoStats",
    "VirtualDisk",
    "make_disk_array",
    "mmap_reads",
    "pdm_disk_of",
    "pdm_position",
    "split_range_by_disk",
    "split_range_by_owner",
    "ColumnStore",
    "StripedColumnStore",
    "PdmStore",
]
