"""Parallel Disk Model (PDM) striped ordering.

PDM ordering lays records out so that any consecutive run of records is
balanced across disks (and hence processors) as evenly as possible
(paper footnote 6). With block size ``B`` records and ``D`` disks:

* record ``g`` lives in global block ``b = g div B``;
* block ``b`` lives on disk ``b mod D``, at block slot ``b div D`` of
  that disk;
* disk ``d`` is owned by processor ``d mod P``.

The out-of-core programs produce their *output* in this ordering, which
is what lets them serve as subroutines of other PDM algorithms.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ConfigError


def pdm_disk_of(g: int, block: int, d: int) -> int:
    """The disk holding global record ``g``."""
    return (g // block) % d


def pdm_position(g: int, block: int, d: int) -> tuple[int, int]:
    """``(disk, record-offset-on-disk)`` of global record ``g``.

    >>> pdm_position(10, block=4, d=2)   # block 2 -> disk 0, slot 1
    (0, 6)
    """
    b = g // block
    within = g - b * block
    return b % d, (b // d) * block + within


def split_range_by_disk(
    start: int, count: int, block: int, d: int
) -> Iterator[tuple[int, int, int, int]]:
    """Split global record range ``[start, start+count)`` into maximal
    per-disk pieces, yielding ``(disk, disk_offset, global_offset, n)``
    tuples in global order. Pieces never cross block boundaries.
    """
    if block <= 0 or d <= 0:
        raise ConfigError(f"need positive block and disk count, got {block}, {d}")
    if count < 0 or start < 0:
        raise ConfigError(f"invalid range ({start}, {count})")
    g = start
    end = start + count
    while g < end:
        b = g // block
        block_end = (b + 1) * block
        n = min(end, block_end) - g
        disk, offset = pdm_position(g, block, d)
        yield disk, offset, g - start, n
        g += n


def split_range_by_owner(
    start: int, count: int, block: int, d: int, p: int
) -> dict[int, list[tuple[int, int, int, int]]]:
    """Group the pieces of :func:`split_range_by_disk` by owning
    processor (disk ``d`` belongs to processor ``d mod p``) — this is
    exactly what the final pass's second communicate stage needs to route
    sorted windows to the processors that write them."""
    groups: dict[int, list[tuple[int, int, int, int]]] = {}
    for disk, offset, rel, n in split_range_by_disk(start, count, block, d):
        groups.setdefault(disk % p, []).append((disk, offset, rel, n))
    return groups
