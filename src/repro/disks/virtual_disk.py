"""A file-backed virtual disk.

One disk = one directory; the data objects on it (columns, PDM stripes,
temporaries) are files addressed by name with byte-offset reads and
writes — the same access pattern as the paper's C ``stdio`` I/O.

Beyond plain I/O the disk supports what the failure-injection and chaos
tests need: an optional capacity limit
(:class:`~repro.errors.DiskFullError` on overflow), a read-only mode,
and fault injection through an attached
:class:`~repro.resilience.faults.FaultPlan`. An attached
:class:`~repro.resilience.retry.RetryPolicy` makes ``read_at`` /
``write_at`` retry transient faults with metered retry counts.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from pathlib import Path

from repro.disks.iostats import IoStats
from repro.errors import DiskError, DiskFullError


class VirtualDisk:
    """A directory-backed disk with byte-offset block I/O.

    Parameters
    ----------
    root:
        Directory holding this disk's files (created if missing).
    disk_id:
        The disk's index in the cluster's disk array.
    capacity_bytes:
        Optional hard capacity; writes that would grow total usage past
        it raise :class:`DiskFullError` (the paper's experiments were
        disk-space limited — footnote 7).
    stats:
        Optional shared :class:`IoStats`; a private one is created
        otherwise.

    Two optional attributes hook in the resilience layer:
    ``fault_plan`` (a :class:`~repro.resilience.faults.FaultPlan`
    consulted at the top of every read/write, before side effects) and
    ``retry_policy`` (a :class:`~repro.resilience.retry.RetryPolicy`
    that retries transient failures, metering each retry into
    :attr:`stats`).
    """

    def __init__(
        self,
        root: str | Path,
        disk_id: int = 0,
        capacity_bytes: int | None = None,
        stats: IoStats | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.disk_id = disk_id
        self.capacity_bytes = capacity_bytes
        self.stats = stats if stats is not None else IoStats()
        self.read_only = False
        self.fault_plan = None
        self.retry_policy = None
        self._lock = threading.Lock()
        self._sizes: dict[str, int] = {}
        for path in self.root.iterdir():
            if path.is_file():
                self._sizes[path.name] = path.stat().st_size

    # ------------------------------------------------------------------

    def _path(self, name: str) -> Path:
        if "/" in name or name.startswith("."):
            raise DiskError(f"invalid object name {name!r}")
        return self.root / name

    def _consume_fault(self, op: str) -> None:
        plan = self.fault_plan
        if plan is not None:
            plan.check(op, where=f"on disk {self.disk_id}")

    def inject_fault(self, op: str = "any") -> None:
        """Make the next operation of kind ``op`` (``"read"``, ``"write"``
        or ``"any"``) fail with :class:`DiskError`.

        .. deprecated::
            Thin shim over :class:`~repro.resilience.faults.FaultPlan`:
            arms a one-shot *permanent* fault on this disk's plan
            (creating one if absent). New code should build a
            ``FaultPlan`` and assign it to ``disk.fault_plan`` directly.
        """
        if op not in ("read", "write", "any"):
            raise DiskError(f"unknown fault kind {op!r}")
        with self._lock:
            if self.fault_plan is None:
                from repro.resilience.faults import FaultPlan

                self.fault_plan = FaultPlan()
        self.fault_plan.arm_once(op)

    def _run_op(self, op: str, fn):
        """Run one read/write body under the fault plan and retry policy.

        The fault check happens *before* ``fn`` on every attempt, so an
        injected fault never leaves a half-applied operation behind and
        a retried op is indistinguishable from a fresh one.
        """
        policy = self.retry_policy
        attempt = 1
        while True:
            try:
                self._consume_fault(op)
                return fn()
            except BaseException as exc:
                if (
                    policy is None
                    or attempt >= policy.max_attempts
                    or not policy.retryable(exc)
                ):
                    raise
                self.stats.record_retry(op)
                time.sleep(policy.delay_s(attempt))
                attempt += 1

    # ------------------------------------------------------------------

    def used_bytes(self) -> int:
        """Total bytes currently stored on this disk."""
        with self._lock:
            return sum(self._sizes.values())

    def size(self, name: str) -> int:
        """Current size of an object (0 if absent)."""
        with self._lock:
            return self._sizes.get(name, 0)

    def files(self) -> list[str]:
        """Names of the objects on this disk."""
        with self._lock:
            return sorted(self._sizes)

    # ------------------------------------------------------------------

    def write_at(
        self, name: str, offset: int, data: bytes | bytearray | memoryview
    ) -> None:
        """Write ``data`` (any C-contiguous buffer — bytes, a memoryview
        of a record array, ...) at byte ``offset``, growing the file if
        needed."""
        if self.read_only:
            raise DiskError(f"disk {self.disk_id} is read-only")
        if offset < 0:
            raise DiskError(f"negative write offset {offset}")
        path = self._path(name)
        # memoryview(data).nbytes, not len(data): len() of a structured-
        # array view counts records, not bytes.
        nbytes = memoryview(data).nbytes

        def body() -> None:
            with self._lock:
                old_size = self._sizes.get(name, 0)
                new_size = max(old_size, offset + nbytes)
                if self.capacity_bytes is not None:
                    grow = new_size - old_size
                    if grow > 0 and sum(self._sizes.values()) + grow > self.capacity_bytes:
                        raise DiskFullError(
                            f"disk {self.disk_id} full: cannot grow {name!r} by "
                            f"{grow} bytes (capacity {self.capacity_bytes})"
                        )
                mode = "r+b" if path.exists() else "w+b"
                with open(path, mode) as fh:
                    if offset > old_size:
                        # Explicitly zero-fill the gap so reads are defined.
                        fh.seek(old_size)
                        fh.write(b"\0" * (offset - old_size))
                    fh.seek(offset)
                    fh.write(data)
                self._sizes[name] = new_size
            self.stats.record_write(nbytes)

        self._run_op("write", body)

    def read_at(
        self, name: str, offset: int, nbytes: int, out: "object | None" = None
    ) -> object:
        """Read exactly ``nbytes`` from byte ``offset``; raises
        :class:`DiskError` on a short read.

        With ``out`` (a writable buffer of exactly ``nbytes`` — e.g. a
        pooled record array), bytes land directly in it via ``readinto``
        and ``out`` itself is returned; otherwise a fresh ``bytes``."""
        if offset < 0 or nbytes < 0:
            raise DiskError(f"invalid read range ({offset}, {nbytes})")
        path = self._path(name)

        def body() -> object:
            if not path.exists():
                raise DiskError(f"no object {name!r} on disk {self.disk_id}")
            if out is not None:
                mv = memoryview(out)
                if mv.nbytes != nbytes:
                    raise DiskError(
                        f"read buffer holds {mv.nbytes} bytes, wanted {nbytes}"
                    )
                with open(path, "rb") as fh:
                    fh.seek(offset)
                    got = fh.readinto(mv)
                if got != nbytes:
                    raise DiskError(
                        f"short read of {name!r} on disk {self.disk_id}: wanted "
                        f"{nbytes} bytes at offset {offset}, got {got}"
                    )
                self.stats.record_read(nbytes)
                return out
            with open(path, "rb") as fh:
                fh.seek(offset)
                data = fh.read(nbytes)
            if len(data) != nbytes:
                raise DiskError(
                    f"short read of {name!r} on disk {self.disk_id}: wanted "
                    f"{nbytes} bytes at offset {offset}, got {len(data)}"
                )
            self.stats.record_read(nbytes)
            return data

        return self._run_op("read", body)

    def delete(self, name: str) -> None:
        """Remove an object (no error if absent)."""
        if self.read_only:
            raise DiskError(f"disk {self.disk_id} is read-only")
        path = self._path(name)
        with self._lock:
            self._sizes.pop(name, None)
            if path.exists():
                os.unlink(path)

    def fingerprint(self, name: str) -> str:
        """SHA-256 hex digest of one object's bytes.

        Unmetered and exempt from fault injection: checkpoint digests
        are bookkeeping, not data movement, and must not perturb the
        byte-exact pass accounting the integration tests assert.
        """
        path = self._path(name)
        if not path.exists():
            raise DiskError(f"no object {name!r} on disk {self.disk_id}")
        h = hashlib.sha256()
        with open(path, "rb") as fh:
            for chunk in iter(lambda: fh.read(1 << 20), b""):
                h.update(chunk)
        return h.hexdigest()


def make_disk_array(
    root: str | Path,
    count: int,
    capacity_bytes: int | None = None,
) -> list[VirtualDisk]:
    """Create ``count`` disks under ``root`` (one subdirectory each)."""
    root = Path(root)
    return [
        VirtualDisk(root / f"disk{d:03d}", disk_id=d, capacity_bytes=capacity_bytes)
        for d in range(count)
    ]
