"""A file-backed virtual disk.

One disk = one directory; the data objects on it (columns, PDM stripes,
temporaries) are files addressed by name with byte-offset reads and
writes — the same access pattern as the paper's C ``stdio`` I/O.

Beyond plain I/O the disk supports what the failure-injection and chaos
tests need: an optional capacity limit
(:class:`~repro.errors.DiskFullError` on overflow), a read-only mode,
and fault injection through an attached
:class:`~repro.resilience.faults.FaultPlan`. An attached
:class:`~repro.resilience.retry.RetryPolicy` makes ``read_at`` /
``write_at`` retry transient faults with metered retry counts.

Durability (always on): every write records a per-extent block CRC in a
:class:`~repro.durability.checksums.BlockChecksums` sidecar catalog and
every read verifies the extents tiling the range, raising
:class:`~repro.errors.CorruptionError` on a mismatch. Durability
(opt-in, via :func:`~repro.durability.parity.attach_durability`): a
``quarantine`` marks this disk dead after enough permanent faults, and
a ``parity_layer`` then serves its reads by online reconstruction into
a ``.spare/`` region, reroutes its writes there, and repairs corrupt
blocks in place — degraded-mode execution instead of an abort.
"""

from __future__ import annotations

import mmap
import os
import threading
import time
from pathlib import Path

from repro.disks.iostats import IoStats
from repro.durability.checksums import BlockChecksums
from repro.durability.hashing import file_digest
from repro.errors import CorruptionError, DiskError, DiskFullError


def mmap_reads() -> bool:
    """Whether ``REPRO_MMAP_READS=1`` selects the mmap-backed read path:
    reads are served by copying out of a cached read-only mapping of the
    extent file instead of ``seek``/``read`` syscalls per block. Off by
    default (the classic path is the measured baseline); read per call
    so tests and benchmarks can flip it without re-importing."""
    return os.environ.get("REPRO_MMAP_READS", "0") not in ("", "0")


class VirtualDisk:
    """A directory-backed disk with byte-offset block I/O.

    Parameters
    ----------
    root:
        Directory holding this disk's files (created if missing).
    disk_id:
        The disk's index in the cluster's disk array.
    capacity_bytes:
        Optional hard capacity; writes that would grow total usage past
        it raise :class:`DiskFullError` (the paper's experiments were
        disk-space limited — footnote 7).
    stats:
        Optional shared :class:`IoStats`; a private one is created
        otherwise.

    Optional attributes hook in the resilience, durability, and
    governance layers: ``scratch_governor`` (a
    :class:`~repro.governor.RunGovernor` consulted on
    :class:`~repro.errors.DiskFullError` — reclaim dead scratch and
    retry, or degrade and fail), ``cancel_token`` (a
    :class:`~repro.governor.CancelToken` making every op attempt a
    cancellation point), ``fault_plan`` (a
    :class:`~repro.resilience.faults.FaultPlan` consulted at the top of
    every read/write, before side effects), ``retry_policy`` (a
    :class:`~repro.resilience.retry.RetryPolicy` that retries transient
    failures, metering each retry into :attr:`stats`), ``quarantine``
    (a :class:`~repro.resilience.quarantine.DiskQuarantine` shared by
    the array) and ``parity_layer`` (a
    :class:`~repro.durability.parity.ParityLayer`).
    """

    def __init__(
        self,
        root: str | Path,
        disk_id: int = 0,
        capacity_bytes: int | None = None,
        stats: IoStats | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.disk_id = disk_id
        self.capacity_bytes = capacity_bytes
        self.stats = stats if stats is not None else IoStats()
        self.read_only = False
        self.fault_plan = None
        self.retry_policy = None
        self.quarantine = None
        self.parity_layer = None
        self.scratch_governor = None
        self.cancel_token = None
        self.checksums = BlockChecksums(self.root)
        # Re-entrant: a degraded write holds the lock while the parity
        # layer's ensure_spare calls back into reserve_spare.
        self._lock = threading.RLock()
        # Cached read-only mappings per object (REPRO_MMAP_READS path);
        # remapped when the file outgrows the mapping, closed on delete.
        self._mmaps: dict[str, mmap.mmap] = {}
        self._sizes: dict[str, int] = {}
        self._spare_sizes: dict[str, int] = {}
        for path in self.root.iterdir():
            if path.is_file():
                self._sizes[path.name] = path.stat().st_size

    # ------------------------------------------------------------------

    def _path(self, name: str) -> Path:
        if "/" in name or name.startswith("."):
            raise DiskError(f"invalid object name {name!r}")
        return self.root / name

    def _consume_fault(self, op: str) -> None:
        plan = self.fault_plan
        if plan is not None:
            plan.check(op, where=f"on disk {self.disk_id}", disk_id=self.disk_id)

    def _degraded(self) -> bool:
        """True when this disk has been declared dead by the quarantine."""
        quarantine = self.quarantine
        return quarantine is not None and quarantine.is_dead(self.disk_id)

    def inject_fault(self, op: str = "any") -> None:
        """Make the next operation of kind ``op`` (``"read"``, ``"write"``
        or ``"any"``) fail with :class:`DiskError`.

        .. deprecated::
            Thin shim over :class:`~repro.resilience.faults.FaultPlan`:
            arms a one-shot *permanent* fault on this disk's plan
            (creating one if absent). New code should build a
            ``FaultPlan`` and assign it to ``disk.fault_plan`` directly.
        """
        if op not in ("read", "write", "any"):
            raise DiskError(f"unknown fault kind {op!r}")
        with self._lock:
            if self.fault_plan is None:
                from repro.resilience.faults import FaultPlan

                self.fault_plan = FaultPlan()
        self.fault_plan.arm_once(op)

    def _run_op(self, op: str, fn):
        """Run one read/write body under the fault plan, quarantine,
        parity repair, and retry policy.

        The fault check happens *before* ``fn`` on every attempt, so an
        injected fault never leaves a half-applied operation behind and
        a retried op is indistinguishable from a fresh one. A dead disk
        skips the fault plan entirely (its medium is gone; the op is
        served from parity/spare, or fails fast without one).

        :class:`~repro.errors.DiskFullError` never reaches the retry
        policy (backoff cannot free space); instead an attached
        ``scratch_governor`` (the run's
        :class:`~repro.governor.RunGovernor`) walks its reclaim/degrade
        ladder and says whether one metered retry is warranted. An
        attached ``cancel_token`` makes every attempt (and every
        backoff sleep) a cancellation point.
        """
        policy = self.retry_policy
        attempt = 1
        repaired = False
        rerouted = False
        while True:
            token = self.cancel_token
            if token is not None and token.cancelled():
                raise token.exception()
            try:
                if self._degraded():
                    if self.parity_layer is None:
                        raise DiskError(
                            f"disk {self.disk_id} is quarantined dead and no "
                            "parity layer is attached to serve it"
                        )
                else:
                    self._consume_fault(op)
                return fn()
            except BaseException as exc:
                # A permanent disk fault feeds the quarantine; if this
                # disk just crossed the death threshold and parity can
                # serve it, re-run the op once in degraded mode.
                if (
                    isinstance(exc, DiskError)
                    and getattr(exc, "transient", None) is False
                    and self.quarantine is not None
                    and not rerouted
                ):
                    self.quarantine.record_permanent(self.disk_id)
                    if self.parity_layer is not None and self._degraded():
                        rerouted = True
                        continue
                # A repairable corruption is rebuilt from parity once,
                # then the read retried ("retryable-with-repair").
                if (
                    isinstance(exc, CorruptionError)
                    and exc.repairable
                    and not repaired
                    and self.parity_layer is not None
                ):
                    repaired = True
                    self.parity_layer.repair(self, exc.name, exc.extents)
                    self.stats.record_retry(op)
                    continue
                # ENOSPC: hand the run governor one shot at its ladder
                # (reclaim dead scratch → retry; else degrade → raise).
                if isinstance(exc, DiskFullError):
                    governor = self.scratch_governor
                    if governor is not None and governor.handle_disk_full(self):
                        self.stats.record_retry(op)
                        continue
                    raise
                if (
                    policy is None
                    or attempt >= policy.max_attempts
                    or not policy.retryable(exc)
                ):
                    raise
                self.stats.record_retry(op)
                if token is not None:
                    token.sleep(policy.delay_s(attempt))
                else:
                    time.sleep(policy.delay_s(attempt))
                attempt += 1

    # ------------------------------------------------------------------

    def _used_locked(self) -> int:
        return sum(self._sizes.values()) + sum(self._spare_sizes.values())

    def used_bytes(self) -> int:
        """Total bytes currently stored on this disk — cataloged objects
        plus degraded-mode ``.spare/`` materializations (a reconstructed
        copy occupies real capacity)."""
        with self._lock:
            return self._used_locked()

    def reserve_spare(self, name: str, new_size: int) -> None:
        """Account a ``.spare/`` materialization of ``name`` growing to
        ``new_size`` bytes against this disk's capacity. Raises
        :class:`DiskFullError` *before* any spare bytes land, so a
        reconstruction near capacity fails structurally instead of
        silently exceeding the limit. Idempotent for non-growing calls.
        """
        with self._lock:
            old = self._spare_sizes.get(name, 0)
            grow = new_size - old
            if grow <= 0:
                return
            if (
                self.capacity_bytes is not None
                and self._used_locked() + grow > self.capacity_bytes
            ):
                raise DiskFullError(
                    f"disk {self.disk_id} full: cannot materialize spare copy "
                    f"of {name!r} ({grow} more bytes, capacity "
                    f"{self.capacity_bytes})"
                )
            self._spare_sizes[name] = new_size

    def size(self, name: str) -> int:
        """Current size of an object (0 if absent)."""
        with self._lock:
            return self._sizes.get(name, 0)

    def files(self) -> list[str]:
        """Names of the objects on this disk."""
        with self._lock:
            return sorted(self._sizes)

    # ------------------------------------------------------------------

    def _mapped_view(self, path: Path, name: str, offset: int, nbytes: int):
        """A memoryview over ``[offset, offset + nbytes)`` of the cached
        read-only mapping of ``name``, or None when a mapping cannot
        serve the range (empty file, or range past the file's current
        end — the classic path then reports the proper short read).

        The mapping is ``MAP_SHARED`` over the same inode ``write_at``
        appends to, so in-place rewrites are coherent; only *growth*
        past the mapped length forces a remap. Callers must release the
        view promptly — a live view pins the mapping against remap and
        close."""
        with self._lock:
            m = self._mmaps.get(name)
            if m is None or offset + nbytes > len(m):
                try:
                    size = path.stat().st_size
                except OSError:
                    return None
                if size == 0 or offset + nbytes > size:
                    return None
                if m is not None:
                    try:
                        m.close()
                    except BufferError:
                        pass  # a stale view pins it; GC reaps the mapping
                    del self._mmaps[name]
                with open(path, "rb") as fh:
                    m = mmap.mmap(fh.fileno(), size, access=mmap.ACCESS_READ)
                self._mmaps[name] = m
            return memoryview(m)[offset : offset + nbytes]

    def close_mmaps(self) -> None:
        """Drop every cached read mapping (end of run, or before the
        backing directory is removed)."""
        with self._lock:
            for m in self._mmaps.values():
                try:
                    m.close()
                except BufferError:
                    pass
            self._mmaps.clear()

    def _verify(self, name: str, offset: int, view) -> None:
        """Check the read bytes against the block-checksum catalog."""
        bad, hashed = self.checksums.verify(name, offset, view)
        if hashed:
            self.stats.record_hashed(hashed)
        if bad:
            self.stats.record_checksum_failure(len(bad))
            if self.quarantine is not None:
                self.quarantine.record_checksum_failure(self.disk_id, len(bad))
            layer = self.parity_layer
            repairable = layer is not None and layer.can_repair(
                self.disk_id, name, bad
            )
            raise CorruptionError(self.disk_id, name, bad, repairable=repairable)

    def write_at(
        self, name: str, offset: int, data: bytes | bytearray | memoryview
    ) -> None:
        """Write ``data`` (any C-contiguous buffer — bytes, a memoryview
        of a record array, ...) at byte ``offset``, growing the file if
        needed."""
        if self.read_only:
            raise DiskError(f"disk {self.disk_id} is read-only")
        if offset < 0:
            raise DiskError(f"negative write offset {offset}")
        path = self._path(name)
        # memoryview(data).nbytes, not len(data): len() of a structured-
        # array view counts records, not bytes.
        nbytes = memoryview(data).nbytes

        def body() -> None:
            layer = self.parity_layer
            degraded = self._degraded()
            with self._lock:
                old_size = self._sizes.get(name, 0)
                new_size = max(old_size, offset + nbytes)
                if self.capacity_bytes is not None:
                    grow = new_size - old_size
                    if grow > 0 and self._used_locked() + grow > self.capacity_bytes:
                        raise DiskFullError(
                            f"disk {self.disk_id} full: cannot grow {name!r} by "
                            f"{grow} bytes (capacity {self.capacity_bytes})"
                        )
                if degraded:
                    # The medium is gone: surviving content is faulted
                    # into the spare region first, then the write lands
                    # there too. Both steps are capacity-accounted
                    # (reserve_spare), so a reconstruction near the
                    # limit raises DiskFullError instead of silently
                    # exceeding it.
                    target = layer.ensure_spare(self, name, old_size)
                    self.reserve_spare(name, new_size)
                    self.quarantine.record_spare_write()
                else:
                    target = path
                if layer is not None:
                    # Parity folds stale overlapped extents out (it reads
                    # their pre-write bytes), so this must precede the
                    # file write.
                    layer.on_write(self, name, offset, data, spare=degraded)
                mode = "r+b" if target.exists() else "w+b"
                with open(target, mode) as fh:
                    if offset > old_size:
                        # Explicitly zero-fill the gap so reads are defined.
                        fh.seek(old_size)
                        fh.write(b"\0" * (offset - old_size))
                    fh.seek(offset)
                    fh.write(data)
                self._sizes[name] = new_size
                self.stats.record_hashed(self.checksums.record(name, offset, data))
            self.stats.record_write(nbytes)

        self._run_op("write", body)

    def read_at(
        self, name: str, offset: int, nbytes: int, out: "object | None" = None
    ) -> object:
        """Read exactly ``nbytes`` from byte ``offset``; raises
        :class:`DiskError` on a short read, :class:`CorruptionError` if
        a cataloged block checksum does not match the bytes read.

        With ``out`` (a writable buffer of exactly ``nbytes`` — e.g. a
        pooled record array), bytes land directly in it via ``readinto``
        and ``out`` itself is returned; otherwise a fresh ``bytes``."""
        if offset < 0 or nbytes < 0:
            raise DiskError(f"invalid read range ({offset}, {nbytes})")
        path = self._path(name)

        def body() -> object:
            if self._degraded():
                with self._lock:
                    if name not in self._sizes:
                        raise DiskError(
                            f"no object {name!r} on disk {self.disk_id}"
                        )
                    logical = self._sizes[name]
                src = self.parity_layer.ensure_spare(self, name, logical)
            else:
                src = path
                if not src.exists():
                    raise DiskError(f"no object {name!r} on disk {self.disk_id}")
                if mmap_reads():
                    view = self._mapped_view(src, name, offset, nbytes)
                    if view is not None:
                        try:
                            # CRC verification is unchanged — it runs
                            # over the mapped bytes before they are
                            # handed out, exactly as over read() bytes.
                            self._verify(name, offset, view)
                            self.stats.record_read(nbytes)
                            if out is not None:
                                mv = memoryview(out).cast("B")
                                if mv.nbytes != nbytes:
                                    raise DiskError(
                                        f"read buffer holds {mv.nbytes} "
                                        f"bytes, wanted {nbytes}"
                                    )
                                mv[:] = view
                                return out
                            return bytes(view)
                        finally:
                            view.release()
            if out is not None:
                mv = memoryview(out)
                if mv.nbytes != nbytes:
                    raise DiskError(
                        f"read buffer holds {mv.nbytes} bytes, wanted {nbytes}"
                    )
                with open(src, "rb") as fh:
                    fh.seek(offset)
                    got = fh.readinto(mv)
                if got != nbytes:
                    raise DiskError(
                        f"short read of {name!r} on disk {self.disk_id}: wanted "
                        f"{nbytes} bytes at offset {offset}, got {got}"
                    )
                self._verify(name, offset, mv)
                self.stats.record_read(nbytes)
                return out
            with open(src, "rb") as fh:
                fh.seek(offset)
                data = fh.read(nbytes)
            if len(data) != nbytes:
                raise DiskError(
                    f"short read of {name!r} on disk {self.disk_id}: wanted "
                    f"{nbytes} bytes at offset {offset}, got {len(data)}"
                )
            self._verify(name, offset, data)
            self.stats.record_read(nbytes)
            return data

        return self._run_op("read", body)

    def delete(self, name: str) -> None:
        """Remove an object (no error if absent)."""
        if self.read_only:
            raise DiskError(f"disk {self.disk_id} is read-only")
        path = self._path(name)
        with self._lock:
            m = self._mmaps.pop(name, None)
            if m is not None:
                try:
                    m.close()
                except BufferError:
                    pass
            self._sizes.pop(name, None)
            self._spare_sizes.pop(name, None)
            layer = self.parity_layer
            if layer is not None:
                # Fold the object's extents out of their parity rows
                # before the bytes disappear.
                layer.on_delete(self, name)
                spare = layer.spare_path(self) / name
                if spare.exists():
                    os.unlink(spare)
            self.checksums.drop(name)
            if path.exists():
                os.unlink(path)

    def sync(self) -> int:
        """Durability barrier: fsync every object file on this disk,
        the disk's root directory (file creations), and the
        block-checksum sidecars (:meth:`BlockChecksums.sync
        <repro.durability.checksums.BlockChecksums.sync>`).

        Data-plane writes are deliberately page-cache-buffered — the
        paper's 3N/4N byte counts describe data movement, not
        durability traffic — so this barrier is where crash-consistency
        is bought, and the checkpoint layer invokes it before a pass
        manifest becomes durable. Returns the number of files flushed.
        Unmetered (like :meth:`fingerprint`): a barrier moves no data.
        """
        with self._lock:
            names = sorted(self._sizes)
        flushed = 0
        for name in names:
            path = self._path(name)
            if not path.exists():
                continue  # degraded object served from parity/spare
            fd = os.open(path, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
            flushed += 1
        dir_fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        flushed += self.checksums.sync()
        return flushed

    def fingerprint(self, name: str) -> str:
        """SHA-256 hex digest of one object's bytes (shared
        :mod:`repro.durability.hashing` algorithm, so checkpoint
        digests and disk fingerprints cannot drift).

        Unmetered and exempt from fault injection: checkpoint digests
        are bookkeeping, not data movement, and must not perturb the
        byte-exact pass accounting the integration tests assert. On a
        dead disk the digest is taken over the reconstructed spare
        content — the logical object, not the lost medium.
        """
        if self._degraded() and self.parity_layer is not None:
            with self._lock:
                if name not in self._sizes:
                    raise DiskError(f"no object {name!r} on disk {self.disk_id}")
                logical = self._sizes[name]
            return file_digest(self.parity_layer.ensure_spare(self, name, logical))
        path = self._path(name)
        if not path.exists():
            raise DiskError(f"no object {name!r} on disk {self.disk_id}")
        return file_digest(path)


def make_disk_array(
    root: str | Path,
    count: int,
    capacity_bytes: int | None = None,
) -> list[VirtualDisk]:
    """Create ``count`` disks under ``root`` (one subdirectory each)."""
    root = Path(root)
    return [
        VirtualDisk(root / f"disk{d:03d}", disk_id=d, capacity_bytes=capacity_bytes)
        for d in range(count)
    ]
