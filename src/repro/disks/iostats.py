"""Byte-accurate disk I/O accounting.

A *pass* in the paper's sense reads every record once from disk and
writes it back once. The integration tests assert pass counts from these
counters: threaded columnsort must move exactly ``3·N`` records through
read and write, subblock columnsort ``4·N``, M-columnsort ``3·N``.
Counters are thread-safe because each rank runs on its own thread.

``bytes_hashed`` and ``checksum_failures`` meter the durability layer's
verification overhead: bytes fed through the block-checksum CRC on both
the write (compute) and read (verify) sides, and reads whose stored CRC
did not match. They deliberately do not perturb ``reads``/``writes`` or
the byte totals — hashing is not data movement, so the pass-count
invariants stay exact with checksums on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

#: Every counter key in a snapshot/combine, in display order.
IO_KEYS = (
    "reads",
    "writes",
    "bytes_read",
    "bytes_written",
    "read_retries",
    "write_retries",
    "bytes_hashed",
    "checksum_failures",
)


@dataclass
class IoStats:
    """Running I/O totals for one disk (or an aggregate of disks)."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_retries: int = 0
    write_retries: int = 0
    bytes_hashed: int = 0
    checksum_failures: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_read(self, nbytes: int) -> None:
        with self._lock:
            self.reads += 1
            self.bytes_read += nbytes

    def record_write(self, nbytes: int) -> None:
        with self._lock:
            self.writes += 1
            self.bytes_written += nbytes

    def record_retry(self, op: str) -> None:
        """Count one retried operation. Retries are metered separately —
        ``reads``/``writes`` and the byte totals count only successful
        operations, so the pass-count assertions stay exact even under a
        transient fault plan."""
        with self._lock:
            if op == "read":
                self.read_retries += 1
            else:
                self.write_retries += 1

    def record_hashed(self, nbytes: int) -> None:
        """Count bytes run through the block checksum (write-side
        compute and read-side verify alike)."""
        with self._lock:
            self.bytes_hashed += nbytes

    def record_checksum_failure(self, n: int = 1) -> None:
        with self._lock:
            self.checksum_failures += n

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "reads": self.reads,
                "writes": self.writes,
                "bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written,
                "read_retries": self.read_retries,
                "write_retries": self.write_retries,
                "bytes_hashed": self.bytes_hashed,
                "checksum_failures": self.checksum_failures,
            }

    def reset(self) -> None:
        with self._lock:
            self.reads = 0
            self.writes = 0
            self.bytes_read = 0
            self.bytes_written = 0
            self.read_retries = 0
            self.write_retries = 0
            self.bytes_hashed = 0
            self.checksum_failures = 0

    def merge_delta(self, delta: dict) -> None:
        """Fold a counter delta from another process into this meter.

        The process transport's ranks operate on fork-copied disk
        objects; after the join each rank's per-disk snapshot delta is
        merged back here so the parent's disks carry the run's true
        totals, exactly as they would on the thread backend where the
        stats objects are shared."""
        with self._lock:
            for key in IO_KEYS:
                setattr(self, key, getattr(self, key) + delta.get(key, 0))

    @staticmethod
    def combine(stats: list["IoStats"]) -> dict:
        """Aggregate totals across disks."""
        total = {key: 0 for key in IO_KEYS}
        for s in stats:
            snap = s.snapshot()
            for key in total:
                total[key] += snap[key]
        return total
