"""Byte-accurate disk I/O accounting.

A *pass* in the paper's sense reads every record once from disk and
writes it back once. The integration tests assert pass counts from these
counters: threaded columnsort must move exactly ``3·N`` records through
read and write, subblock columnsort ``4·N``, M-columnsort ``3·N``.
Counters are thread-safe because each rank runs on its own thread.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class IoStats:
    """Running I/O totals for one disk (or an aggregate of disks)."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_retries: int = 0
    write_retries: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_read(self, nbytes: int) -> None:
        with self._lock:
            self.reads += 1
            self.bytes_read += nbytes

    def record_write(self, nbytes: int) -> None:
        with self._lock:
            self.writes += 1
            self.bytes_written += nbytes

    def record_retry(self, op: str) -> None:
        """Count one retried operation. Retries are metered separately —
        ``reads``/``writes`` and the byte totals count only successful
        operations, so the pass-count assertions stay exact even under a
        transient fault plan."""
        with self._lock:
            if op == "read":
                self.read_retries += 1
            else:
                self.write_retries += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "reads": self.reads,
                "writes": self.writes,
                "bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written,
                "read_retries": self.read_retries,
                "write_retries": self.write_retries,
            }

    def reset(self) -> None:
        with self._lock:
            self.reads = 0
            self.writes = 0
            self.bytes_read = 0
            self.bytes_written = 0
            self.read_retries = 0
            self.write_retries = 0

    @staticmethod
    def combine(stats: list["IoStats"]) -> dict:
        """Aggregate totals across disks."""
        total = {
            "reads": 0,
            "writes": 0,
            "bytes_read": 0,
            "bytes_written": 0,
            "read_retries": 0,
            "write_retries": 0,
        }
        for s in stats:
            snap = s.snapshot()
            for key in total:
                total[key] += snap[key]
        return total
