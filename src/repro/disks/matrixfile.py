"""Out-of-core matrix and output stores.

Three layouts, matching the paper's data placement (§2):

* :class:`ColumnStore` — the ``r × s`` matrix with whole columns owned
  by processor ``j mod P``, each column contiguous on one of its owner's
  disks (threaded and subblock columnsort);
* :class:`StripedColumnStore` — M-columnsort's height interpretation
  ``r = M``: every column spans the entire cluster, processor ``p``
  holding rows ``[p·r/P, (p+1)·r/P)`` of each column on its own disks;
* :class:`PdmStore` — the final output in PDM striped ordering.

Intermediate passes exploit a freedom the real implementation also
exploits (footnote 5 discusses the write-pattern/sorted-run interplay):
records within a column may be stored in any order between passes,
because the next pass begins by sorting the column. The ``append_*``
methods exist for exactly that — the subblock pass routes unequal
record counts to a column in different rounds, so positions are
assigned by arrival, not by source.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.disks.pdm import split_range_by_disk, split_range_by_owner
from repro.disks.virtual_disk import VirtualDisk
from repro.errors import ConfigError, DiskError
from repro.membuf import copy_stats, get_pool, legacy_copies
from repro.records.format import RecordFormat


class _StoreBase:
    def __init__(
        self,
        cfg: ClusterConfig,
        fmt: RecordFormat,
        disks: list[VirtualDisk],
        name: str,
        parity: bool = False,
    ) -> None:
        if len(disks) != cfg.virtual_disks:
            raise ConfigError(
                f"store needs {cfg.virtual_disks} disks, got {len(disks)}"
            )
        if parity:
            # Opt-in durability: one XOR parity domain shared by the
            # whole disk array (idempotent across stores on it).
            from repro.durability import attach_durability

            attach_durability(disks, parity=True)
        self.cfg = cfg
        self.fmt = fmt
        self.disks = disks
        self.name = name

    # -- data-plane seams ------------------------------------------------
    #
    # All store reads and writes funnel through these two helpers so the
    # REPRO_LEGACY_COPIES switch flips the entire disk seam at once.

    def _read_records(
        self,
        disk: VirtualDisk,
        file: str,
        offset_records: int,
        n: int,
        reuse: bool = False,
    ) -> np.ndarray:
        """Read ``n`` records at record offset ``offset_records``.

        Zero-copy path: bytes land via ``readinto`` in a fresh array, or
        — with ``reuse=True`` — in a tracked :class:`BufferPool` lease
        the caller must eventually :meth:`~BufferPool.recycle`. Legacy
        path: ``bytes`` round-trip plus ``frombuffer(...).copy()``.
        """
        nbytes = self.fmt.nbytes(n)
        offset = self.fmt.nbytes(offset_records)
        if legacy_copies():
            return self.fmt.from_bytes(disk.read_at(file, offset, nbytes))
        pool = get_pool() if reuse else None
        out = pool.lease(self.fmt.dtype, n) if pool else self.fmt.empty(n)
        try:
            disk.read_at(file, offset, nbytes, out=out)
        except BaseException:
            if pool:
                pool.recycle(out)
            raise
        copy_stats().record_zero_copy(nbytes)
        return out

    def _wire(self, records: np.ndarray) -> memoryview | bytes:
        """On-disk bytes of ``records`` — a view of their memory on the
        zero-copy path, a serialized copy on the legacy path."""
        if legacy_copies():
            return self.fmt.to_bytes(records)
        return self.fmt.wire_view(records)

    def io_totals(self) -> dict:
        """Aggregate I/O across this store's disks (includes any other
        stores sharing the same disks)."""
        from repro.disks.iostats import IoStats

        return IoStats.combine([d.stats for d in self.disks])


class ColumnStore(_StoreBase):
    """An ``r × s`` matrix stored as whole columns, column ``j`` owned by
    processor ``j mod P`` and resident on one of its owner's disks
    (cycling over the owner's ``D/P`` disks by column)."""

    def __init__(
        self,
        cfg: ClusterConfig,
        fmt: RecordFormat,
        r: int,
        s: int,
        disks: list[VirtualDisk],
        name: str = "matrix",
        parity: bool = False,
    ) -> None:
        super().__init__(cfg, fmt, disks, name, parity=parity)
        if s % cfg.p:
            raise ConfigError(
                f"P={cfg.p} must divide the number of columns s={s}"
            )
        self.r = r
        self.s = s
        self._cursors: dict[int, int] = {}
        self._cursor_lock = threading.Lock()

    # -- placement ------------------------------------------------------

    def owner(self, j: int) -> int:
        """Processor owning column ``j``."""
        self._check_col(j)
        return self.cfg.owner_of_column(j)

    def disk_for(self, j: int) -> VirtualDisk:
        """The disk holding column ``j``."""
        owned = list(self.cfg.disks_of(self.owner(j)))
        return self.disks[owned[(j // self.cfg.p) % len(owned)]]

    def _file(self, j: int) -> str:
        return f"{self.name}.col{j:06d}"

    def _check_col(self, j: int) -> None:
        if not 0 <= j < self.s:
            raise ConfigError(f"column {j} out of range for s={self.s}")

    def _check_owner(self, rank: int, j: int) -> None:
        owner = self.owner(j)
        if rank != owner:
            raise DiskError(
                f"rank {rank} cannot access column {j}: owned by rank {owner}"
            )

    # -- whole-column I/O -------------------------------------------------

    def write_column(self, rank: int, j: int, records: np.ndarray) -> None:
        """Write a full column (must hold exactly ``r`` records)."""
        self._check_owner(rank, j)
        if len(records) != self.r:
            raise ConfigError(
                f"column {j} must hold r={self.r} records, got {len(records)}"
            )
        self.disk_for(j).write_at(self._file(j), 0, self._wire(records))

    def read_column(self, rank: int, j: int, reuse: bool = False) -> np.ndarray:
        """Read a full column. ``reuse=True`` returns a tracked
        :class:`~repro.membuf.BufferPool` lease the caller must recycle
        when the column's lifetime ends."""
        self._check_owner(rank, j)
        return self._read_records(
            self.disk_for(j), self._file(j), 0, self.r, reuse=reuse
        )

    def write_segment(
        self, rank: int, j: int, row_offset: int, records: np.ndarray
    ) -> None:
        """Write ``records`` at rows ``[row_offset, row_offset+len)`` of
        column ``j``."""
        self._check_owner(rank, j)
        if row_offset < 0 or row_offset + len(records) > self.r:
            raise ConfigError(
                f"segment [{row_offset}, {row_offset + len(records)}) exceeds "
                f"column height r={self.r}"
            )
        self.disk_for(j).write_at(
            self._file(j),
            self.fmt.nbytes(row_offset),
            self._wire(records),
        )

    def append_to_column(self, rank: int, j: int, records: np.ndarray) -> None:
        """Write ``records`` at the column's current append cursor.

        Used by passes whose per-round contributions to a column are
        unequal (the subblock pass); the next pass sorts the column, so
        arrival order is immaterial. Thread-safe: the cursor range is
        reserved under a lock, so concurrent appenders (the main rank
        thread plus a write-behind flusher) land in disjoint rows.
        """
        with self._cursor_lock:
            cursor = self._cursors.get(j, 0)
            if cursor + len(records) <= self.r:
                self._cursors[j] = cursor + len(records)
            # else: don't reserve — write_segment raises, cursor unchanged
        self.write_segment(rank, j, cursor, records)

    def reset_cursors(self) -> None:
        """Clear append cursors (call between passes)."""
        with self._cursor_lock:
            self._cursors.clear()

    def cursor(self, j: int) -> int:
        """Current append cursor of column ``j`` (rows already written)."""
        with self._cursor_lock:
            return self._cursors.get(j, 0)

    # -- bulk load/dump (test and example harnesses; not metered passes) --

    @classmethod
    def from_records(
        cls,
        cfg: ClusterConfig,
        fmt: RecordFormat,
        records: np.ndarray,
        r: int,
        s: int,
        disks: list[VirtualDisk],
        name: str = "input",
        parity: bool = False,
    ) -> "ColumnStore":
        """Create a store holding ``records`` in column-major order:
        column ``j`` is ``records[j·r : (j+1)·r]``."""
        if len(records) != r * s:
            raise ConfigError(
                f"need exactly r·s={r * s} records, got {len(records)}"
            )
        store = cls(cfg, fmt, r, s, disks, name, parity=parity)
        for j in range(s):
            store.write_column(store.owner(j), j, records[j * r : (j + 1) * r])
        return store

    def to_records(self) -> np.ndarray:
        """Read the whole matrix back in column-major order."""
        out = self.fmt.empty(self.r * self.s)
        for j in range(self.s):
            out[j * self.r : (j + 1) * self.r] = self.read_column(self.owner(j), j)
        return out

    def delete(self) -> None:
        """Remove all column files (frees simulated disk space)."""
        for j in range(self.s):
            self.disk_for(j).delete(self._file(j))


class StripedColumnStore(_StoreBase):
    """M-columnsort's layout: an ``r × s`` matrix with ``r = M``; every
    column is shared by all processors, processor ``p`` holding rows
    ``[p·r/P, (p+1)·r/P)`` of each column on its own disks."""

    def __init__(
        self,
        cfg: ClusterConfig,
        fmt: RecordFormat,
        r: int,
        s: int,
        disks: list[VirtualDisk],
        name: str = "mmatrix",
        parity: bool = False,
    ) -> None:
        super().__init__(cfg, fmt, disks, name, parity=parity)
        if r % cfg.p:
            raise ConfigError(f"P={cfg.p} must divide the column height r={r}")
        self.r = r
        self.s = s
        self.portion = r // cfg.p
        self._cursors: dict[tuple[int, int], int] = {}
        self._cursor_lock = threading.Lock()

    def _file(self, j: int, rank: int) -> str:
        return f"{self.name}.col{j:06d}.part{rank:03d}"

    def _disk_for(self, j: int, rank: int) -> VirtualDisk:
        owned = list(self.cfg.disks_of(rank))
        return self.disks[owned[j % len(owned)]]

    def _check(self, rank: int, j: int) -> None:
        self.cfg.check_rank(rank)
        if not 0 <= j < self.s:
            raise ConfigError(f"column {j} out of range for s={self.s}")

    def write_portion(self, rank: int, j: int, records: np.ndarray) -> None:
        """Write rank's full portion (``r/P`` records) of column ``j``."""
        self._check(rank, j)
        if len(records) != self.portion:
            raise ConfigError(
                f"portion must hold r/P={self.portion} records, got {len(records)}"
            )
        self._disk_for(j, rank).write_at(
            self._file(j, rank), 0, self._wire(records)
        )

    def read_portion(self, rank: int, j: int, reuse: bool = False) -> np.ndarray:
        """Read rank's portion of column ``j``. ``reuse=True`` returns a
        tracked pool lease the caller must recycle."""
        self._check(rank, j)
        return self._read_records(
            self._disk_for(j, rank), self._file(j, rank), 0, self.portion,
            reuse=reuse,
        )

    def write_portion_segment(
        self, rank: int, j: int, row_offset: int, records: np.ndarray
    ) -> None:
        """Write ``records`` at offset ``row_offset`` *within the rank's
        portion* of column ``j``."""
        self._check(rank, j)
        if row_offset < 0 or row_offset + len(records) > self.portion:
            raise ConfigError(
                f"segment [{row_offset}, {row_offset + len(records)}) exceeds "
                f"portion height r/P={self.portion}"
            )
        self._disk_for(j, rank).write_at(
            self._file(j, rank),
            self.fmt.nbytes(row_offset),
            self._wire(records),
        )

    def append_to_portion(self, rank: int, j: int, records: np.ndarray) -> None:
        """Append ``records`` to the rank's portion of column ``j`` at its
        current cursor (positions assigned by arrival; the next pass
        sorts the column). Thread-safe: concurrent appenders reserve
        disjoint cursor ranges."""
        key = (j, rank)
        with self._cursor_lock:
            cursor = self._cursors.get(key, 0)
            if cursor + len(records) <= self.portion:
                self._cursors[key] = cursor + len(records)
            # else: don't reserve — write_portion_segment raises
        self.write_portion_segment(rank, j, cursor, records)

    def reset_cursors(self) -> None:
        with self._cursor_lock:
            self._cursors.clear()

    def cursor(self, rank: int, j: int) -> int:
        with self._cursor_lock:
            return self._cursors.get((j, rank), 0)

    @classmethod
    def from_records(
        cls,
        cfg: ClusterConfig,
        fmt: RecordFormat,
        records: np.ndarray,
        r: int,
        s: int,
        disks: list[VirtualDisk],
        name: str = "minput",
        parity: bool = False,
    ) -> "StripedColumnStore":
        """Create a store holding ``records`` in column-major order."""
        if len(records) != r * s:
            raise ConfigError(f"need exactly r·s={r * s} records, got {len(records)}")
        store = cls(cfg, fmt, r, s, disks, name, parity=parity)
        for j in range(s):
            col = records[j * r : (j + 1) * r]
            for p in range(cfg.p):
                store.write_portion(
                    p, j, col[p * store.portion : (p + 1) * store.portion]
                )
        return store

    def to_records(self) -> np.ndarray:
        """Read the whole matrix back in column-major order."""
        out = self.fmt.empty(self.r * self.s)
        for j in range(self.s):
            base = j * self.r
            for p in range(self.cfg.p):
                out[base + p * self.portion : base + (p + 1) * self.portion] = (
                    self.read_portion(p, j)
                )
        return out

    def delete(self) -> None:
        for j in range(self.s):
            for p in range(self.cfg.p):
                self._disk_for(j, p).delete(self._file(j, p))


class GroupColumnStore(_StoreBase):
    """The adjustable height interpretation's layout (§6, second
    future-work item): ``r = g·M/P`` with ``1 ≤ g ≤ P``.

    Processors form ``G = P/g`` groups of ``g``; column ``j`` is owned
    by group ``j mod G`` and striped over that group's members,
    ``r/g`` records each. ``g = 1`` reduces to whole-column ownership
    (:class:`ColumnStore`'s placement); ``g = P`` to M-columnsort's
    (:class:`StripedColumnStore`).
    """

    def __init__(
        self,
        cfg: ClusterConfig,
        fmt: RecordFormat,
        r: int,
        s: int,
        disks: list[VirtualDisk],
        group_size: int,
        name: str = "gmatrix",
        parity: bool = False,
    ) -> None:
        super().__init__(cfg, fmt, disks, name, parity=parity)
        if group_size < 1 or cfg.p % group_size:
            raise ConfigError(
                f"group size g={group_size} must divide P={cfg.p}"
            )
        if r % group_size:
            raise ConfigError(
                f"group size g={group_size} must divide column height r={r}"
            )
        self.g = group_size
        self.groups = cfg.p // group_size
        if s % self.groups:
            raise ConfigError(
                f"group count G={self.groups} must divide s={s}"
            )
        self.r = r
        self.s = s
        self.portion = r // group_size
        self._cursors: dict[tuple[int, int], int] = {}
        self._cursor_lock = threading.Lock()

    # -- placement ------------------------------------------------------

    def group_of_rank(self, rank: int) -> int:
        self.cfg.check_rank(rank)
        return rank // self.g

    def member_of_rank(self, rank: int) -> int:
        self.cfg.check_rank(rank)
        return rank % self.g

    def owner_group(self, j: int) -> int:
        self._check_col(j)
        return j % self.groups

    def rank_of(self, j: int, member: int) -> int:
        """World rank of a member of column ``j``'s owning group."""
        if not 0 <= member < self.g:
            raise ConfigError(f"member {member} out of range for g={self.g}")
        return self.owner_group(j) * self.g + member

    def _check_col(self, j: int) -> None:
        if not 0 <= j < self.s:
            raise ConfigError(f"column {j} out of range for s={self.s}")

    def _check_access(self, rank: int, j: int) -> int:
        """Validate and return the rank's member index for column ``j``."""
        if self.group_of_rank(rank) != self.owner_group(j):
            raise DiskError(
                f"rank {rank} (group {self.group_of_rank(rank)}) cannot "
                f"access column {j} (owned by group {self.owner_group(j)})"
            )
        return self.member_of_rank(rank)

    def _file(self, j: int, member: int) -> str:
        return f"{self.name}.col{j:06d}.part{member:03d}"

    def _disk_for(self, j: int, rank: int) -> VirtualDisk:
        owned = list(self.cfg.disks_of(rank))
        return self.disks[owned[(j // self.groups) % len(owned)]]

    # -- portion I/O ------------------------------------------------------

    def read_portion(self, rank: int, j: int, reuse: bool = False) -> np.ndarray:
        member = self._check_access(rank, j)
        return self._read_records(
            self._disk_for(j, rank), self._file(j, member), 0, self.portion,
            reuse=reuse,
        )

    def write_portion(self, rank: int, j: int, records: np.ndarray) -> None:
        member = self._check_access(rank, j)
        if len(records) != self.portion:
            raise ConfigError(
                f"portion must hold r/g={self.portion} records, got {len(records)}"
            )
        self._disk_for(j, rank).write_at(
            self._file(j, member), 0, self._wire(records)
        )

    def append_to_portion(self, rank: int, j: int, records: np.ndarray) -> None:
        member = self._check_access(rank, j)
        key = (j, member)
        with self._cursor_lock:
            cursor = self._cursors.get(key, 0)
            if cursor + len(records) > self.portion:
                raise ConfigError(
                    f"append of {len(records)} records overflows portion of "
                    f"column {j} (cursor {cursor}, portion {self.portion})"
                )
            self._cursors[key] = cursor + len(records)
        self._disk_for(j, rank).write_at(
            self._file(j, member),
            self.fmt.nbytes(cursor),
            self._wire(records),
        )

    def reset_cursors(self) -> None:
        with self._cursor_lock:
            self._cursors.clear()

    # -- bulk load/dump ----------------------------------------------------

    @classmethod
    def from_records(
        cls,
        cfg: ClusterConfig,
        fmt: RecordFormat,
        records: np.ndarray,
        r: int,
        s: int,
        disks: list[VirtualDisk],
        group_size: int,
        name: str = "ginput",
        parity: bool = False,
    ) -> "GroupColumnStore":
        if len(records) != r * s:
            raise ConfigError(f"need exactly r·s={r * s} records, got {len(records)}")
        store = cls(cfg, fmt, r, s, disks, group_size, name, parity=parity)
        for j in range(s):
            col = records[j * r : (j + 1) * r]
            for member in range(group_size):
                store.write_portion(
                    store.rank_of(j, member),
                    j,
                    col[member * store.portion : (member + 1) * store.portion],
                )
        return store

    def to_records(self) -> np.ndarray:
        out = self.fmt.empty(self.r * self.s)
        for j in range(self.s):
            base = j * self.r
            for member in range(self.g):
                out[
                    base + member * self.portion : base + (member + 1) * self.portion
                ] = self.read_portion(self.rank_of(j, member), j)
        return out

    def delete(self) -> None:
        for j in range(self.s):
            for member in range(self.g):
                rank = self.rank_of(j, member)
                self._disk_for(j, rank).delete(self._file(j, member))


class PdmStore(_StoreBase):
    """The sorted output, in PDM striped ordering.

    Global record ``g`` lives in block ``g div B`` on disk
    ``(g div B) mod D``; disk ``d`` is written by processor ``d mod P``.
    """

    def __init__(
        self,
        cfg: ClusterConfig,
        fmt: RecordFormat,
        n: int,
        disks: list[VirtualDisk],
        block_records: int,
        name: str = "output",
        parity: bool = False,
    ) -> None:
        super().__init__(cfg, fmt, disks, name, parity=parity)
        if block_records <= 0:
            raise ConfigError(f"block size must be positive, got {block_records}")
        self.n = n
        self.block = block_records

    def _file(self, disk: int) -> str:
        return f"{self.name}.pdm{disk:03d}"

    def split_by_owner(self, start: int, count: int) -> dict[int, list]:
        """Group ``[start, start+count)`` into per-owning-processor piece
        lists — the routing table for the final communicate stage."""
        self._check_range(start, count)
        return split_range_by_owner(
            start, count, self.block, self.cfg.virtual_disks, self.cfg.p
        )

    def write_global(self, rank: int, start: int, records: np.ndarray) -> None:
        """Write ``records`` at global positions ``[start, start+len)``.
        Every touched block must live on one of ``rank``'s disks."""
        self._check_range(start, len(records))
        for disk, offset, rel, n in split_range_by_disk(
            start, len(records), self.block, self.cfg.virtual_disks
        ):
            if self.cfg.owner_of_disk(disk) != rank:
                raise DiskError(
                    f"rank {rank} cannot write global records at disk {disk} "
                    f"(owned by rank {self.cfg.owner_of_disk(disk)})"
                )
            self.disks[disk].write_at(
                self._file(disk),
                self.fmt.nbytes(offset),
                self._wire(records[rel : rel + n]),
            )

    def read_global(self, start: int, count: int) -> np.ndarray:
        """Read ``[start, start+count)`` in global order (verification)."""
        self._check_range(start, count)
        out = self.fmt.empty(count)
        legacy = legacy_copies()
        for disk, offset, rel, n in split_range_by_disk(
            start, count, self.block, self.cfg.virtual_disks
        ):
            if legacy:
                data = self.disks[disk].read_at(
                    self._file(disk), self.fmt.nbytes(offset), self.fmt.nbytes(n)
                )
                out[rel : rel + n] = self.fmt.from_bytes(data)
            else:
                # A step-1 slice of a fresh array is C-contiguous, so the
                # read lands in place — no staging buffer.
                self.disks[disk].read_at(
                    self._file(disk),
                    self.fmt.nbytes(offset),
                    self.fmt.nbytes(n),
                    out=out[rel : rel + n],
                )
                copy_stats().record_zero_copy(self.fmt.nbytes(n))
        return out

    def read_all(self) -> np.ndarray:
        """The full output in global order."""
        return self.read_global(0, self.n)

    def _check_range(self, start: int, count: int) -> None:
        if start < 0 or count < 0 or start + count > self.n:
            raise ConfigError(
                f"global range [{start}, {start + count}) exceeds N={self.n}"
            )

    def delete(self) -> None:
        for disk in range(self.cfg.virtual_disks):
            self.disks[disk].delete(self._file(disk))
