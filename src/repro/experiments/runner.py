"""One-call text report over every experiment."""

from __future__ import annotations

import io

from repro.experiments.breakdown import breakdown_table, io_boundedness
from repro.experiments.figure2 import figure2_claims, figure2_series, render_figure2
from repro.experiments.tables import (
    bounds_table,
    coverage_table,
    crossover_table,
    msgcount_table,
    render_table,
)


def full_report() -> str:
    """Regenerate everything: Figure 2, the claim checklist, and the
    four tables. This is what ``repro-columnsort report`` prints and
    what EXPERIMENTS.md records."""
    out = io.StringIO()
    series = figure2_series()
    print(render_figure2(series), file=out)
    print(file=out)
    print("Figure 2 claims (paper §5):", file=out)
    for claim, ok in figure2_claims(series).items():
        print(f"  [{'ok' if ok else 'FAIL'}] {claim}", file=out)
    print(file=out)
    print("T-bounds — problem-size bounds (records), P=16:", file=out)
    print(render_table(bounds_table()), file=out)
    print(file=out)
    print("T-crossover — M-columnsort vs subblock reach (M < 32·P^10):", file=out)
    print(render_table(crossover_table()), file=out)
    print(file=out)
    print("T-msgcount — subblock-pass messages per round (⌈P/√s⌉):", file=out)
    print(render_table(msgcount_table()), file=out)
    print(file=out)
    print("Coverage — eligible problem sizes (P=16, 64-byte records):", file=out)
    print(render_table(coverage_table()), file=out)
    print(file=out)
    rows = breakdown_table()
    print("T-breakdown — per-pass timing (8 GB, P=8, buffer 2^25):", file=out)
    print(render_table(rows), file=out)
    print(file=out)
    print("I/O-boundedness (mean I/O-thread utilization):", file=out)
    for alg, util in io_boundedness(rows).items():
        print(f"  {alg:9s} {util:5.1f}%", file=out)
    return out.getvalue()
