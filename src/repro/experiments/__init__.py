"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`~repro.experiments.figure2` — the paper's single results
  figure: seconds per (GB/processor) versus total data sorted, for
  threaded/subblock/M-columnsort at buffer sizes 2^24 and 2^25 bytes
  plus the 3- and 4-pass baseline I/O times;
* :mod:`~repro.experiments.tables` — the in-text quantitative claims as
  tables: problem-size bounds (T-bounds), the ``M < 32·P^10`` crossover
  (T-crossover), subblock-pass message counts (T-msgcount), and the
  eligible-problem-size coverage that explains Figure 2's disjoint
  subblock lines;
* :mod:`~repro.experiments.runner` — one-call text report over all of
  the above (also ``python -m repro.cli report``).
"""

from repro.experiments.figure2 import (
    FIGURE2_POINTS,
    figure2_claims,
    figure2_series,
    render_figure2,
)
from repro.experiments.tables import (
    bounds_table,
    coverage_table,
    crossover_table,
    msgcount_table,
    render_table,
)
from repro.experiments.breakdown import breakdown_table, io_boundedness
from repro.experiments.runner import full_report

__all__ = [
    "FIGURE2_POINTS",
    "figure2_series",
    "figure2_claims",
    "render_figure2",
    "bounds_table",
    "crossover_table",
    "msgcount_table",
    "coverage_table",
    "render_table",
    "breakdown_table",
    "io_boundedness",
    "full_report",
]
