"""T-breakdown — where the time goes, per pass and per thread.

The paper's §5 narrative ("threaded columnsort is almost purely
I/O-bound", "M-columnsort is not nearly as I/O-bound") as a table: for
each algorithm and pass, the predicted makespan, the bottleneck
thread, and that thread's utilization — computed by the same DES that
regenerates Figure 2.
"""

from __future__ import annotations

from repro.durability.hashing import CHECKSUM_ALGO
from repro.simulate.hardware import BEOWULF_2003, HardwareModel
from repro.simulate.predict import max_inflight_for, predict_run
from repro.simulate.traces import TRACE_BUILDERS

GB = 2**30


def breakdown_table(
    gb_total: int = 8,
    p: int = 8,
    buffer_bytes: int = 2**25,
    record_size: int = 64,
    hw: HardwareModel = BEOWULF_2003,
    algorithms: tuple = ("threaded", "subblock", "m", "hybrid"),
) -> list[dict]:
    """Per-pass rows for each algorithm that can run this configuration."""
    n = gb_total * GB // record_size
    rows: list[dict] = []
    for algorithm in algorithms:
        try:
            run = TRACE_BUILDERS[algorithm](n, p, buffer_bytes // record_size,
                                            record_size)
        except Exception:
            continue  # not eligible at this size/buffer
        timing = predict_run(run, hw)
        for pass_trace, pass_timing in zip(run.passes, timing.per_pass):
            rows.append(
                {
                    "algorithm": algorithm,
                    "pass": pass_trace.name,
                    "stages": len(pass_trace.stages),
                    "rounds": pass_timing.rounds,
                    "depth": pass_timing.max_inflight,
                    "makespan (s)": pass_timing.makespan,
                    "bottleneck": pass_timing.bottleneck_thread,
                    "util %": 100 * pass_timing.utilization(
                        pass_timing.bottleneck_thread
                    ),
                    "io util %": 100 * pass_timing.utilization("io"),
                }
            )
    return rows


def measured_breakdown_table(result) -> list[dict]:
    """Per-pass rows of *measured* stage wall time for a functional run.

    ``result`` is an :class:`~repro.oocs.base.OocResult` from a traced
    run; each row reports the rank-0 seconds the pass pipeline spent in
    every stage category, mirroring :func:`breakdown_table`'s predicted
    rows so before/after (synchronous vs pipelined) comparisons line up
    column-for-column.
    """
    if result.trace is None:
        return []
    categories = ("read_wait", "compute", "comm", "incore", "write_wait")
    rows: list[dict] = []
    for pass_trace in result.trace.passes:
        wall = pass_trace.wall
        row = {
            "algorithm": result.algorithm,
            "pass": pass_trace.name,
            "depth": result.job.pipeline_depth,
        }
        for cat in categories:
            row[f"{cat} (s)"] = wall.get(cat, 0.0)
        row["total (s)"] = sum(wall.values())
        rows.append(row)
    return rows


def copy_breakdown_table(result) -> list[dict]:
    """Data-plane copy accounting for a functional run, as table rows.

    ``result`` is an :class:`~repro.oocs.base.OocResult`; its ``copy``
    dict is the per-run delta of the :mod:`repro.membuf` counters. Rows
    pair each counter with a short gloss so the rendered table reads as
    a narrative: how many bytes were physically copied, how many moved
    as views, and how well the buffer pool recycled.
    """
    copy = getattr(result, "copy", None) or {}
    if not copy:
        return []
    moved = copy.get("bytes_copied", 0) + copy.get("bytes_zero_copy", 0)
    pool_ops = copy.get("pool_hits", 0) + copy.get("pool_misses", 0)
    rows = [
        {
            "metric": "bytes copied",
            "value": copy.get("bytes_copied", 0),
            "note": "physical memcpy traffic",
        },
        {
            "metric": "bytes zero-copy",
            "value": copy.get("bytes_zero_copy", 0),
            "note": "moved as views / readinto",
        },
        {
            "metric": "copy fraction %",
            "value": round(100 * copy.get("bytes_copied", 0) / moved, 1)
            if moved
            else 0.0,
            "note": "copied share of all bytes moved",
        },
        {
            "metric": "pool hit rate %",
            "value": round(100 * copy.get("pool_hits", 0) / pool_ops, 1)
            if pool_ops
            else 0.0,
            "note": f"{copy.get('pool_hits', 0)} hits / "
            f"{copy.get('pool_misses', 0)} misses",
        },
        {
            "metric": "peak leases",
            "value": copy.get("peak_leases", 0),
            "note": "high-water outstanding buffers",
        },
    ]
    # Shared-memory arena rows only when the transport produced arena
    # activity (process backend); the thread backend has no segments and
    # all-zero rows there would read as a disabled feature, not a fact.
    arena_ops = copy.get("arena_hits", 0) + copy.get("arena_misses", 0)
    if arena_ops:
        rows.extend(
            [
                {
                    "metric": "arena hit rate %",
                    "value": round(100 * copy.get("arena_hits", 0) / arena_ops, 1),
                    "note": f"{copy.get('arena_hits', 0)} slab reuses / "
                    f"{copy.get('arena_misses', 0)} segment creates",
                },
                {
                    "metric": "segment attaches",
                    "value": copy.get("attach_count", 0),
                    "note": "first-time receiver mappings",
                },
                {
                    "metric": "bytes landed zero-extra-copy",
                    "value": copy.get("bytes_landed_zero_extra_copy", 0),
                    "note": "inbound slices landed in pooled buffers",
                },
            ]
        )
    for row in rows:
        row["algorithm"] = result.algorithm
    return rows


def resilience_breakdown_table(result) -> list[dict]:
    """Fault-recovery accounting for a functional run, as table rows.

    ``result`` is an :class:`~repro.oocs.base.OocResult`; the rows pair
    each retry counter with the operations it shadows, so the rendered
    table answers "how much weather did this run survive": disk reads
    and writes retried (from :class:`~repro.disks.iostats.IoStats`) and
    mailbox sends retried (from the SPMD world's router). All-zero rows
    mean a fault-free run, not a disabled layer.
    """
    io = getattr(result, "io", None) or {}
    comm = getattr(result, "comm_total", None) or {}
    rows = [
        {
            "metric": "read retries",
            "value": io.get("read_retries", 0),
            "note": f"over {io.get('reads', 0)} reads",
        },
        {
            "metric": "write retries",
            "value": io.get("write_retries", 0),
            "note": f"over {io.get('writes', 0)} writes",
        },
        {
            "metric": "comm retries",
            "value": comm.get("retries", 0),
            "note": f"over {comm.get('messages', 0)} messages",
        },
    ]
    for row in rows:
        row["algorithm"] = result.algorithm
    return rows


def durability_breakdown_table(result) -> list[dict]:
    """Durability accounting for a functional run, as table rows.

    ``result`` is an :class:`~repro.oocs.base.OocResult`; the rows
    render its ``durability`` dict (checksums verified, corruption
    caught and repaired, parity maintenance traffic, degraded-mode
    service) next to the run's data I/O, so the table answers both "did
    the bytes survive" and "what did the insurance cost". Empty when
    the run attached no durability layer.
    """
    dur = getattr(result, "durability", None) or {}
    io = getattr(result, "io", None) or {}
    if not dur:
        return []
    degraded = dur.get("degraded_disks", [])
    rows = [
        {
            "metric": "bytes hashed",
            "value": io.get("bytes_hashed", 0),
            "note": f"CRC ({CHECKSUM_ALGO}) over writes + read verification",
        },
        {
            "metric": "checksum failures",
            "value": dur.get("checksum_failures", 0),
            "note": "corrupt blocks detected on read",
        },
        {
            "metric": "blocks repaired",
            "value": dur.get("repaired_blocks", 0),
            "note": "rebuilt in place from parity",
        },
        {
            "metric": "degraded disks",
            "value": len(degraded),
            "note": "ids " + ", ".join(map(str, degraded)) if degraded
            else "no disk declared dead",
        },
        {
            "metric": "blocks reconstructed",
            "value": dur.get("reconstructed_blocks", 0),
            "note": "served from surviving D-1 disks",
        },
        {
            "metric": "spare writes",
            "value": dur.get("spare_writes", 0),
            "note": "writes rerouted off dead disks",
        },
    ]
    if dur.get("parity"):
        overhead = dur.get("parity_bytes_read", 0) + dur.get(
            "parity_bytes_written", 0
        )
        data = io.get("bytes_read", 0) + io.get("bytes_written", 0)
        rows.append(
            {
                "metric": "parity I/O bytes",
                "value": overhead,
                "note": f"{100 * overhead / data:.1f}% of data I/O"
                if data
                else "no data I/O",
            }
        )
    if "audited_passes" in dur:
        rows.append(
            {
                "metric": "audited passes",
                "value": dur.get("audited_passes", 0),
                "note": f"{dur.get('audited_units', 0)} sampled units verified",
            }
        )
    for row in rows:
        row["algorithm"] = result.algorithm
    return rows


def governance_breakdown_table(result) -> list[dict]:
    """Resource-governance accounting for a functional run, as table rows.

    ``result`` is an :class:`~repro.oocs.base.OocResult`; the rows
    render its ``governor`` dict — cancellation checks, pool-budget
    pressure (stalls, evictions, peak held bytes), the disk-full
    reclaim/degrade ladder, pipeline-depth downshifts, and admission
    facts when the job went through a
    :class:`~repro.governor.JobGovernor` — so the table answers "what
    did the governor do to keep this run inside its budgets". Empty
    when the run recorded no governance counters.
    """
    gov = getattr(result, "governor", None) or {}
    if not gov:
        return []
    rows = [
        {
            "metric": "cancel checks",
            "value": gov.get("cancel_checks", 0),
            "note": (
                f"deadline {gov['deadline_s']:.1f}s"
                if gov.get("deadline_s") is not None
                else "no deadline armed"
            ),
        },
        {
            "metric": "budget stalls",
            "value": gov.get("budget_stalls", 0),
            "note": (
                f"budget {gov['budget_bytes']:,} B, "
                f"peak held {gov.get('peak_held_bytes', 0):,} B"
                if gov.get("budget_bytes") is not None
                else "pool budget unlimited"
            ),
        },
        {
            "metric": "budget evictions",
            "value": gov.get("budget_evictions", 0),
            "note": "free buffers dropped to fit the budget",
        },
        {
            "metric": "disk-full events",
            "value": gov.get("disk_full_events", 0),
            "note": f"{gov.get('scratch_reclaims', 0)} reclaims freed "
            f"{gov.get('reclaimed_bytes', 0):,} B",
        },
        {
            "metric": "depth downshifts",
            "value": gov.get("depth_downshifts", 0)
            + (1 if gov.get("degraded") else 0),
            "note": "degraded: read-ahead + parity maintenance off"
            if gov.get("degraded")
            else "pipeline depth reduced under pool pressure",
        },
    ]
    if "admission_wait_s" in gov:
        rows.append(
            {
                "metric": "admission wait (s)",
                "value": round(gov["admission_wait_s"], 3),
                "note": f"admitted {gov.get('admitted_mem_bytes', 0):,} B mem / "
                f"{gov.get('admitted_scratch_bytes', 0):,} B scratch",
            }
        )
    for row in rows:
        row["algorithm"] = result.algorithm
    return rows


def supervisor_breakdown_table(result) -> list[dict]:
    """Supervised-recovery accounting for a run, as table rows.

    ``result`` is an :class:`~repro.oocs.base.OocResult` (or anything
    carrying a ``supervisor`` dict in the
    :class:`~repro.resilience.supervisor.SupervisorStats` shape); the
    rows answer "what did supervision do": restarts taken against the
    policy's budget, wall-clock spent recovering, and one row per
    failed attempt naming its cause, the failing rank, and where the
    relaunch resumed. Empty when the run carried no restart policy.
    """
    sup = getattr(result, "supervisor", None) or {}
    if not sup:
        return []
    rows = [
        {
            "metric": "restarts",
            "value": sup.get("restarts", 0),
            "note": f"of {sup.get('max_restarts', 0)} allowed",
        },
        {
            "metric": "restart wall (s)",
            "value": round(sup.get("restart_wall", 0.0), 3),
            "note": "teardown sweep + backoff + resume validation",
        },
    ]
    for entry in sup.get("attempts", []):
        if entry.get("restarted"):
            resumed = entry.get("resumed_from_pass")
            note = (
                "restarted from scratch"
                if resumed in (None, 0)
                else f"restarted after pass {resumed}"
            )
            note += f" (backoff {entry.get('backoff_s', 0.0):.3f}s)"
        else:
            note = (
                "fatal class — not restartable"
                if not entry.get("restartable")
                else "restart budget exhausted"
            )
        rank = entry.get("rank")
        cause = entry.get("cause", "?")
        rows.append(
            {
                "metric": f"attempt {entry.get('attempt', '?')} failure",
                "value": cause if rank is None else f"{cause} (rank {rank})",
                "note": note,
            }
        )
    for row in rows:
        row["algorithm"] = getattr(result, "algorithm", "")
    return rows


def io_boundedness(rows: list[dict]) -> dict[str, float]:
    """Mean I/O-thread utilization per algorithm — the quantitative form
    of the paper's 'how I/O-bound is it' narrative."""
    sums: dict[str, list[float]] = {}
    for row in rows:
        sums.setdefault(row["algorithm"], []).append(row["io util %"])
    return {alg: sum(vals) / len(vals) for alg, vals in sums.items()}
