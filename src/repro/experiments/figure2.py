"""Figure 2: execution times of the three columnsort programs.

The paper's experimental universe (§5): 4, 8, or 16 processors; 1 or
2 GB of data per processor; 64-128-byte records; buffer sizes 2^24 and
2^25 bytes; y-axis = seconds per (GB of data per processor); x-axis =
total GB sorted (4, 8, 16, 32). Each plotted point averages the runs of
the eligible configurations at that total size.

We regenerate the figure from the calibrated discrete-event model at
the paper's full scale (the algorithms' traces are oblivious to data,
§2). Eligibility reproduces automatically: threaded columnsort falls
off beyond small sizes (restriction (1)); subblock columnsort covers
only power-of-4 column counts, so its two buffer-size lines cover
*disjoint* problem sizes differing by factors of 4; M-columnsort covers
every size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulate.hardware import BEOWULF_2003, HardwareModel
from repro.simulate.predict import predict_seconds_per_gb

#: (total GB, processor count) pairs of the paper's runs: every
#: combination of P ∈ {4, 8, 16} holding 1 or 2 GB per processor.
FIGURE2_POINTS: list[tuple[int, int]] = [
    (4, 4),
    (8, 4),
    (8, 8),
    (16, 8),
    (16, 16),
    (32, 16),
]

#: The paper's two reported buffer sizes, in bytes.
BUFFER_SIZES = (2**24, 2**25)

GB = 2**30


@dataclass
class Series:
    """One line of Figure 2."""

    label: str
    algorithm: str
    buffer_bytes: int | None
    points: list[tuple[int, float]]  # (total GB, secs per GB/proc)

    def value_at(self, gb: int) -> float | None:
        for x, y in self.points:
            if x == gb:
                return y
        return None


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def figure2_series(
    hw: HardwareModel = BEOWULF_2003,
    record_size: int = 64,
) -> list[Series]:
    """Compute every line of Figure 2.

    Returns eight series: {threaded, subblock, M-columnsort} × {2^24,
    2^25} plus the 3- and 4-pass baseline I/O times (computed, as the
    paper plotted them, as single lines — we price them at the larger
    buffer).
    """
    out: list[Series] = []
    totals = sorted({gb for gb, _ in FIGURE2_POINTS})

    for algorithm in ("threaded", "subblock", "m"):
        for buf in BUFFER_SIZES:
            points: list[tuple[int, float]] = []
            for gb in totals:
                values = []
                for gb_i, p in FIGURE2_POINTS:
                    if gb_i != gb:
                        continue
                    n = gb * GB // record_size
                    try:
                        values.append(
                            predict_seconds_per_gb(
                                algorithm, n, p, buf, record_size, hw
                            )
                        )
                    except Exception:
                        continue  # configuration not eligible at this buffer
                if values:
                    points.append((gb, _mean(values)))
            label = f"{_display(algorithm)}, buffer size = 2^{buf.bit_length() - 1}"
            out.append(Series(label, algorithm, buf, points))

    for passes in (4, 3):
        points = []
        for gb in totals:
            values = []
            for gb_i, p in FIGURE2_POINTS:
                if gb_i != gb:
                    continue
                n = gb * GB // record_size
                values.append(
                    predict_seconds_per_gb(
                        "baseline-io", n, p, BUFFER_SIZES[-1], record_size, hw,
                        passes=passes,
                    )
                )
            points.append((gb, _mean(values)))
        out.append(
            Series(f"Baseline I/O time, {passes} passes", f"baseline-{passes}",
                   None, points)
        )
    return out


def _display(algorithm: str) -> str:
    return {
        "threaded": "Threaded columnsort",
        "subblock": "Subblock columnsort",
        "m": "M-columnsort",
    }[algorithm]


def render_figure2(series: list[Series] | None = None) -> str:
    """Figure 2 as text: one row per total-GB, one column per series."""
    if series is None:
        series = figure2_series()
    totals = sorted({gb for s in series for gb, _ in s.points})
    width = max(len(s.label) for s in series) + 2
    lines = [
        "Figure 2 — secs per (GB/processor) vs. total GB of data sorted",
        "",
        " " * width + "".join(f"{gb:>9d}GB" for gb in totals),
    ]
    for s in series:
        row = s.label.ljust(width)
        for gb in totals:
            v = s.value_at(gb)
            row += f"{v:11.1f}" if v is not None else "          —"
        lines.append(row)
    return "\n".join(lines)


def figure2_claims(series: list[Series] | None = None) -> dict[str, bool]:
    """The paper's §5 statements about Figure 2, checked against the
    regenerated data. Every value should be True; the test suite
    asserts it.
    """
    if series is None:
        series = figure2_series()
    by_label = {s.label: s for s in series}

    def get(alg: str, buf: int) -> Series:
        return by_label[f"{_display(alg)}, buffer size = 2^{buf}"]

    base3 = by_label["Baseline I/O time, 3 passes"]
    base4 = by_label["Baseline I/O time, 4 passes"]

    claims: dict[str, bool] = {}

    # Threaded columnsort covers only the small end (restriction (1)).
    claims["threaded_limited_coverage"] = all(
        len(get("threaded", b).points) < len(base3.points) for b in (24, 25)
    )
    # Threaded at 2^25 is almost purely I/O-bound (≤ 5% above baseline).
    claims["threaded_2^25_io_bound"] = all(
        y <= 1.05 * base3.value_at(gb) for gb, y in get("threaded", 25).points
    )
    # Subblock at 2^25 is just above the 4-pass baseline (≤ 5%).
    claims["subblock_2^25_io_bound"] = all(
        y <= 1.05 * base4.value_at(gb) for gb, y in get("subblock", 25).points
    )
    # Subblock lines cover disjoint problem sizes (power-of-4 gaps).
    cover24 = {gb for gb, _ in get("subblock", 24).points}
    cover25 = {gb for gb, _ in get("subblock", 25).points}
    claims["subblock_disjoint_coverage"] = not (cover24 & cover25)
    # M-columnsort runs at all four problem sizes, at both buffers.
    claims["m_full_coverage"] = all(
        len(get("m", b).points) == len(base3.points) for b in (24, 25)
    )
    # M-columnsort is well above the 3-pass baseline (not I/O-bound)…
    claims["m_above_baseline"] = all(
        y >= 1.05 * base3.value_at(gb) for gb, y in get("m", 25).points
    )
    # …but at least as fast as subblock columnsort wherever both ran.
    claims["m_not_slower_than_subblock"] = all(
        get("m", b).value_at(gb) <= y * 1.001
        for b in (24, 25)
        for gb, y in get("subblock", b).points
    )
    # Subblock ≈ 4/3 × threaded (one extra pass) at the common size.
    t = get("threaded", 24).value_at(4)
    sub = get("subblock", 24).value_at(4)
    claims["subblock_4_3_of_threaded"] = abs(sub / t - 4 / 3) < 0.1
    # Lines are nearly flat: data per processor dominates (the paper
    # quotes within-10% run-to-run variation; allow 12% across sizes).
    for alg in ("subblock", "m"):
        for b in (24, 25):
            ys = [y for _, y in get(alg, b).points]
            claims[f"{alg}_2^{b}_flat"] = max(ys) <= 1.12 * min(ys)
    # Larger buffers are faster for threaded and subblock (the paper
    # notes exactly one exception across all runs; in our model it is
    # M-columnsort, whose deeper 2^24 pipeline hides more latency).
    claims["bigger_buffer_faster_threaded"] = (
        get("threaded", 25).value_at(4) < get("threaded", 24).value_at(4)
    )
    return claims
