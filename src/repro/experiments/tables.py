"""The paper's in-text quantitative claims, as tables.

Each function returns a list of row dicts; :func:`render_table` formats
any of them for the terminal. The benchmark harness times their
generation and the test suite asserts the claims they encode.
"""

from __future__ import annotations

from typing import Sequence

from repro.bounds.analysis import (
    crossover_memory,
    eligible_problem_sizes,
    improvement_factor,
    m_beats_subblock,
)
from repro.bounds.restrictions import restriction_table
from repro.oocs.subblock import expected_messages_per_round
from repro.matrix.bits import sqrt_pow4


def render_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Plain-text table of row dicts."""
    if not rows:
        return "(no rows)"
    columns = list(columns or rows[0].keys())
    cells = [[_fmt(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(line[i]) for line in cells))
        for i, c in enumerate(columns)
    ]
    head = "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(w) for cell, w in zip(line, widths)) for line in cells
    ]
    return "\n".join([head, sep, *body])


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3g}"
    if isinstance(value, int) and abs(value) >= 1 << 20:
        return f"2^{value.bit_length() - 1}" if value & (value - 1) == 0 else f"{value:.3e}"
    return str(value)


def bounds_table(
    p: int = 16, mem_exponents: Sequence[int] = tuple(range(12, 25, 2))
) -> list[dict]:
    """T-bounds: the four problem-size bounds as ``M/P`` grows, plus
    the subblock/threaded improvement factor (>2 from ``M/P = 2^12`` —
    the §1 claim)."""
    rows = []
    for a in mem_exponents:
        mem = 1 << a
        bounds = restriction_table(mem, p)
        rows.append(
            {
                "M/P": f"2^{a}",
                "threaded (1)": bounds["threaded"],
                "subblock (2)": bounds["subblock"],
                "M-columnsort (3)": bounds["m"],
                "hybrid (§6)": bounds["hybrid"],
                "subblock/threaded": improvement_factor(mem),
            }
        )
    return rows


def crossover_table(p_values: Sequence[int] = (2, 4, 8, 16, 32)) -> list[dict]:
    """T-crossover: M-columnsort out-reaches subblock columnsort iff
    ``M < 32·P^10`` (§5; the paper works the P=8 example: 2^35)."""
    rows = []
    for p in p_values:
        threshold = crossover_memory(p)
        below = (threshold // p // 2) * p  # an M safely below threshold
        above = threshold * 2
        rows.append(
            {
                "P": p,
                "crossover M (32·P^10)": threshold,
                "log2": threshold.bit_length() - 1,
                "M below ⇒ m wins": m_beats_subblock(below, p),
                "M above ⇒ subblock wins": not m_beats_subblock(above, p),
            }
        )
    return rows


def msgcount_table(
    s_values: Sequence[int] = (16, 64, 256, 1024),
    p_values: Sequence[int] = (2, 4, 8, 16, 32),
) -> list[dict]:
    """T-msgcount: the subblock pass's per-round message count
    ``⌈P/√s⌉`` (§3 properties 1-2) across cluster and matrix shapes,
    with the no-network regime (``√s ≥ P``) flagged."""
    rows = []
    for s in s_values:
        for p in p_values:
            if p > s:
                continue  # the cluster cannot have more processors than columns
            msgs = expected_messages_per_round(s, p)
            rows.append(
                {
                    "s": s,
                    "sqrt_s": sqrt_pow4(s),
                    "P": p,
                    "messages/round (⌈P/√s⌉)": msgs,
                    "deal pass sends": p,
                    "network-free": msgs == 1,
                }
            )
    return rows


def coverage_table(
    p: int = 16,
    record_size: int = 64,
    buffers: Sequence[int] = (2**24, 2**25),
    max_gb: int = 64,
) -> list[dict]:
    """Eligible problem sizes per algorithm and buffer — why Figure 2's
    subblock lines cover disjoint, factor-of-4-spaced sizes while
    M-columnsort covers every power of 2 (§5)."""
    gb = 2**30
    rows = []
    for buf in buffers:
        buffer_records = buf // record_size
        for algorithm in ("threaded", "subblock", "m", "hybrid"):
            try:
                sizes = eligible_problem_sizes(
                    algorithm, buffer_records, p, gb // record_size,
                    max_gb * gb // record_size,
                )
            except Exception:
                sizes = []
            rows.append(
                {
                    "buffer": f"2^{buf.bit_length() - 1}",
                    "algorithm": algorithm,
                    "eligible sizes (GB)": ", ".join(
                        str(n * record_size // gb) for n in sizes
                    )
                    or "—",
                }
            )
    return rows
