"""Bounded read-ahead prefetcher and write-behind flusher.

One :class:`ReadAhead` / :class:`WriteBehind` pair serves one rank for
one pass. Both are backed by a single thread and a bounded queue of
``depth`` buffers, so a pass pins at most ``2·depth + O(1)`` column
buffers beyond the synchronous baseline — the buffer-pool budget the
prediction model (:func:`repro.simulate.predict.buffers_per_round`)
already reasons about.

Contracts, shared by both pools:

* **depth 0 is synchronous** — no thread is created and every operation
  runs inline on the caller, byte-for-byte identical to the
  pre-pipeline code path;
* **order is preserved** — reads are delivered and writes retired in
  submission order (append cursors and PDM offsets depend on it);
* **first-error propagation** — an exception raised inside the worker
  thread is re-raised, as the *same exception object*, from the next
  consumer call (:meth:`ReadAhead.get`, :meth:`WriteBehind.put`, or
  :meth:`WriteBehind.drain`), so a ``DiskFullError`` in a flusher
  thread surfaces to the rank program exactly like a synchronous one;
* **bounded waits** — every blocking call polls with a deadline and
  raises :class:`~repro.errors.PipelineError` on timeout instead of
  hanging the SPMD world;
* **clean shutdown** — :meth:`close` is idempotent, never raises, and
  joins the worker so no threads outlive the pass (a worker stuck in a
  stalled disk call is left as a daemon and reaped when the call
  returns — it cannot be interrupted from Python).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigError, PipelineError
from repro.pipeline.timing import READ_WAIT, WRITE_WAIT, StageClock

#: Seconds between polls of a bounded queue; short enough that shutdown
#: and error propagation feel immediate, long enough to stay off the
#: profiler's radar.
_POLL = 0.05


@dataclass(frozen=True)
class PipelinePlan:
    """How a pass overlaps its I/O.

    Parameters
    ----------
    depth:
        Buffers each pool may hold in flight. ``0`` disables the
        threads entirely (synchronous execution); ``1`` overlaps one
        read and one write with compute; deeper pipelines hide more
        latency at the cost of pinned buffer memory.
    timeout:
        Seconds any blocking pool operation may wait before raising
        :class:`~repro.errors.PipelineError` (the pipeline's analogue
        of the mailbox deadlock timeout).
    cancel:
        Optional :class:`~repro.governor.CancelToken`. Every bounded
        pool wait polls it each ``_POLL`` slice and re-raises its
        structured exception, so a cancelled pass unwinds from its next
        read/write wait instead of running the pass to completion.
    """

    depth: int = 0
    timeout: float = 120.0
    cancel: object = None

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise ConfigError(f"pipeline depth must be >= 0, got {self.depth}")
        if self.timeout <= 0:
            raise ConfigError(f"pipeline timeout must be positive, got {self.timeout}")


#: The depth-0 plan: the pre-pipeline, strictly sequential code path.
SYNCHRONOUS = PipelinePlan(depth=0)


def _check_cancel(token) -> None:
    """Raise the token's structured exception once it is cancelled.

    Duck-typed (any object with ``cancelled()``/``exception()``) so this
    module needs no import from :mod:`repro.governor`.
    """
    if token is not None and token.cancelled():
        raise token.exception()


class ReadAhead:
    """Prefetch a fixed sequence of read tasks through a bounded queue.

    ``tasks`` are zero-argument callables (typically
    ``partial(store.read_column, rank, c)``); :meth:`get` yields their
    results in order. With ``plan.depth == 0`` the task runs inline.
    """

    def __init__(
        self,
        tasks: Sequence[Callable],
        plan: PipelinePlan,
        clock: StageClock | None = None,
        name: str = "read-ahead",
        on_drop: Callable | None = None,
    ) -> None:
        self._tasks = list(tasks)
        self._plan = plan
        self._on_drop = on_drop
        self._clock = clock if clock is not None else StageClock()
        self._next = 0
        self._stop = threading.Event()
        self._queue: queue.Queue | None = None
        self._thread: threading.Thread | None = None
        if plan.depth > 0 and self._tasks:
            self._queue = queue.Queue(maxsize=plan.depth)
            self._thread = threading.Thread(
                target=self._worker, name=f"pipeline-{name}", daemon=True
            )
            self._thread.start()

    def _worker(self) -> None:
        tok = self._plan.cancel

        def stopped() -> bool:
            return self._stop.is_set() or (
                tok is not None and tok.cancelled()
            )

        for task in self._tasks:
            if stopped():
                return
            try:
                item = ("ok", task())
            except BaseException as exc:  # noqa: BLE001 — crosses threads
                item = ("err", exc)
            delivered = False
            while not stopped():
                try:
                    self._queue.put(item, timeout=_POLL)
                    delivered = True
                    break
                except queue.Full:
                    continue
            if not delivered and item[0] == "ok" and self._on_drop is not None:
                # Stopped with a value in hand: release it (e.g. recycle
                # a pool lease) rather than stranding it.
                try:
                    self._on_drop(item[1])
                except Exception:
                    pass
            if item[0] == "err":
                return

    def get(self):
        """The next read's result, in submission order."""
        if self._next >= len(self._tasks):
            raise PipelineError("read-ahead exhausted: more gets than tasks")
        self._next += 1
        if self._queue is None:
            _check_cancel(self._plan.cancel)
            with self._clock.stage(READ_WAIT):
                return self._tasks[self._next - 1]()
        deadline = time.monotonic() + self._plan.timeout
        t0 = time.perf_counter()
        try:
            while True:
                _check_cancel(self._plan.cancel)
                try:
                    kind, value = self._queue.get(timeout=_POLL)
                    break
                except queue.Empty:
                    if time.monotonic() >= deadline:
                        raise PipelineError(
                            f"read-ahead timed out after {self._plan.timeout}s "
                            f"waiting for buffer {self._next - 1} of "
                            f"{len(self._tasks)} — the underlying read has "
                            f"stalled"
                        ) from None
        finally:
            self._clock.add(READ_WAIT, time.perf_counter() - t0)
        if kind == "err":
            raise value
        return value

    def close(self) -> None:
        """Stop prefetching and join the worker. Idempotent, non-raising."""
        self._stop.set()
        if self._thread is None:
            return
        if self._queue is not None:
            # Drain so a producer blocked on a full queue can observe the
            # stop flag and exit. Prefetched-but-unconsumed values are
            # handed to on_drop (e.g. BufferPool.recycle) so an early
            # close cannot strand pool leases.
            try:
                while True:
                    kind, value = self._queue.get_nowait()
                    if kind == "ok" and self._on_drop is not None:
                        try:
                            self._on_drop(value)
                        except Exception:
                            pass
            except queue.Empty:
                pass
        self._thread.join(timeout=self._plan.timeout)
        self._thread = None
        if self._queue is not None:
            # A producer already inside put() when stop was set may have
            # landed one more item; sweep again now that it has exited.
            try:
                while True:
                    kind, value = self._queue.get_nowait()
                    if kind == "ok" and self._on_drop is not None:
                        try:
                            self._on_drop(value)
                        except Exception:
                            pass
            except queue.Empty:
                pass

    def __enter__(self) -> "ReadAhead":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _Stop:
    """Queue sentinel terminating a flusher worker."""


_STOP = _Stop()


class WriteBehind:
    """Retire write tasks on a background thread, in submission order.

    :meth:`put` enqueues a zero-argument callable (blocking only when
    ``depth`` writes are already in flight); :meth:`drain` blocks until
    everything submitted has retired and re-raises the first worker
    error. After an error, the worker skips the backlog so shutdown
    stays prompt, and every subsequent :meth:`put` re-raises the error
    immediately.
    """

    def __init__(
        self,
        plan: PipelinePlan,
        clock: StageClock | None = None,
        name: str = "write-behind",
    ) -> None:
        self._plan = plan
        self._clock = clock if clock is not None else StageClock()
        self._error: BaseException | None = None
        self._pending = 0
        self._cv = threading.Condition()
        self._stop = threading.Event()
        self._queue: queue.Queue | None = None
        self._thread: threading.Thread | None = None
        if plan.depth > 0:
            self._queue = queue.Queue(maxsize=plan.depth)
            self._thread = threading.Thread(
                target=self._worker, name=f"pipeline-{name}", daemon=True
            )
            self._thread.start()

    def _worker(self) -> None:
        while True:
            task = self._queue.get()
            if task is _STOP:
                return
            if self._error is None and not self._stop.is_set():
                try:
                    task()
                except BaseException as exc:  # noqa: BLE001 — crosses threads
                    with self._cv:
                        self._error = exc
            with self._cv:
                self._pending -= 1
                self._cv.notify_all()

    def _raise_pending_error(self) -> None:
        if self._error is not None:
            raise self._error

    def put(self, task: Callable) -> None:
        """Submit one write. Blocks while ``depth`` writes are in flight."""
        if self._queue is None:
            _check_cancel(self._plan.cancel)
            with self._clock.stage(WRITE_WAIT):
                task()
            return
        self._raise_pending_error()
        deadline = time.monotonic() + self._plan.timeout
        t0 = time.perf_counter()
        try:
            with self._cv:
                self._pending += 1
            while True:
                self._raise_pending_error()
                try:
                    _check_cancel(self._plan.cancel)
                except BaseException:
                    with self._cv:
                        self._pending -= 1
                    raise
                try:
                    self._queue.put(task, timeout=_POLL)
                    return
                except queue.Full:
                    if time.monotonic() >= deadline:
                        with self._cv:
                            self._pending -= 1
                        raise PipelineError(
                            f"write-behind timed out after {self._plan.timeout}s "
                            f"with {self._pending} writes in flight — the "
                            f"underlying write has stalled"
                        ) from None
        finally:
            self._clock.add(WRITE_WAIT, time.perf_counter() - t0)

    def drain(self) -> None:
        """Wait until every submitted write has retired; re-raise the
        first worker error (as the original exception object)."""
        if self._queue is not None:
            deadline = time.monotonic() + self._plan.timeout
            with self._clock.stage(WRITE_WAIT):
                with self._cv:
                    while self._pending > 0:
                        _check_cancel(self._plan.cancel)
                        if time.monotonic() >= deadline:
                            raise PipelineError(
                                f"write-behind drain timed out after "
                                f"{self._plan.timeout}s with {self._pending} "
                                f"writes still in flight"
                            )
                        self._cv.wait(_POLL)
        else:
            _check_cancel(self._plan.cancel)
        self._raise_pending_error()

    def close(self) -> None:
        """Stop the worker and join it. Idempotent, never raises —
        errors surface through :meth:`put`/:meth:`drain` only."""
        if self._thread is None:
            return
        self._stop.set()  # worker skips tasks it has not started yet
        deadline = time.monotonic() + self._plan.timeout
        while True:
            try:
                self._queue.put(_STOP, timeout=_POLL)
                break
            except queue.Full:
                if time.monotonic() >= deadline:
                    break  # worker is stuck in a write; leave the daemon
        self._thread.join(timeout=self._plan.timeout)
        self._thread = None

    def __enter__(self) -> "WriteBehind":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        try:
            if exc_type is None:
                self.drain()
        finally:
            self.close()
