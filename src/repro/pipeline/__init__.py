"""Overlapped pass pipeline: read-ahead / write-behind buffer pools.

The paper's engineering substrate ([CC02]'s threaded columnsort) hides
I/O cost by overlapping disk reads, computation, communication, and
disk writes within every pass. This package is that substrate for the
reproduction: a bounded prefetcher that keeps the next ``depth`` column
buffers in flight, a write-behind flusher that retires up to ``depth``
buffered writes on a background thread, and a stage clock measuring
where a rank's wall time actually goes (read-wait / compute / comm /
write-wait) — the measured counterpart of the DES model's "overlap
lives within a pass" assumption.
"""

from repro.pipeline.pools import (
    SYNCHRONOUS,
    PipelinePlan,
    ReadAhead,
    WriteBehind,
)
from repro.pipeline.timing import (
    CATEGORIES,
    COMM,
    COMPUTE,
    INCORE,
    READ_WAIT,
    WRITE_WAIT,
    StageClock,
)

__all__ = [
    "PipelinePlan",
    "ReadAhead",
    "WriteBehind",
    "SYNCHRONOUS",
    "StageClock",
    "CATEGORIES",
    "READ_WAIT",
    "COMPUTE",
    "COMM",
    "INCORE",
    "WRITE_WAIT",
]
