"""Measured per-stage wall-time accounting for pipelined passes.

The discrete-event simulator (:mod:`repro.simulate`) *predicts* where a
pass's time goes; a :class:`StageClock` *measures* it on a live run.
Each rank accumulates wall seconds into a handful of categories:

============== ====================================================
category       meaning
============== ====================================================
``read_wait``  blocked waiting for the next column buffer from disk
``compute``    local NumPy work (sorts, reshapes, concatenations)
``comm``       mailbox communication (sends, receives, collectives)
``incore``     a distributed in-core sort (M-columnsort's sort
               stage — local sorting and communication interleaved)
``write_wait`` blocked handing a buffer to the write-behind flusher
               or draining it at the end of the pass
============== ====================================================

With a synchronous plan (depth 0), ``read_wait``/``write_wait`` are the
full disk read/write times; with a deeper pipeline they shrink toward
zero as the buffer pools hide the I/O behind compute and communication.
The totals end up in :attr:`repro.simulate.trace.PassTrace.wall`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

READ_WAIT = "read_wait"
COMPUTE = "compute"
COMM = "comm"
INCORE = "incore"
WRITE_WAIT = "write_wait"

#: Categories in pipeline order (for stable table/report layouts).
CATEGORIES = (READ_WAIT, COMPUTE, COMM, INCORE, WRITE_WAIT)


class StageClock:
    """Wall-time accumulator for one rank's trip through a pass.

    Not thread-safe by design: only the rank's own thread records into
    it (the buffer-pool threads are timed from the consumer side — what
    matters is how long the rank *waited*, not how long the disk was
    busy).
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}

    def add(self, category: str, seconds: float) -> None:
        self.totals[category] = self.totals.get(category, 0.0) + seconds

    @contextmanager
    def stage(self, category: str):
        """Time a block of work under ``category``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(category, time.perf_counter() - t0)

    def merge_into(self, wall: dict[str, float]) -> None:
        """Accumulate this clock's totals into a trace's wall dict."""
        for category, seconds in self.totals.items():
            wall[category] = wall.get(category, 0.0) + seconds
