"""repro — out-of-core columnsort with relaxed problem-size bounds.

A full reproduction of *"Relaxing the Problem-Size Bound for Out-of-Core
Columnsort"* (Chaudhry, Hamon, Cormen; Dartmouth TR2003-445 / SPAA 2003):
the three out-of-core sorting programs (threaded, subblock, and
M-columnsort) plus the §6 hybrid, running on a simulated
distributed-memory cluster with file-backed parallel disks, and a
calibrated discrete-event timing model that regenerates the paper's
Figure 2 at full experimental scale.

The in-core algorithms live in :mod:`repro.columnsort` (kept off the
top level so the subpackage name stays importable). Quickstart::

    from repro import ClusterConfig, RecordFormat, generate, sort_out_of_core

    fmt = RecordFormat("u8", 64)
    records = generate("uniform", fmt, 8192, seed=1)
    cluster = ClusterConfig(p=4, mem_per_proc=2**12)
    result = sort_out_of_core("subblock", records, cluster, fmt,
                              buffer_records=256)   # verified PDM output

Package map:

==================  ====================================================
``repro.columnsort``  in-core columnsort (8-step) and subblock (10-step)
``repro.records``     record formats and workload generators
``repro.matrix``      the even-step and subblock permutations
``repro.cluster``     SPMD engine with an MPI-like communicator
``repro.disks``       virtual parallel disks, column and PDM layouts
``repro.oocs``        the out-of-core sorting programs
``repro.bounds``      problem-size restrictions (1), (2), (3) and §6
``repro.simulate``    traces, hardware models, pipeline DES
``repro.experiments`` Figure 2 and the in-text tables
==================  ====================================================
"""

from repro.cluster.config import ClusterConfig
from repro.errors import (
    CommError,
    ConfigError,
    DimensionError,
    DiskError,
    ProblemSizeError,
    ReproError,
    VerificationError,
)
from repro.oocs.api import sort_out_of_core
from repro.oocs.verify import verify_output
from repro.records.format import RecordFormat
from repro.records.generators import generate, workload_names

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "RecordFormat",
    "generate",
    "workload_names",
    "sort_out_of_core",
    "verify_output",
    "ReproError",
    "ConfigError",
    "DimensionError",
    "ProblemSizeError",
    "CommError",
    "DiskError",
    "VerificationError",
    "__version__",
]
