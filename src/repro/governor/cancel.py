"""Cooperative cancellation: one token, observed at every blocking seam.

A :class:`CancelToken` is the single switch that stops a run. Nothing in
this package preempts a thread; instead every place a rank can block —
the pipeline pools' bounded waits, the mailbox receive loop, a retry
policy's backoff sleep, the disk retry loop, and the pass-program loop
itself — polls the token and raises its structured exception
(:class:`~repro.errors.CancelledError` or
:class:`~repro.errors.DeadlineExceeded`) from the next poll interval.
That makes cancellation prompt (one poll slice, ~50 ms) without any of
the corruption risks of killing threads: a cancelled pass unwinds
through the same ``finally`` blocks as a failed one, so pool leases are
recycled, pipeline workers joined, and the last pass-boundary
checkpoint stays valid for ``--resume``.

Deadlines are just pre-armed cancellation: a token built with
``deadline_s`` flips itself once ``time.monotonic()`` passes the
deadline, with no timer thread — the flip is evaluated lazily at each
poll.

Deterministic test triggers: ``cancel_after_checks=n`` fires the token
on its *n*-th :meth:`CancelToken.check` (mid-pass, inside whatever wait
happens to perform that check), and ``cancel_at_pass=k`` fires when
:meth:`CancelToken.pass_boundary` reports pass ``k`` complete — the two
hooks the governor bench uses to deliver a cancel at every boundary and
mid-pass point of every program.
"""

from __future__ import annotations

import threading
import time

from repro.errors import Cancellation, CancelledError, DeadlineExceeded


class CancelToken:
    """A thread-safe cancellation flag with optional deadline.

    Parameters
    ----------
    deadline_s:
        Seconds from construction after which the token counts as
        cancelled with :class:`~repro.errors.DeadlineExceeded`.
    cancel_after_checks:
        Fire on the nth call to :meth:`check` (deterministic mid-pass
        cancellation for tests and the chaos bench).
    cancel_at_pass:
        Fire when :meth:`pass_boundary` is told this pass index has
        completed (deterministic boundary cancellation).
    """

    def __init__(
        self,
        deadline_s: float | None = None,
        cancel_after_checks: int | None = None,
        cancel_at_pass: int | None = None,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        if cancel_after_checks is not None and cancel_after_checks < 1:
            raise ValueError(
                f"cancel_after_checks must be >= 1, got {cancel_after_checks}"
            )
        if cancel_at_pass is not None and cancel_at_pass < 1:
            raise ValueError(
                f"cancel_at_pass must be >= 1, got {cancel_at_pass}"
            )
        self.deadline_s = deadline_s
        self._deadline_at = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        self._cancel_after_checks = cancel_after_checks
        self._cancel_at_pass = cancel_at_pass
        self._event = threading.Event()
        self._shared_event = None
        self._lock = threading.Lock()
        self._reason: str | None = None
        self.checks = 0

    # -- flipping --------------------------------------------------------

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation. Idempotent; the first reason wins."""
        with self._lock:
            if self._reason is None:
                self._reason = reason
        self._event.set()
        shared = self._shared_event
        if shared is not None:
            shared.set()

    def bind_shared_event(self, event) -> None:
        """Mirror this token's cancelled state through a cross-process
        event (``multiprocessing.Event``).

        The process transport binds one before forking: a ``cancel()``
        in any rank process (or the parent) sets the shared event, and
        every fork-copy of the token observes it in :meth:`cancelled` —
        the copies' ``threading.Event`` flags cannot cross address
        spaces on their own. The cancellation *reason* does not
        propagate (only the bit does); a copy that learns of the cancel
        through the shared event reports the generic reason. Deadlines
        need no mirroring: ``CLOCK_MONOTONIC`` is system-wide, so every
        fork-copy evaluates the same ``_deadline_at`` lazily.
        """
        with self._lock:
            self._shared_event = event
        if self._event.is_set():
            event.set()

    def _shared_set(self) -> bool:
        shared = self._shared_event
        return shared is not None and shared.is_set()

    def pass_boundary(self, completed_index: int) -> None:
        """Report that pass ``completed_index`` finished (called by the
        pass-program loop on every rank; idempotent)."""
        at = self._cancel_at_pass
        if at is not None and completed_index >= at:
            self.cancel(f"cancelled at pass boundary {completed_index}")

    # -- observation -----------------------------------------------------

    def _deadline_passed(self) -> bool:
        return (
            self._deadline_at is not None
            and time.monotonic() >= self._deadline_at
        )

    def cancelled(self) -> bool:
        """True once cancelled or past the deadline."""
        return (
            self._event.is_set()
            or self._shared_set()
            or self._deadline_passed()
        )

    def remaining_s(self) -> float | None:
        """Seconds until the deadline (None without one; never < 0)."""
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - time.monotonic())

    def exception(self) -> Cancellation:
        """The structured exception this token stops a run with."""
        if self._event.is_set() or self._shared_set():
            with self._lock:
                return CancelledError(self._reason or "cancelled")
        return DeadlineExceeded(self.deadline_s or 0.0)

    def check(self) -> None:
        """One cancellation point: count the check, fire a pending
        ``cancel_after_checks`` trigger, and raise if cancelled."""
        fire = False
        with self._lock:
            self.checks += 1
            if (
                self._cancel_after_checks is not None
                and self.checks >= self._cancel_after_checks
            ):
                fire = True
        if fire:
            self.cancel(f"cancelled after {self._cancel_after_checks} checks")
        if self.cancelled():
            raise self.exception()

    def sleep(self, seconds: float, slice_s: float = 0.05) -> None:
        """Sleep up to ``seconds``, waking early (and raising) on
        cancellation — the drop-in for retry-backoff ``time.sleep``."""
        deadline = time.monotonic() + seconds
        while True:
            if self.cancelled():
                raise self.exception()
            left = deadline - time.monotonic()
            if left <= 0:
                return
            self._event.wait(min(slice_s, left))


def maybe_check(token: "CancelToken | None") -> None:
    """``token.check()`` when a token is present; cheap no-op otherwise."""
    if token is not None:
        token.check()


def maybe_sleep(token: "CancelToken | None", seconds: float) -> None:
    """Cancellable sleep when a token is present, plain sleep otherwise."""
    if token is not None:
        token.sleep(seconds)
    else:
        time.sleep(seconds)
