"""Per-run governance: scratch accounting and the disk-full ladder.

One :class:`RunGovernor` is shared by all ranks of one pass program. It
knows the run's store graph (which stores each remaining pass still
reads or writes), so when a disk raises
:class:`~repro.errors.DiskFullError` mid-pass it can walk a degradation
ladder instead of aborting outright:

1. **reclaim** — delete *dead* scratch stores (stores no remaining pass
   touches, excluding the input, the output, and the previous pass's
   output — the live resume point) and, if that freed any bytes, let the
   disk retry the failed operation once;
2. **degrade** — with nothing left to reclaim, shed the run's optional
   space consumers for the remaining passes: read-ahead is disabled
   (effective pipeline depth 0 — fewer buffers in flight) and parity
   maintenance is suspended (no new parity rows to grow ``.parity/``),
   then the error propagates with the failing disk named — degraded
   mode bounds the *next* attempt, it does not rescue this one.

The governor also owns the run's adaptive **depth downshift**: when the
:class:`~repro.membuf.BufferPool` reports sustained budget backpressure
(allocation stalls since the last pass boundary), the effective pipeline
depth for subsequent passes is reduced one step at a time, trading
overlap for headroom. Correctness is unaffected — every pass program is
byte-identical at any depth — so the downshift needs no coordination
beyond the shared counter.

Everything the ladder and downshift do is counted and surfaced on
``OocResult.governor`` (see :data:`GOVERNOR_KEYS`).
"""

from __future__ import annotations

import threading

from repro.pipeline import SYNCHRONOUS, PipelinePlan

#: Counter keys exposed by :meth:`RunGovernor.snapshot`.
GOVERNOR_KEYS = (
    "disk_full_events",
    "scratch_reclaims",
    "reclaimed_bytes",
    "depth_downshifts",
)

#: Pool allocation stalls within one pass that trigger a depth downshift.
PRESSURE_STALLS = 2


class RunGovernor:
    """Scratch-space and pipeline-depth governance for one run.

    Parameters
    ----------
    stores:
        The run's store dict (``{"input": ..., "t1": ..., "output": ...}``).
    specs:
        The run's ordered :class:`~repro.oocs.base.PassSpec` list; the
        ``src``/``dst`` keys define which stores are live at each pass.
    cancel:
        Optional :class:`~repro.governor.CancelToken` observed by the
        run (carried here so disks and pools can reach it).
    pool:
        Optional :class:`~repro.membuf.BufferPool` whose backpressure
        drives the depth downshift (the global pool by default).
    """

    def __init__(self, stores: dict, specs: list, cancel=None, pool=None) -> None:
        self.stores = stores
        self.specs = list(specs)
        self.cancel = cancel
        self._pool = pool
        self._lock = threading.Lock()
        self._pass_index = 0  # 1-based index of the pass in flight
        self._reclaimed = False
        self.degraded = False
        self._depth_penalty = 0
        self._counters = {key: 0 for key in GOVERNOR_KEYS}

    # -- pass-boundary bookkeeping ---------------------------------------

    def begin_pass(self, index: int) -> None:
        """Called by every rank as pass ``index`` (1-based) starts;
        idempotent — the highest index wins. Each new pass re-arms the
        reclaim stage (earlier passes may have died since) and samples
        pool pressure for the depth downshift."""
        with self._lock:
            if index > self._pass_index:
                self._pass_index = index
                self._reclaimed = False
                pool = self._effective_pool()
                if pool is not None and pool.consume_pressure() >= PRESSURE_STALLS:
                    self._depth_penalty += 1
                    self._counters["depth_downshifts"] += 1

    def _effective_pool(self):
        if self._pool is not None:
            return self._pool
        from repro.membuf import get_pool

        return get_pool()

    def effective_plan(self, plan: PipelinePlan) -> PipelinePlan:
        """The plan a pass should actually run with: the job's plan,
        minus the accumulated downshift, forced to depth 0 once the run
        is degraded (read-ahead disabled)."""
        with self._lock:
            depth = 0 if self.degraded else max(0, plan.depth - self._depth_penalty)
        if depth == plan.depth:
            return plan
        if depth == 0 and plan.cancel is None:
            return SYNCHRONOUS
        return PipelinePlan(depth=depth, timeout=plan.timeout, cancel=plan.cancel)

    # -- the disk-full ladder --------------------------------------------

    def _dead_store_keys(self) -> list[str]:
        """Store keys no remaining pass touches (and that are not the
        input, the output, or the previous pass's output — the store a
        checkpoint resume would restart from)."""
        live = {"input", "output"}
        idx = self._pass_index
        for spec in self.specs[max(0, idx - 1):]:
            live.add(spec.src)
            live.add(spec.dst)
        if idx >= 2:
            live.add(self.specs[idx - 2].dst)  # resume point
        return [key for key in self.stores if key not in live]

    def handle_disk_full(self, disk) -> bool:
        """One rung of the ladder, called by a disk's retry loop when a
        write raises :class:`~repro.errors.DiskFullError`. Returns True
        when the disk should retry the operation (dead scratch was
        reclaimed), False when the error must propagate — after
        degrading the run so the remaining passes need less space."""
        with self._lock:
            self._counters["disk_full_events"] += 1
            if not self._reclaimed:
                self._reclaimed = True
                freed = self._reclaim_locked()
                if freed > 0:
                    self._counters["scratch_reclaims"] += 1
                    self._counters["reclaimed_bytes"] += freed
                    return True
            self._degrade_locked()
            return False

    def _reclaim_locked(self) -> int:
        """Delete every dead scratch store; returns the bytes freed
        across the whole disk array."""
        disks = self.stores["input"].disks
        before = sum(d.used_bytes() for d in disks)
        for key in self._dead_store_keys():
            try:
                self.stores[key].delete()
            except Exception:
                pass  # reclaim is best-effort; the retry will re-check
        return before - sum(d.used_bytes() for d in disks)

    def _degrade_locked(self) -> None:
        """Shed the optional space consumers for the remaining passes:
        no read-ahead (depth 0) and no parity maintenance."""
        if self.degraded:
            return
        self.degraded = True
        layer = getattr(self.stores["input"].disks[0], "parity_layer", None)
        if layer is not None:
            layer.disable_maintenance()

    # -- observation -----------------------------------------------------

    def snapshot(self) -> dict:
        """Counters plus the degradation flags, for ``OocResult.governor``."""
        with self._lock:
            out = dict(self._counters)
            out["degraded"] = self.degraded
            out["depth_penalty"] = self._depth_penalty
            return out


def attach_governor(disks: list, governor: "RunGovernor | None") -> None:
    """Install (or with None, clear) a run's governor and cancel token
    on every disk of the array."""
    for disk in disks:
        disk.scratch_governor = governor
        disk.cancel_token = governor.cancel if governor is not None else None
