"""Resource governance: cooperative cancellation, budgets, admission.

The runtime-management half of robustness (Rahn–Sanders–Singler's point
that engineering external sorts is dominated by resource management):

* :mod:`repro.governor.cancel` — :class:`CancelToken`, the cooperative
  cancellation/deadline switch observed at every blocking seam;
* :mod:`repro.governor.runtime` — :class:`RunGovernor`, one run's
  scratch accounting, disk-full degradation ladder, and adaptive
  pipeline-depth downshift under buffer-pool backpressure;
* :mod:`repro.governor.admission` — :class:`JobGovernor`, the
  process-wide admission gate (quotas, bounded FIFO queueing, queue
  timeouts, structured shedding).
"""

from repro.governor.admission import (
    ADMISSION_KEYS,
    AdmissionTicket,
    JobGovernor,
    get_job_governor,
    set_job_governor,
)
from repro.governor.cancel import CancelToken, maybe_check, maybe_sleep
from repro.governor.runtime import (
    GOVERNOR_KEYS,
    PRESSURE_STALLS,
    RunGovernor,
    attach_governor,
)

__all__ = [
    "ADMISSION_KEYS",
    "AdmissionTicket",
    "CancelToken",
    "GOVERNOR_KEYS",
    "JobGovernor",
    "PRESSURE_STALLS",
    "RunGovernor",
    "attach_governor",
    "get_job_governor",
    "maybe_check",
    "maybe_sleep",
    "set_job_governor",
]
