"""Admission control: quotas, bounded FIFO queueing, structured shedding.

Two concurrent :func:`~repro.oocs.api.sort_out_of_core` calls in one
process share one buffer pool, one thread scheduler, and (often) the
same scratch disks; unbounded, they thrash each other rather than
queue. A :class:`JobGovernor` is the process-wide gate that serializes
that contention:

* **quotas** — at most ``max_concurrent`` jobs run at once, and the
  sum of admitted jobs' declared memory / scratch demands stays within
  ``mem_quota_bytes`` / ``scratch_quota_bytes`` (when set);
* **bounded priority queueing** — a job that cannot start immediately
  waits its turn (highest priority first, arrival order within a
  priority; the default priority 0 everywhere is plain FIFO), but only
  ``max_queue`` jobs may wait; the next one is *shed* immediately with
  :class:`~repro.errors.AdmissionRejected` ("queue full") rather than
  piling up;
* **queue timeouts** — a queued job that cannot start within
  ``queue_timeout_s`` is shed with ``AdmissionRejected`` ("timeout"),
  so overload turns into prompt structured refusals instead of
  unbounded latency;
* **fail-fast on impossible demands** — a job whose declared demand
  exceeds the whole quota is rejected up front ("demand exceeds
  quota"): no queue position could ever satisfy it.

The admission state machine (documented in DESIGN §10) is:
``arrive → (reject: queue full | demand impossible) | queue → (reject:
timeout | cancel) | run → release``.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.errors import AdmissionRejected, ConfigError

#: Counter keys exposed by :meth:`JobGovernor.snapshot`.
ADMISSION_KEYS = (
    "admitted",
    "completed",
    "rejected_queue_full",
    "rejected_timeout",
    "rejected_impossible",
    "peak_running",
    "peak_queued",
)


class AdmissionTicket:
    """Proof of admission for one job; a context manager whose exit
    releases the job's slot and resources back to the governor."""

    def __init__(self, governor: "JobGovernor", mem_bytes: int,
                 scratch_bytes: int, wait_s: float) -> None:
        self._governor = governor
        self.mem_bytes = mem_bytes
        self.scratch_bytes = scratch_bytes
        self.wait_s = wait_s
        self._released = False

    def release(self) -> None:
        """Return this job's slot and resources (idempotent)."""
        if not self._released:
            self._released = True
            self._governor._release(self)

    def snapshot(self) -> dict:
        """Admission facts for this job (merged into run reports)."""
        return {
            "admission_wait_s": self.wait_s,
            "admitted_mem_bytes": self.mem_bytes,
            "admitted_scratch_bytes": self.scratch_bytes,
        }

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class JobGovernor:
    """Process-wide admission gate for concurrent out-of-core sorts.

    Parameters
    ----------
    max_concurrent:
        Jobs allowed to run simultaneously.
    max_queue:
        Jobs allowed to *wait*; the next arrival is shed.
    mem_quota_bytes / scratch_quota_bytes:
        Optional caps on the summed declared demands of running jobs.
    queue_timeout_s:
        Default seconds a queued job may wait before being shed.
    """

    def __init__(
        self,
        max_concurrent: int = 2,
        max_queue: int = 4,
        mem_quota_bytes: int | None = None,
        scratch_quota_bytes: int | None = None,
        queue_timeout_s: float = 30.0,
    ) -> None:
        if max_concurrent < 1:
            raise ConfigError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        if max_queue < 0:
            raise ConfigError(f"max_queue must be >= 0, got {max_queue}")
        if queue_timeout_s <= 0:
            raise ConfigError(
                f"queue_timeout_s must be positive, got {queue_timeout_s}"
            )
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.mem_quota_bytes = mem_quota_bytes
        self.scratch_quota_bytes = scratch_quota_bytes
        self.queue_timeout_s = queue_timeout_s
        self._cv = threading.Condition()
        self._running: set[AdmissionTicket] = set()
        # Waiting jobs as (-priority, arrival seq, opaque key): min() is
        # the head — highest priority first, FIFO within a priority.
        self._waiters: deque[tuple] = deque()
        self._waiter_seq = 0
        self._mem_in_use = 0
        self._scratch_in_use = 0
        self._counters = {key: 0 for key in ADMISSION_KEYS}

    # -- internals (call with self._cv held) -----------------------------

    def _fits(self, mem_bytes: int, scratch_bytes: int) -> bool:
        if len(self._running) >= self.max_concurrent:
            return False
        if (
            self.mem_quota_bytes is not None
            and self._mem_in_use + mem_bytes > self.mem_quota_bytes
        ):
            return False
        if (
            self.scratch_quota_bytes is not None
            and self._scratch_in_use + scratch_bytes > self.scratch_quota_bytes
        ):
            return False
        return True

    def _grant(self, ticket: AdmissionTicket) -> None:
        self._running.add(ticket)
        self._mem_in_use += ticket.mem_bytes
        self._scratch_in_use += ticket.scratch_bytes
        self._counters["admitted"] += 1
        self._counters["peak_running"] = max(
            self._counters["peak_running"], len(self._running)
        )

    # -- API -------------------------------------------------------------

    def admit(
        self,
        mem_bytes: int = 0,
        scratch_bytes: int = 0,
        timeout_s: float | None = None,
        cancel=None,
        priority: int = 0,
    ) -> AdmissionTicket:
        """Admit one job, queueing if it cannot start immediately.

        Queued jobs start highest ``priority`` first, FIFO within a
        priority (the default 0 everywhere degenerates to plain FIFO).
        Raises :class:`~repro.errors.AdmissionRejected` when the queue
        is already full, the wait exceeds the timeout, or the declared
        demand exceeds the whole quota. ``cancel`` (a
        :class:`~repro.governor.CancelToken`) aborts the wait with the
        token's structured exception.
        """
        if mem_bytes < 0 or scratch_bytes < 0:
            raise ConfigError("job demands must be >= 0")
        if (
            self.mem_quota_bytes is not None
            and mem_bytes > self.mem_quota_bytes
        ):
            with self._cv:
                self._counters["rejected_impossible"] += 1
            raise AdmissionRejected(
                "demand exceeds quota",
                f"needs {mem_bytes} B of memory, quota is "
                f"{self.mem_quota_bytes} B",
            )
        if (
            self.scratch_quota_bytes is not None
            and scratch_bytes > self.scratch_quota_bytes
        ):
            with self._cv:
                self._counters["rejected_impossible"] += 1
            raise AdmissionRejected(
                "demand exceeds quota",
                f"needs {scratch_bytes} B of scratch, quota is "
                f"{self.scratch_quota_bytes} B",
            )
        timeout = self.queue_timeout_s if timeout_s is None else timeout_s
        t0 = time.monotonic()
        deadline = t0 + timeout
        with self._cv:
            if not self._waiters and self._fits(mem_bytes, scratch_bytes):
                ticket = AdmissionTicket(self, mem_bytes, scratch_bytes, 0.0)
                self._grant(ticket)
                return ticket
            if len(self._waiters) >= self.max_queue:
                self._counters["rejected_queue_full"] += 1
                raise AdmissionRejected(
                    "queue full",
                    f"{len(self._waiters)} of {self.max_queue} slots waiting",
                )
            self._waiter_seq += 1
            me = (-priority, self._waiter_seq, object())
            self._waiters.append(me)
            self._counters["peak_queued"] = max(
                self._counters["peak_queued"], len(self._waiters)
            )
            try:
                while not (
                    min(self._waiters) is me
                    and self._fits(mem_bytes, scratch_bytes)
                ):
                    if cancel is not None and cancel.cancelled():
                        raise cancel.exception()
                    left = deadline - time.monotonic()
                    if left <= 0:
                        self._counters["rejected_timeout"] += 1
                        raise AdmissionRejected(
                            "timeout",
                            f"queued {timeout:.1f}s without a slot freeing",
                        )
                    self._cv.wait(min(left, 0.05))
                self._waiters.remove(me)
                self._cv.notify_all()  # the new head may already fit
                ticket = AdmissionTicket(
                    self, mem_bytes, scratch_bytes, time.monotonic() - t0
                )
                self._grant(ticket)
                return ticket
            except BaseException:
                if me in self._waiters:
                    self._waiters.remove(me)
                self._cv.notify_all()
                raise

    def _release(self, ticket: AdmissionTicket) -> None:
        with self._cv:
            self._running.discard(ticket)
            self._mem_in_use -= ticket.mem_bytes
            self._scratch_in_use -= ticket.scratch_bytes
            self._counters["completed"] += 1
            self._cv.notify_all()

    # -- observation -----------------------------------------------------

    def running(self) -> int:
        with self._cv:
            return len(self._running)

    def queued(self) -> int:
        with self._cv:
            return len(self._waiters)

    def snapshot(self) -> dict:
        """Counters plus current occupancy."""
        with self._cv:
            out = dict(self._counters)
            out["running"] = len(self._running)
            out["queued"] = len(self._waiters)
            out["mem_in_use"] = self._mem_in_use
            out["scratch_in_use"] = self._scratch_in_use
            return out


_default_lock = threading.Lock()
_default_governor: JobGovernor | None = None


def get_job_governor() -> JobGovernor | None:
    """The process-wide governor (None = admission control off)."""
    with _default_lock:
        return _default_governor


def set_job_governor(governor: JobGovernor | None) -> JobGovernor | None:
    """Install (or clear, with None) the process-wide governor; returns
    the previous one so callers can restore it."""
    global _default_governor
    with _default_lock:
        previous = _default_governor
        _default_governor = governor
        return previous
