"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch package failures with a single ``except`` clause while
still being able to distinguish configuration mistakes (bad matrix
dimensions, illegal cluster shapes) from runtime faults (disk and
communication failures).

Errors with multi-parameter constructors define ``__reduce__``: their
``args`` hold the *formatted message*, not the constructor parameters,
so default pickling would rebuild them wrongly (or not at all). The
process transport ships rank failures across address spaces by pickle,
and an error that cannot round-trip loses its type — and with it the
caller's ability to catch the structured cause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DimensionError(ReproError, ValueError):
    """A matrix shape violates a columnsort restriction.

    Raised when ``r × s`` fails a structural requirement such as
    ``s | r``, the height restriction ``r >= 2 s**2`` (basic columnsort),
    ``r >= 4 s**1.5`` with ``s`` a power of 4 (subblock columnsort), or a
    power-of-two requirement inherited from the out-of-core setting.
    """


class ConfigError(ReproError, ValueError):
    """A cluster or algorithm configuration is inconsistent.

    Examples: ``P`` not dividing ``D``, buffer sizes that do not fit in the
    configured per-processor memory, or a problem size exceeding the
    algorithm's problem-size bound.
    """


class ProblemSizeError(ConfigError):
    """The requested ``N`` exceeds the algorithm's problem-size bound."""

    def __init__(self, n: int, bound: int, algorithm: str) -> None:
        self.n = n
        self.bound = bound
        self.algorithm = algorithm
        super().__init__(
            f"N={n} exceeds the {algorithm} problem-size bound of {bound} records"
        )

    def __reduce__(self):
        return (type(self), (self.n, self.bound, self.algorithm))


class CommError(ReproError, RuntimeError):
    """A communication operation was misused or failed.

    Covers mismatched collective participation, type/shape mismatches in
    point-to-point exchanges, and use of a communicator after shutdown.
    """


class PipelineError(ReproError, RuntimeError):
    """A read-ahead/write-behind buffer pool misbehaved or timed out
    (a stalled prefetch, an over-full flusher, or a drain that never
    completed)."""


class DiskError(ReproError, IOError):
    """A virtual-disk operation failed (short read, out-of-range block,
    write to a read-only disk, or an injected fault)."""


class DiskFullError(DiskError):
    """A virtual disk ran out of configured capacity."""


class CorruptionError(DiskError):
    """A block read back from disk failed its checksum (bit rot, a torn
    write, or a hostile test flipping bytes).

    Carries the failing location (``disk_id``, ``name``, and the
    ``(offset, length)`` extents that mismatched) plus ``repairable`` —
    True when a parity layer is attached and the corrupt extents can be
    reconstructed from the surviving disks, in which case the retry
    loop repairs the block in place and retries the read.
    """

    def __init__(
        self,
        disk_id: int,
        name: str,
        extents: list,
        repairable: bool = False,
    ) -> None:
        self.disk_id = disk_id
        self.name = name
        self.extents = list(extents)
        self.repairable = repairable
        first = self.extents[0] if self.extents else (0, 0)
        super().__init__(
            f"checksum mismatch on disk {disk_id}, object {name!r}, block "
            f"(offset={first[0]}, length={first[1]})"
            + (f" and {len(self.extents) - 1} more" if len(self.extents) > 1 else "")
            + (" [repairable from parity]" if repairable else "")
        )

    def __reduce__(self):
        return (
            type(self),
            (self.disk_id, self.name, self.extents, self.repairable),
        )


class SpmdError(ReproError, RuntimeError):
    """A rank of an SPMD program raised; carries the failing rank.

    When several ranks fail concurrently, the reported rank is the
    lowest-numbered rank whose failure is not shutdown collateral (a
    :class:`CommError` raised because the world was already closing).
    """

    def __init__(self, rank: int, cause: BaseException) -> None:
        self.rank = rank
        self.cause = cause
        super().__init__(f"rank {rank} failed: {cause!r}")

    def __reduce__(self):
        return (type(self), (self.rank, self.cause))


class ResilienceError(ReproError, RuntimeError):
    """The fault-tolerance layer itself failed (a retry budget that could
    not be honored, an inconsistent fault plan, or a recovery step that
    found the world in a state it cannot repair)."""


class CheckpointError(ResilienceError):
    """A pass-boundary checkpoint could not be written, read, or trusted
    (missing or corrupt manifest, a manifest that does not match the job
    being resumed, or a content digest mismatch on the store it names)."""


class AuditError(ResilienceError):
    """An online per-pass invariant audit failed — the pass's output
    violates a columnsort invariant (wrong column sizes, too many
    sorted runs, out-of-order samples), so the pass must not be
    checkpointed or resumed from."""


class WatchdogTimeout(ResilienceError):
    """A rank made no observable progress past the watchdog deadline
    (stuck in a collective, a pool wait, or a hung disk call); carries
    the stuck rank and the seconds it sat idle.

    The watchdog only fires when *every* watched rank is silent, so the
    optional ``stalled`` list names them all — ``(rank, idle_s)`` pairs,
    quietest first. ``rank``/``idle_s`` stay the quietest rank (the
    primary suspect), keeping the one-rank form backward compatible.
    """

    def __init__(
        self,
        rank: int,
        idle_s: float,
        deadline_s: float,
        stalled: list | None = None,
    ) -> None:
        self.rank = rank
        self.idle_s = idle_s
        self.deadline_s = deadline_s
        self.stalled = [(int(r), float(s)) for r, s in (stalled or [])]
        message = (
            f"rank {rank} made no progress for {idle_s:.1f}s "
            f"(watchdog deadline {deadline_s:.1f}s)"
        )
        if len(self.stalled) > 1:
            message += "; all stalled ranks: " + ", ".join(
                f"{r} ({s:.1f}s idle)" for r, s in self.stalled
            )
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.rank, self.idle_s, self.deadline_s, self.stalled))


class RankKilled(ResilienceError):
    """A fault plan killed this rank (chaos injection).

    On the thread backend a ``rank_kill``/``rank_exit`` fault surfaces
    as this exception — the closest a shared address space comes to
    losing a rank; on the process backend the rank really dies (SIGKILL
    or ``os._exit``) and the parent reports a
    :class:`~repro.cluster.process_backend.RemoteRankError` instead.
    Both are restartable under a
    :class:`~repro.resilience.supervisor.RestartPolicy`.
    """


class GovernorError(ReproError, RuntimeError):
    """The resource-governance layer refused, stopped, or bounded work
    (cancellation, deadlines, memory budgets, admission control)."""


class Cancellation(GovernorError):
    """Base of the two structured ways a run is asked to stop: an
    explicit cancel and an expired deadline. Rank programs raise one of
    the subclasses from their next cancellation point (a pool wait, a
    mailbox wait, a retry backoff sleep, or a pass boundary); the SPMD
    launcher re-raises it unwrapped so callers can catch the precise
    cause without unpacking an :class:`SpmdError`."""


class CancelledError(Cancellation):
    """The run was cancelled via its
    :class:`~repro.governor.CancelToken`; carries the reason given."""

    def __init__(self, reason: str = "cancelled") -> None:
        self.reason = reason
        super().__init__(f"run cancelled: {reason}")

    def __reduce__(self):
        return (type(self), (self.reason,))


class DeadlineExceeded(Cancellation):
    """The run's wall-clock deadline expired before it finished."""

    def __init__(self, deadline_s: float) -> None:
        self.deadline_s = deadline_s
        super().__init__(f"run exceeded its deadline of {deadline_s:.1f}s")

    def __reduce__(self):
        return (type(self), (self.deadline_s,))


class BudgetExceeded(GovernorError):
    """A memory-budget wait could not be satisfied: the request is
    larger than the whole budget, or backpressure blocked past the
    budget timeout without enough bytes being recycled."""

    def __init__(self, requested: int, budget: int, held: int, why: str) -> None:
        self.requested = requested
        self.budget = budget
        self.held = held
        self.why = why
        super().__init__(
            f"buffer-pool budget exceeded: need {requested} bytes with "
            f"{held} of {budget} held — {why}"
        )

    def __reduce__(self):
        return (type(self), (self.requested, self.budget, self.held, self.why))


class AdmissionRejected(GovernorError):
    """The :class:`~repro.governor.JobGovernor` shed this job instead of
    admitting it (queue full, queue timeout, or a demand no quota could
    ever satisfy); carries which."""

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        self.detail = detail
        super().__init__(
            f"job not admitted ({reason})" + (f": {detail}" if detail else "")
        )

    def __reduce__(self):
        return (type(self), (self.reason, self.detail))


class ServiceError(ReproError, RuntimeError):
    """The sort-as-a-service layer failed (a malformed request, a daemon
    that refused to start, a client that exhausted its reconnect budget,
    or a protocol violation on the job socket)."""


class JournalError(ServiceError):
    """The durable job journal is inconsistent beyond what torn-write
    recovery covers: an illegal state transition on replay, a duplicate
    submission record for one job id, or an event for a job the journal
    never saw submitted. A merely *truncated* journal is not an error —
    replay trusts the valid prefix and discards the torn tail."""


class JobNotFound(ServiceError):
    """A service request named a job id the daemon's journal has never
    seen (or that was purged)."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        super().__init__(f"unknown job {job_id!r}")

    def __reduce__(self):
        return (type(self), (self.job_id,))


class VerificationError(ReproError, AssertionError):
    """Sorted-output verification failed (order, permutation, or layout)."""
