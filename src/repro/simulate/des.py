"""Event-driven simulation of the asynchronous stage pipelines.

The paper's implementations run each pass as a pipeline: every round's
buffer flows through the stages in order, stages are bound to threads,
and at any instant each stage may be working on a different round
(paper §2). This module computes the makespan of such a pipeline from a
:class:`~repro.simulate.trace.PassTrace` and a
:class:`~repro.simulate.hardware.HardwareModel`.

Model rules:

* a stage-round becomes *ready* when the previous stage of the same
  round completes (stage 0: when the round is admitted);
* each thread runs one stage-round at a time, picking among ready
  stages the earliest round (and earliest stage within it) — this lets
  the I/O thread interleave round ``t+1``'s read with round ``t``'s
  write in whichever order readiness dictates, as the real
  implementation's I/O thread does;
* at most ``max_inflight`` rounds may be between admission and
  completion — the buffer-pool limit. This is the mechanism behind two
  of the paper's observations: smaller buffers admit more rounds but
  pay more per-stage overheads, and M-columnsort's extra threads
  consume extra buffers, deepening its latency sensitivity (§5: "uses
  more memory (due to the extra buffers required by the additional
  threads)").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.simulate.hardware import HardwareModel
from repro.simulate.trace import PassTrace


@dataclass
class PassTiming:
    """Result of simulating one pass."""

    name: str
    makespan: float
    thread_busy: dict[str, float] = field(default_factory=dict)
    stage_total: dict[str, float] = field(default_factory=dict)
    rounds: int = 0
    max_inflight: int = 0

    @property
    def bottleneck_thread(self) -> str:
        return max(self.thread_busy, key=self.thread_busy.get)

    def utilization(self, thread: str) -> float:
        """Busy fraction of a thread over the pass."""
        if self.makespan == 0:
            return 0.0
        return self.thread_busy.get(thread, 0.0) / self.makespan


class PipelineSimulator:
    """Simulates one pass's pipeline; see module docstring for rules."""

    def __init__(self, hw: HardwareModel, max_inflight: int = 4) -> None:
        if max_inflight < 1:
            raise ConfigError(f"max_inflight must be ≥ 1, got {max_inflight}")
        self.hw = hw
        self.max_inflight = max_inflight

    def run(self, trace: PassTrace) -> PassTiming:
        stages = trace.stages
        rounds = trace.rounds
        n_rounds = len(rounds)
        timing = PassTiming(
            name=trace.name,
            makespan=0.0,
            thread_busy={h: 0.0 for h in trace.threads()},
            stage_total={st.name: 0.0 for st in stages},
            rounds=n_rounds,
            max_inflight=self.max_inflight,
        )
        if n_rounds == 0:
            return timing

        def duration(t: int, k: int) -> float:
            st = stages[k]
            work = rounds[t].work.get(st.name, 0.0)
            msgs = rounds[t].messages.get(st.name, 0)
            return self.hw.stage_seconds(st, work, msgs)

        ready: dict[str, list[tuple[int, int]]] = {h: [] for h in trace.threads()}
        idle: set[str] = set(trace.threads())
        events: list[tuple[float, int, str, int, int]] = []  # (time, seq, thread, t, k)
        seq = 0
        inflight = 0
        next_round = 0
        now = 0.0

        def admit() -> None:
            nonlocal inflight, next_round
            while inflight < self.max_inflight and next_round < n_rounds:
                heapq.heappush(ready[stages[0].thread], (next_round, 0))
                inflight += 1
                next_round += 1

        def start_idle_threads() -> None:
            nonlocal seq
            for h in list(idle):
                if ready[h]:
                    t, k = heapq.heappop(ready[h])
                    idle.discard(h)
                    dur = duration(t, k)
                    timing.thread_busy[h] += dur
                    timing.stage_total[stages[k].name] += dur
                    seq += 1
                    heapq.heappush(events, (now + dur, seq, h, t, k))

        admit()
        start_idle_threads()
        while events:
            now, _, h, t, k = heapq.heappop(events)
            idle.add(h)
            if k + 1 < len(stages):
                heapq.heappush(ready[stages[k + 1].thread], (t, k + 1))
            else:
                inflight -= 1
                admit()
            start_idle_threads()
        timing.makespan = now
        return timing


def simulate_pass(
    trace: PassTrace, hw: HardwareModel, max_inflight: int = 4
) -> PassTiming:
    """Convenience wrapper: simulate one pass trace."""
    return PipelineSimulator(hw, max_inflight=max_inflight).run(trace)
