"""Structural traces of out-of-core passes.

A *pass* reads every record once, pushes it through a pipeline of
stages, and writes it back (paper §2). A trace captures, per round and
per stage, how much work each stage performs — enough for the
discrete-event simulator to compute the pass's pipelined makespan, and
nothing more (no keys, no data).

Stage kinds and their work units:

========= ======================= =====================================
kind      work unit               examples
========= ======================= =====================================
``read``  bytes from disk         the read stage
``write`` bytes to disk           the write stage
``sort``  records sorted locally  sort stages (in- or out-of-core)
``comm``  bytes over the network  communicate stages (plus a message
                                  count for latency accounting)
``permute`` bytes copied in memory the permute stage
========= ======================= =====================================

Each stage is pinned to a named *thread*; stages sharing a thread
serialize (the paper's implementations share the I/O thread between the
read and write stages, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: a name, a work kind, and its thread."""

    name: str
    kind: str  # read | write | sort | comm | permute
    thread: str

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write", "sort", "comm", "permute"):
            raise ValueError(f"unknown stage kind {self.kind!r}")


@dataclass
class RoundWork:
    """Work performed by every stage in one round, keyed by stage name.

    ``work[stage]`` is bytes for read/write/comm/permute stages and
    records for sort stages; ``messages[stage]`` (comm stages only)
    counts network messages for latency accounting.
    """

    work: dict[str, float] = field(default_factory=dict)
    messages: dict[str, int] = field(default_factory=dict)


@dataclass
class PassTrace:
    """One pass: its pipeline shape and per-round work (for a single
    processor — the algorithms are symmetric across processors).

    ``wall`` holds *measured* seconds per stage category (``read_wait``
    / ``compute`` / ``comm`` / ``incore`` / ``write_wait`` — see
    :mod:`repro.pipeline.timing`) when the pass was executed by a live
    rank program; analytic traces leave it empty.
    """

    name: str
    stages: list[StageSpec]
    rounds: list[RoundWork] = field(default_factory=list)
    wall: dict[str, float] = field(default_factory=dict)

    def total(self, kind: str) -> float:
        """Total work of all stages of a kind across all rounds."""
        names = [st.name for st in self.stages if st.kind == kind]
        return sum(rw.work.get(name, 0.0) for rw in self.rounds for name in names)

    def threads(self) -> list[str]:
        seen: list[str] = []
        for st in self.stages:
            if st.thread not in seen:
                seen.append(st.thread)
        return seen


@dataclass
class RunTrace:
    """A full run: one trace per pass, plus identifying metadata."""

    algorithm: str
    n_records: int
    record_size: int
    p: int
    buffer_bytes: int
    passes: list[PassTrace] = field(default_factory=list)

    @property
    def data_bytes(self) -> int:
        return self.n_records * self.record_size

    @property
    def gb_total(self) -> float:
        return self.data_bytes / 2**30

    @property
    def gb_per_proc(self) -> float:
        return self.gb_total / self.p

    def total(self, kind: str) -> float:
        return sum(p.total(kind) for p in self.passes)

    def measured_wall(self) -> dict[str, float]:
        """Measured per-stage wall seconds summed over passes (empty for
        analytic traces — only live runs populate ``PassTrace.wall``)."""
        total: dict[str, float] = {}
        for pass_trace in self.passes:
            for category, seconds in pass_trace.wall.items():
                total[category] = total.get(category, 0.0) + seconds
        return total


# Pipeline shapes from the paper.

def five_stage_pipeline() -> list[StageSpec]:
    """Passes 1-2 of threaded/subblock columnsort: read, sort,
    communicate, permute, write on four threads (read+write share the
    I/O thread)."""
    return [
        StageSpec("read", "read", "io"),
        StageSpec("sort", "sort", "sort"),
        StageSpec("communicate", "comm", "comm"),
        StageSpec("permute", "permute", "permute"),
        StageSpec("write", "write", "io"),
    ]


def seven_stage_pipeline() -> list[StageSpec]:
    """The last pass of threaded/subblock columnsort: two sort stages
    and two communicate stages (paper §2, third implementation)."""
    return [
        StageSpec("read", "read", "io"),
        StageSpec("sort1", "sort", "sort"),
        StageSpec("communicate1", "comm", "comm"),
        StageSpec("sort2", "sort", "sort"),
        StageSpec("communicate2", "comm", "comm"),
        StageSpec("permute", "permute", "permute"),
        StageSpec("write", "write", "io"),
    ]


def incore_sort_stages(prefix: str) -> list[StageSpec]:
    """The eight stages of one distributed in-core columnsort inside
    M-columnsort: four local sorts on one thread, four communication
    steps on another (paper §4)."""
    out: list[StageSpec] = []
    for k, step in enumerate(("s1", "c2", "s3", "c4", "s5", "c6", "s7", "c8")):
        kind = "sort" if step.startswith("s") else "comm"
        thread = f"{prefix}-sort" if kind == "sort" else f"{prefix}-comm"
        out.append(StageSpec(f"{prefix}-{step}", kind, thread))
    return out


def eleven_stage_pipeline() -> list[StageSpec]:
    """Passes 1-2 of M-columnsort: read, the eight in-core columnsort
    stages, permute, write — on four threads (paper §4)."""
    return (
        [StageSpec("read", "read", "io")]
        + incore_sort_stages("ic")
        + [
            StageSpec("permute", "permute", "permute"),
            StageSpec("write", "write", "io"),
        ]
    )


def twenty_stage_pipeline() -> list[StageSpec]:
    """The last pass of M-columnsort: read, eight in-core stages (step
    5's distributed sort), the remaining communicate, eight more in-core
    stages (step 7's), permute, write — 20 stages on seven threads
    (paper §4)."""
    return (
        [StageSpec("read", "read", "io")]
        + incore_sort_stages("ic1")
        + [StageSpec("communicate", "comm", "comm")]
        + incore_sort_stages("ic2")
        + [
            StageSpec("permute", "permute", "permute"),
            StageSpec("write", "write", "io"),
        ]
    )


def io_only_pipeline() -> list[StageSpec]:
    """The baseline: read and write only (paper §5's 'baseline I/O
    time')."""
    return [
        StageSpec("read", "read", "io"),
        StageSpec("write", "write", "io"),
    ]
