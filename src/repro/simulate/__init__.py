"""Timing model: pipelines, hardware, and the discrete-event simulator.

The functional layer (:mod:`repro.oocs`) proves the algorithms correct
and meters exact I/O and communication volumes; this subpackage turns
those volumes into *time*, reproducing the paper's Figure 2 at full
experimental scale (4-32 GB, P ∈ {4, 8, 16}) without moving real data:

* :mod:`~repro.simulate.trace` — structural traces: per pass, per
  round, per stage, how many bytes each pipeline stage moves. Functional
  runs emit them; :mod:`~repro.simulate.traces` generates them
  analytically for arbitrary problem sizes (legal because the
  algorithms' I/O and communication patterns are oblivious to key
  values, paper §2);
* :mod:`~repro.simulate.hardware` — hardware cost models, including the
  calibrated ``BEOWULF_2003`` preset matching the paper's testbed;
* :mod:`~repro.simulate.des` — an event-driven simulator of the
  asynchronous stage pipelines (stages share threads exactly as the
  paper describes: read and write share the I/O thread, etc.);
* :mod:`~repro.simulate.predict` — end-to-end predicted runtimes and
  per-pass breakdowns for each algorithm and buffer size.
"""

from repro.simulate.trace import PassTrace, RoundWork, RunTrace
from repro.simulate.hardware import BEOWULF_2003, HardwareModel
from repro.simulate.des import PipelineSimulator, simulate_pass
from repro.simulate.predict import predict_run, predict_seconds_per_gb

__all__ = [
    "RoundWork",
    "PassTrace",
    "RunTrace",
    "HardwareModel",
    "BEOWULF_2003",
    "PipelineSimulator",
    "simulate_pass",
    "predict_run",
    "predict_seconds_per_gb",
]
