"""Hardware cost models.

A :class:`HardwareModel` prices one pipeline stage-round: disk transfers
at an effective bandwidth plus a per-access overhead, local sorts at an
``n·lg n`` comparison rate, network transfers at an effective all-to-all
bandwidth plus per-message latency and a synchronization penalty (the
lockstep cost of synchronous MPI calls inside asynchronous threads —
every communication stage ends with all ranks waiting for the slowest),
and in-memory permutes at copy bandwidth. Every stage also pays a fixed
pipeline-switch overhead, which is what makes smaller buffers slower
(paper §5: "more frequent switches between pipeline stages").

``BEOWULF_2003`` is calibrated to the paper's testbed: dual 1.5 GHz P4
Xeon nodes, 1 GB RAM, Ultra-160 SCSI disks driven through C stdio
(~22 MB/s effective), and 250 MB/s-peak Myrinet. The calibration anchor
is the paper's 3-pass baseline I/O time of roughly 290-300 seconds per
GB per processor; everything else is shape, not absolute seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simulate.trace import StageSpec


@dataclass(frozen=True)
class HardwareModel:
    """Stage-cost parameters of one cluster node.

    All rates are *effective* (measured end-to-end through the software
    stack), not peak.
    """

    name: str = "generic"
    #: Effective sequential disk bandwidth, bytes/second.
    disk_bandwidth: float = 50e6
    #: Per-I/O-access overhead (seek + stdio bookkeeping), seconds.
    disk_access_overhead: float = 5e-3
    #: Effective per-node network bandwidth during collective exchanges,
    #: bytes/second.
    net_bandwidth: float = 100e6
    #: Per-message latency, seconds.
    net_latency: float = 1e-4
    #: Multiplier on communication-stage time modeling lockstep
    #: synchronization stalls (all ranks wait for the slowest; >1).
    sync_factor: float = 1.0
    #: Local sort speed: elementary compare/move operations per second
    #: (a sort of n records costs n·lg n of them).
    sort_ops_per_sec: float = 50e6
    #: In-memory copy bandwidth for the permute stage, bytes/second.
    mem_bandwidth: float = 500e6
    #: Fixed cost charged to every stage-round: thread wakeups, buffer
    #: handoff, pipeline switching.
    stage_overhead: float = 10e-3
    #: Node RAM available for pipeline buffers, bytes.
    ram_bytes: float = 1 * 2**30

    def __post_init__(self) -> None:
        for field_name in (
            "disk_bandwidth",
            "net_bandwidth",
            "sort_ops_per_sec",
            "mem_bandwidth",
        ):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be positive")

    def stage_seconds(
        self, stage: StageSpec, work: float, messages: int = 0
    ) -> float:
        """Price one stage-round: ``work`` is bytes (records for sort
        stages), ``messages`` the network message count (comm only)."""
        if work < 0:
            raise ConfigError(f"negative stage work {work}")
        if stage.kind in ("read", "write"):
            return work / self.disk_bandwidth + self.disk_access_overhead + self.stage_overhead
        if stage.kind == "sort":
            if work == 0:
                return self.stage_overhead
            ops = work * math.log2(max(work, 2.0))
            return ops / self.sort_ops_per_sec + self.stage_overhead
        if stage.kind == "comm":
            wire = work / self.net_bandwidth + messages * self.net_latency
            return wire * self.sync_factor + self.stage_overhead
        if stage.kind == "permute":
            return work / self.mem_bandwidth + self.stage_overhead
        raise ConfigError(f"unknown stage kind {stage.kind!r}")

    def buffers_available(self, buffer_bytes: int) -> int:
        """How many pipeline buffers of this size fit in RAM (at least 2)."""
        return max(2, int(self.ram_bytes // max(buffer_bytes, 1)))


#: The paper's testbed (§5): 16 dual-P4 nodes, 1 GB RAM each, one
#: Ultra-160 SCSI disk per node via C stdio, Myrinet at 250 MB/s peak.
#: disk_bandwidth is the calibration anchor — 22 MB/s effective puts the
#: 3-pass baseline at ≈293 s per (GB/processor), matching Figure 2's
#: baseline line; the sync factor and sort rate reproduce M-columnsort's
#: position between threaded and subblock columnsort.
BEOWULF_2003 = HardwareModel(
    name="beowulf-2003",
    disk_bandwidth=22e6,
    disk_access_overhead=8e-3,
    net_bandwidth=80e6,
    net_latency=2e-4,
    sync_factor=2.45,
    sort_ops_per_sec=45e6,
    mem_bandwidth=400e6,
    stage_overhead=60e-3,
    ram_bytes=1 * 2**30,
)

#: A contemporary laptop-ish profile, for examples that want modern
#: numbers rather than 2003 numbers.
MODERN_NVME = HardwareModel(
    name="modern-nvme",
    disk_bandwidth=2.5e9,
    disk_access_overhead=50e-6,
    net_bandwidth=1.2e9,
    net_latency=5e-6,
    sync_factor=1.2,
    sort_ops_per_sec=1.5e9,
    mem_bandwidth=2e10,
    stage_overhead=1e-4,
    ram_bytes=16 * 2**30,
)
