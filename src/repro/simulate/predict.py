"""End-to-end runtime prediction.

Glues the pieces together: a :class:`~repro.simulate.trace.RunTrace`
(analytic or emitted by a functional run), a hardware model, and the
pipeline simulator. The headline quantity is the paper's y-axis:
**seconds per (GB of data per processor)** — the normalization under
which Figure 2's lines are nearly flat, because execution time is
dominated by per-processor data volume (§5).

The in-flight round limit (pipeline depth) is derived from the buffer
pool: a node's RAM holds ``ram/buffer`` buffers; each in-flight round
pins roughly one buffer per pipeline thread plus transfer slack, and
M-columnsort's extra in-core threads pin four more (§4: "the additional
threads in M-columnsort require the allocation of four additional
buffers"). Deeper pipelines hide more latency — this is why larger
buffers help until memory pressure bites (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulate.des import PassTiming, PipelineSimulator
from repro.simulate.hardware import HardwareModel
from repro.simulate.trace import PassTrace, RunTrace

#: Extra buffers pinned *per in-flight round* by the in-core sort
#: threads of M-columnsort and the hybrid. The paper's four additional
#: buffers (§4) are a per-processor total; roughly one of them is held
#: by each round in flight.
EXTRA_INCORE_BUFFERS = 1


@dataclass
class RunTiming:
    """Predicted timing of one full run."""

    algorithm: str
    total_seconds: float
    per_pass: list[PassTiming] = field(default_factory=list)
    gb_total: float = 0.0
    gb_per_proc: float = 0.0

    @property
    def seconds_per_gb_per_proc(self) -> float:
        """The paper's Figure 2 y-axis."""
        if self.gb_per_proc == 0:
            return 0.0
        return self.total_seconds / self.gb_per_proc


def buffers_per_round(trace: PassTrace) -> int:
    """Buffers one in-flight round pins: one per pipeline thread, plus
    the in-core surcharge when the pass embeds distributed in-core
    sorts."""
    extra = (
        EXTRA_INCORE_BUFFERS
        if any(st.name.startswith("ic") for st in trace.stages)
        else 0
    )
    return len(trace.threads()) + extra


def max_inflight_for(trace: PassTrace, hw: HardwareModel, buffer_bytes: int) -> int:
    """Pipeline depth allowed by the buffer pool (≥ 1)."""
    available = hw.buffers_available(buffer_bytes)
    return max(1, available // buffers_per_round(trace))


def predict_run(run: RunTrace, hw: HardwareModel) -> RunTiming:
    """Simulate every pass of a run and total the makespans.

    Passes are separated by a barrier in the real programs, so their
    makespans add; overlap lives *within* a pass.
    """
    timings: list[PassTiming] = []
    total = 0.0
    for pass_trace in run.passes:
        inflight = max_inflight_for(pass_trace, hw, run.buffer_bytes)
        timing = PipelineSimulator(hw, max_inflight=inflight).run(pass_trace)
        timings.append(timing)
        total += timing.makespan
    return RunTiming(
        algorithm=run.algorithm,
        total_seconds=total,
        per_pass=timings,
        gb_total=run.gb_total,
        gb_per_proc=run.gb_per_proc,
    )


def measured_overlap(run: RunTrace) -> dict[str, float]:
    """Overlap summary of a *measured* run (the functional counterpart
    of the DES's utilization numbers).

    Reads the per-stage wall times that the pass pipeline recorded into
    each :class:`PassTrace` and reports, in seconds, the rank-0 time
    spent busy (``compute`` + ``comm`` + ``incore``) versus stalled on
    disk (``read_wait`` + ``write_wait``), plus ``io_wait_fraction`` —
    the share of measured wall time lost to I/O stalls. A deeper
    pipeline shows up as a smaller fraction: the waits shrink while the
    busy time stays put. Empty dict when the run carries no
    measurements.
    """
    wall = run.measured_wall()
    if not wall:
        return {}
    busy = wall.get("compute", 0.0) + wall.get("comm", 0.0) + wall.get("incore", 0.0)
    wait = wall.get("read_wait", 0.0) + wall.get("write_wait", 0.0)
    total = busy + wait
    return {
        "busy_seconds": busy,
        "io_wait_seconds": wait,
        "io_wait_fraction": wait / total if total else 0.0,
    }


def predict_seconds_per_gb(
    algorithm: str,
    n: int,
    p: int,
    buffer_bytes: int,
    record_size: int,
    hw: HardwareModel,
    passes: int = 3,
) -> float:
    """One-call prediction of the Figure 2 y-value for a configuration.

    ``algorithm`` is ``"threaded"``, ``"subblock"``, ``"m"``,
    ``"hybrid"``, or ``"baseline-io"`` (which also uses ``passes``).
    ``buffer_bytes`` is the paper's buffer size (2^24 or 2^25 in §5).
    """
    from repro.simulate.traces import TRACE_BUILDERS, baseline_run_trace

    buffer_records = buffer_bytes // record_size
    if algorithm == "baseline-io":
        run = baseline_run_trace(n, p, buffer_records, record_size, passes=passes)
    else:
        run = TRACE_BUILDERS[algorithm](n, p, buffer_records, record_size)
    return predict_run(run, hw).seconds_per_gb_per_proc
