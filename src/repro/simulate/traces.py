"""Analytic (structural) trace generation.

The out-of-core programs' I/O and communication patterns are oblivious
to key values (paper §2), so their traces are pure functions of
``(N, P, buffer, record size)``. This module builds them at any scale —
including the paper's 4-32 GB experiments — without touching data.

The per-round work builders here are the *same functions* the
functional pass bodies call when metering a real run, so an analytic
trace and a functional trace of the same configuration are identical;
the test suite asserts exactly that.

All builders express work for **one processor** (the programs are
symmetric).
"""

from __future__ import annotations

from repro.errors import ConfigError, DimensionError
from repro.matrix.bits import is_power_of_four, is_power_of_two, sqrt_pow4
from repro.simulate.trace import (
    PassTrace,
    RoundWork,
    RunTrace,
    eleven_stage_pipeline,
    five_stage_pipeline,
    io_only_pipeline,
    seven_stage_pipeline,
    twenty_stage_pipeline,
)

# ---------------------------------------------------------------------------
# Per-round work builders (shared with the functional pass bodies)
# ---------------------------------------------------------------------------

def deal_round_work(
    record_size: int, r: int, net_fraction: float, messages: int
) -> RoundWork:
    """One round of a 5-stage deal pass: a full ``r``-record buffer
    through every stage, ``net_fraction`` of it crossing the network."""
    nbytes = r * record_size
    return RoundWork(
        work={
            "read": nbytes,
            "sort": r,
            "communicate": nbytes * net_fraction,
            "permute": nbytes,
            "write": nbytes,
        },
        messages={"communicate": messages},
    )


def subblock_round_work(record_size: int, r: int, s: int, p: int) -> RoundWork:
    """One round of the subblock pass: ``⌈P/√s⌉`` messages, of which one
    stays on its sender — zero network traffic when ``√s ≥ P``."""
    t = sqrt_pow4(s)
    msgs = -(-p // t)
    net_messages = msgs - 1
    nbytes = r * record_size
    return RoundWork(
        work={
            "read": nbytes,
            "sort": r,
            "communicate": nbytes * net_messages / msgs,
            "permute": nbytes,
            "write": nbytes,
        },
        messages={"communicate": net_messages},
    )


def final_round_work(record_size: int, r: int, p: int) -> RoundWork:
    """One round of the 7-stage final pass: step-5 sort, half-column
    exchange, step-7 merge, PDM routing, write."""
    nbytes = r * record_size
    return RoundWork(
        work={
            "read": nbytes,
            "sort1": r,
            "communicate1": nbytes / 2,
            "sort2": r,
            "communicate2": nbytes * (p - 1) / p,
            "permute": nbytes,
            "write": nbytes,
        },
        messages={"communicate1": 1, "communicate2": p - 1},
    )


def io_round_work(record_size: int, r: int) -> RoundWork:
    """One round of an I/O-only baseline pass."""
    nbytes = r * record_size
    return RoundWork(work={"read": nbytes, "write": nbytes})


def incore_round_work(
    record_size: int, portion: int, p: int, prefix: str, delivery: str
) -> tuple[dict, dict]:
    """Work and message counts of the eight in-core columnsort stages
    inside one M-columnsort round. ``delivery`` describes the final
    communication step: ``"balanced"`` (contiguous slices — roughly half
    a portion moves, to a neighbor) or ``"scattered"`` (per-column
    slices — almost everything moves)."""
    nbytes = portion * record_size
    deal = nbytes * (p - 1) / p
    final = nbytes / 2 if delivery == "balanced" else deal
    work = {
        f"{prefix}-s1": portion,
        f"{prefix}-c2": deal,
        f"{prefix}-s3": portion,
        f"{prefix}-c4": deal,
        f"{prefix}-s5": portion,
        f"{prefix}-c6": nbytes / 2,
        f"{prefix}-s7": portion,
        f"{prefix}-c8": final,
    }
    messages = {
        f"{prefix}-c2": p - 1,
        f"{prefix}-c4": p - 1,
        f"{prefix}-c6": 1,
        f"{prefix}-c8": 2 if delivery == "balanced" else p - 1,
    }
    return work, messages


def m_deal_round_work(
    record_size: int, portion: int, p: int, delivery: str
) -> RoundWork:
    """One round of an 11-stage M-columnsort deal pass."""
    nbytes = portion * record_size
    work = {"read": nbytes, "permute": nbytes, "write": nbytes}
    ic_work, ic_msgs = incore_round_work(record_size, portion, p, "ic", delivery)
    work.update(ic_work)
    return RoundWork(work=work, messages=ic_msgs)


def m_final_round_work(record_size: int, portion: int, p: int) -> RoundWork:
    """One round of the 20-stage M-columnsort final pass."""
    nbytes = portion * record_size
    work = {
        "read": nbytes,
        "communicate": nbytes * (p - 1) / p,
        "permute": nbytes,
        "write": nbytes,
    }
    msgs = {"communicate": p - 1}
    for prefix in ("ic1", "ic2"):
        ic_work, ic_msgs = incore_round_work(
            record_size, portion, p, prefix, "balanced"
        )
        work.update(ic_work)
        msgs.update(ic_msgs)
    return RoundWork(work=work, messages=msgs)


# ---------------------------------------------------------------------------
# Shape resolution (standalone mirrors of the oocs derive_shape checks)
# ---------------------------------------------------------------------------

def _check_pow2(**kwargs: int) -> None:
    for name, value in kwargs.items():
        if not is_power_of_two(value):
            raise ConfigError(f"{name} must be a power of 2, got {value}")


def shape_threaded(n: int, p: int, r: int) -> int:
    """``s`` for threaded columnsort, enforcing ``P | s`` and ``r ≥ 2s²``."""
    _check_pow2(n=n, p=p, r=r)
    if n % r:
        raise ConfigError(f"buffer r={r} must divide N={n}")
    s = n // r
    if s < p or s % p:
        raise ConfigError(f"need at least P={p} columns with P | s, got s={s}")
    if r < 2 * s * s:
        raise DimensionError(
            f"threaded columnsort: r={r} < 2s²={2 * s * s} (N={n} too large)"
        )
    return s


def shape_subblock(n: int, p: int, r: int) -> int:
    """``s`` for subblock columnsort: power of 4 and ``r ≥ 4·s^(3/2)``."""
    _check_pow2(n=n, p=p, r=r)
    if n % r:
        raise ConfigError(f"buffer r={r} must divide N={n}")
    s = n // r
    if s < p or s % p:
        raise ConfigError(f"need at least P={p} columns with P | s, got s={s}")
    if not is_power_of_four(s):
        raise DimensionError(f"subblock columnsort: s={s} is not a power of 4")
    if r * r < 16 * s**3:
        raise DimensionError(
            f"subblock columnsort: r={r} < 4·s^(3/2)={4 * s * sqrt_pow4(s)}"
        )
    return s


def shape_m(n: int, p: int, portion: int, relaxed: bool = False) -> int:
    """``s`` for M-columnsort (or, with ``relaxed=True``, hybrid
    columnsort): ``r = M = P·portion``."""
    _check_pow2(n=n, p=p, portion=portion)
    if p < 2:
        raise ConfigError("M-columnsort needs P ≥ 2")
    r = p * portion
    if n % r:
        raise ConfigError(f"column height M={r} must divide N={n}")
    s = n // r
    if relaxed:
        if not is_power_of_four(s):
            raise DimensionError(f"hybrid columnsort: s={s} is not a power of 4")
        if r * r < 16 * s**3:
            raise DimensionError(f"hybrid columnsort: M={r} < 4·s^(3/2)")
    elif r < 2 * s * s:
        raise DimensionError(
            f"M-columnsort: M={r} < 2s²={2 * s * s} (N={n} too large)"
        )
    if portion < 2 * p * p:
        raise DimensionError(f"in-core restriction: M/P={portion} < 2P²={2 * p * p}")
    if portion % s:
        raise ConfigError(f"s={s} must divide M/P={portion}")
    return s


# ---------------------------------------------------------------------------
# Full-run trace builders
# ---------------------------------------------------------------------------

def threaded_run_trace(
    n: int, p: int, buffer_records: int, record_size: int
) -> RunTrace:
    """Structural trace of a 3-pass threaded columnsort run."""
    r = buffer_records
    s = shape_threaded(n, p, r)
    rounds = s // p
    deal = [deal_round_work(record_size, r, (p - 1) / p, p - 1)] * rounds
    final = [final_round_work(record_size, r, p)] * rounds
    return RunTrace(
        algorithm="threaded",
        n_records=n,
        record_size=record_size,
        p=p,
        buffer_bytes=r * record_size,
        passes=[
            PassTrace("pass1:steps1-2", five_stage_pipeline(), list(deal)),
            PassTrace("pass2:steps3-4", five_stage_pipeline(), list(deal)),
            PassTrace("pass3:steps5-8", seven_stage_pipeline(), list(final)),
        ],
    )


def subblock_run_trace(
    n: int, p: int, buffer_records: int, record_size: int
) -> RunTrace:
    """Structural trace of a 4-pass subblock columnsort run."""
    r = buffer_records
    s = shape_subblock(n, p, r)
    rounds = s // p
    deal = [deal_round_work(record_size, r, (p - 1) / p, p - 1)] * rounds
    sub = [subblock_round_work(record_size, r, s, p)] * rounds
    final = [final_round_work(record_size, r, p)] * rounds
    return RunTrace(
        algorithm="subblock",
        n_records=n,
        record_size=record_size,
        p=p,
        buffer_bytes=r * record_size,
        passes=[
            PassTrace("pass1:steps1-2", five_stage_pipeline(), list(deal)),
            PassTrace("pass2:steps3+3.1(subblock)", five_stage_pipeline(), list(sub)),
            PassTrace("pass3:steps3.2+4", five_stage_pipeline(), list(deal)),
            PassTrace("pass4:steps5-8", seven_stage_pipeline(), list(final)),
        ],
    )


def m_run_trace(n: int, p: int, buffer_records: int, record_size: int) -> RunTrace:
    """Structural trace of a 3-pass M-columnsort run (``M = P·buffer``)."""
    portion = buffer_records
    s = shape_m(n, p, portion)
    deal_bal = [m_deal_round_work(record_size, portion, p, "balanced")] * s
    deal_scat = [m_deal_round_work(record_size, portion, p, "scattered")] * s
    final = [m_final_round_work(record_size, portion, p)] * s
    return RunTrace(
        algorithm="m-columnsort",
        n_records=n,
        record_size=record_size,
        p=p,
        buffer_bytes=portion * record_size,
        passes=[
            PassTrace("pass1:steps1-2", eleven_stage_pipeline(), list(deal_bal)),
            PassTrace("pass2:steps3-4", eleven_stage_pipeline(), list(deal_scat)),
            PassTrace("pass3:steps5-8", twenty_stage_pipeline(), list(final)),
        ],
    )


def hybrid_run_trace(
    n: int, p: int, buffer_records: int, record_size: int
) -> RunTrace:
    """Structural trace of a 4-pass hybrid (subblock+M) columnsort run."""
    portion = buffer_records
    s = shape_m(n, p, portion, relaxed=True)
    deal_bal = [m_deal_round_work(record_size, portion, p, "balanced")] * s
    deal_scat = [m_deal_round_work(record_size, portion, p, "scattered")] * s
    final = [m_final_round_work(record_size, portion, p)] * s
    return RunTrace(
        algorithm="hybrid",
        n_records=n,
        record_size=record_size,
        p=p,
        buffer_bytes=portion * record_size,
        passes=[
            PassTrace("pass1:steps1-2", eleven_stage_pipeline(), list(deal_bal)),
            PassTrace(
                "pass2:steps3+3.1(subblock)", eleven_stage_pipeline(), list(deal_bal)
            ),
            PassTrace("pass3:steps3.2+4", eleven_stage_pipeline(), list(deal_scat)),
            PassTrace("pass4:steps5-8", twenty_stage_pipeline(), list(final)),
        ],
    )


def baseline_run_trace(
    n: int, p: int, buffer_records: int, record_size: int, passes: int = 3
) -> RunTrace:
    """Structural trace of the ``passes``-pass I/O-only baseline."""
    r = buffer_records
    _check_pow2(n=n, p=p, r=r)
    if n % r:
        raise ConfigError(f"buffer r={r} must divide N={n}")
    s = n // r
    if s < p or s % p:
        raise ConfigError(f"need at least P={p} columns with P | s, got s={s}")
    rounds = s // p
    io = [io_round_work(record_size, r)] * rounds
    return RunTrace(
        algorithm=f"baseline-io-{passes}",
        n_records=n,
        record_size=record_size,
        p=p,
        buffer_bytes=r * record_size,
        passes=[
            PassTrace(f"io-pass{k + 1}", io_only_pipeline(), list(io))
            for k in range(passes)
        ],
    )


#: name → trace builder, for the experiment harness.
TRACE_BUILDERS = {
    "threaded": threaded_run_trace,
    "subblock": subblock_run_trace,
    "m": m_run_trace,
    "hybrid": hybrid_run_trace,
}
