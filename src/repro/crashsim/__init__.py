"""Simulated power-loss crash-consistency harness (DESIGN §14).

``kill -9`` can never lose fsynced data, reorder buffered writes, or
tear a sector — the page cache belongs to the kernel and survives the
process. Real power loss can do all three, and the durability claims
of the journal, checkpoint, and parity planes are only credible if
recovery is exercised against the *full space of legal post-crash disk
states*, not just process death.

This package provides that harness in four layers:

* :mod:`repro.crashsim.interpose` — a recorder that interposes on every
  durability-critical filesystem operation (``open``/``write``/
  ``truncate``, ``os.replace``/``rename``/``unlink``/``mkdir``/
  ``rmdir``, ``os.fsync`` on files and directory handles) while a real
  workload runs, producing an inode-accurate operation log plus a
  snapshot of the pre-workload tree;
* :mod:`repro.crashsim.oplog` — the op and snapshot datatypes and the
  durability scan (which ops an ``fsync`` barrier has made durable at
  each instant);
* :mod:`repro.crashsim.cache` — the simulated page-cache model: a
  crash-state enumerator generating legal post-crash materializations
  (dropped unfsynced writes, reordered writes between barriers, torn
  sector-prefix writes, renames without the parent-directory fsync),
  a POSIX-legality checker the hypothesis suite leans on, and the
  materializer that writes any crash state to a scratch root;
* :mod:`repro.crashsim.invariants` / :mod:`repro.crashsim.harness` —
  checkers that run the *real* recovery paths
  (:meth:`~repro.service.journal.JobJournal.repair` + replay,
  :class:`~repro.resilience.checkpoint.CheckpointStore` resume,
  :class:`~repro.durability.parity.ParityLayer` repair, daemon
  ``_recover``) against each materialized state and assert the repo's
  claims: no acknowledged job lost or duplicated, no torn or stale
  manifest accepted as a resume point, recovered output byte-identical
  to an uncrashed run.
"""

from __future__ import annotations

from repro.crashsim.cache import (
    CrashState,
    enumerate_crash_states,
    is_legal_state,
    materialize,
)
from repro.crashsim.interpose import Recorder, trace
from repro.crashsim.oplog import Op, Snapshot, durable_at, pending_at
from repro.crashsim.harness import run_sweep

__all__ = [
    "CrashState",
    "Op",
    "Recorder",
    "Snapshot",
    "durable_at",
    "enumerate_crash_states",
    "is_legal_state",
    "materialize",
    "pending_at",
    "run_sweep",
    "trace",
]
