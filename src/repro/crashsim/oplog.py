"""Operation-log datatypes and the durability scan.

The recorder (:mod:`repro.crashsim.interpose`) reduces a workload's
filesystem activity to a flat list of :class:`Op` records. Data ops
(``write``, ``truncate``) target *inodes* — not paths — so a
write-temp/fsync/``os.replace`` sequence stays coherent when the crash
model applies the rename without the data, or vice versa. Namespace
ops (``create``, ``rename``, ``unlink``, ``mkdir``, ``rmdir``) target
directory entries and are attributed to their parent directory.

Durability semantics (the model DESIGN §14 documents):

* ``fsync`` of a file makes every earlier data op on that inode
  durable — and nothing else;
* ``fsync`` of a directory makes every earlier namespace op in that
  directory durable — and nothing else;
* everything not covered by a barrier at the instant of the crash is
  *pending*: the crash may or may not have materialized it.

:func:`durable_at` computes the guaranteed-durable op set for a crash
after any prefix of the log; :func:`pending_at` is its complement over
the issued prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import PurePosixPath

#: Op kinds that mutate inode contents.
DATA_KINDS = frozenset({"write", "truncate"})
#: Op kinds that mutate directory entries.
NS_KINDS = frozenset({"create", "rename", "unlink", "mkdir", "rmdir"})
#: Op kinds that are durability barriers (instantaneous, never pending).
BARRIER_KINDS = frozenset({"fsync", "fsync_dir"})


def parent_dir(rel: str) -> str:
    """The owning directory of a root-relative path (``""`` = the
    traced root itself)."""
    parent = str(PurePosixPath(rel).parent)
    return "" if parent == "." else parent


@dataclass(frozen=True)
class Op:
    """One recorded filesystem operation.

    Fields are kind-dependent: data ops carry ``inode`` (+ ``offset``/
    ``data`` or ``size``); namespace ops carry ``path`` (and ``src``
    for renames) plus ``parent``; ``fsync`` carries ``inode``;
    ``fsync_dir`` carries ``path`` (the directory)."""

    index: int
    kind: str
    path: str | None = None
    src: str | None = None
    inode: int | None = None
    offset: int = 0
    data: bytes = b""
    size: int = 0
    parent: str | None = None

    def describe(self) -> str:
        if self.kind == "write":
            return f"write(ino{self.inode}, @{self.offset}, {len(self.data)}B)"
        if self.kind == "truncate":
            return f"truncate(ino{self.inode}, {self.size})"
        if self.kind == "rename":
            return f"rename({self.src!r} -> {self.path!r})"
        if self.kind == "fsync":
            return f"fsync(ino{self.inode})"
        if self.kind == "fsync_dir":
            return f"fsync_dir({self.path!r})"
        return f"{self.kind}({self.path!r})"


@dataclass
class Snapshot:
    """The traced root's state when recording started: root-relative
    directory paths, and ``relpath -> (inode, bytes)`` for files (the
    recorder pre-assigns inode ids so later ops can reference them)."""

    dirs: set[str] = field(default_factory=set)
    files: dict[str, tuple[int, bytes]] = field(default_factory=dict)


def durable_at(ops: list[Op], crash_index: int) -> frozenset[int]:
    """Indices of ops guaranteed durable when the crash lands after
    ``ops[:crash_index]`` were issued.

    Barriers themselves are synchronous: an issued ``fsync`` has done
    its work, so everything it covers is durable even when the crash
    follows immediately.
    """
    durable: set[int] = set()
    pending_data: dict[int, list[int]] = {}
    pending_ns: dict[str, list[int]] = {}
    for op in ops[:crash_index]:
        if op.kind in DATA_KINDS:
            pending_data.setdefault(op.inode, []).append(op.index)
        elif op.kind in NS_KINDS:
            pending_ns.setdefault(op.parent, []).append(op.index)
        elif op.kind == "fsync":
            durable.update(pending_data.pop(op.inode, ()))
        elif op.kind == "fsync_dir":
            durable.update(pending_ns.pop(op.path, ()))
    return frozenset(durable)


def pending_at(ops: list[Op], crash_index: int) -> list[Op]:
    """The issued-but-not-guaranteed-durable ops at a crash point, in
    issue order (barriers excluded — they are never pending)."""
    durable = durable_at(ops, crash_index)
    return [
        op
        for op in ops[:crash_index]
        if op.kind not in BARRIER_KINDS and op.index not in durable
    ]
