"""Crash-consistency scenarios: trace a real workload, enumerate the
legal post-crash disk states, run the real recovery path against every
one, and collect invariant violations.

Each scenario is one durability claim exercised end to end:

* ``journal_append`` — fsync-acked journal events survive any crash;
  replay of a torn tail yields a legal history prefix;
* ``journal_compact`` — the boot-time compaction rewrite is atomic:
  recovery sees the old generation or the new one, never a mixture;
* ``checkpoint_save`` — the manifest write discipline (fsync temp,
  ``os.replace``, fsync parent) never exposes a torn or phantom
  manifest, and an acknowledged ``save()`` survives;
* ``checkpoint_prune`` — a retired checkpoint directory stays retired
  (no resurrected phantom resume points);
* ``sidecar`` — CRC-verified reads never false-pass on torn or
  reordered data, and a :meth:`VirtualDisk.sync
  <repro.disks.virtual_disk.VirtualDisk.sync>` barrier makes extents
  crash-proof;
* ``parity`` — a crash mid-parity-maintenance leaves a tree a fresh
  process attaches to cleanly (stale rows cleared, protection
  restarts), with data reads still verify-or-detect;
* ``daemon_restart`` — :meth:`SortService._recover
  <repro.service.daemon.SortService._recover>` on the materialized
  root loses no acknowledged job, duplicates none, resurrects none;
* ``resume_e2e`` — a full sort crashed at sampled points recovers (or
  restarts) to byte-identical output.

:func:`run_sweep` runs any subset and returns a JSON-friendly summary
(the ``crashsim-smoke`` CI job uploads it as ``BENCH_crashsim.json``).
"""

from __future__ import annotations

from pathlib import Path

from repro.crashsim.cache import enumerate_crash_states, materialize
from repro.crashsim.interpose import trace
from repro.crashsim.invariants import (
    Violation,
    check_barriered_reads,
    check_checkpoints,
    check_daemon_recovery,
    check_disk_reads,
    check_journal,
)
from repro.crashsim.oplog import pending_at
from repro.errors import CheckpointError
from repro.service.jobs import compaction_events, replay_jobs
from repro.service.journal import JobJournal


def _signatures(events: list[dict]) -> list[tuple]:
    return [(e.get("kind"), e.get("job")) for e in events]


def _fully_durable(ops, state) -> bool:
    """True when the crash landed after the last op with nothing pending
    dropped — the must-recover-perfectly state."""
    if state.crash_index != len(ops) or state.torn:
        return False
    pending = {op.index for op in pending_at(ops, state.crash_index)}
    return pending <= state.applied


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------


def scenario_journal_append(scratch: Path, quick: bool):
    """Interleaved job lifecycles appended (and fsynced) one event at a
    time; every acked event must survive every legal crash state."""
    work = scratch / "work"
    markers: list[tuple[str, str | None, int]] = []
    with trace(work) as rec:
        journal = JobJournal(work / "journal.log")

        def ack(kind: str, job: str | None, **fields) -> None:
            journal.append(kind, job=job, **fields)
            markers.append((kind, job, len(rec.ops)))

        ack("submitted", "j1", tenant="acme", spec={"n": 64})
        ack("admitted", "j1")
        ack("submitted", "j2", tenant="bits", spec={"n": 128})
        ack("running", "j1")
        ack("admitted", "j2")
        ack("done", "j1", result={"passes": 3})
        ack("running", "j2")
        journal.close()
    reference = [(kind, job) for kind, job, _ in markers]
    states = enumerate_crash_states(rec.ops)
    if quick:
        states = states[:: max(1, len(states) // 60)]
    violations: list[Violation] = []
    for i, state in enumerate(states):
        dest = materialize(rec.ops, state, rec.initial, scratch / f"s{i:04d}")
        acked = sum(1 for _, _, mark in markers if mark <= state.crash_index)
        violations += check_journal(
            dest / "journal.log",
            [(reference, acked)],
            scenario="journal_append",
            state=state.label or f"s{i}",
        )
    return len(states), violations


def scenario_journal_compact(scratch: Path, quick: bool):
    """The compaction rewrite plus its ``compacted`` marker event; the
    crash may land on either side of the atomic ``os.replace`` but
    never in between the generations."""
    work = scratch / "work"
    work.mkdir(parents=True, exist_ok=True)
    journal = JobJournal(work / "journal.log")
    for k in range(6):  # a grown history worth compacting
        job = f"j{k}"
        journal.append("submitted", job=job, tenant="acme", spec={"n": k})
        journal.append("admitted", job=job)
        journal.append("running", job=job)
        journal.append("done", job=job, result={"passes": 3})
    old_events, _ = journal.replay()
    journal.close()
    jobs, _ = replay_jobs(old_events)
    minimal = compaction_events(jobs)
    with trace(work) as rec:
        fresh = JobJournal(work / "journal.log")
        fresh.replay()
        fresh.compact(minimal)
        fresh.append(
            "compacted",
            events_before=len(old_events),
            events_after=len(minimal),
        )
        fresh.close()
    old_ref = _signatures(old_events)
    new_ref = _signatures(minimal) + [("compacted", None)]
    candidates = [(old_ref, len(old_ref)), (new_ref, len(minimal))]
    states = enumerate_crash_states(rec.ops)
    violations: list[Violation] = []
    for i, state in enumerate(states):
        dest = materialize(rec.ops, state, rec.initial, scratch / f"s{i:04d}")
        violations += check_journal(
            dest / "journal.log",
            candidates,
            scenario="journal_compact",
            state=state.label or f"s{i}",
        )
    return len(states), violations


def scenario_checkpoint_save(scratch: Path, quick: bool):
    """Three manifests saved in sequence through the atomic-write
    discipline; no crash state may show a torn or phantom manifest, and
    an acked save survives."""
    from repro.resilience.checkpoint import MANIFEST_VERSION, CheckpointStore

    work = scratch / "work"
    saved: list[tuple[dict, int]] = []
    with trace(work) as rec:
        store = CheckpointStore(work / "ck")
        for pass_index in (1, 2, 3):
            manifest = {
                "version": MANIFEST_VERSION,
                "pass_index": pass_index,
                "algorithm": "threaded",
                "store": f"store{pass_index % 2}",
                "digest": f"d{pass_index:02d}",
            }
            store.save(manifest)
            saved.append((manifest, len(rec.ops)))
    manifests = [manifest for manifest, _ in saved]
    states = enumerate_crash_states(rec.ops)
    if quick:
        states = states[:: max(1, len(states) // 60)]
    violations: list[Violation] = []
    for i, state in enumerate(states):
        dest = materialize(rec.ops, state, rec.initial, scratch / f"s{i:04d}")
        acked = [m["pass_index"] for m, mark in saved if mark <= state.crash_index]
        violations += check_checkpoints(
            dest / "ck",
            manifests,
            min_latest_index=max(acked, default=0),
            scenario="checkpoint_save",
            state=state.label or f"s{i}",
        )
    return len(states), violations


def scenario_checkpoint_prune(scratch: Path, quick: bool):
    """Retiring a checkpoint directory: surviving manifests are always
    genuine, and once the prune is fully durable the directory cannot
    come back."""
    from repro.resilience.checkpoint import MANIFEST_VERSION, CheckpointStore

    work = scratch / "work"
    work.mkdir(parents=True, exist_ok=True)
    manifests = [
        {"version": MANIFEST_VERSION, "pass_index": 1, "algorithm": "threaded"},
        {"version": MANIFEST_VERSION, "pass_index": 2, "algorithm": "threaded"},
    ]
    seed = CheckpointStore(work / "ck")
    for manifest in manifests:
        seed.save(manifest)
    with trace(work) as rec:
        CheckpointStore(work / "ck").prune()
    states = enumerate_crash_states(rec.ops)
    violations: list[Violation] = []
    for i, state in enumerate(states):
        dest = materialize(rec.ops, state, rec.initial, scratch / f"s{i:04d}")
        violations += check_checkpoints(
            dest / "ck",
            manifests,
            min_latest_index=0,
            scenario="checkpoint_prune",
            state=state.label or f"s{i}",
            expect_absent=_fully_durable(rec.ops, state),
        )
    return len(states), violations


def scenario_sidecar(scratch: Path, quick: bool):
    """Object writes with CRC sidecars, a ``sync()`` barrier, then an
    unbarriered overwrite: verified reads must never false-pass, and
    barriered extents must survive any crash bit-for-bit."""
    from repro.disks.virtual_disk import VirtualDisk

    work = scratch / "work"
    written: dict[tuple[int, str, int, int], list[bytes]] = {}
    with trace(work) as rec:
        disk = VirtualDisk(work / "d0", disk_id=0)

        def put(name: str, offset: int, data: bytes) -> None:
            disk.write_at(name, offset, data)
            written.setdefault((0, name, offset, len(data)), []).append(data)

        put("obj.a", 0, b"A" * 1024)
        put("obj.a", 1024, b"B" * 1024)
        put("obj.b", 0, b"C" * 700)
        disk.sync()
        barrier = len(rec.ops)
        put("obj.a", 0, b"D" * 1024)  # unbarriered overwrite
    states = enumerate_crash_states(rec.ops)
    if quick:
        states = states[:: max(1, len(states) // 60)]
    violations: list[Violation] = []
    for i, state in enumerate(states):
        dest = materialize(rec.ops, state, rec.initial, scratch / f"s{i:04d}")
        recovered = VirtualDisk(dest / "d0", disk_id=0)
        label = state.label or f"s{i}"
        violations += check_disk_reads(
            [recovered], written, scenario="sidecar", state=label
        )
        if state.crash_index >= barrier:
            violations += check_barriered_reads(
                recovered,
                [("obj.b", 0, 700, b"C" * 700)],
                scenario="sidecar",
                state=label,
            )
    return len(states), violations


def scenario_parity(scratch: Path, quick: bool):
    """Parity-maintained writes across a 3-disk array; any crash state
    must re-attach cleanly in a fresh process (stale parity cleared)
    with data reads still verify-or-detect."""
    from repro.disks.virtual_disk import VirtualDisk
    from repro.durability.parity import attach_durability

    work = scratch / "work"
    written: dict[tuple[int, str, int, int], list[bytes]] = {}
    with trace(work) as rec:
        disks = [VirtualDisk(work / f"d{i}", disk_id=i) for i in range(3)]
        attach_durability(disks, parity=True)
        for i, disk in enumerate(disks):
            data = bytes([65 + i]) * 600
            disk.write_at(f"obj.{i}", 0, data)
            written.setdefault((i, f"obj.{i}", 0, 600), []).append(data)
        data = b"Z" * 600
        disks[0].write_at("obj.0", 0, data)  # fold + rewrite a row member
        written[(0, "obj.0", 0, 600)].append(data)
        for disk in disks:
            disk.sync()
    states = enumerate_crash_states(rec.ops)
    if quick:
        states = states[:: max(1, len(states) // 60)]
    violations: list[Violation] = []
    for i, state in enumerate(states):
        dest = materialize(rec.ops, state, rec.initial, scratch / f"s{i:04d}")
        label = state.label or f"s{i}"
        recovered = [VirtualDisk(dest / f"d{k}", disk_id=k) for k in range(3)]
        try:
            attach_durability(recovered, parity=True)
        except Exception as exc:  # noqa: BLE001 - any escape is the finding
            violations.append(
                Violation(
                    scenario="parity",
                    state=label,
                    message=(
                        f"re-attaching parity to the crashed tree raised "
                        f"{type(exc).__name__}: {exc}"
                    ),
                )
            )
            continue
        for k in range(3):
            stale = [
                p
                for sub in (".parity", ".spare")
                if (dest / f"d{k}" / sub).is_dir()
                for p in (dest / f"d{k}" / sub).iterdir()
            ]
            if stale:
                violations.append(
                    Violation(
                        scenario="parity",
                        state=label,
                        message=(
                            f"stale parity/spare files survived re-attach "
                            f"on disk {k}: {[p.name for p in stale]}"
                        ),
                    )
                )
        violations += check_disk_reads(
            recovered, written, scenario="parity", state=label
        )
    return len(states), violations


def scenario_daemon_restart(scratch: Path, quick: bool):
    """A daemon's journaled lifetime (one job to completion, one left
    queued) crashed at every legal point; ``SortService._recover`` on
    the wreckage must preserve exactly the acknowledged state."""
    work = scratch / "work"
    markers: list[tuple[str, str | None, int]] = []
    with trace(work) as rec:
        journal = JobJournal(work / "journal.log")

        def ack(kind: str, job: str | None, **fields) -> None:
            journal.append(kind, job=job, **fields)
            markers.append((kind, job, len(rec.ops)))

        ack("submitted", "j000001", tenant="acme", spec={"n": 64})
        ack("admitted", "j000001")
        ack("running", "j000001")
        ack("done", "j000001", result={"passes": 3})
        ack("submitted", "j000002", tenant="bits", spec={"n": 128})
        journal.close()
    submitted_all = {job for _, job, _ in markers if job is not None}
    states = enumerate_crash_states(rec.ops)
    if quick:
        states = states[:: max(1, len(states) // 60)]
    violations: list[Violation] = []
    for i, state in enumerate(states):
        dest = materialize(rec.ops, state, rec.initial, scratch / f"s{i:04d}")
        acked = [
            (kind, job)
            for kind, job, mark in markers
            if mark <= state.crash_index
        ]
        violations += check_daemon_recovery(
            dest,
            acked,
            submitted_all,
            scenario="daemon_restart",
            state=state.label or f"s{i}",
        )
    return len(states), violations


def scenario_resume_e2e(scratch: Path, quick: bool):
    """A real checkpointed sort, crashed at sampled log points: resume
    from the wreckage (or, when validation structurally refuses the
    checkpoints, a fresh run) must produce byte-identical output."""
    from repro.cluster.config import ClusterConfig
    from repro.oocs.api import sort_out_of_core
    from repro.records.format import RecordFormat
    from repro.records.generators import generate

    fmt = RecordFormat("u8", 16)
    recs = generate("uniform", fmt, 512, seed=11)
    cluster = ClusterConfig(p=2, mem_per_proc=2**10)

    def run(workdir: Path, ckdir: Path, resume: bool):
        return sort_out_of_core(
            "threaded",
            recs,
            cluster,
            fmt,
            buffer_records=128,
            workdir=workdir,
            checkpoint_dir=ckdir,
            resume=resume,
            keep_checkpoints=True,
        )

    work = scratch / "work"
    with trace(work) as rec:
        baseline = run(work / "w", work / "ck", resume=False)
    expected = baseline.output_records().tobytes()

    samples = 4 if quick else 10
    step = max(1, len(rec.ops) // samples)
    crash_indices = sorted({*range(step, len(rec.ops), step), len(rec.ops)})
    states = enumerate_crash_states(
        rec.ops, crash_indices=crash_indices, max_torn_per_state=1
    )
    target = 12 if quick else 40
    states = states[:: max(1, len(states) // target)]
    violations: list[Violation] = []
    for i, state in enumerate(states):
        dest = materialize(rec.ops, state, rec.initial, scratch / f"s{i:04d}")
        label = state.label or f"s{i}"
        try:
            try:
                result = run(dest / "w", dest / "ck", resume=True)
            except CheckpointError:
                # Structured refusal of the wreckage is legal recovery:
                # restart from scratch.
                result = run(dest / "fresh_w", dest / "fresh_ck", resume=False)
        except Exception as exc:  # noqa: BLE001 - any escape is the finding
            violations.append(
                Violation(
                    scenario="resume_e2e",
                    state=label,
                    message=(
                        f"recovery run raised {type(exc).__name__}: {exc}"
                    ),
                )
            )
            continue
        if result.output_records().tobytes() != expected:
            violations.append(
                Violation(
                    scenario="resume_e2e",
                    state=label,
                    message="recovered output diverged from the uncrashed run",
                )
            )
    return len(states), violations


#: name → scenario callable, in sweep order.
SCENARIOS = {
    "journal_append": scenario_journal_append,
    "journal_compact": scenario_journal_compact,
    "checkpoint_save": scenario_checkpoint_save,
    "checkpoint_prune": scenario_checkpoint_prune,
    "sidecar": scenario_sidecar,
    "parity": scenario_parity,
    "daemon_restart": scenario_daemon_restart,
    "resume_e2e": scenario_resume_e2e,
}


def run_sweep(
    scratch: str | Path,
    scenarios: list[str] | None = None,
    quick: bool = False,
) -> dict:
    """Run the selected crash-consistency scenarios under ``scratch``.

    Returns a JSON-friendly summary: per-scenario state counts and
    violations, plus sweep totals. An empty ``violations`` list is the
    pass criterion the bench and CI smoke assert on.
    """
    scratch = Path(scratch)
    names = list(SCENARIOS) if scenarios is None else list(scenarios)
    summary: dict = {"quick": quick, "scenarios": {}}
    total_states = 0
    all_violations: list[Violation] = []
    for name in names:
        fn = SCENARIOS[name]
        states, violations = fn(scratch / name, quick)
        total_states += states
        all_violations += violations
        summary["scenarios"][name] = {
            "states": states,
            "violations": [
                {"state": v.state, "message": v.message} for v in violations
            ],
        }
    summary["states_total"] = total_states
    summary["violations_total"] = len(all_violations)
    return summary
