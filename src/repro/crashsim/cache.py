"""The simulated page cache: crash-state enumeration and materialization.

A crash state is "the power failed after the workload issued
``ops[:crash_index]``". Everything a barrier made durable
(:func:`~repro.crashsim.oplog.durable_at`) is on disk for certain;
every other issued op lives in the simulated page cache and may or may
not have been written back. The enumerator generates the legal
materializations of that uncertainty under the model rules DESIGN §14
documents:

1. **Durable ops are always applied.** An issued ``fsync`` already did
   its work.
2. **Pending data ops apply as an arbitrary subset** — writeback gives
   no ordering between fsync barriers, so a later write can land while
   an earlier one is lost (the "reordered writes" states).
3. **Pending namespace ops apply as a per-directory prefix** — metadata
   journaling preserves intra-directory order, so a rename can persist
   without the preceding data (the classic zero-length-file state) but
   not without the create of its source entry.
4. **Pending ``mkdir`` ops are always applied** — losing an empty
   directory changes no recovery-visible state, and entries inside a
   directory imply its creation reached the metadata journal.
5. **At most one applied pending write may be torn**: a prefix of its
   bytes (sector-granular, plus adversarial off-by-one lengths)
   landed; the rest did not.

:func:`is_legal_state` re-checks rules 1–5 for any state — the
hypothesis suite drives random op logs through the enumerator and
asserts every generated state passes it. :func:`materialize` writes a
state to a scratch root for the real recovery code to run against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from pathlib import Path

from repro.crashsim.oplog import (
    BARRIER_KINDS,
    DATA_KINDS,
    NS_KINDS,
    Op,
    Snapshot,
    durable_at,
    pending_at,
)

#: Simulated sector size for torn writes.
SECTOR = 512


@dataclass(frozen=True)
class CrashState:
    """One legal post-crash disk state.

    ``applied`` lists the pending op indices that materialized; ``torn``
    maps one applied pending write to the byte count that landed.
    """

    crash_index: int
    applied: frozenset[int]
    torn: tuple[tuple[int, int], ...] = ()
    label: str = ""

    def torn_map(self) -> dict[int, int]:
        return dict(self.torn)


def _pending_split(ops: list[Op], crash_index: int):
    """Pending ops at a crash point, split by class."""
    pending = pending_at(ops, crash_index)
    data = [op for op in pending if op.kind in DATA_KINDS]
    ns = [op for op in pending if op.kind in NS_KINDS and op.kind != "mkdir"]
    mkdirs = [op for op in pending if op.kind == "mkdir"]
    return data, ns, mkdirs


def _ns_prefixes(ns_ops: list[Op]) -> list[frozenset[int]]:
    """Legal pending-namespace subsets: per-directory prefixes. One
    directory is varied through every prefix length while the others
    stay complete, plus the all-empty and all-complete extremes."""
    by_dir: dict[str, list[int]] = {}
    for op in ns_ops:
        by_dir.setdefault(op.parent, []).append(op.index)
    all_idx = frozenset(op.index for op in ns_ops)
    out = {frozenset(), all_idx}
    for vary, indices in by_dir.items():
        rest = frozenset(
            i for d, idx in by_dir.items() if d != vary for i in idx
        )
        for k in range(len(indices) + 1):
            out.add(rest | frozenset(indices[:k]))
    return sorted(out, key=lambda s: (len(s), sorted(s)))


def _data_subsets(data_ops: list[Op]) -> list[frozenset[int]]:
    """Representative pending-data subsets: the extremes, every
    drop-one (a later write persisted while this one was lost), and
    every keep-one (only this write persisted)."""
    indices = [op.index for op in data_ops]
    all_idx = frozenset(indices)
    out = {frozenset(), all_idx}
    for i in indices:
        out.add(all_idx - {i})
        out.add(frozenset({i}))
    return sorted(out, key=lambda s: (len(s), sorted(s)))


def _torn_lengths(nbytes: int) -> list[int]:
    """Interesting torn-prefix lengths for one write."""
    lengths = {1, nbytes // 2, nbytes - 1}
    lengths.update(range(SECTOR, nbytes, SECTOR))
    return sorted(ln for ln in lengths if 0 < ln < nbytes)


def enumerate_crash_states(
    ops: list[Op],
    crash_indices: list[int] | None = None,
    include_torn: bool = True,
    max_torn_per_state: int = 3,
    max_states: int | None = None,
) -> list[CrashState]:
    """Enumerate legal post-crash states of an op log.

    ``crash_indices`` defaults to every op boundary (0..len). States
    are deduplicated; ``max_states`` truncates the sweep (callers log
    the truncation — a silent cap would read as full coverage).
    """
    if crash_indices is None:
        crash_indices = list(range(len(ops) + 1))
    states: list[CrashState] = []
    seen: set[tuple] = set()

    def emit(ci: int, applied: frozenset[int], torn=(), label="") -> None:
        key = (ci, applied, torn)
        if key in seen:
            return
        seen.add(key)
        states.append(
            CrashState(crash_index=ci, applied=applied, torn=torn, label=label)
        )

    by_index = {op.index: op for op in ops}
    for ci in crash_indices:
        data, ns, mkdirs = _pending_split(ops, ci)
        mk = frozenset(op.index for op in mkdirs)
        data_variants = _data_subsets(data)
        ns_variants = _ns_prefixes(ns)
        all_data = frozenset(op.index for op in data)
        all_ns = frozenset(op.index for op in ns)
        combos = set()
        for dv in data_variants:
            combos.add((dv, all_ns))
            combos.add((dv, frozenset()))
        for nv in ns_variants:
            combos.add((all_data, nv))
            combos.add((frozenset(), nv))
        for dv, nv in sorted(combos, key=lambda c: (sorted(c[0]), sorted(c[1]))):
            applied = dv | nv | mk
            emit(ci, applied, label=f"ci={ci}")
            if not include_torn:
                continue
            applied_writes = [
                i for i in sorted(dv) if by_index[i].kind == "write"
            ]
            if not applied_writes:
                continue
            frontier = applied_writes[-1]
            torn_budget = itertools.islice(
                _torn_lengths(len(by_index[frontier].data)),
                max_torn_per_state,
            )
            for keep in torn_budget:
                emit(
                    ci,
                    applied,
                    torn=((frontier, keep),),
                    label=f"ci={ci} torn@{frontier}:{keep}",
                )
    if max_states is not None and len(states) > max_states:
        return states[:max_states]
    return states


def is_legal_state(ops: list[Op], state: CrashState) -> bool:
    """Re-derive the POSIX-model legality of a crash state (rules 1–5
    in the module docstring). The hypothesis suite asserts this for
    every state the enumerator produces."""
    if not 0 <= state.crash_index <= len(ops):
        return False
    pending = pending_at(ops, state.crash_index)
    pending_idx = {op.index for op in pending}
    if not state.applied <= pending_idx:
        return False  # applied something never issued, or already durable
    by_index = {op.index: op for op in pending}
    # Rule 4: pending mkdirs always apply.
    for op in pending:
        if op.kind == "mkdir" and op.index not in state.applied:
            return False
    # Rule 3: per-directory prefix closure over non-mkdir namespace ops.
    by_dir: dict[str, list[int]] = {}
    for op in pending:
        if op.kind in NS_KINDS and op.kind != "mkdir":
            by_dir.setdefault(op.parent, []).append(op.index)
    for indices in by_dir.values():
        tail = False
        for i in indices:
            if i in state.applied:
                if tail:
                    return False
            else:
                tail = True
    # Rule 5: torn ops are applied pending writes, strict prefixes.
    for index, keep in state.torn:
        op = by_index.get(index)
        if op is None or op.kind != "write":
            return False
        if index not in state.applied:
            return False
        if not 0 < keep < len(op.data):
            return False
    return True


def materialize(
    ops: list[Op],
    state: CrashState,
    initial: Snapshot,
    dest: str | Path,
) -> Path:
    """Write one crash state to ``dest`` (created; must not already
    hold files) by replaying the durable + applied ops over the initial
    snapshot in an inode-based filesystem model."""
    durable = durable_at(ops, state.crash_index)
    torn = state.torn_map()
    contents: dict[int, bytearray] = {
        inode: bytearray(data) for inode, data in initial.files.values()
    }
    namespace: dict[str, int] = {
        rel: inode for rel, (inode, _) in initial.files.items()
    }
    dirs: set[str] = set(initial.dirs)
    for op in ops[: state.crash_index]:
        if op.kind in BARRIER_KINDS:
            continue
        if op.index not in durable and op.index not in state.applied:
            continue
        if op.kind == "write":
            data = op.data
            keep = torn.get(op.index)
            if keep is not None:
                data = data[:keep]
            buf = contents.setdefault(op.inode, bytearray())
            end = op.offset + len(data)
            if len(buf) < end:
                buf.extend(b"\0" * (end - len(buf)))
            buf[op.offset : end] = data
        elif op.kind == "truncate":
            buf = contents.setdefault(op.inode, bytearray())
            if op.size <= len(buf):
                del buf[op.size :]
            else:
                buf.extend(b"\0" * (op.size - len(buf)))
        elif op.kind == "create":
            contents.setdefault(op.inode, bytearray())
            namespace[op.path] = op.inode
        elif op.kind == "rename":
            if namespace.get(op.src) == op.inode:
                del namespace[op.src]
            namespace[op.path] = op.inode
        elif op.kind == "unlink":
            namespace.pop(op.path, None)
        elif op.kind == "mkdir":
            dirs.add(op.path)
        elif op.kind == "rmdir":
            dirs.discard(op.path)
    dest = Path(dest)
    dest.mkdir(parents=True, exist_ok=True)
    for rel in sorted(dirs, key=lambda d: (d.count("/"), d)):
        if rel:
            (dest / rel).mkdir(parents=True, exist_ok=True)
    for rel, inode in sorted(namespace.items()):
        path = dest / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(bytes(contents.get(inode, b"")))
    return dest
