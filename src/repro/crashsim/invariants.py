"""Recovery invariants, checked against materialized crash states.

Each checker takes a scratch root holding one materialized post-crash
disk state plus the workload's ground truth (what was acknowledged,
what was saved, what bytes were ever written), runs the *real* recovery
code — :meth:`~repro.service.journal.JobJournal.repair` and replay,
:meth:`~repro.resilience.checkpoint.CheckpointStore.manifests`,
:class:`~repro.disks.virtual_disk.VirtualDisk` CRC-verified reads,
:meth:`~repro.service.daemon.SortService._recover` — and returns the
list of violated claims (empty = the state recovers cleanly).

The checkers assert *claims*, not mechanisms: an acknowledged journal
event must survive, a torn manifest must never be accepted, a CRC-
verified read must never return bytes that were never written. The
regression tests prove the teeth by no-op'ing the fsync helpers and
watching these same checkers flag the resulting states.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import CheckpointError, DiskError, JournalError, ReproError
from repro.resilience.checkpoint import CheckpointStore
from repro.service.jobs import replay_jobs
from repro.service.journal import JobJournal


@dataclass(frozen=True)
class Violation:
    """One broken recovery claim in one crash state."""

    scenario: str
    state: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.scenario} @ {self.state}] {self.message}"


def _signature(event: dict) -> tuple:
    return (event.get("kind"), event.get("job"))


def check_journal(
    journal_path: str | Path,
    candidates: list[tuple[list[tuple], int]],
    scenario: str,
    state: str,
) -> list[Violation]:
    """Journal recovery claims for one materialized state.

    ``candidates`` lists the legal journal generations as
    ``(event signatures, minimum acknowledged count)`` pairs — one
    generation normally; two when the workload compacted (the crash may
    land on either side of the atomic rewrite). Recovery must yield a
    prefix of some generation that is at least as long as that
    generation's acknowledged count: shorter means an fsync-acked event
    was lost, a non-prefix means replay invented or reordered history.
    """
    out: list[Violation] = []

    def bad(message: str) -> None:
        out.append(Violation(scenario=scenario, state=state, message=message))

    journal = JobJournal(journal_path)
    try:
        journal.repair()
        events, torn = journal.replay()
    except Exception as exc:  # noqa: BLE001 - any escape is the finding
        bad(f"journal repair/replay raised {type(exc).__name__}: {exc}")
        return out
    finally:
        journal.close()
    if torn:
        bad(f"replay reports {torn} torn bytes after repair()")
    try:
        replay_jobs(events)
    except JournalError as exc:
        bad(f"replayed prefix is not a legal job history: {exc}")
    got = [_signature(event) for event in events]
    for reference, min_acked in candidates:
        if got == reference[: len(got)] and len(got) >= min_acked:
            return out
    best = max(
        (ref for ref, _ in candidates),
        key=lambda ref: len(ref),
        default=[],
    )
    bad(
        f"recovered {len(got)} events {got!r} match no legal generation "
        f"(closest reference has {len(best)})"
    )
    return out


def check_checkpoints(
    ck_root: str | Path,
    saved: list[dict],
    min_latest_index: int,
    scenario: str,
    state: str,
    expect_absent: bool = False,
) -> list[Violation]:
    """Checkpoint recovery claims for one materialized state.

    The atomic manifest discipline promises power loss can never
    produce a *visible* torn manifest — ``manifests()`` raising
    :class:`~repro.errors.CheckpointError` on a materialized state is
    itself the finding. Every visible manifest must be byte-equal to
    one the workload actually saved (anything else is a phantom resume
    point), and the latest must be at least ``min_latest_index`` (an
    acknowledged ``save()`` must survive). With ``expect_absent`` the
    directory itself must be gone — the post-``prune()`` claim that a
    retired checkpoint directory cannot be resurrected.
    """
    out: list[Violation] = []

    def bad(message: str) -> None:
        out.append(Violation(scenario=scenario, state=state, message=message))

    ck_root = Path(ck_root)
    if expect_absent:
        if ck_root.exists():
            leftovers = sorted(p.name for p in ck_root.glob("pass_*"))
            bad(
                "pruned checkpoint directory resurrected after crash "
                f"(holds {leftovers or 'nothing'})"
            )
        return out
    if not ck_root.exists():
        if min_latest_index > 0:
            bad(
                f"checkpoint directory lost although pass "
                f"{min_latest_index}'s save() was acknowledged"
            )
        return out
    store = CheckpointStore(ck_root)
    try:
        manifests = store.manifests()
    except CheckpointError as exc:
        bad(f"torn manifest visible after crash: {exc}")
        return out
    for manifest in manifests:
        if manifest not in saved:
            bad(
                f"phantom manifest accepted for pass "
                f"{manifest.get('pass_index')!r} (never saved in this form)"
            )
    latest = max((m["pass_index"] for m in manifests), default=0)
    if latest < min_latest_index:
        bad(
            f"latest surviving manifest is pass {latest}, but pass "
            f"{min_latest_index}'s save() was acknowledged before the crash"
        )
    return out


def check_disk_reads(
    disks: list,
    written: dict[tuple[int, str, int, int], list[bytes]],
    scenario: str,
    state: str,
) -> list[Violation]:
    """The no-false-pass claim: a CRC-verified read of a materialized
    state must either return bytes the workload actually wrote to that
    extent at some point, or raise a structured error
    (:class:`~repro.errors.CorruptionError` on a CRC mismatch,
    :class:`~repro.errors.DiskError` on a short file) — never silently
    hand back torn or reordered garbage.

    ``written`` maps ``(disk_id, name, offset, length)`` to every byte
    string ever written to that extent, in order.
    """
    out: list[Violation] = []

    def bad(message: str) -> None:
        out.append(Violation(scenario=scenario, state=state, message=message))

    for disk in disks:
        for name in disk.files():
            for offset, length, _crc in disk.checksums.extents(name):
                try:
                    data = disk.read_at(name, offset, length)
                except (DiskError, ReproError):
                    continue  # structured detection is a pass
                history = written.get((disk.disk_id, name, offset, length), [])
                if bytes(data) not in history:
                    bad(
                        f"CRC-verified read of {name!r}@{offset}+{length} on "
                        f"disk {disk.disk_id} returned bytes that were never "
                        "written (silent corruption passed verification)"
                    )
    return out


def check_barriered_reads(
    disk,
    expectations: list[tuple[str, int, int, bytes]],
    scenario: str,
    state: str,
) -> list[Violation]:
    """The barrier claim: extents whose data *and* sidecar were covered
    by a :meth:`~repro.disks.virtual_disk.VirtualDisk.sync` barrier
    before the crash must read back successfully with exactly the
    barriered bytes — the crash can drop only page-cache state, and the
    barrier emptied it for these extents."""
    out: list[Violation] = []
    for name, offset, length, expect in expectations:
        try:
            data = disk.read_at(name, offset, length)
        except (DiskError, ReproError) as exc:
            out.append(
                Violation(
                    scenario=scenario,
                    state=state,
                    message=(
                        f"barriered extent {name!r}@{offset}+{length} failed "
                        f"to read after crash: {type(exc).__name__}: {exc}"
                    ),
                )
            )
            continue
        if bytes(data) != expect:
            out.append(
                Violation(
                    scenario=scenario,
                    state=state,
                    message=(
                        f"barriered extent {name!r}@{offset}+{length} read "
                        "back different bytes than were synced"
                    ),
                )
            )
    return out


def check_daemon_recovery(
    service_root: str | Path,
    acked: list[tuple[str, str | None]],
    submitted_all: set[str],
    scenario: str,
    state: str,
    socket_path: str | Path = "/tmp/crashsim-daemon.sock",
) -> list[Violation]:
    """Daemon-restart claims: construct a real
    :class:`~repro.service.daemon.SortService` on the materialized root
    and run its startup recovery. Every job whose ``submitted`` append
    was acknowledged must reappear; an acknowledged terminal state must
    survive (a ``done`` job must not be requeued — that is the
    duplicated-execution bug); no phantom jobs may appear.

    ``acked`` lists ``(kind, job)`` for appends that returned before
    the crash; the socket is never bound (``_recover`` only), so the
    default path is fine.
    """
    from repro.service.daemon import SortService

    out: list[Violation] = []

    def bad(message: str) -> None:
        out.append(Violation(scenario=scenario, state=state, message=message))

    service = SortService(
        service_root,
        socket_path=socket_path,
        workers=1,
        compact_min_bytes=None,
        compact_min_events=None,
    )
    try:
        try:
            service._recover()
        except Exception as exc:  # noqa: BLE001 - any escape is the finding
            bad(f"daemon recovery raised {type(exc).__name__}: {exc}")
            return out
        acked_submitted = {job for kind, job in acked if kind == "submitted"}
        acked_done = {job for kind, job in acked if kind == "done"}
        for job in sorted(acked_submitted):
            if job not in service._jobs:
                bad(f"acknowledged job {job!r} lost across the crash")
        for job in sorted(acked_done):
            record = service._jobs.get(job)
            if record is None:
                continue  # already reported as lost above
            if record.state != "done":
                bad(
                    f"job {job!r} acknowledged done but recovered as "
                    f"{record.state!r}"
                )
            if job in service._pending:
                bad(
                    f"job {job!r} acknowledged done but requeued for "
                    "execution (duplicate run)"
                )
        for job in service._jobs:
            if job not in submitted_all:
                bad(f"phantom job {job!r} appeared out of the crash")
        if len(service._pending) != len(set(service._pending)):
            bad("a job was queued twice by recovery")
    finally:
        service.journal.close()
    return out
