"""The interposer: record durability-critical fs ops while a real
workload runs.

:func:`trace` patches the narrow waist every durability-critical write
in this repo goes through — ``builtins.open``/``io.open`` (journal
appends, atomic temp-file writes, :class:`VirtualDisk` extent I/O,
parity row files), ``os.replace``/``os.rename`` (atomic publishes),
``os.unlink``/``os.remove``/``os.rmdir`` (checkpoint retirement),
``os.mkdir`` (sidecar/parity directories), and ``os.open``/``os.fsync``
/``os.close`` (file and directory fsync barriers) — and records every
operation touching paths under the traced root into an
:class:`~repro.crashsim.oplog.Op` list. Operations outside the root
pass through untouched; reads are never recorded.

Recording is *passthrough*: the real operation still happens, so the
workload completes normally and its final tree doubles as the
uncrashed reference. The recorder replicates the logical namespace as
ops arrive, assigning each file an inode id so data ops survive the
crash model's namespace games (a dropped rename must not orphan the
bytes written through the temp name).
"""

from __future__ import annotations

import builtins
import io
import os
import threading
from contextlib import contextmanager
from pathlib import Path

from repro.crashsim.oplog import Op, Snapshot, parent_dir


class Recorder:
    """Accumulates the op log and logical namespace for one traced root."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).resolve()
        self.root.mkdir(parents=True, exist_ok=True)
        self.ops: list[Op] = []
        self.lock = threading.RLock()
        self._next_inode = 0
        #: live logical namespace: relpath -> inode
        self.namespace: dict[str, int] = {}
        self._fd_files: dict[int, int] = {}  # fd -> inode
        self._fd_dirs: dict[int, str] = {}  # fd -> dir relpath
        self.initial = Snapshot()
        self._snapshot()

    # -- bookkeeping -----------------------------------------------------

    def _snapshot(self) -> None:
        self.initial.dirs.add("")
        for path in sorted(self.root.rglob("*")):
            rel = path.relative_to(self.root).as_posix()
            if path.is_dir():
                self.initial.dirs.add(rel)
            elif path.is_file():
                inode = self._alloc_inode()
                self.initial.files[rel] = (inode, path.read_bytes())
                self.namespace[rel] = inode

    def _alloc_inode(self) -> int:
        self._next_inode += 1
        return self._next_inode

    def rel(self, path) -> str | None:
        """Root-relative posix path, or None when outside the root."""
        try:
            resolved = Path(os.fspath(path))
        except TypeError:
            return None
        if not resolved.is_absolute():
            resolved = Path.cwd() / resolved
        try:
            # resolve() would follow symlinks *and* require existence
            # semantics we don't want; normalize lexically instead.
            rel = Path(os.path.normpath(resolved)).relative_to(self.root)
        except ValueError:
            return None
        text = rel.as_posix()
        return "" if text == "." else text  # "" = the traced root itself

    def _append(self, kind: str, **fields) -> Op:
        op = Op(index=len(self.ops), kind=kind, **fields)
        self.ops.append(op)
        return op

    # -- recording entry points (called by the patched functions) --------

    def on_open_write(self, rel: str, truncating: bool) -> int:
        """A write-capable handle opened on ``rel``; returns its inode."""
        with self.lock:
            inode = self.namespace.get(rel)
            if inode is None:
                inode = self._alloc_inode()
                self.namespace[rel] = inode
                self._append(
                    "create", path=rel, inode=inode, parent=parent_dir(rel)
                )
            if truncating:
                self._append("truncate", inode=inode, size=0)
            return inode

    def on_write(self, inode: int, offset: int, data: bytes) -> None:
        if not data:
            return
        with self.lock:
            self._append("write", inode=inode, offset=offset, data=bytes(data))

    def on_truncate(self, inode: int, size: int) -> None:
        with self.lock:
            self._append("truncate", inode=inode, size=size)

    def on_rename(self, src_rel: str, dst_rel: str) -> None:
        with self.lock:
            inode = self.namespace.pop(src_rel, None)
            if inode is None:
                inode = self._alloc_inode()
            self.namespace[dst_rel] = inode
            self._append(
                "rename",
                src=src_rel,
                path=dst_rel,
                inode=inode,
                parent=parent_dir(dst_rel),
            )

    def on_unlink(self, rel: str) -> None:
        with self.lock:
            self.namespace.pop(rel, None)
            self._append("unlink", path=rel, parent=parent_dir(rel))

    def on_mkdir(self, rel: str) -> None:
        with self.lock:
            self._append("mkdir", path=rel, parent=parent_dir(rel))

    def on_rmdir(self, rel: str) -> None:
        with self.lock:
            self._append("rmdir", path=rel, parent=parent_dir(rel))

    def on_fsync(self, fd: int) -> None:
        with self.lock:
            inode = self._fd_files.get(fd)
            if inode is not None:
                self._append("fsync", inode=inode)
                return
            rel = self._fd_dirs.get(fd)
            if rel is not None:
                self._append("fsync_dir", path=rel)

    def register_fd(self, fd: int, inode: int) -> None:
        with self.lock:
            self._fd_files[fd] = inode

    def register_dir_fd(self, fd: int, rel: str) -> None:
        with self.lock:
            self._fd_dirs[fd] = rel

    def release_fd(self, fd: int) -> None:
        with self.lock:
            self._fd_files.pop(fd, None)
            self._fd_dirs.pop(fd, None)


class TracedFile:
    """A passthrough wrapper over a real writable file object that
    reports writes/truncates (with byte offsets) to the recorder."""

    def __init__(self, real, recorder: Recorder, inode: int, text: bool) -> None:
        self._real = real
        self._rec = recorder
        self._inode = inode
        self._text = text
        # Text-mode tell() returns opaque cookies, so track the byte
        # offset ourselves (durability-critical writers in this repo
        # are all binary; text support exists for stray lock files).
        self._text_pos = 0

    # -- traced operations ----------------------------------------------

    def write(self, data):
        if self._text:
            payload = data.encode(
                getattr(self._real, "encoding", None) or "utf-8"
            )
            offset = self._text_pos
            self._text_pos += len(payload)
        else:
            payload = bytes(memoryview(data).cast("B"))
            offset = self._real.tell()
        result = self._real.write(data)
        self._rec.on_write(self._inode, offset, payload)
        return result

    def writelines(self, lines) -> None:
        for line in lines:
            self.write(line)

    def truncate(self, size=None):
        if size is None:
            size = self._text_pos if self._text else self._real.tell()
        result = self._real.truncate(size)
        self._rec.on_truncate(self._inode, size)
        return result

    def seek(self, *args, **kwargs):
        if self._text:
            raise OSError("crashsim: seek on a traced text handle")
        return self._real.seek(*args, **kwargs)

    def fileno(self) -> int:
        fd = self._real.fileno()
        self._rec.register_fd(fd, self._inode)
        return fd

    def close(self) -> None:
        try:
            fd = self._real.fileno()
        except (OSError, ValueError):
            fd = None
        self._real.close()
        if fd is not None:
            self._rec.release_fd(fd)

    # -- passthrough ------------------------------------------------------

    def __getattr__(self, name):
        return getattr(self._real, name)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __iter__(self):
        return iter(self._real)


def _wants_write(mode: str) -> bool:
    return any(ch in mode for ch in "wax+")


@contextmanager
def trace(root: str | Path):
    """Record every durability-critical fs op under ``root`` while the
    body runs; yields the :class:`Recorder`. Patches are process-global
    (take the GIL's word for it: install and removal are atomic), so
    traced workloads should be short and owned by the caller."""
    rec = Recorder(root)
    real_open = builtins.open
    real_os = {
        name: getattr(os, name)
        for name in (
            "replace",
            "rename",
            "unlink",
            "remove",
            "mkdir",
            "rmdir",
            "open",
            "close",
            "fsync",
        )
    }

    def traced_open(file, mode="r", *args, **kwargs):
        rel = None if isinstance(file, int) else rec.rel(file)
        if rel is None or not _wants_write(mode):
            return real_open(file, mode, *args, **kwargs)
        existed = (rec.root / rel).exists()
        real = real_open(file, mode, *args, **kwargs)
        truncating = "w" in mode or (not existed and "x" in mode)
        inode = rec.on_open_write(rel, truncating=truncating and existed)
        return TracedFile(real, rec, inode, text="b" not in mode)

    def traced_replace(src, dst, **kwargs):
        src_rel, dst_rel = rec.rel(src), rec.rel(dst)
        real_os["replace"](src, dst, **kwargs)
        if src_rel is not None and dst_rel is not None:
            rec.on_rename(src_rel, dst_rel)

    def traced_rename(src, dst, **kwargs):
        src_rel, dst_rel = rec.rel(src), rec.rel(dst)
        real_os["rename"](src, dst, **kwargs)
        if src_rel is not None and dst_rel is not None:
            rec.on_rename(src_rel, dst_rel)

    def traced_unlink(path, **kwargs):
        rel = rec.rel(path)
        real_os["unlink"](path, **kwargs)
        if rel is not None:
            rec.on_unlink(rel)

    def traced_mkdir(path, *args, **kwargs):
        rel = rec.rel(path)
        real_os["mkdir"](path, *args, **kwargs)
        if rel is not None:
            rec.on_mkdir(rel)

    def traced_rmdir(path, **kwargs):
        rel = rec.rel(path)
        real_os["rmdir"](path, **kwargs)
        if rel is not None:
            rec.on_rmdir(rel)

    def traced_os_open(path, flags, *args, **kwargs):
        fd = real_os["open"](path, flags, *args, **kwargs)
        try:
            rel = rec.rel(path)
            if rel is not None:
                target = rec.root / rel
                if target.is_dir():
                    rec.register_dir_fd(fd, rel)
                else:
                    inode = rec.namespace.get(rel)
                    if inode is not None:
                        rec.register_fd(fd, inode)
        except Exception:  # bookkeeping must never break the workload
            pass
        return fd

    def traced_os_close(fd):
        real_os["close"](fd)
        rec.release_fd(fd)

    def traced_fsync(fd):
        real_os["fsync"](fd)
        rec.on_fsync(fd)

    patches = {
        "replace": traced_replace,
        "rename": traced_rename,
        "unlink": traced_unlink,
        "remove": traced_unlink,
        "mkdir": traced_mkdir,
        "rmdir": traced_rmdir,
        "open": traced_os_open,
        "close": traced_os_close,
        "fsync": traced_fsync,
    }
    builtins.open = traced_open
    io.open = traced_open
    for name, fn in patches.items():
        setattr(os, name, fn)
    try:
        yield rec
    finally:
        builtins.open = real_open
        io.open = real_open
        for name in patches:
            setattr(os, name, real_os[name])
