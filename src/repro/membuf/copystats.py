"""Data-plane copy accounting.

The paper's headline observation is that out-of-core columnsort is
I/O- and memory-bandwidth-bound — execution time tracks GB moved per
processor — so every redundant in-memory copy of a record batch is
directly visible in the wall clock. :class:`CopyStats` meters the data
plane's seams the same way :class:`~repro.disks.iostats.IoStats` meters
the disks:

* ``bytes_copied`` — bytes that were physically duplicated in memory
  (``ndarray.copy()``, ``tobytes()``, ``frombuffer(...).copy()``,
  packing scattered parts into a contiguous send buffer);
* ``bytes_zero_copy`` — bytes that crossed a seam *without* a Python
  level duplication (``readinto`` a pooled array, writing a column from
  a memoryview, handing an ``alltoallv`` receiver a view of the packed
  send buffer);
* ``pool_hits`` / ``pool_misses`` — :class:`~repro.membuf.pool.BufferPool`
  reuse vs. fresh allocation;
* ``leases`` / ``lease_returns`` / ``peak_leases`` — tracked buffer
  leases issued, returned, and the high-water mark of concurrently
  outstanding leases;
* ``arena_hits`` / ``arena_misses`` — shared-memory arena slab reuse
  vs. segment creation on the process transport
  (:mod:`repro.cluster.arena`); zero on the thread backend, which has
  no segments at all;
* ``attach_count`` — first-time receiver-side segment attaches (cache
  misses of the :class:`~repro.cluster.arena.AttachCache`; with the
  arena disabled, every landed slice);
* ``bytes_landed_zero_extra_copy`` — inbound shared-memory slices that
  landed directly in a pool-served buffer with a single transport
  ``memcpy`` and no further private copy.

The arena/attach/landing counters are *transport-operational* metrics:
they describe work the transport did (or avoided), not data-plane
bytes, so they are legitimately zero on the thread backend while the
byte meters above stay identical across backends.

One global instance (:func:`copy_stats`) serves the whole process; runs
meter themselves with the same snapshot/delta pattern the disk and comm
counters use. The ``REPRO_LEGACY_COPIES=1`` environment switch
(:func:`legacy_copies`) selects the pre-pool copy-everything paths for
A/B benchmarking; both paths are metered, so the benchmark can report
the byte difference exactly.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

#: Snapshot keys, in report order. ``peak_leases`` is a high-water mark,
#: not a counter — see :func:`copy_delta`.
COPY_KEYS = (
    "bytes_copied",
    "bytes_zero_copy",
    "pool_hits",
    "pool_misses",
    "leases",
    "lease_returns",
    "peak_leases",
    "arena_hits",
    "arena_misses",
    "attach_count",
    "bytes_landed_zero_extra_copy",
)

#: The subset of :data:`COPY_KEYS` describing the shared-memory arena
#: (transport-operational; zero on the thread backend by construction).
ARENA_KEYS = (
    "arena_hits",
    "arena_misses",
    "attach_count",
    "bytes_landed_zero_extra_copy",
)


def legacy_copies() -> bool:
    """Whether ``REPRO_LEGACY_COPIES`` selects the pre-pool data plane
    (every seam copies, nothing is pooled). Read per call so tests and
    the A/B benchmark can flip it without re-importing."""
    return os.environ.get("REPRO_LEGACY_COPIES", "0") not in ("", "0")


@dataclass
class CopyStats:
    """Running data-plane totals for the whole process (all ranks — the
    simulated cluster shares one address space, so one meter sees every
    seam)."""

    bytes_copied: int = 0
    bytes_zero_copy: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    leases: int = 0
    lease_returns: int = 0
    peak_leases: int = 0
    arena_hits: int = 0
    arena_misses: int = 0
    attach_count: int = 0
    bytes_landed_zero_extra_copy: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_copy(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_copied += int(nbytes)

    def record_zero_copy(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_zero_copy += int(nbytes)

    def record_pool(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.pool_hits += 1
            else:
                self.pool_misses += 1

    def record_lease(self, outstanding: int) -> None:
        """A tracked lease was issued; ``outstanding`` is the concurrent
        lease count including it."""
        with self._lock:
            self.leases += 1
            if outstanding > self.peak_leases:
                self.peak_leases = outstanding

    def record_return(self) -> None:
        with self._lock:
            self.lease_returns += 1

    def record_arena(self, hit: bool) -> None:
        """One ``alloc_packed`` served by the shared-memory arena:
        ``hit`` = slab reused, else a segment was created."""
        with self._lock:
            if hit:
                self.arena_hits += 1
            else:
                self.arena_misses += 1

    def record_attach(self) -> None:
        """One first-time receiver-side segment attach (mapping)."""
        with self._lock:
            self.attach_count += 1

    def record_landed(self, nbytes: int) -> None:
        """``nbytes`` of an inbound slice landed directly in a
        pool-served buffer — one transport memcpy, no extra private
        copy downstream."""
        with self._lock:
            self.bytes_landed_zero_extra_copy += int(nbytes)

    def merge_delta(self, delta: dict) -> None:
        """Fold another process's per-run counter delta into this meter.

        The process transport's ranks each meter their own data plane;
        after the join their deltas are merged here so the caller's
        snapshot/delta arithmetic (``run_spmd_metered``) works unchanged.
        Counters add; ``peak_leases`` — a high-water mark that cannot be
        summed across address spaces — takes the maximum of the per-rank
        peaks (a lower bound on the would-be global peak).
        """
        with self._lock:
            for key in COPY_KEYS:
                if key == "peak_leases":
                    if delta.get(key, 0) > self.peak_leases:
                        self.peak_leases = delta[key]
                else:
                    setattr(self, key, getattr(self, key) + delta.get(key, 0))

    def rebase_peak(self, outstanding: int = 0) -> None:
        """Reset the high-water mark to the current outstanding count so
        a following :func:`copy_delta` reports this run's peak, not the
        process's."""
        with self._lock:
            self.peak_leases = outstanding

    def snapshot(self) -> dict:
        with self._lock:
            return {key: getattr(self, key) for key in COPY_KEYS}

    def reset(self) -> None:
        with self._lock:
            for key in COPY_KEYS:
                setattr(self, key, 0)


def copy_delta(before: dict, after: dict) -> dict:
    """Per-run view of two :meth:`CopyStats.snapshot` dicts: counters are
    differenced; ``peak_leases`` (a high-water mark) is taken from
    ``after`` — pair with :meth:`CopyStats.rebase_peak` for a per-run
    peak."""
    out = {key: after[key] - before[key] for key in COPY_KEYS}
    out["peak_leases"] = after["peak_leases"]
    return out


_GLOBAL = CopyStats()


def copy_stats() -> CopyStats:
    """The process-wide data-plane meter."""
    return _GLOBAL
