"""Zero-copy data plane: pooled record buffers and copy accounting.

``membuf`` is the memory-side counterpart of ``repro.disks``: the disks
package meters bytes crossing the (simulated) platters, this package
pools the in-memory record buffers those bytes land in and meters how
often the data plane duplicates them. See DESIGN §7 for the ownership
rules at each seam and the ``REPRO_LEGACY_COPIES`` escape hatch.
"""

from repro.membuf.copystats import (
    ARENA_KEYS,
    COPY_KEYS,
    CopyStats,
    copy_delta,
    copy_stats,
    legacy_copies,
)
from repro.membuf.pool import MAX_FREE_PER_KEY, BufferPool, get_pool

__all__ = [
    "ARENA_KEYS",
    "BufferPool",
    "CopyStats",
    "COPY_KEYS",
    "MAX_FREE_PER_KEY",
    "copy_delta",
    "copy_stats",
    "get_pool",
    "legacy_copies",
]
