"""Reusable record-buffer pool.

Every pass of every out-of-core algorithm allocates the same handful of
array shapes over and over: one column (``buffer_records`` rows) per
read, one packed send buffer per ``alltoallv``, one staging array per
write. :class:`BufferPool` keeps freelists of those arrays keyed by
``(dtype, rows)`` so steady-state passes stop churning the allocator
and reads can land via ``readinto`` in place of ``bytes`` round-trips.

Two acquisition modes:

* :meth:`BufferPool.lease` — *tracked*: the pool holds a strong
  reference until :meth:`BufferPool.recycle` returns the array.
  Used by pass bodies whose buffer lifetime ends inside the pass
  (read → sort → send/write → recycle); :meth:`outstanding` exposes
  the balance so the test suite can assert nothing is held past a
  pass's end.
* :meth:`BufferPool.grab` — *untracked*: ownership transfers to the
  caller (e.g. ``Comm._isolate`` handing an array to a receiver that
  may keep it indefinitely). Untracked arrays re-enter the pool only
  if someone explicitly recycles them; otherwise the garbage collector
  reclaims them as before.

:meth:`recycle` adopts any 1-D, C-contiguous, exclusively-owned array
of a pooled dtype — recycling a *view* (a slice of a packed alltoallv
buffer, say) is deliberately a no-op, because handing out a buffer that
aliases live data would corrupt records in flight.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.membuf.copystats import copy_stats

#: Freelist depth per (dtype, rows) key. Deep enough for one in-flight
#: buffer per pipeline slot at the depths we benchmark; beyond that the
#: allocator is cheaper than hoarding memory.
MAX_FREE_PER_KEY = 8


class BufferPool:
    """Thread-safe freelist of dtyped record arrays keyed by
    ``(dtype, rows)``."""

    def __init__(self, max_free_per_key: int = MAX_FREE_PER_KEY) -> None:
        self._max_free = int(max_free_per_key)
        self._free: dict[tuple[np.dtype, int], list[np.ndarray]] = {}
        # Strong references to tracked leases, keyed by id(). The strong
        # reference is what makes id() safe as a key: the array cannot
        # be collected (and its id reused) while the lease is open.
        self._tracked: dict[int, np.ndarray] = {}
        self._lock = threading.Lock()

    # -- acquisition ---------------------------------------------------

    def _take(self, dtype: np.dtype, rows: int) -> np.ndarray:
        dtype = np.dtype(dtype)
        key = (dtype, int(rows))
        with self._lock:
            stack = self._free.get(key)
            if stack:
                arr = stack.pop()
                copy_stats().record_pool(hit=True)
                return arr
        copy_stats().record_pool(hit=False)
        return np.empty(int(rows), dtype=dtype)

    def lease(self, dtype: np.dtype, rows: int) -> np.ndarray:
        """Acquire a tracked ``rows``-long array of ``dtype``; pair with
        :meth:`recycle`."""
        arr = self._take(dtype, rows)
        with self._lock:
            self._tracked[id(arr)] = arr
            outstanding = len(self._tracked)
        copy_stats().record_lease(outstanding)
        return arr

    def grab(self, dtype: np.dtype, rows: int) -> np.ndarray:
        """Acquire an untracked array — ownership transfers to the
        caller; the pool forgets it unless it is later recycled."""
        return self._take(dtype, rows)

    # -- release -------------------------------------------------------

    def recycle(self, arr: np.ndarray) -> bool:
        """Return ``arr`` to the pool. Closes its lease if tracked;
        adopts untracked arrays that exclusively own their memory.
        Views and foreign objects are ignored (returns False)."""
        if not isinstance(arr, np.ndarray):
            return False
        with self._lock:
            tracked = self._tracked.pop(id(arr), None) is not None
        if tracked:
            copy_stats().record_return()
        if arr.ndim != 1 or not arr.flags.c_contiguous or not arr.flags.owndata:
            # A view's memory belongs to someone else; pooling it would
            # alias live records. Dropping it here is correct: the lease
            # (if any) is closed and GC handles the base buffer.
            return False
        key = (arr.dtype, arr.shape[0])
        with self._lock:
            stack = self._free.setdefault(key, [])
            if len(stack) < self._max_free:
                stack.append(arr)
        return True

    # -- bookkeeping ---------------------------------------------------

    def outstanding(self) -> int:
        """Number of tracked leases not yet recycled."""
        with self._lock:
            return len(self._tracked)

    def forget_leases(self) -> int:
        """Drop all tracked leases without pooling them (crash cleanup:
        a failed rank cannot recycle its in-flight buffers). Returns the
        number forgotten."""
        with self._lock:
            n = len(self._tracked)
            self._tracked.clear()
        for _ in range(n):
            copy_stats().record_return()
        return n

    def free_buffers(self) -> int:
        """Total arrays currently sitting in freelists."""
        with self._lock:
            return sum(len(stack) for stack in self._free.values())

    def clear(self) -> int:
        """Empty the freelists and forget every tracked lease; returns
        the number of leases that were still outstanding."""
        with self._lock:
            self._free.clear()
        return self.forget_leases()


_GLOBAL = BufferPool()


def get_pool() -> BufferPool:
    """The process-wide buffer pool (all simulated ranks share one
    address space, so they share one pool)."""
    return _GLOBAL
