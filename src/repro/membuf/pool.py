"""Reusable record-buffer pool.

Every pass of every out-of-core algorithm allocates the same handful of
array shapes over and over: one column (``buffer_records`` rows) per
read, one packed send buffer per ``alltoallv``, one staging array per
write. :class:`BufferPool` keeps freelists of those arrays keyed by
``(dtype, rows)`` so steady-state passes stop churning the allocator
and reads can land via ``readinto`` in place of ``bytes`` round-trips.

Two acquisition modes:

* :meth:`BufferPool.lease` — *tracked*: the pool holds a strong
  reference until :meth:`BufferPool.recycle` returns the array.
  Used by pass bodies whose buffer lifetime ends inside the pass
  (read → sort → send/write → recycle); :meth:`outstanding` exposes
  the balance so the test suite can assert nothing is held past a
  pass's end.
* :meth:`BufferPool.grab` — *untracked*: ownership transfers to the
  caller (e.g. ``Comm._isolate`` handing an array to a receiver that
  may keep it indefinitely). Untracked arrays re-enter the pool only
  if someone explicitly recycles them; otherwise the garbage collector
  reclaims them as before.

:meth:`recycle` adopts any 1-D, C-contiguous, exclusively-owned array
of a pooled dtype — recycling a *view* (a slice of a packed alltoallv
buffer, say) is deliberately a no-op, because handing out a buffer that
aliases live data would corrupt records in flight.

Byte budget (:meth:`set_budget`): the pool tracks its *held bytes* —
freelist arrays plus open tracked leases — and, with a budget set, a
:meth:`lease` that would allocate past it first evicts idle freelist
arrays, then blocks (budget backpressure) until other leases are
recycled, and finally raises :class:`~repro.errors.BudgetExceeded` if
the bytes never materialize. Backpressure stalls are counted and
consumed by the run governor's adaptive pipeline-depth downshift
(:meth:`consume_pressure`). :meth:`grab` is exempt: its arrays leave
the pool's ownership at the call, so charging them would double-count
the consumer's own accounting.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.errors import BudgetExceeded
from repro.membuf.copystats import copy_stats

#: Freelist depth per (dtype, rows) key. Deep enough for one in-flight
#: buffer per pipeline slot at the depths we benchmark; beyond that the
#: allocator is cheaper than hoarding memory.
MAX_FREE_PER_KEY = 8

#: Seconds between wakeups of a budget-blocked lease (matches the
#: pipeline pools' poll interval, so cancellation latency is uniform).
_BUDGET_POLL = 0.05


class BufferPool:
    """Thread-safe freelist of dtyped record arrays keyed by
    ``(dtype, rows)``, with an optional hard byte budget."""

    def __init__(
        self,
        max_free_per_key: int = MAX_FREE_PER_KEY,
        budget_bytes: int | None = None,
        budget_timeout_s: float = 30.0,
    ) -> None:
        self._max_free = int(max_free_per_key)
        self._free: dict[tuple[np.dtype, int], list[np.ndarray]] = {}
        # Strong references to tracked leases, keyed by id(). The strong
        # reference is what makes id() safe as a key: the array cannot
        # be collected (and its id reused) while the lease is open.
        self._tracked: dict[int, np.ndarray] = {}
        self._cv = threading.Condition()
        self._budget = budget_bytes
        self._budget_timeout = budget_timeout_s
        self._held = 0
        self._peak_held = 0
        self._stalls = 0
        self._evictions = 0
        self._pressure_mark = 0

    # -- budget ---------------------------------------------------------

    def set_budget(
        self, budget_bytes: int | None, timeout_s: float | None = None
    ) -> None:
        """Install (or with None, remove) the hard byte budget."""
        with self._cv:
            self._budget = budget_bytes
            if timeout_s is not None:
                self._budget_timeout = timeout_s
            self._cv.notify_all()

    def _bump_held(self, delta: int) -> None:
        """Adjust held bytes (call with ``self._cv`` held)."""
        self._held += delta
        if self._held > self._peak_held:
            self._peak_held = self._held
        if delta < 0:
            self._cv.notify_all()

    def _evict_until(self, target: int) -> None:
        """Drop idle freelist arrays until held bytes <= ``target`` (or
        the freelists are empty). Call with ``self._cv`` held."""
        for key in list(self._free):
            stack = self._free[key]
            while stack and self._held > target:
                arr = stack.pop()
                self._bump_held(-arr.nbytes)
                self._evictions += 1
            if not stack:
                del self._free[key]
            if self._held <= target:
                return

    def _wait_for_budget(self, need: int) -> None:
        """Block until ``need`` fresh bytes fit under the budget. Call
        with ``self._cv`` held; raises :class:`BudgetExceeded` when the
        request can never fit or backpressure outlasts the timeout."""
        budget = self._budget
        if self._held + need <= budget:
            return
        if need > budget:
            raise BudgetExceeded(
                need, budget, self._held,
                "the request is larger than the whole budget",
            )
        self._evict_until(budget - need)
        if self._held + need <= budget:
            return
        self._stalls += 1
        deadline = time.monotonic() + self._budget_timeout
        while self._held + need > self._budget:
            left = deadline - time.monotonic()
            if left <= 0:
                raise BudgetExceeded(
                    need, self._budget, self._held,
                    f"backpressure blocked for {self._budget_timeout:.1f}s "
                    "without enough leases being recycled",
                )
            self._cv.wait(min(left, _BUDGET_POLL))
            if self._budget is None:
                return
            self._evict_until(self._budget - need)

    # -- acquisition ---------------------------------------------------

    def _take(
        self, dtype: np.dtype, rows: int, track: bool, meter: bool = True
    ) -> np.ndarray:
        dtype = np.dtype(dtype)
        rows = int(rows)
        key = (dtype, rows)
        need = dtype.itemsize * rows
        with self._cv:
            stack = self._free.get(key)
            if stack:
                arr = stack.pop()
                if track:
                    self._tracked[id(arr)] = arr
                else:
                    # Ownership leaves the pool with the array.
                    self._bump_held(-arr.nbytes)
                if meter:
                    copy_stats().record_pool(hit=True)
                return arr
            if track:
                if self._budget is not None:
                    self._wait_for_budget(need)
                self._bump_held(need)
        if meter:
            copy_stats().record_pool(hit=False)
        arr = np.empty(rows, dtype=dtype)
        if track:
            with self._cv:
                self._tracked[id(arr)] = arr
        return arr

    def lease(self, dtype: np.dtype, rows: int) -> np.ndarray:
        """Acquire a tracked ``rows``-long array of ``dtype``; pair with
        :meth:`recycle`. With a budget set, a lease that needs a fresh
        allocation blocks while the pool is at its byte ceiling."""
        arr = self._take(dtype, rows, track=True)
        with self._cv:
            outstanding = len(self._tracked)
        copy_stats().record_lease(outstanding)
        return arr

    def grab(self, dtype: np.dtype, rows: int) -> np.ndarray:
        """Acquire an untracked array — ownership transfers to the
        caller; the pool forgets it unless it is later recycled."""
        return self._take(dtype, rows, track=False)

    def land(self, dtype: np.dtype, rows: int) -> np.ndarray:
        """Acquire an untracked *landing* buffer for a transport's
        inbound bytes — :meth:`grab` semantics, but unmetered.

        Landing a wire payload is the analogue of a NIC writing into a
        receive ring: transport-internal, invisible to the data plane's
        copy accounting. The thread backend hands receivers views (no
        pool op at all), so metering the process backend's landing
        acquisitions as pool hits/misses would make the operational
        counters diverge across backends for the same program. The
        buffer still comes from (and, once recycled, returns to) the
        ordinary freelists, so steady-state landings stop churning the
        allocator."""
        return self._take(dtype, rows, track=False, meter=False)

    # -- release -------------------------------------------------------

    def recycle(self, arr: np.ndarray) -> bool:
        """Return ``arr`` to the pool. Closes its lease if tracked;
        adopts untracked arrays that exclusively own their memory.
        Views and foreign objects are ignored (returns False)."""
        if not isinstance(arr, np.ndarray):
            return False
        poolable = (
            arr.ndim == 1 and arr.flags.c_contiguous and arr.flags.owndata
        )
        with self._cv:
            tracked = self._tracked.pop(id(arr), None) is not None
            if not poolable:
                # A view's memory belongs to someone else; pooling it
                # would alias live records. Dropping it here is correct:
                # the lease (if any) is closed and GC handles the base.
                if tracked:
                    self._bump_held(-arr.nbytes)
            else:
                key = (arr.dtype, arr.shape[0])
                stack = self._free.setdefault(key, [])
                fits = len(stack) < self._max_free and (
                    tracked
                    or self._budget is None
                    or self._held + arr.nbytes <= self._budget
                )
                if fits:
                    stack.append(arr)
                    if tracked:
                        self._cv.notify_all()  # lease closed: bytes moved
                    else:
                        self._bump_held(arr.nbytes)
                else:
                    poolable = False
                    if tracked:
                        self._bump_held(-arr.nbytes)
        if tracked:
            copy_stats().record_return()
        return poolable

    # -- bookkeeping ---------------------------------------------------

    def outstanding(self) -> int:
        """Number of tracked leases not yet recycled."""
        with self._cv:
            return len(self._tracked)

    def forget_leases(self) -> int:
        """Drop all tracked leases without pooling them (crash cleanup:
        a failed rank cannot recycle its in-flight buffers). Returns the
        number forgotten."""
        with self._cv:
            n = len(self._tracked)
            for arr in self._tracked.values():
                self._bump_held(-arr.nbytes)
            self._tracked.clear()
            self._cv.notify_all()
        for _ in range(n):
            copy_stats().record_return()
        return n

    def free_buffers(self) -> int:
        """Total arrays currently sitting in freelists."""
        with self._cv:
            return sum(len(stack) for stack in self._free.values())

    def clear(self) -> int:
        """Empty the freelists and forget every tracked lease; returns
        the number of leases that were still outstanding."""
        with self._cv:
            for stack in self._free.values():
                for arr in stack:
                    self._bump_held(-arr.nbytes)
            self._free.clear()
        return self.forget_leases()

    def held_bytes(self) -> int:
        """Bytes the pool currently answers for: freelists plus open
        tracked leases."""
        with self._cv:
            return self._held

    def consume_pressure(self) -> int:
        """Backpressure stalls since the previous call (the run
        governor's downshift signal)."""
        with self._cv:
            since = self._stalls - self._pressure_mark
            self._pressure_mark = self._stalls
            return since

    def budget_snapshot(self) -> dict:
        """Budget accounting for reports and tests."""
        with self._cv:
            return {
                "budget_bytes": self._budget,
                "held_bytes": self._held,
                "peak_held_bytes": self._peak_held,
                "budget_stalls": self._stalls,
                "budget_evictions": self._evictions,
            }

    def reset_budget_accounting(self) -> None:
        """Rebase the peak/stall counters to the current state (between
        runs sharing the global pool)."""
        with self._cv:
            self._peak_held = self._held
            self._stalls = 0
            self._evictions = 0
            self._pressure_mark = 0


_GLOBAL = BufferPool()


def get_pool() -> BufferPool:
    """The process-wide buffer pool (all simulated ranks share one
    address space, so they share one pool)."""
    return _GLOBAL
