"""Problem-size restrictions and their consequences.

The quantitative heart of the paper: restriction (1) for threaded
columnsort, (2) for subblock columnsort, (3) for M-columnsort, the
hybrid bound of §6, the crossover ``M < 32·P^10`` (§5), and the worked
examples of §1 (more-than-double at ``M/P ≥ 2^12``; a terabyte on 16
processors).
"""

from repro.bounds.restrictions import (
    max_n_hybrid,
    max_n_m_columnsort,
    max_n_subblock,
    max_n_threaded,
    max_pow2_n,
    restriction_table,
)
from repro.bounds.analysis import (
    crossover_memory,
    eligible_problem_sizes,
    improvement_factor,
    log2_improvement_summary,
    m_beats_subblock,
    max_n_for_buffer,
    terabyte_config,
)

__all__ = [
    "max_n_threaded",
    "max_n_subblock",
    "max_n_m_columnsort",
    "max_n_hybrid",
    "max_pow2_n",
    "restriction_table",
    "crossover_memory",
    "m_beats_subblock",
    "improvement_factor",
    "eligible_problem_sizes",
    "max_n_for_buffer",
    "log2_improvement_summary",
    "terabyte_config",
]
