"""Consequences of the bounds: crossovers, improvement factors, and
eligible problem sizes.

These functions back the T-bounds and T-crossover experiments and the
worked numeric claims of §1 and §5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bounds.restrictions import (
    max_n_m_columnsort,
    max_n_subblock,
    max_n_threaded,
)
from repro.errors import ConfigError
from repro.matrix.bits import is_power_of_four, is_power_of_two


def crossover_memory(p: int) -> int:
    """The §5 crossover: M-columnsort reaches larger problem sizes than
    subblock columnsort exactly when the total memory ``M < 32·P^10``
    records.

    >>> crossover_memory(8) == 32 * 8**10 == 2**35
    True
    """
    if p < 1:
        raise ConfigError(f"P must be ≥ 1, got {p}")
    return 32 * p**10


def m_beats_subblock(total_mem: int, p: int) -> bool:
    """Whether M-columnsort's bound exceeds subblock columnsort's for
    this machine (checked from the bounds themselves, not the closed
    form — the closed form is what the tests verify against)."""
    if total_mem % p:
        raise ConfigError(f"P={p} must divide M={total_mem}")
    return max_n_m_columnsort(total_mem) > max_n_subblock(total_mem // p)


def improvement_factor(mem_per_proc: int) -> float:
    """How much further subblock columnsort reaches than threaded
    columnsort: ``bound(2)/bound(1) = (M/P)^(1/6) · √2 / 4^(2/3)``.

    The paper's §1 claim: for ``M/P ≥ 2^12`` this exceeds 2 ("more than
    double the largest problem size").

    >>> improvement_factor(2**12) > 2
    True
    """
    if mem_per_proc < 1:
        raise ConfigError(f"mem_per_proc must be ≥ 1, got {mem_per_proc}")
    return max_n_subblock(mem_per_proc) / max_n_threaded(mem_per_proc)


@dataclass(frozen=True)
class TerabyteConfig:
    """The §1 worked example: the cluster that sorts a terabyte."""

    p: int
    mem_per_proc: int
    record_size: int
    max_records: int
    max_bytes: int


def terabyte_config(
    p: int = 16, mem_per_proc: int = 2**19, record_size: int = 64
) -> TerabyteConfig:
    """The paper's terabyte example: 16 processors with ``M/P = 2^19``
    records sort up to ``M^(3/2)/√2 = 2^34`` records — one terabyte at
    64 bytes each — under M-columnsort.

    >>> terabyte_config().max_bytes == 2**40
    True
    """
    bound = max_n_m_columnsort(p * mem_per_proc)
    return TerabyteConfig(
        p=p,
        mem_per_proc=mem_per_proc,
        record_size=record_size,
        max_records=bound,
        max_bytes=bound * record_size,
    )


def eligible_problem_sizes(
    algorithm: str,
    buffer_records: int,
    p: int,
    n_min: int,
    n_max: int,
) -> list[int]:
    """Power-of-2 problem sizes in ``[n_min, n_max]`` that the algorithm
    can run at this buffer size — the reason Figure 2's subblock lines
    cover *disjoint* problem sizes differing by factors of 4, while
    M-columnsort covers every power of 2 (§5).

    ``buffer_records`` is the per-processor buffer ``r`` (the column
    portion for ``"m"``/``"hybrid"``).
    """
    if not is_power_of_two(buffer_records) or not is_power_of_two(p):
        raise ConfigError("buffer_records and p must be powers of 2")
    out: list[int] = []
    n = 1
    while n < n_min:
        n <<= 1
    while n <= n_max:
        if _eligible(algorithm, n, buffer_records, p):
            out.append(n)
        n <<= 1
    return out


def _eligible(algorithm: str, n: int, buffer_records: int, p: int) -> bool:
    if algorithm in ("threaded", "subblock"):
        r = buffer_records
        if n % r:
            return False
        s = n // r
        if s < p or s % p:
            return False
        if algorithm == "threaded":
            return r >= 2 * s * s
        return is_power_of_four(s) and r * r >= 16 * s**3
    if algorithm in ("m", "hybrid"):
        m = buffer_records * p
        if n % m:
            return False
        s = n // m
        if buffer_records % s or buffer_records < 2 * p * p:
            return False
        if algorithm == "m":
            return m >= 2 * s * s
        return is_power_of_four(s) and m * m >= 16 * s**3
    raise ConfigError(f"unknown algorithm {algorithm!r}")


def max_n_for_buffer(algorithm: str, buffer_records: int, p: int) -> int:
    """Largest eligible power-of-2 ``N`` at a fixed buffer size (the
    operational cap — e.g. why the paper's threaded runs stop at 4 GB)."""
    ceiling = buffer_records * p  # r·s with s as large as the checks allow
    # s is at most r (threaded: s ≤ sqrt(r/2)); scan downward from a
    # generous ceiling of r² · p.
    best = 0
    n = 1
    limit = buffer_records * buffer_records * p * 2
    while n <= limit:
        if _eligible(algorithm, n, buffer_records, p):
            best = n
        n <<= 1
    if best == 0:
        raise ConfigError(
            f"no eligible problem size for {algorithm} at buffer="
            f"{buffer_records}, P={p}"
        )
    return best


def log2_improvement_summary(mem_exponents: range, p: int) -> list[dict]:
    """Rows for the T-bounds table: for each ``M/P = 2^a``, the four
    bounds and the subblock/threaded improvement factor."""
    from repro.bounds.restrictions import restriction_table

    rows = []
    for a in mem_exponents:
        mem = 1 << a
        row = restriction_table(mem, p)
        rows.append(
            {
                "mem_per_proc": mem,
                "log2_mem": a,
                **{k: v for k, v in row.items()},
                "improvement": row["subblock"] / row["threaded"],
                "log2_threaded": math.log2(row["threaded"]),
                "log2_subblock": math.log2(row["subblock"]),
                "log2_m": math.log2(row["m"]),
                "log2_hybrid": math.log2(row["hybrid"]),
            }
        )
    return rows
