"""The four problem-size restrictions.

With ``r`` the column height and ``s = N/r``, the height restriction
bounds ``N = r·s``:

=========  ===================  ==================  =======================
algorithm  height restriction   height interp.      problem-size bound
=========  ===================  ==================  =======================
threaded   ``r ≥ 2s²``          ``r = M/P``         ``N ≤ (M/P)^(3/2)/√2``    (1)
subblock   ``r ≥ 4·s^(3/2)``    ``r = M/P``         ``N ≤ (M/P)^(5/3)/4^(2/3)``  (2)
M          ``r ≥ 2s²``          ``r = M``           ``N ≤ M^(3/2)/√2``        (3)
hybrid     ``r ≥ 4·s^(3/2)``    ``r = M``           ``N ≤ M^(5/3)/4^(2/3)``   (§6)
=========  ===================  ==================  =======================

Bounds are computed exactly in integer arithmetic (``isqrt`` of cubes
and fifth powers) — no floating-point round-off at the terabyte scales
the paper cares about.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError


def _check_positive(**kwargs: int) -> None:
    for name, value in kwargs.items():
        if value < 1:
            raise ConfigError(f"{name} must be ≥ 1, got {value}")


def max_n_threaded(mem_per_proc: int) -> int:
    """Restriction (1): ``⌊(M/P)^(3/2)/√2⌋ = ⌊√((M/P)³/2)⌋`` records.

    >>> max_n_threaded(512)  # = sqrt(512^3 / 2)
    8192
    """
    _check_positive(mem_per_proc=mem_per_proc)
    return math.isqrt(mem_per_proc**3 // 2)


def max_n_subblock(mem_per_proc: int) -> int:
    """Restriction (2): ``⌊(M/P)^(5/3)/4^(2/3)⌋`` records — computed as
    ``⌊((M/P)⁵/4²)^(1/3)⌋`` by integer cube root."""
    _check_positive(mem_per_proc=mem_per_proc)
    return _icbrt(mem_per_proc**5 // 16)


def max_n_m_columnsort(total_mem: int) -> int:
    """Restriction (3): ``⌊M^(3/2)/√2⌋`` records — restriction (1) with
    ``M/P`` replaced by the whole system's memory ``M``."""
    _check_positive(total_mem=total_mem)
    return math.isqrt(total_mem**3 // 2)


def max_n_hybrid(total_mem: int) -> int:
    """The §6 future-work bound: ``⌊M^(5/3)/4^(2/3)⌋`` records."""
    _check_positive(total_mem=total_mem)
    return _icbrt(total_mem**5 // 16)


def _icbrt(n: int) -> int:
    """Integer cube root (exact floor), by Newton iteration on integers
    — float seeding alone is off by millions at the 2^255-scale inputs
    the crossover table produces."""
    if n < 0:
        raise ConfigError(f"cube root of negative {n}")
    if n == 0:
        return 0
    x = 1 << -(-n.bit_length() // 3)  # ≥ floor(cbrt(n))
    while True:
        y = (2 * x + n // (x * x)) // 3
        if y >= x:
            break
        x = y
    while x**3 > n:
        x -= 1
    while (x + 1) ** 3 <= n:
        x += 1
    return x


def max_pow2_n(bound: int) -> int:
    """The largest power-of-2 problem size within a bound (the
    out-of-core setting requires power-of-2 ``N``).

    >>> max_pow2_n(8192), max_pow2_n(8191)
    (8192, 4096)
    """
    _check_positive(bound=bound)
    return 1 << (bound.bit_length() - 1)


def restriction_table(mem_per_proc: int, p: int) -> dict[str, int]:
    """All four bounds for a machine shape — one row of the T-bounds
    experiment.

    >>> row = restriction_table(2**19, 16)
    >>> row["m"] == 2**34   # the paper's terabyte example (§1)
    True
    """
    _check_positive(mem_per_proc=mem_per_proc, p=p)
    m = mem_per_proc * p
    return {
        "threaded": max_n_threaded(mem_per_proc),
        "subblock": max_n_subblock(mem_per_proc),
        "m": max_n_m_columnsort(m),
        "hybrid": max_n_hybrid(m),
    }
