"""Shared fixtures.

Functional out-of-core tests run at laptop scale (a few thousand
records) but exercise every code path of the full programs; the shapes
here are chosen so the interesting regimes all occur: multiple rounds
per pass, both ``√s ≥ P`` and ``√s < P`` for the subblock pass, and
matrices at the exact edge of each height restriction.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.process_backend import SHM_PREFIX
from repro.membuf import get_pool
from repro.records.format import RecordFormat

_DEV_SHM = "/dev/shm"


def _orphaned_children(deadline_s: float = 2.0) -> list[str]:
    """Names of multiprocessing children still alive after a grace
    period. The process transport joins (and, on the failure path,
    terminates) every rank before ``run`` returns, so any survivor here
    is a leak — it would hold shared-memory segments open and shadow
    the next test's fabric."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        alive = multiprocessing.active_children()
        if not alive:
            return []
        time.sleep(0.02)
    return [p.name for p in multiprocessing.active_children()]


def _leaked_shm_segments() -> list[str]:
    """Transport shared-memory segments left in ``/dev/shm``. Segment
    names embed the creating rank's pid (``repro-shm-<pid>-<seq>``) and
    every rank process dies with its run, so anything carrying the
    prefix after teardown is an unreleased segment — kernel memory that
    would outlive the whole pytest process. This covers the persistent
    :class:`~repro.cluster.arena.ShmArena` slabs too (same prefix):
    recycled or not, every slab must be unlinked by rank teardown or
    the parent's crash sweep before the run returns."""
    try:
        entries = os.listdir(_DEV_SHM)
    except OSError:  # non-Linux: rely on the teardown paths' own checks
        return []
    return sorted(
        name for name in entries if name.startswith(f"{SHM_PREFIX}-")
    )


def _lingering_pipeline_threads(deadline_s: float = 2.0) -> list[str]:
    """Names of ``pipeline-*`` worker threads still alive after a grace
    period. Only the pipeline pools' own threads are checked: watchdog
    tests legitimately abandon timed-out daemon rank threads, but a
    read-ahead/write-behind worker outliving its pass means ``close``
    was skipped on some unwind path (e.g. a cancelled run)."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        alive = [
            t.name for t in threading.enumerate()
            if t.name.startswith("pipeline-")
        ]
        if not alive:
            return []
        time.sleep(0.02)
    return [
        t.name for t in threading.enumerate()
        if t.name.startswith("pipeline-")
    ]


def pytest_runtest_teardown(item, nextitem):
    """Buffer-pool, quarantine, and pipeline-thread leak checks after
    every test.

    Every lease taken from the global :class:`~repro.membuf.BufferPool`
    must be recycled (or forgotten by the crash path) by the time a
    test finishes; an outstanding lease here means a pass body dropped
    a buffer on the floor. Likewise every
    :class:`~repro.resilience.quarantine.DiskQuarantine` that declared
    a disk dead must have been released — a leaked quarantine means a
    degraded run's registry would bleed into the next test — and every
    pipeline worker thread must have been joined. The pool's byte
    budget (process-wide state a governor test may have set) is cleared
    unconditionally. Plain hooks, not autouse fixtures — hypothesis
    rejects function-scoped fixtures around its tests.
    """
    from repro.resilience import release_all_quarantines

    pool = get_pool()
    leaked = pool.outstanding()
    if leaked:
        pool.forget_leases()  # don't cascade the failure into later tests
        pool.set_budget(None)
        pytest.fail(
            f"{item.nodeid} leaked {leaked} buffer-pool lease(s)",
            pytrace=False,
        )
    pool.set_budget(None)
    leaked_quarantines = release_all_quarantines()
    if leaked_quarantines:
        pytest.fail(
            f"{item.nodeid} leaked {leaked_quarantines} quarantined-disk "
            f"registr{'y' if leaked_quarantines == 1 else 'ies'}",
            pytrace=False,
        )
    lingering = _lingering_pipeline_threads()
    if lingering:
        pytest.fail(
            f"{item.nodeid} leaked pipeline worker thread(s): {lingering}",
            pytrace=False,
        )
    orphans = _orphaned_children()
    if orphans:
        for child in multiprocessing.active_children():
            child.kill()  # don't let the leak shadow later tests
        pytest.fail(
            f"{item.nodeid} leaked child process(es): {orphans}",
            pytrace=False,
        )
    leaked_shm = _leaked_shm_segments()
    if leaked_shm:
        for name in leaked_shm:  # reap so later tests start clean
            try:
                os.unlink(os.path.join(_DEV_SHM, name))
            except OSError:
                pass
        pytest.fail(
            f"{item.nodeid} leaked shared-memory segment(s): {leaked_shm}",
            pytrace=False,
        )


@contextmanager
def alarm_timeout(seconds: int, message: str = "test deadlocked"):
    """Abort the enclosed block with ``TimeoutError`` after ``seconds``.

    SIGALRM-based (pytest-timeout is not a dependency): the signal
    interrupts the main thread even while it blocks joining SPMD worker
    threads, which is exactly the hang mode the deadlock-regression
    tests guard against. Unix-only, like the rest of the test matrix.
    """

    def _fire(signum, frame):
        raise TimeoutError(f"{message} (alarm after {seconds}s)")

    old_handler = signal.signal(signal.SIGALRM, _fire)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old_handler)


@pytest.fixture
def hard_timeout():
    """The :func:`alarm_timeout` context manager, as a fixture."""
    return alarm_timeout


@pytest.fixture
def fmt() -> RecordFormat:
    """The workhorse: 64-byte records with u8 keys (the paper's
    smaller record size)."""
    return RecordFormat("u8", 64)


@pytest.fixture
def small_fmt() -> RecordFormat:
    """Compact records to keep heavy tests fast."""
    return RecordFormat("u8", 16)


@pytest.fixture(params=["u8", "i8", "f8"])
def any_key_fmt(request) -> RecordFormat:
    """Sweep the key dtypes that matter (unsigned, signed, float)."""
    return RecordFormat(request.param, 32)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def cluster4() -> ClusterConfig:
    return ClusterConfig(p=4, mem_per_proc=2**14)


def make_cluster(p: int, mem: int = 2**14) -> ClusterConfig:
    return ClusterConfig(p=p, mem_per_proc=mem)
