"""RetryPolicy: classification, backoff determinism, and disk wiring."""

import pytest

from repro.disks.virtual_disk import VirtualDisk
from repro.errors import (
    CommError,
    DiskError,
    DiskFullError,
    ResilienceError,
    SpmdError,
)
from repro.resilience import FaultPlan, FaultSpec, RetryPolicy


class TestClassification:
    def test_transient_attr_wins(self):
        exc = DiskError("anything at all")
        exc.transient = True
        assert RetryPolicy.retryable(exc)
        exc.transient = False
        assert not RetryPolicy.retryable(exc)

    def test_disk_full_is_fatal(self):
        assert not RetryPolicy.retryable(DiskFullError("disk 0 full"))

    @pytest.mark.parametrize(
        "msg",
        [
            "disk 0 is read-only",
            "invalid object name 'x/y'",
            "negative write offset -1",
            "no object 'gone' on disk 0",
            "invalid read range (-1, 4)",
            "read buffer holds 3 bytes, wanted 4",
            "unknown fault kind 'explode'",
        ],
    )
    def test_structural_disk_errors_fatal(self, msg):
        assert not RetryPolicy.retryable(DiskError(msg))

    def test_short_read_is_transient(self):
        assert RetryPolicy.retryable(
            DiskError("short read of 'obj' on disk 0: wanted 8, got 3")
        )

    def test_non_disk_errors_fatal_by_default(self):
        assert not RetryPolicy.retryable(ValueError("nope"))
        assert not RetryPolicy.retryable(CommError("communicator has been shut down"))

    def test_transient_comm_fault_retryable(self):
        exc = CommError("injected transient comm fault")
        exc.transient = True
        assert RetryPolicy.retryable(exc)


class TestBackoff:
    def test_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ResilienceError):
            RetryPolicy(base_delay_s=-1)

    def test_exponential_with_ceiling(self):
        policy = RetryPolicy(base_delay_s=0.01, max_delay_s=0.04, jitter=0.0)
        assert policy.delay_s(1) == pytest.approx(0.01)
        assert policy.delay_s(2) == pytest.approx(0.02)
        assert policy.delay_s(3) == pytest.approx(0.04)
        assert policy.delay_s(4) == pytest.approx(0.04)  # capped

    def test_seeded_jitter_is_deterministic(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        assert [a.delay_s(i) for i in (1, 2, 3)] == [b.delay_s(i) for i in (1, 2, 3)]

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.1, jitter=0.25, seed=3)
        for i in range(1, 20):
            assert 0.075 <= policy.delay_s(i) <= 0.125


class TestRun:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                exc = DiskError("injected read fault (transient)")
                exc.transient = True
                raise exc
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        retries = []
        assert policy.run(flaky, on_retry=lambda a, e: retries.append(a)) == "ok"
        assert retries == [1, 2]

    def test_budget_exhaustion_reraises_original(self):
        def always():
            exc = DiskError("injected write fault (transient)")
            exc.transient = True
            raise exc

        with pytest.raises(DiskError, match="injected write fault"):
            RetryPolicy(max_attempts=2, base_delay_s=0.0).run(always)

    def test_fatal_not_retried(self):
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise DiskFullError("disk 0 full")

        with pytest.raises(DiskFullError):
            RetryPolicy(max_attempts=5, base_delay_s=0.0).run(fatal)
        assert calls["n"] == 1


class TestDiskWiring:
    def test_transient_faults_recovered_and_metered(self, tmp_path):
        disk = VirtualDisk(tmp_path)
        disk.retry_policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        disk.fault_plan = FaultPlan(
            [FaultSpec(op="read", probability=1.0, count=2, transient=True)]
        )
        disk.write_at("obj", 0, b"abcd")
        assert disk.read_at("obj", 0, 4) == b"abcd"
        snap = disk.stats.snapshot()
        assert snap["read_retries"] == 2
        assert snap["reads"] == 1  # only the success is metered as a read

    def test_permanent_fault_not_retried(self, tmp_path):
        disk = VirtualDisk(tmp_path)
        disk.retry_policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        disk.fault_plan = FaultPlan(
            [FaultSpec(op="write", probability=1.0, count=None, transient=False)]
        )
        with pytest.raises(DiskError, match="injected write fault"):
            disk.write_at("obj", 0, b"abcd")
        assert disk.stats.snapshot()["write_retries"] == 0

    def test_retry_budget_exhaustion_surfaces_fault(self, tmp_path):
        disk = VirtualDisk(tmp_path)
        disk.retry_policy = RetryPolicy(max_attempts=2, base_delay_s=0.0)
        disk.fault_plan = FaultPlan(
            [FaultSpec(op="read", probability=1.0, count=None, transient=True)]
        )
        disk.write_at("obj", 0, b"abcd")
        with pytest.raises(DiskError, match="injected read fault"):
            disk.read_at("obj", 0, 4)
        assert disk.stats.snapshot()["read_retries"] == 1

    def test_no_policy_means_no_retry(self, tmp_path):
        disk = VirtualDisk(tmp_path)
        disk.fault_plan = FaultPlan(
            [FaultSpec(op="read", probability=1.0, count=1, transient=True)]
        )
        disk.write_at("obj", 0, b"abcd")
        with pytest.raises(DiskError):
            disk.read_at("obj", 0, 4)


class TestEndToEndRetry:
    def test_sort_completes_under_transient_faults(self, tmp_path):
        """A whole threaded sort survives a burst of transient faults,
        with the retries visible in the result's I/O accounting."""
        import numpy as np

        from repro.cluster.config import ClusterConfig
        from repro.oocs.api import sort_out_of_core
        from repro.records.format import RecordFormat
        from repro.records.generators import generate
        from repro.resilience import transient_plan

        fmt = RecordFormat("u8", 16)
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        recs = generate("uniform", fmt, 128 * 4, seed=5)
        plan = transient_plan(read_p=0.05, write_p=0.05, seed=11)
        res = sort_out_of_core(
            "threaded", recs, cluster, fmt, buffer_records=128,
            workdir=tmp_path / "w", retry_policy=RetryPolicy(base_delay_s=0.0),
            fault_plan=plan,
        )
        assert np.array_equal(
            res.output_records()["key"], np.sort(recs["key"], kind="stable")
        )
        assert res.io["read_retries"] + res.io["write_retries"] > 0
        assert plan.snapshot()["fired_total"] > 0

    def test_spmd_error_when_budget_exhausted(self, tmp_path):
        from repro.cluster.config import ClusterConfig
        from repro.oocs.api import sort_out_of_core
        from repro.records.format import RecordFormat
        from repro.records.generators import generate

        fmt = RecordFormat("u8", 16)
        cluster = ClusterConfig(p=2, mem_per_proc=2**10)
        recs = generate("uniform", fmt, 128 * 4, seed=5)
        plan = FaultPlan(
            [FaultSpec(op="read", probability=1.0, count=None, transient=True)]
        )
        with pytest.raises(SpmdError) as err:
            sort_out_of_core(
                "threaded", recs, cluster, fmt, buffer_records=128,
                workdir=tmp_path / "w",
                retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0),
                fault_plan=plan,
            )
        assert isinstance(err.value.cause, DiskError)
