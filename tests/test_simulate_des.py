"""The pipeline simulator, against hand-computed schedules."""

import pytest

from repro.errors import ConfigError
from repro.simulate.des import PipelineSimulator, simulate_pass
from repro.simulate.hardware import HardwareModel
from repro.simulate.trace import PassTrace, RoundWork, StageSpec

#: A hardware model where costs are literal: 1 byte of disk work = 1 s,
#: no overheads — so schedules are hand-checkable integers.
UNIT = HardwareModel(
    name="unit",
    disk_bandwidth=1.0,
    disk_access_overhead=0.0,
    net_bandwidth=1.0,
    net_latency=0.0,
    sync_factor=1.0,
    sort_ops_per_sec=1e18,  # sorts are free
    mem_bandwidth=1.0,
    stage_overhead=0.0,
    ram_bytes=2**30,
)


def trace(stages, works):
    """Build a PassTrace from [(name, kind, thread)] and per-round work
    dicts."""
    return PassTrace(
        name="t",
        stages=[StageSpec(*s) for s in stages],
        rounds=[RoundWork(work=w) for w in works],
    )


class TestHandSchedules:
    def test_single_stage_serializes(self):
        t = trace([("r", "read", "io")], [{"r": 5}] * 3)
        res = simulate_pass(t, UNIT, max_inflight=4)
        assert res.makespan == 15
        assert res.thread_busy["io"] == 15

    def test_two_threads_overlap(self):
        # read 4s, permute 4s on different threads: pipeline of 3 rounds
        # = 4 (fill) + 3·4 = 16.
        t = trace(
            [("r", "read", "io"), ("p", "permute", "mem")],
            [{"r": 4, "p": 4}] * 3,
        )
        res = simulate_pass(t, UNIT, max_inflight=4)
        assert res.makespan == 16

    def test_same_thread_no_overlap(self):
        # read + write share the io thread: 3 rounds × (4+4).
        t = trace(
            [("r", "read", "io"), ("w", "write", "io")],
            [{"r": 4, "w": 4}] * 3,
        )
        res = simulate_pass(t, UNIT, max_inflight=4)
        assert res.makespan == 24

    def test_bottleneck_thread_dominates(self):
        # slow middle stage (10s) between fast io stages (1s each).
        t = trace(
            [("r", "read", "io"), ("s", "permute", "mem"), ("w", "write", "io")],
            [{"r": 1, "s": 10, "w": 1}] * 4,
        )
        res = simulate_pass(t, UNIT, max_inflight=8)
        # fill 1 + 4×10 + drain 1 = 42.
        assert res.makespan == 42
        assert res.bottleneck_thread == "mem"

    def test_inflight_one_serializes_rounds(self):
        t = trace(
            [("r", "read", "io"), ("p", "permute", "mem")],
            [{"r": 4, "p": 4}] * 3,
        )
        res = simulate_pass(t, UNIT, max_inflight=1)
        assert res.makespan == 24  # no overlap at all

    def test_io_thread_interleaves_read_and_write(self):
        """read(t+1) runs while round t sits in the long middle stage —
        the io thread must not idle waiting for write(t)."""
        t = trace(
            [("r", "read", "io"), ("s", "permute", "mem"), ("w", "write", "io")],
            [{"r": 2, "s": 100, "w": 2}] * 2,
        )
        res = simulate_pass(t, UNIT, max_inflight=4)
        # reads at 0-2 and 2-4; s(0) 2-102; w(0) 102-104; s(1) 102-202;
        # w(1) 202-204. Without interleaving it would be 206+.
        assert res.makespan == 204

    def test_empty_trace(self):
        t = trace([("r", "read", "io")], [])
        assert simulate_pass(t, UNIT).makespan == 0


class TestInvariants:
    def _any_trace(self):
        return trace(
            [
                ("r", "read", "io"),
                ("c", "comm", "net"),
                ("w", "write", "io"),
            ],
            [{"r": 3, "c": 2, "w": 3}] * 5,
        )

    def test_makespan_at_least_busiest_thread(self):
        res = simulate_pass(self._any_trace(), UNIT, max_inflight=8)
        assert res.makespan >= max(res.thread_busy.values())

    def test_makespan_at_most_serial_time(self):
        t = self._any_trace()
        res = simulate_pass(t, UNIT, max_inflight=8)
        serial = sum(sum(rw.work.values()) for rw in t.rounds)
        assert res.makespan <= serial

    def test_more_inflight_never_slower(self):
        t = self._any_trace()
        times = [
            simulate_pass(t, UNIT, max_inflight=k).makespan for k in (1, 2, 4, 8)
        ]
        assert times == sorted(times, reverse=True)

    def test_stage_totals_sum_to_thread_busy(self):
        res = simulate_pass(self._any_trace(), UNIT, max_inflight=4)
        assert res.thread_busy["io"] == pytest.approx(
            res.stage_total["r"] + res.stage_total["w"]
        )

    def test_utilization_bounded(self):
        res = simulate_pass(self._any_trace(), UNIT, max_inflight=4)
        for thread in res.thread_busy:
            assert 0 < res.utilization(thread) <= 1

    def test_invalid_inflight(self):
        with pytest.raises(ConfigError):
            PipelineSimulator(UNIT, max_inflight=0)


class TestHardwareCosts:
    def test_stage_kinds_priced(self):
        hw = HardwareModel(stage_overhead=0.0, disk_access_overhead=0.0)
        read = StageSpec("r", "read", "io")
        assert hw.stage_seconds(read, 100e6) == pytest.approx(2.0)
        comm = StageSpec("c", "comm", "net")
        assert hw.stage_seconds(comm, 100e6, messages=10) == pytest.approx(
            1.0 + 10 * hw.net_latency
        )
        sort = StageSpec("s", "sort", "cpu")
        assert hw.stage_seconds(sort, 0) == 0.0

    def test_sync_factor_multiplies_comm(self):
        base = HardwareModel(sync_factor=1.0, stage_overhead=0.0)
        synced = HardwareModel(sync_factor=2.0, stage_overhead=0.0)
        comm = StageSpec("c", "comm", "net")
        assert synced.stage_seconds(comm, 1e6) == pytest.approx(
            2 * base.stage_seconds(comm, 1e6)
        )

    def test_negative_work_rejected(self):
        with pytest.raises(ConfigError):
            HardwareModel().stage_seconds(StageSpec("r", "read", "io"), -1)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigError):
            HardwareModel(disk_bandwidth=0)

    def test_buffers_available(self):
        hw = HardwareModel(ram_bytes=2**30)
        assert hw.buffers_available(2**25) == 32
        assert hw.buffers_available(2**40) == 2  # floor of 2
