"""Error taxonomy and SPMD failure attribution.

The headline property: when several ranks fail concurrently,
:class:`~repro.errors.SpmdError` names the *lowest-numbered* rank whose
failure is not shutdown collateral — so a chaos run's error report is
deterministic no matter which thread lost the race.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.spmd import run_spmd
from repro.errors import (
    CheckpointError,
    CommError,
    ReproError,
    ResilienceError,
    SpmdError,
    WatchdogTimeout,
)


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(ResilienceError, ReproError)
        assert issubclass(CheckpointError, ResilienceError)
        assert issubclass(WatchdogTimeout, ResilienceError)
        # catchable as stdlib RuntimeError, like the rest of the family
        assert issubclass(ResilienceError, RuntimeError)

    def test_watchdog_timeout_carries_context(self):
        exc = WatchdogTimeout(rank=3, idle_s=2.5, deadline_s=2.0)
        assert exc.rank == 3
        assert exc.idle_s == 2.5
        assert exc.deadline_s == 2.0
        assert "rank 3" in str(exc)
        assert "2.0" in str(exc)

    def test_spmd_error_carries_rank_and_cause(self):
        cause = ValueError("boom")
        exc = SpmdError(2, cause)
        assert exc.rank == 2
        assert exc.cause is cause
        assert "rank 2" in str(exc)


# world sizes 2-6, with a non-empty failing subset
@st.composite
def failing_worlds(draw):
    size = draw(st.integers(min_value=2, max_value=6))
    failing = draw(
        st.sets(st.integers(min_value=0, max_value=size - 1), min_size=1)
    )
    return size, sorted(failing)


class TestLowestRankProperty:
    @given(failing_worlds())
    @settings(max_examples=25, deadline=None)
    def test_lowest_failing_rank_reported(self, world):
        size, failing = world
        barrier = threading.Barrier(len(failing), timeout=10.0)

        def program(comm):
            if comm.rank in failing:
                barrier.wait()  # all failures in flight concurrently
                raise ValueError(f"planned failure on rank {comm.rank}")
            return comm.rank

        with pytest.raises(SpmdError) as err:
            run_spmd(size, program)
        assert err.value.rank == failing[0]
        assert isinstance(err.value.cause, ValueError)
        assert f"rank {failing[0]}" in str(err.value.cause)

    @given(failing_worlds())
    @settings(max_examples=10, deadline=None)
    def test_collateral_comm_errors_not_blamed(self, world):
        """Ranks that die of shutdown collateral (CommError while the
        world closes around them) must never outrank the true cause,
        even when the collateral rank has a lower number."""
        size, failing = world
        genuine = failing[-1]  # highest-numbered rank is the real culprit

        def program(comm):
            if comm.rank == genuine:
                raise ValueError("the real failure")
            # everyone else blocks in a receive that the shutdown breaks
            comm.recv(source=genuine, tag=99)  # never sent

        with pytest.raises(SpmdError) as err:
            run_spmd(size, program)
        assert err.value.rank == genuine
        assert isinstance(err.value.cause, ValueError)

    def test_all_collateral_still_reports_lowest(self):
        """If only collateral failures exist (no genuine cause was
        recorded), the lowest-numbered collateral rank is reported
        rather than nothing."""
        failures = [
            (2, CommError("communicator has been shut down")),
            (1, CommError("communicator has been shut down")),
        ]
        # mirror of run_spmd's ranking
        from repro.cluster.spmd import _is_collateral

        ranked = sorted(
            failures,
            key=lambda f: (
                0
                if not (_is_collateral(f[1]) or isinstance(f[1], WatchdogTimeout))
                else 1
                if isinstance(f[1], WatchdogTimeout)
                else 2,
                f[0],
            ),
        )
        assert ranked[0][0] == 1
