"""Structural traces: the analytic generators must agree exactly with
the traces emitted by live functional runs — the strongest guarantee
that Figure 2 is computed from the algorithms actually implemented."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.errors import ConfigError, DimensionError
from repro.oocs.api import sort_out_of_core
from repro.records.format import RecordFormat
from repro.records.generators import generate
from repro.simulate.trace import RunTrace
from repro.simulate.traces import (
    TRACE_BUILDERS,
    baseline_run_trace,
    hybrid_run_trace,
    m_run_trace,
    subblock_run_trace,
    threaded_run_trace,
)

FMT = RecordFormat("u8", 64)


def assert_traces_equal(analytic: RunTrace, functional: RunTrace) -> None:
    assert analytic.algorithm == functional.algorithm
    assert len(analytic.passes) == len(functional.passes)
    for a, f in zip(analytic.passes, functional.passes):
        assert a.name == f.name
        assert [s.name for s in a.stages] == [s.name for s in f.stages]
        assert [s.thread for s in a.stages] == [s.thread for s in f.stages]
        assert len(a.rounds) == len(f.rounds)
        for ra, rf in zip(a.rounds, f.rounds):
            assert ra.work == rf.work
            assert ra.messages == rf.messages


class TestAnalyticMatchesFunctional:
    def test_threaded(self):
        p, r, s = 4, 512, 16
        cluster = ClusterConfig(p=p, mem_per_proc=2**10)
        recs = generate("uniform", FMT, r * s, seed=1)
        res = sort_out_of_core("threaded", recs, cluster, FMT, buffer_records=r)
        assert_traces_equal(threaded_run_trace(r * s, p, r, 64), res.trace)

    def test_subblock(self):
        p, r, s = 8, 256, 16
        cluster = ClusterConfig(p=p, mem_per_proc=2**10)
        recs = generate("uniform", FMT, r * s, seed=2)
        res = sort_out_of_core("subblock", recs, cluster, FMT, buffer_records=r)
        assert_traces_equal(subblock_run_trace(r * s, p, r, 64), res.trace)

    def test_m(self):
        p, portion, s = 4, 256, 16
        n = p * portion * s
        cluster = ClusterConfig(p=p, mem_per_proc=portion)
        recs = generate("uniform", FMT, n, seed=3)
        res = sort_out_of_core("m", recs, cluster, FMT, buffer_records=portion)
        assert_traces_equal(m_run_trace(n, p, portion, 64), res.trace)

    def test_hybrid(self):
        p, portion, s = 4, 256, 16
        n = p * portion * s
        cluster = ClusterConfig(p=p, mem_per_proc=portion)
        recs = generate("uniform", FMT, n, seed=4)
        res = sort_out_of_core("hybrid", recs, cluster, FMT, buffer_records=portion)
        assert_traces_equal(hybrid_run_trace(n, p, portion, 64), res.trace)


class TestTraceContents:
    def test_io_totals_per_pass(self):
        run = threaded_run_trace(2**20, 4, 2**14, 64)
        nbytes = 2**20 * 64
        for pt in run.passes:
            assert pt.total("read") == nbytes / 4  # per processor
            assert pt.total("write") == nbytes / 4

    def test_run_trace_metadata(self):
        run = subblock_run_trace(2**20, 16, 2**14, 64)
        assert run.gb_total == pytest.approx(2**20 * 64 / 2**30)
        assert run.gb_per_proc == pytest.approx(run.gb_total / 16)
        assert run.buffer_bytes == 2**14 * 64

    def test_subblock_has_one_more_pass(self):
        thr = threaded_run_trace(2**19, 4, 2**13, 64)
        sub = subblock_run_trace(2**19, 4, 2**13, 64)
        assert len(sub.passes) == len(thr.passes) + 1

    def test_subblock_pass_no_network_when_sqrt_s_geq_p(self):
        run = subblock_run_trace(2**17 * 16, 4, 2**17, 64)  # s=16, √s=4=P
        sub_pass = run.passes[1]
        assert sub_pass.total("comm") == 0

    def test_m_trace_has_incore_stages(self):
        run = m_run_trace(2**18, 4, 2**12, 64)
        names = [s.name for s in run.passes[0].stages]
        assert "ic-s1" in names and "ic-c8" in names
        assert len(run.passes[0].stages) == 11
        assert len(run.passes[2].stages) == 20

    def test_baseline_trace(self):
        run = baseline_run_trace(2**16, 4, 2**12, 64, passes=4)
        assert len(run.passes) == 4
        assert run.total("comm") == 0
        assert run.total("sort") == 0

    def test_builders_registry(self):
        assert set(TRACE_BUILDERS) == {"threaded", "subblock", "m", "hybrid"}


class TestShapeErrors:
    def test_threaded_bound(self):
        with pytest.raises(DimensionError):
            threaded_run_trace(2**24, 4, 2**12, 64)

    def test_subblock_power_of_4(self):
        with pytest.raises(DimensionError):
            subblock_run_trace(2**18 * 32, 4, 2**18, 64)

    def test_m_needs_p2(self):
        with pytest.raises(ConfigError):
            m_run_trace(2**16, 1, 2**12, 64)

    def test_baseline_needs_enough_columns(self):
        with pytest.raises(ConfigError):
            baseline_run_trace(2**12, 8, 2**12, 64)
