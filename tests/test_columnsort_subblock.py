"""The 10-step subblock columnsort, in core."""

import numpy as np
import pytest

from repro.columnsort.basic import columnsort
from repro.columnsort.checks import (
    count_sorted_runs,
    has_subblock_property,
    min_run_length,
    runs_after_subblock_ok,
)
from repro.columnsort.subblock import subblock_columnsort, subblock_columnsort_steps
from repro.errors import DimensionError
from repro.matrix.layout import (
    from_columns,
    is_sorted_column_major,
    sort_columns,
    to_columns,
)
from repro.matrix.permutations import step2_target, subblock, subblock_target
from repro.records.format import RecordFormat
from repro.records.generators import WORKLOADS, generate

#: (r, s) pairs legal for subblock columnsort; the starred ones violate
#: basic columnsort's r ≥ 2s² — the whole point of the algorithm.
SHAPES = [(32, 4), (256, 16), (512, 16), (2048, 64)]
BELOW_BASIC = [(256, 16), (2048, 64)]  # 2s² = 512, 8192 respectively


class TestSorts:
    @pytest.mark.parametrize("r,s", SHAPES)
    def test_random_ints(self, r, s, rng):
        flat = rng.integers(0, 10**6, size=r * s)
        out = subblock_columnsort(to_columns(flat, r, s))
        assert is_sorted_column_major(out)
        assert np.array_equal(from_columns(out), np.sort(flat))

    @pytest.mark.parametrize("r,s", BELOW_BASIC)
    def test_sorts_below_basic_bound(self, r, s, rng):
        """Matrices too short for basic columnsort, repeatedly, with an
        adversarially small key space."""
        assert r < 2 * s * s
        for trial in range(25):
            flat = rng.integers(0, 5, size=r * s)
            out = subblock_columnsort(to_columns(flat, r, s))
            assert is_sorted_column_major(out), trial

    def test_boundary_height_exact(self, rng):
        # r = 4·s^(3/2) exactly (s=16 → 256).
        flat = rng.integers(0, 100, size=256 * 16)
        out = subblock_columnsort(to_columns(flat, 256, 16))
        assert is_sorted_column_major(out)

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_all_workloads_with_records(self, workload):
        fmt = RecordFormat("u8", 32)
        recs = generate(workload, fmt, 256 * 16, seed=6)
        out = subblock_columnsort(to_columns(recs, 256, 16))
        flat = from_columns(out)
        assert np.array_equal(flat["key"], np.sort(recs["key"]))
        assert np.array_equal(np.sort(flat["uid"]), np.arange(len(recs)))

    def test_agrees_with_basic_where_both_legal(self, rng):
        flat = rng.integers(0, 10**9, size=512 * 16)
        a = columnsort(to_columns(flat, 512, 16))
        b = subblock_columnsort(to_columns(flat, 512, 16))
        assert np.array_equal(a, b)

    def test_height_restriction_enforced(self, rng):
        m = to_columns(rng.integers(0, 9, size=128 * 16), 128, 16)
        with pytest.raises(DimensionError):
            subblock_columnsort(m)


class TestSteps:
    def test_ten_labels(self, rng):
        m = to_columns(rng.integers(0, 100, size=256 * 16), 256, 16)
        labels = [label for label, _ in subblock_columnsort_steps(m)]
        assert labels == [
            "1:sort", "2:transpose-reshape", "3:sort",
            "3.1:subblock-permutation", "3.2:sort",
            "4:reshape-transpose", "5:sort", "6:shift-down",
            "7:sort", "8:shift-up",
        ]

    def test_sorted_runs_after_subblock_step(self, rng):
        """§3: the subblock permutation of sorted columns leaves runs of
        r/√s in every column — the property enabling merge-based sorts."""
        r, s = 256, 16
        m = to_columns(rng.integers(0, 10**6, size=r * s), r, s)
        states = dict(subblock_columnsort_steps(m))
        after = states["3.1:subblock-permutation"]
        assert runs_after_subblock_ok(after, r, s)
        for j in range(s):
            assert count_sorted_runs(after[:, j]) <= 4  # √s
            assert min_run_length(after[:, j]) >= r // 4


class TestSubblockProperty:
    @pytest.mark.parametrize("r,s", SHAPES)
    def test_paper_permutation_has_property(self, r, s):
        assert has_subblock_property(subblock_target, r, s)

    def test_identity_lacks_property(self):
        assert not has_subblock_property(lambda i, j, r, s: (i, j), 256, 16)

    def test_step2_lacks_property(self):
        """The ordinary deal does NOT spread subblocks across all
        columns — the extra step is really needed."""
        assert not has_subblock_property(step2_target, 256, 16)

    def test_sorted_columns_stay_runs(self, rng):
        r, s = 256, 16
        m = sort_columns(to_columns(rng.integers(0, 10**6, size=r * s), r, s))
        assert runs_after_subblock_ok(subblock(m), r, s)


class TestRunCheckers:
    def test_count_sorted_runs(self):
        assert count_sorted_runs(np.array([1, 2, 0, 5, 5, 3])) == 3
        assert count_sorted_runs(np.array([1])) == 1
        assert count_sorted_runs(np.array([], dtype=int)) == 0

    def test_min_run_length(self):
        assert min_run_length(np.array([1, 2, 0, 5, 5, 3])) == 1
        assert min_run_length(np.array([1, 2, 3])) == 3
        assert min_run_length(np.array([], dtype=int)) == 0

    def test_run_checkers_on_records(self):
        fmt = RecordFormat("u8", 32)
        recs = fmt.make(np.array([1, 2, 0], dtype=np.uint64))
        assert count_sorted_runs(recs) == 2
