"""Crash-consistency sweeps: the real recovery paths survive every
enumerated power-loss state — and regression proofs that the harness
catches the bugs this PR fixed.

The regression tests re-introduce each pre-fix behavior (no journal
parent-dir fsync, no sidecar durability barrier, non-atomic manifest
writes) via monkeypatch and assert the sweep *flags* it. A harness that
passes broken code is worse than no harness.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.service.journal as journal_mod
from repro.crashsim import run_sweep
from repro.crashsim.harness import (
    SCENARIOS,
    scenario_checkpoint_save,
    scenario_journal_append,
    scenario_sidecar,
)
from repro.disks.virtual_disk import VirtualDisk


def _violations(summary: dict) -> list[str]:
    return [
        f"{name}: {v['state']}: {v['message']}"
        for name, sc in summary["scenarios"].items()
        for v in sc["violations"]
    ]


# ---------------------------------------------------------------------------
# the sweeps (the fast scenarios; resume_e2e runs in the bench and CI smoke)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "scenario",
    [
        "journal_append",
        "journal_compact",
        "checkpoint_save",
        "checkpoint_prune",
        "daemon_restart",
    ],
)
def test_metadata_scenarios_have_zero_violations(scenario, tmp_path):
    summary = run_sweep(tmp_path, scenarios=[scenario], quick=True)
    assert summary["violations_total"] == 0, _violations(summary)
    assert summary["states_total"] > 0


@pytest.mark.parametrize("scenario", ["sidecar", "parity"])
def test_data_plane_scenarios_have_zero_violations(scenario, tmp_path):
    summary = run_sweep(tmp_path, scenarios=[scenario], quick=True)
    assert summary["violations_total"] == 0, _violations(summary)
    assert summary["states_total"] > 0


def test_resume_e2e_quick_sweep(tmp_path):
    summary = run_sweep(tmp_path, scenarios=["resume_e2e"], quick=True)
    assert summary["violations_total"] == 0, _violations(summary)
    assert summary["states_total"] > 0


def test_sweep_summary_shape(tmp_path):
    summary = run_sweep(tmp_path, scenarios=["checkpoint_prune"], quick=True)
    assert set(summary) == {
        "quick", "scenarios", "states_total", "violations_total"
    }
    json.dumps(summary)  # must stay JSON-serializable for the CI artifact
    assert list(summary["scenarios"]) == ["checkpoint_prune"]


def test_scenario_registry_is_complete():
    assert list(SCENARIOS) == [
        "journal_append",
        "journal_compact",
        "checkpoint_save",
        "checkpoint_prune",
        "sidecar",
        "parity",
        "daemon_restart",
        "resume_e2e",
    ]


# ---------------------------------------------------------------------------
# regression: the harness must catch each pre-fix bug
# ---------------------------------------------------------------------------


def test_harness_catches_missing_journal_dir_fsync(tmp_path, monkeypatch):
    """Pre-fix, a brand-new journal's directory entry was never fsynced:
    power loss after the first acknowledged append could drop the whole
    file. Re-introduce that and the sweep must flag lost events."""
    monkeypatch.setattr(journal_mod, "fsync_dir", lambda path: None)
    states, violations = scenario_journal_append(tmp_path, quick=True)
    assert states > 0
    assert any("match no legal generation" in v.message for v in violations)


def test_harness_catches_unfsynced_sidecar_barrier(tmp_path, monkeypatch):
    """Pre-fix, sidecars (and store data) had no durability barrier at
    checkpoint time. A no-op ``sync`` leaves everything in the page
    cache, and the sweep must flag barriered extents that fail to
    survive."""
    monkeypatch.setattr(VirtualDisk, "sync", lambda self: 0)
    states, violations = scenario_sidecar(tmp_path, quick=True)
    assert states > 0
    assert any("barriered extent" in v.message for v in violations)


def test_harness_catches_non_atomic_manifest_writes(tmp_path, monkeypatch):
    """Write manifests with a bare ``write_text`` instead of the
    fsync+replace discipline and the sweep must surface torn or lost
    manifests."""
    import repro.resilience.checkpoint as checkpoint_mod

    def naive(path, doc, indent=None, durable=True):
        Path(path).write_text(json.dumps(doc, indent=indent, sort_keys=True))

    monkeypatch.setattr(checkpoint_mod, "atomic_write_json", naive)
    states, violations = scenario_checkpoint_save(tmp_path, quick=True)
    assert states > 0
    assert any(
        "torn manifest" in v.message or "save() was acknowledged" in v.message
        for v in violations
    )
