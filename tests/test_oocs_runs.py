"""Sorted-run structure (footnote 5): predictions, live verification,
and the merging sort."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.disks.matrixfile import ColumnStore
from repro.errors import ConfigError
from repro.oocs.base import OocJob, make_workspace
from repro.oocs.runs import (
    merge_sorted_runs,
    merge_two,
    predict_runs,
    sort_column,
    verify_run_structure,
)
from repro.oocs.subblock import subblock_columnsort_ooc
from repro.oocs.threaded import threaded_columnsort_ooc
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 32)


class TestMergeTwo:
    def test_basic(self):
        a = FMT.make(np.array([1, 3, 5], dtype=np.uint64))
        b = FMT.make(np.array([2, 3, 6], dtype=np.uint64), uids=np.array([10, 11, 12]))
        out = merge_two(a, b)
        assert list(out["key"]) == [1, 2, 3, 3, 5, 6]
        # Stability: a's 3 (uid 1) precedes b's 3 (uid 11).
        assert list(out["uid"]) == [0, 10, 1, 11, 2, 12]

    def test_empty_sides(self):
        a = FMT.make(np.array([1, 2], dtype=np.uint64))
        empty = FMT.empty(0)
        assert np.array_equal(merge_two(a, empty), a)
        assert np.array_equal(merge_two(empty, a), a)

    def test_disjoint_ranges(self):
        a = FMT.make(np.array([1, 2], dtype=np.uint64))
        b = FMT.make(np.array([5, 6], dtype=np.uint64))
        assert list(merge_two(b, a)["key"]) == [1, 2, 5, 6]

    def test_random_agreement_with_sort(self, rng):
        for _ in range(20):
            ka = np.sort(rng.integers(0, 50, size=rng.integers(0, 40)))
            kb = np.sort(rng.integers(0, 50, size=rng.integers(0, 40)))
            out = merge_two(FMT.make(ka.astype(np.uint64)),
                            FMT.make(kb.astype(np.uint64)))
            assert np.array_equal(out["key"], np.sort(np.concatenate([ka, kb])))


class TestMergeRuns:
    @pytest.mark.parametrize("k", [1, 2, 4, 8, 16])
    def test_merges_k_runs(self, k, rng):
        run = 32
        keys = np.concatenate(
            [np.sort(rng.integers(0, 1000, size=run)) for _ in range(k)]
        ).astype(np.uint64)
        out = merge_sorted_runs(FMT.make(keys), run)
        assert np.array_equal(out["key"], np.sort(keys))

    def test_preserves_uids(self, rng):
        keys = np.concatenate(
            [np.sort(rng.integers(0, 9, size=16)) for _ in range(4)]
        ).astype(np.uint64)
        out = merge_sorted_runs(FMT.make(keys), 16)
        assert np.array_equal(np.sort(out["uid"]), np.arange(64))

    def test_bad_run_length(self):
        with pytest.raises(ConfigError):
            merge_sorted_runs(FMT.empty(10), 3)
        with pytest.raises(ConfigError):
            merge_sorted_runs(FMT.empty(10), 0)

    def test_sort_column_dispatch(self, rng):
        keys = np.concatenate(
            [np.sort(rng.integers(0, 100, size=64)) for _ in range(2)]
        ).astype(np.uint64)
        recs = FMT.make(keys)
        merged = sort_column(recs, run_length=64)
        plain = sort_column(recs)
        assert np.array_equal(merged["key"], plain["key"])


class TestPredictions:
    def test_formulas(self):
        assert predict_runs("after-deal", 512, 16) == (16, 32)
        assert predict_runs("after-subblock", 256, 16) == (4, 64)
        with pytest.raises(ConfigError):
            predict_runs("after-quicksort", 64, 8)
        with pytest.raises(ConfigError):
            predict_runs("after-deal", 10, 3)

    def test_verify_run_structure(self):
        keys = np.array([1, 2, 3, 0, 5, 9], dtype=np.uint64)
        assert verify_run_structure(FMT.make(keys), 3)
        assert not verify_run_structure(FMT.make(keys), 2)
        assert not verify_run_structure(FMT.make(keys), 4)  # non-dividing

    def test_live_deal_pass_produces_predicted_runs(self, tmp_path):
        """Footnote 5, verified: every intermediate column written by
        pass 1 of a live threaded run consists of s sorted runs of r/s."""
        p, r, s = 4, 128, 8
        cluster = ClusterConfig(p=p, mem_per_proc=2**10)
        recs = generate("uniform", FMT, r * s, seed=3)
        ws = make_workspace(cluster, FMT, recs, r, s, workdir=tmp_path)
        job = OocJob(cluster=cluster, fmt=FMT, n=r * s, buffer_records=r)
        threaded_columnsort_ooc(job, ws.input, keep_intermediates=True)
        t1 = ColumnStore(cluster, FMT, r, s, ws.disks, name="thr-t1")
        count, length = predict_runs("after-deal", r, s)
        for j in range(s):
            col = t1.read_column(t1.owner(j), j)
            assert verify_run_structure(col, length), f"column {j}"

    def test_live_subblock_pass_produces_predicted_runs(self, tmp_path):
        """§3's sorted-run theorem on the live 4-pass program: columns
        written by the subblock pass are √s runs of r/√s."""
        p, r, s = 4, 256, 16
        cluster = ClusterConfig(p=p, mem_per_proc=2**10)
        recs = generate("uniform", FMT, r * s, seed=4)
        ws = make_workspace(cluster, FMT, recs, r, s, workdir=tmp_path)
        job = OocJob(cluster=cluster, fmt=FMT, n=r * s, buffer_records=r)
        subblock_columnsort_ooc(job, ws.input, keep_intermediates=True)
        t2 = ColumnStore(cluster, FMT, r, s, ws.disks, name="sub-t2")
        count, length = predict_runs("after-subblock", r, s)
        assert (count, length) == (4, 64)
        for j in range(s):
            col = t2.read_column(t2.owner(j), j)
            assert verify_run_structure(col, length), f"column {j}"
