"""M-columnsort, end to end — the r = M height interpretation."""

import numpy as np
import pytest

from repro.cluster.config import ClusterConfig
from repro.errors import ConfigError, DimensionError
from repro.oocs.api import sort_out_of_core
from repro.oocs.base import OocJob
from repro.oocs.mcolumnsort import derive_shape
from repro.records.format import RecordFormat
from repro.records.generators import generate

FMT = RecordFormat("u8", 64)


def run(p, portion, s, workload="uniform", fmt=FMT, seed=0):
    cluster = ClusterConfig(p=p, mem_per_proc=max(portion, 8))
    n = p * portion * s
    recs = generate(workload, fmt, n, seed=seed)
    return (
        sort_out_of_core("m", recs, cluster, fmt, buffer_records=portion),
        recs,
    )


class TestEndToEnd:
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_cluster_sizes(self, p):
        res, _ = run(p, max(2 * p * p, 64), 8)
        assert res.passes == 3

    @pytest.mark.parametrize(
        "workload", ["uniform", "sorted", "reverse", "duplicates",
                     "all-equal", "zipf", "organ-pipe"]
    )
    def test_workloads(self, workload):
        run(4, 64, 8, workload=workload)

    @pytest.mark.parametrize("key", ["u8", "i8", "f8"])
    def test_key_dtypes(self, key):
        run(4, 64, 8, fmt=RecordFormat(key, 32))

    def test_single_column(self):
        """s = 1: the whole dataset is one M-high column; one round per
        pass."""
        run(4, 64, 1)

    def test_io_is_exactly_three_passes(self):
        res, recs = run(4, 64, 8)
        nbytes = len(recs) * FMT.record_size
        assert res.io["bytes_read"] == 3 * nbytes
        assert res.io["bytes_written"] == 3 * nbytes

    def test_exceeds_threaded_columnsort_bound(self):
        """A problem size no threaded-columnsort configuration with the
        same per-processor memory could sort: restriction (1) caps
        threaded at (M/P)^(3/2)/√2 records, but M-columnsort's bound
        scales with total memory (restriction (3))."""
        from repro.bounds.restrictions import max_n_threaded

        p, portion, s = 8, 256, 16
        n = p * portion * s  # 32768 records
        assert n > max_n_threaded(portion)  # 256^1.5/√2 ≈ 2896
        res, _ = run(p, portion, s)
        assert res.passes == 3

    def test_communication_far_exceeds_threaded(self):
        """§4/§5: M-columnsort's distributed sort stage incurs
        substantially more communication than threaded columnsort."""
        p, r, s = 4, 512, 8  # threaded shape: N = 4096
        cluster = ClusterConfig(p=p, mem_per_proc=2**10)
        recs = generate("uniform", FMT, r * s, seed=1)
        thr = sort_out_of_core("threaded", recs, cluster, FMT, buffer_records=r)
        m = sort_out_of_core("m", recs, cluster, FMT, buffer_records=128)
        assert (
            m.comm_total["network_bytes"] > 1.5 * thr.comm_total["network_bytes"]
        )


class TestValidation:
    def test_shape_derivation(self):
        cluster = ClusterConfig(p=4, mem_per_proc=2**8)
        job = OocJob(cluster=cluster, fmt=FMT, n=4 * 256 * 16, buffer_records=256)
        assert derive_shape(job) == (1024, 16)

    def test_p1_rejected(self):
        cluster = ClusterConfig(p=1, mem_per_proc=2**10)
        job = OocJob(cluster=cluster, fmt=FMT, n=2**12, buffer_records=2**10)
        with pytest.raises(ConfigError, match="P ≥ 2"):
            derive_shape(job)

    def test_outer_height_restriction(self):
        cluster = ClusterConfig(p=4, mem_per_proc=2**8)
        # M = 1024, s = 32: 1024 < 2·32² = 2048.
        job = OocJob(cluster=cluster, fmt=FMT, n=4 * 256 * 32, buffer_records=256)
        with pytest.raises(DimensionError, match="height restriction"):
            derive_shape(job)

    def test_inner_height_restriction(self):
        cluster = ClusterConfig(p=8, mem_per_proc=2**6)
        # M/P = 64 < 2P² = 128.
        job = OocJob(cluster=cluster, fmt=FMT, n=8 * 64 * 2, buffer_records=64)
        with pytest.raises(DimensionError, match="in-core height"):
            derive_shape(job)

    def test_s_divides_portion(self):
        cluster = ClusterConfig(p=2, mem_per_proc=2**5)
        # portion=32, s=64 > portion — M=64, s = n/M; pick n = 64·64.
        job = OocJob(cluster=cluster, fmt=FMT, n=64 * 64, buffer_records=32)
        with pytest.raises((ConfigError, DimensionError)):
            derive_shape(job)

    def test_m_divides_n(self):
        cluster = ClusterConfig(p=4, mem_per_proc=2**8)
        job = OocJob(cluster=cluster, fmt=FMT, n=512, buffer_records=256)
        with pytest.raises(ConfigError, match="divide"):
            derive_shape(job)
